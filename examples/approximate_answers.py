"""Approximate answering with a resource ratio α (Section 8 extension).

Not every query has a bounded rewriting; the paper's conclusion proposes
letting the accessed fragment be an α-fraction of the data and returning
approximate answers with a deterministic accuracy guarantee.  This example
sweeps α for the Graph Search query Q0 and a CDR analytics query and prints
how recall (coverage) grows with the budget, together with the diversified
top-k selection over the answers.

Run with::

    python examples/approximate_answers.py
"""

from __future__ import annotations

from repro import BoundedEngine, accuracy_sweep, top_k_diversified
from repro.algebra.evaluation import evaluate_cq
from repro.workloads import cdr, graph_search as gs

ALPHAS = (0.01, 0.05, 0.1, 0.25, 0.5, 1.0)


def sweep(title, query, database, access_schema) -> None:
    print(f"\n=== {title} ===")
    exact = evaluate_cq(query, database.facts)
    print(f"|D| = {database.size} tuples, exact answers: {len(exact)}")
    print(f"{'alpha':>6} {'budget':>8} {'accessed':>9} {'coverage':>9} {'eta':>6}")
    for point in accuracy_sweep(query, database, access_schema, ALPHAS, seed=7):
        eta = "-" if point.eta is None else f"{point.eta:.2f}"
        print(
            f"{point.alpha:>6.2f} {point.budget:>8} {point.tuples_accessed:>9} "
            f"{point.coverage:>9.2f} {eta:>6}"
        )


def main() -> None:
    gs_instance = gs.generate(num_persons=3_000, num_movies=1_000, seed=19)
    sweep("Graph Search Q0 (Example 1.1)", gs.query_q0(),
          gs_instance.database, gs.access_schema())

    cdr_instance = cdr.generate(num_customers=500, num_days=5, seed=23)
    analytics = cdr.workload(cdr_instance, count=18, seed=31)[-1]
    sweep(f"CDR analytics query {analytics.name}", analytics,
          cdr_instance.database, cdr.access_schema())

    # Diversified top-k over the (bounded) answers of Q0.
    engine = BoundedEngine(gs_instance.database, gs.access_schema(), gs.views())
    answer = engine.answer(gs.query_q0())
    top = top_k_diversified(answer.rows, k=3)
    print(f"\nQ0 answered through a bounded plan ({answer.tuples_fetched} tuples fetched); "
          f"diversified top-{len(top)} of {top.candidates} answers: {top.rows}")


if __name__ == "__main__":
    main()
