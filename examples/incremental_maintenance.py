"""Bounded incremental maintenance of cached views under updates.

The paper's future-work section asks for *bounded view maintenance*: keep the
materialised views and the access-constraint indices fresh while the
underlying data changes, without re-reading the whole database.  This example
runs the Graph Search workload of Example 1.1 through
:class:`repro.MaintainedEngine`:

1. materialise the views and build the indices once;
2. stream mixed insert/delete batches into the engine;
3. keep answering Q0 from the maintained caches, and compare both the answers
   and the maintenance effort with recomputation from scratch.

Run with::

    python examples/incremental_maintenance.py
"""

from __future__ import annotations

import time

from repro import Deletion, Insertion, MaintainedEngine, UpdateBatch, random_update_batch
from repro.workloads import graph_search as gs


def main() -> None:
    instance = gs.generate(num_persons=2_000, num_movies=800, seed=41)
    engine = MaintainedEngine(instance.database, gs.access_schema(), gs.views())
    query = gs.query_q0()

    print(f"database: {instance.database.size} tuples, "
          f"view cache: {engine.view_cache_size} rows")
    print(f"initial answers to Q0: {sorted(engine.answer(query).rows)}")

    # --- stream three random batches --------------------------------------- #
    # The cache must stay fresh after *every* update (that is what "maintained"
    # means), so the baseline to beat is recomputing the views once per update;
    # the incremental path instead runs a handful of anchored delta queries.
    for round_number in range(3):
        batch = random_update_batch(
            engine.database, size=100, seed=100 + round_number,
            access_schema=engine.access_schema,
        )
        started = time.perf_counter()
        report = engine.apply(batch)
        incremental_seconds = time.perf_counter() - started

        started = time.perf_counter()
        engine.view_cache.recompute()
        recompute_seconds = time.perf_counter() - started
        recompute_per_update = recompute_seconds * max(report.applied, 1)

        answer = engine.answer(query)
        baseline = engine.baseline(query)
        assert answer.rows == baseline.rows, "maintained answers must stay exact"

        print(
            f"round {round_number}: applied {report.applied} updates "
            f"(+{report.inserted}/-{report.deleted}, "
            f"{report.skipped_inadmissible} skipped as inadmissible); "
            f"delta queries: {report.stats.delta_queries}, "
            f"view rows +{report.stats.rows_added}/-{report.stats.rows_removed}; "
            f"incremental {incremental_seconds * 1000:.1f} ms vs "
            f"recompute-after-every-update {recompute_per_update * 1000:.1f} ms"
        )

    # --- a targeted update that changes the answer ------------------------ #
    nasa_pid = next(row[0] for row in engine.database.relation("person") if row[2] == "NASA")
    new_movie = "m_live_insert"
    engine.apply(UpdateBatch([
        Insertion("movie", (new_movie, "breaking news", "Universal", "2014")),
        Insertion("rating", (new_movie, 5)),
        Insertion("like", (nasa_pid, new_movie, "movie")),
    ]))
    print(f"after inserting {new_movie}: {sorted(engine.answer(query).rows)}")

    engine.apply(UpdateBatch([Deletion("rating", (new_movie, 5))]))
    print(f"after deleting its rating:  {sorted(engine.answer(query).rows)}")

    assert engine.verify_caches(), "incremental caches must match recomputation"
    print("maintained caches verified against full recomputation")


if __name__ == "__main__":
    main()
