"""The decision procedures: VBRP, AlgACQ, BOP and the reduction gadgets.

This example exercises the *exact* decision procedures of Sections 3 and 4 on
instances small enough to check completely:

1. ``decide_vbrp`` — does a CQ have an M-bounded rewriting? (Theorem 3.1's
   upper-bound algorithm, made deterministic by enumerating candidate plans);
2. ``alg_acq`` — the PTIME-flavoured procedure for acyclic CQ with fixed
   parameters (Theorem 4.2);
3. ``has_bounded_output`` — the BOP decision (Theorem 3.4), including the
   3SAT reduction gadget whose answer must track (un)satisfiability;
4. the Proposition 4.5 gadget: VBRP under FD-only constraints with M = 1.

Run with:  python examples/deciding_vbrp.py
"""

from __future__ import annotations

from repro.algebra import ConjunctiveQuery, Constant, RelationAtom, Variable, ViewSet, schema_from_spec
from repro.core.access import AccessConstraint, AccessSchema
from repro.core.bounded_output import has_bounded_output
from repro.core.vbrp import alg_acq, decide_vbrp
from repro.workloads import reductions as red

X, Y, Z = Variable("x"), Variable("y"), Variable("z")


def vbrp_demo() -> None:
    print("=== VBRP(CQ): exact decision on a small schema ===\n")
    schema = schema_from_spec({"R": ("a", "b"), "S": ("b", "c")})
    access = AccessSchema(
        (AccessConstraint("R", ("a",), ("b",), 2), AccessConstraint("S", ("b",), ("c",), 1))
    )
    queries = {
        "anchored  Q(z) :- R(1,y), S(y,z)": ConjunctiveQuery(
            head=(Z,),
            atoms=(RelationAtom("R", (Constant(1), Y)), RelationAtom("S", (Y, Z))),
        ),
        "unanchored Q(z) :- R(x,y), S(y,z)": ConjunctiveQuery(
            head=(Z,),
            atoms=(RelationAtom("R", (X, Y)), RelationAtom("S", (Y, Z))),
        ),
    }
    for label, query in queries.items():
        for m in (3, 5):
            result = decide_vbrp(query, ViewSet(()), access, schema, max_size=m, language="CQ")
            print(f"{label}   M={m}:  has rewriting? {result.has_rewriting}  "
                  f"(candidates={result.candidates}, conforming={result.conforming})")
        acq = alg_acq(query, ViewSet(()), access, schema, max_size=5)
        print(f"{label}   AlgACQ agrees: {acq.has_rewriting}\n")


def bop_demo() -> None:
    print("=== BOP: bounded output, including the Theorem 3.4 gadget ===\n")
    for name, phi in (("unsatisfiable", red.unsatisfiable_example()),
                      ("satisfiable", red.satisfiable_example())):
        instance = red.bop_reduction(phi)
        bounded = has_bounded_output(instance.query, instance.access_schema, instance.schema)
        print(f"3SAT formula is {name:>13}:  Q(w) has bounded output? {bounded} "
              f"(expected {instance.expected_bounded})")
    print()


def prop45_demo() -> None:
    print("=== Proposition 4.5: VBRP(CQ) with FD-only constraints, M = 1 ===\n")
    for name, phi in (("satisfiable", red.satisfiable_example()),
                      ("unsatisfiable", red.unsatisfiable_example())):
        instance = red.prop45_reduction(phi)
        result = decide_vbrp(
            instance.query, instance.views, instance.access_schema, instance.schema,
            max_size=1, language="CQ",
        )
        print(f"3SAT formula is {name:>13}:  Q has a 1-bounded rewriting using {{Qc}}? "
              f"{result.has_rewriting} (expected {instance.expected_rewriting})")
    print(
        "\nThe gadget answers track satisfiability exactly — the NP-hardness of "
        "Proposition 4.5 in action."
    )


if __name__ == "__main__":
    vbrp_demo()
    bop_demo()
    prop45_demo()
