"""Scale independence: the I/O of the bounded plan is flat while scans grow.

This script reproduces the *shape* of the paper's headline claim ("query
plans for boundedly evaluable queries outperform commercial query engines by
3 orders of magnitude, and the gap gets larger on bigger data"): it evaluates
Q0 of Example 1.1 on Graph Search datasets of increasing size and prints the
number of tuples the bounded plan fetches versus the number of tuples a
full-scan evaluation reads.

Run with:  python examples/graph_search_scale.py
"""

from __future__ import annotations

import time

from repro import BoundedEngine
from repro.workloads import graph_search as gs

SCALES = [1_000, 5_000, 20_000, 80_000]


def main() -> None:
    print("=== Scale independence of the bounded rewriting of Q0 ===\n")
    header = (
        f"{'persons':>9} {'|D|':>9} {'fetched':>8} {'scanned':>10} "
        f"{'ratio':>9} {'plan (s)':>9} {'scan (s)':>9}"
    )
    print(header)
    print("-" * len(header))

    q0 = gs.query_q0()
    access, views = gs.access_schema(), gs.views()
    for persons in SCALES:
        data = gs.generate(num_persons=persons, num_movies=max(500, persons // 4), seed=17)
        engine = BoundedEngine(data.database, access, views)

        started = time.perf_counter()
        answer = engine.answer(q0)
        plan_seconds = time.perf_counter() - started

        started = time.perf_counter()
        baseline = engine.baseline(q0)
        scan_seconds = time.perf_counter() - started

        assert answer.rows == baseline.rows
        ratio = baseline.tuples_scanned / max(answer.tuples_fetched, 1)
        print(
            f"{persons:>9,} {data.database.size:>9,} {answer.tuples_fetched:>8} "
            f"{baseline.tuples_scanned:>10,} {ratio:>8.0f}x "
            f"{plan_seconds:>9.3f} {scan_seconds:>9.3f}"
        )

    print(
        "\nThe 'fetched' column stays bounded by 2*N0 = "
        f"{2 * 100} while the scan grows linearly with |D| — the access-ratio "
        "gap widens with the data, as reported in the paper."
    )


if __name__ == "__main__":
    main()
