"""Quickstart: Example 1.1 of the paper, served through :class:`QueryService`.

We build the Graph Search schema (persons, movies, likes, ratings), declare
the access schema A0 (each studio releases at most N0 movies per year; each
movie has one rating), cache the view V1 (movies liked by NASA folks), and
answer

    Q0(mid): movies released by Universal Studios in 2014, liked by people at
             NASA, and rated 5

through a bounded plan that reads the cached view plus at most 2·N0 tuples of
the underlying database — no matter how large the database is.  The same
service then demonstrates the serving-layer features: the plan cache,
prepared queries with named parameters, the SQLite backend, and aggregated
statistics.

Run with:  python examples/quickstart.py
"""

from __future__ import annotations

from repro import QueryService
from repro.core.conformance import conforms_to
from repro.workloads import graph_search as gs


def main() -> None:
    print("=== Bounded query rewriting using views: Example 1.1 ===\n")

    # 1. Generate an instance of R0 that satisfies the access schema A0.
    data = gs.generate(num_persons=20_000, num_movies=5_000, seed=42)
    database = data.database
    access = gs.access_schema(n0=data.n0)
    views = gs.views()
    print(f"database size |D| = {database.size:,} tuples "
          f"({database.relation_sizes()})")
    print(f"access schema A0 = {[str(c) for c in access]}")
    print(f"D |= A0 ? {database.satisfies(access)}\n")

    # 2. One service: views materialised and cached, indices built, planner
    #    chain (heuristic -> topped) and plan cache ready.
    service = QueryService(database, access, views)
    print(f"cached views: { {v: len(rows) for v, rows in service.view_cache.items()} }\n")

    # 3. Answer Q0 with a bounded plan through the single entry point.
    q0 = gs.query_q0()
    print(f"query {q0}\n")
    answer = service.query(q0)
    print(f"bounded plan used : {answer.used_bounded_plan} (planner {answer.planner!r})")
    print(f"answers           : {len(answer.rows)} movies")
    print(f"tuples fetched    : {answer.tuples_fetched} (<= 2*N0 = {2 * data.n0})")
    print(f"view tuples read  : {answer.view_tuples_scanned} (cached, no I/O)\n")

    # 4. Ask again: the plan cache answers without re-planning.
    again = service.query(q0)
    assert again.cache_hit and again.rows == answer.rows
    print(f"repeated query    : cache hit, {again.elapsed_seconds * 1e3:.2f} ms\n")

    # 5. Prepared query: planned once, re-executed per studio without
    #    re-planning — only the bound constant changes.
    prepared = service.prepare(
        "Q0(mid) :- person(xp, name, 'NASA'), like(xp, mid, 'movie'), "
        "movie(mid, ym, :studio, '2014'), rating(mid, 5)"
    )
    universal = prepared.execute(studio="Universal")
    assert universal.rows == answer.rows  # same constants as Q0: same answers
    paramount = prepared.execute(studio="Paramount")
    print(f"prepared query    : parameters {sorted(prepared.parameters)}; "
          f"{len(universal.rows)} movies for 'Universal', "
          f"{len(paramount.rows)} for 'Paramount' — one plan, two bindings\n")

    # 6. The SQLite backend (Section 5.1's SQL translation) agrees row-for-row.
    via_sql = service.query(q0, backend="sqlite")
    assert via_sql.rows == answer.rows
    print(f"sqlite backend    : {len(via_sql.rows)} movies (row-identical)\n")

    # 7. Compare with a full-scan baseline ("conventional engine").
    baseline = service.query(q0, planners=())  # empty chain: forced fallback
    assert baseline.rows == answer.rows
    ratio = baseline.tuples_scanned / max(answer.tuples_fetched, 1)
    print(f"full scan reads   : {baseline.tuples_scanned:,} tuples")
    print(f"access ratio      : {ratio:,.0f}x less data via the bounded plan\n")

    # 8. The hand-built plan of Figure 1 does the same job.
    plan = gs.figure1_plan()
    report = conforms_to(plan, access, database.schema, views, compute_bound=True)
    result = service.execute_plan(plan, backend="memory")
    print("Figure 1 plan ξ0:")
    print(plan.pretty())
    print(f"\nconforms to A0: {report.conforms}; worst-case |Dξ| <= {report.fetch_bound}")
    print(f"executed: {len(result.rows)} answers, {result.stats.tuples_fetched} tuples fetched")
    assert result.rows == answer.rows

    # 9. Everything served so far, in one line of statistics.
    print(f"\nservice stats: {service.stats.snapshot()}")


if __name__ == "__main__":
    main()
