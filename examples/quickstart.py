"""Quickstart: Example 1.1 of the paper, end to end.

We build the Graph Search schema (persons, movies, likes, ratings), declare
the access schema A0 (each studio releases at most N0 movies per year; each
movie has one rating), cache the view V1 (movies liked by NASA folks), and
answer

    Q0(mid): movies released by Universal Studios in 2014, liked by people at
             NASA, and rated 5

through a bounded plan that reads the cached view plus at most 2·N0 tuples of
the underlying database — no matter how large the database is.

Run with:  python examples/quickstart.py
"""

from __future__ import annotations

from repro import BoundedEngine
from repro.core.conformance import conforms_to
from repro.workloads import graph_search as gs


def main() -> None:
    print("=== Bounded query rewriting using views: Example 1.1 ===\n")

    # 1. Generate an instance of R0 that satisfies the access schema A0.
    data = gs.generate(num_persons=20_000, num_movies=5_000, seed=42)
    database = data.database
    access = gs.access_schema(n0=data.n0)
    views = gs.views()
    print(f"database size |D| = {database.size:,} tuples "
          f"({database.relation_sizes()})")
    print(f"access schema A0 = {[str(c) for c in access]}")
    print(f"D |= A0 ? {database.satisfies(access)}\n")

    # 2. Set up the engine: views are materialised and cached, indices built.
    engine = BoundedEngine(database, access, views)
    print(f"cached views: { {v: len(rows) for v, rows in engine.view_cache.items()} }\n")

    # 3. Answer Q0 with a bounded plan.
    q0 = gs.query_q0()
    print(f"query {q0}\n")
    answer = engine.answer(q0)
    print(f"bounded plan used : {answer.used_bounded_plan}")
    print(f"answers           : {len(answer.rows)} movies")
    print(f"tuples fetched    : {answer.tuples_fetched} (<= 2*N0 = {2 * data.n0})")
    print(f"view tuples read  : {answer.view_tuples_scanned} (cached, no I/O)\n")

    # 4. Compare with a full-scan baseline ("conventional engine").
    baseline = engine.baseline(q0)
    assert baseline.rows == answer.rows
    ratio = baseline.tuples_scanned / max(answer.tuples_fetched, 1)
    print(f"full scan reads   : {baseline.tuples_scanned:,} tuples")
    print(f"access ratio      : {ratio:,.0f}x less data via the bounded plan\n")

    # 5. The hand-built plan of Figure 1 does the same job.
    plan = gs.figure1_plan()
    report = conforms_to(plan, access, database.schema, views, compute_bound=True)
    rows, stats = engine.execute_plan(plan)
    print("Figure 1 plan ξ0:")
    print(plan.pretty())
    print(f"\nconforms to A0: {report.conforms}; worst-case |Dξ| <= {report.fetch_bound}")
    print(f"executed: {len(rows)} answers, {stats.tuples_fetched} tuples fetched")
    assert rows == answer.rows


if __name__ == "__main__":
    main()
