"""Effective syntax for FO: topped queries and size-bounded views (Section 5).

VBRP is undecidable for FO, yet the paper shows how to make practical use of
bounded rewriting anyway: check — in PTIME — whether the query is *topped by
(R, V, A, M)*; if it is, generate a bounded plan directly.  This example runs
the machinery on the query q3 of Example 5.3:

    q3(z) = q4(z) ∧ ¬ ∃w R(z, w)
    q4(z) = ∃x∃y ( V3(x, y) ∧ x = 1 ∧ R(y, z) )
    V3(x, y) = R(y, y) ∧ T(x, y)          (a cached view)
    A2 = { R(A -> B, N), T(C -> E, N) }

and also demonstrates the size-bounded effective syntax of Theorem 5.2, which
serves as the bounded-output oracle for FO views.

Run with:  python examples/effective_syntax_fo.py
"""

from __future__ import annotations

import random

from repro import BoundedEngine
from repro.algebra import ConjunctiveQuery, RelationAtom, Variable, View, schema_from_spec
from repro.algebra.fo import atom, conj, eq, exists, neg
from repro.core.access import AccessConstraint, AccessSchema
from repro.core.size_bounded import is_size_bounded, make_size_bounded
from repro.core.topped import analyze_topped, is_topped, topped_plan
from repro.storage.instance import Database

X, Y, Z, W = Variable("x"), Variable("y"), Variable("z"), Variable("w")
N = 10


def build_setting():
    schema = schema_from_spec({"R": ("A", "B"), "T": ("C", "E")})
    access = AccessSchema(
        (AccessConstraint("R", ("A",), ("B",), N), AccessConstraint("T", ("C",), ("E",), N))
    )
    v3 = View(
        "V3",
        ConjunctiveQuery(
            head=(X, Y),
            atoms=(RelationAtom("R", (Y, Y)), RelationAtom("T", (X, Y))),
            name="V3_def",
        ),
    )
    return schema, access, v3


def build_database(schema, seed: int = 5, size: int = 2_000) -> Database:
    generator = random.Random(seed)
    db = Database(schema)
    per_key: dict[object, int] = {}

    def add(relation: str, key: object, row: tuple) -> None:
        if per_key.get((relation, key), 0) < N:
            per_key[(relation, key)] = per_key.get((relation, key), 0) + 1
            db.add(relation, row)

    # A handful of self-loops liked by key 1 (these feed V3 and q4).
    for node in range(N // 2):
        add("R", f"n{node}", (f"n{node}", f"n{node}"))
        add("T", 1, (1, f"n{node}"))
    while db.size < size:
        a = generator.randrange(400)
        add("R", a, (a, generator.randrange(400)))
        c = generator.randrange(2, 400)
        add("T", c, (c, generator.randrange(400)))
    return db


def main() -> None:
    print("=== Topped queries: Example 5.3 ===\n")
    schema, access, v3 = build_setting()
    views = [v3]

    q4 = exists([X, Y], conj(atom("V3", X, Y), eq(X, 1), atom("R", Y, Z)))
    q3 = conj(q4, neg(exists([W], atom("R", Z, W))))
    print(f"q3(z) = {q3}\n")

    from repro.algebra.views import ViewSet

    analysis = analyze_topped(q3, schema, ViewSet(views), access)
    print(f"covq(Qε, q3) = {analysis.covered}")
    print(f"size(Qε, q3) = {analysis.size}  (the paper derives 13 for this query)")
    print(f"topped by (R, V, A, M=40)? {is_topped(q3, schema, ViewSet(views), access, 40)}\n")

    plan = topped_plan(q3, (Z,), schema, ViewSet(views), access)
    print("generated bounded plan (cf. Figure 3):")
    print(plan.pretty())

    database = build_database(schema)
    assert database.satisfies(access)
    engine = BoundedEngine(database, access, views)
    answer = engine.answer_fo(q3, head=(Z,))
    print(f"\nexecuted on |D| = {database.size:,} tuples:")
    print(f"  bounded plan used : {answer.used_bounded_plan}")
    print(f"  answers           : {len(answer.rows)}")
    print(f"  tuples fetched    : {answer.tuples_fetched}")

    print("\n=== Size-bounded queries: Theorem 5.2 ===\n")
    inner = exists([Y], atom("R", X, Y))
    bounded_view_def = make_size_bounded(inner, head=(X,), bound=3)
    print("V(x) :=", bounded_view_def)
    print("is_size_bounded(V)?", is_size_bounded(bounded_view_def, head=(X,)))
    print(
        "\nSize-bounded FO views act as the PTIME bounded-output oracle when "
        "checking topped queries: their declared bound becomes a virtual "
        "access constraint on the cached view relation."
    )


if __name__ == "__main__":
    main()
