"""Deploying bounded plans on a SQL DBMS (Section 5.1, "practical use").

The paper's deployment story runs bounded plans on top of an existing DBMS by
translating the plan into SQL whose join order follows the plan exactly, with
fetch operations becoming index joins.  This example does precisely that with
SQLite as the stand-in DBMS:

1. generate the Graph Search data and load it into SQLite (tables + the
   indices realising the access constraints + materialised views);
2. translate the Figure 1 plan ξ0 into a CTE-per-node SQL statement;
3. run both the SQL statement and the library's own plan executor and check
   they agree with each other and with the full-scan evaluation of Q0.

Run with::

    python examples/sql_translation.py
"""

from __future__ import annotations

import sqlite3

from repro import BoundedEngine, plan_to_sql
from repro.algebra.evaluation import evaluate_cq
from repro.engine.sql import (
    cq_to_sql,
    create_index_statements,
    create_table_statements,
    insert_statements,
    materialize_view_statements,
)
from repro.workloads import graph_search as gs


def main() -> None:
    instance = gs.generate(num_persons=2_000, num_movies=800, seed=29)
    engine = BoundedEngine(instance.database, gs.access_schema(), gs.views())

    # --- load SQLite ------------------------------------------------------ #
    connection = sqlite3.connect(":memory:")
    for statement in create_table_statements(gs.schema()):
        connection.execute(statement)
    for statement in create_index_statements(gs.access_schema(), gs.schema()):
        connection.execute(statement)
    for statement, rows in insert_statements(instance.database):
        connection.executemany(statement, rows)
    for create, insert, rows in materialize_view_statements(gs.views(), engine.view_cache):
        connection.execute(create)
        if rows:
            connection.executemany(insert, rows)
    connection.commit()
    print(f"loaded {instance.database.size} tuples and "
          f"{engine.view_cache_size} materialised view rows into SQLite")

    # --- translate and run the Figure 1 plan ------------------------------ #
    plan = gs.figure1_plan()
    translation = plan_to_sql(plan, gs.schema(), gs.views(), gs.access_schema())
    print("\nFigure 1 plan ξ0 as SQL:\n")
    print(translation.text)
    print("\nfetches served by:", "; ".join(translation.fetch_comments))

    sql_rows = {tuple(row) for row in connection.execute(translation.text)}
    executed_rows, stats = engine.execute_plan(plan)
    baseline_rows = evaluate_cq(gs.query_q0(), instance.database.facts)
    assert sql_rows == set(executed_rows) == baseline_rows
    print(f"\nSQL, plan executor and full scan agree on {len(sql_rows)} answers "
          f"(plan fetched {stats.tuples_fetched} tuples)")

    # --- the full-scan SQL baseline, for contrast -------------------------- #
    baseline_sql = cq_to_sql(gs.query_q0(), gs.schema())
    baseline_from_sql = {tuple(row) for row in connection.execute(baseline_sql)}
    assert baseline_from_sql == baseline_rows
    print("full-scan SQL baseline agrees as well")


if __name__ == "__main__":
    main()
