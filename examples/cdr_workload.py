"""CDR workload: which fraction of an industrial-style workload becomes bounded.

The journal version of the paper reports that bounded query rewriting using
views improved more than 90% of the queries of an industrial CDR (call detail
record) workload by 25x up to 5 orders of magnitude.  The proprietary data is
unavailable, so this example runs the synthetic CDR workload shipped with the
library: it discovers access constraints from the data, materialises the
views, answers the workload and prints the distribution of access ratios
(tuples scanned by a full scan / tuples fetched by the bounded plan).

Run with:  python examples/cdr_workload.py
"""

from __future__ import annotations

from repro import BoundedEngine
from repro.storage.statistics import discover_access_constraints
from repro.workloads import cdr


def main() -> None:
    print("=== Synthetic CDR workload ===\n")
    instance = cdr.generate(num_customers=2_000, num_days=7, seed=23)
    database = instance.database
    print(f"database: {database.relation_sizes()}  (|D| = {database.size:,})")

    # Constraints can be declared (domain knowledge) or mined from the data.
    declared = cdr.access_schema()
    mined = discover_access_constraints(database, max_x_size=1, max_bound=50)
    print(f"declared access constraints : {len(declared)}")
    print(f"mined access constraints    : {len(mined)} (X of size <= 1, N <= 50)\n")

    engine = BoundedEngine(database, declared, cdr.views())
    queries = cdr.workload(instance, count=18, seed=31)

    improved = []
    unbounded = []
    for query in queries:
        answer = engine.answer(query)
        baseline = engine.baseline(query)
        assert answer.rows == baseline.rows
        if answer.used_bounded_plan:
            ratio = baseline.tuples_scanned / max(answer.tuples_fetched, 1)
            improved.append((query.name, ratio, answer.tuples_fetched, baseline.tuples_scanned))
        else:
            unbounded.append(query.name)

    print(f"{'query':<32} {'fetched':>8} {'scanned':>10} {'ratio':>10}")
    print("-" * 64)
    for name, ratio, fetched, scanned in improved:
        print(f"{name:<32} {fetched:>8} {scanned:>10,} {ratio:>9.0f}x")
    for name in unbounded:
        print(f"{name:<32} {'—':>8} {'full scan':>10} {'1':>9}x")

    fraction = len(improved) / len(queries)
    ratios = sorted(r for _, r, _, _ in improved)
    print("\nsummary:")
    print(f"  queries improved by a bounded rewriting : {len(improved)}/{len(queries)} "
          f"({fraction:.0%})")
    if ratios:
        print(f"  access-ratio range                      : "
              f"{ratios[0]:.0f}x .. {ratios[-1]:.0f}x (median {ratios[len(ratios)//2]:.0f}x)")
    print(
        "\nAs in the paper, the overwhelming majority of the workload is served "
        "from cached views plus constant-size fetches; only the whole-table "
        "analytics queries fall back to full scans."
    )


if __name__ == "__main__":
    main()
