"""Setuptools entry point.

The project metadata lives in ``pyproject.toml``; this file exists so that
``pip install -e .`` works on minimal environments (no ``wheel`` package, no
network for build isolation) via the legacy setuptools editable install.
"""

from setuptools import setup

setup()
