#!/usr/bin/env python3
"""Kernel-discipline linter (CI job ``lint``).

The repository's accounting and layering guarantees are easy to break
silently — an operator that fetches tuples without charging the
:class:`~repro.exec.iometer.IOMeter` skews every ``Dξ`` measurement, and a
module reaching into storage internals bypasses the observer protocol the
maintenance kernel depends on.  This linter enforces three rules by AST
inspection (no imports of the checked code, so it runs on any tree):

``kernel.unmetered-fetch``
    In ``src/repro/exec/operators.py``, ``src/repro/exec/codegen.py`` and
    ``src/repro/exec/delta_compiler.py``, every function that touches a
    ``.fetch`` attribute (the storage-boundary probe) must also reference
    ``record_fetch`` — tuples crossing the boundary are charged to the meter
    in the same function that pulls them.  For the codegen tiers this covers
    the *generated* closures too: they are nested functions of the compiling
    function, and ``ast.walk`` descends into them.

``kernel.codegen-storage-import``
    ``src/repro/exec/codegen.py`` and ``src/repro/exec/delta_compiler.py``
    may not import ``repro.storage``: compiled closures only reach base data
    through the metered fetch protocol (``FetchProviderLike``) and late-bound
    lookup resolvers, never through storage classes whose internals would let
    a closure bypass the accounting boundary.

``kernel.storage-internals``
    No module outside ``src/repro/storage`` may access ``._tuples`` (the
    raw backing set of :class:`~repro.storage.instance.Relation`); mutating
    it directly would bypass the relation's observer/statistics protocol.

``kernel.shard-storage-import``
    The sharded-serving modules read base data through pinned snapshots
    only: ``src/repro/engine/service/sharding.py`` may import from
    ``repro.storage`` nothing but ``repro.storage.snapshots`` (immutable
    versions), and ``src/repro/analysis/sharding.py`` (the static shard-set
    derivation) may not import ``repro.storage`` at all.  A shard worker
    holding ``Relation``/``Database``/live-index handles could read torn
    state mid-transaction or mutate shared storage without the observer
    protocol noticing.

``kernel.histogram-import``
    No module outside ``src/repro/storage`` may import
    ``repro.storage.histograms``: histograms and HLL sketches are reached
    only through the statistics API
    (``Database.statistics()`` / ``TableStatistics``), which owns their
    delta maintenance and staleness-triggered rebuilds.  A consumer holding
    histogram objects directly could read half-rebuilt buckets or cost
    plans against summaries the observer protocol no longer maintains.

``kernel.plan-store-exec-import``
    ``src/repro/engine/service/plan_store.py`` may not import ``repro.exec``
    (nor the in-memory plan cache): the persistent store holds plain data
    records only.  Compiled closures, meters and runtime state are rebuilt
    by the service after load — pickling execution-layer objects would tie
    the on-disk format to runtime internals.

``kernel.deprecated-import``
    No module outside a small allowlist may import the deprecated
    ``BoundedEngine``/``MaintainedEngine`` shims (or their modules); new
    code goes through ``QueryService``.

Usage::

    python tools/lint_kernel.py [--root PATH]

Exits 1 and prints one ``path:line: [code] message`` per violation.
"""

from __future__ import annotations

import argparse
import ast
import sys
from dataclasses import dataclass
from pathlib import Path
from typing import Iterator

OPERATORS_FILE = Path("src/repro/exec/operators.py")
CODEGEN_FILE = Path("src/repro/exec/codegen.py")
DELTA_COMPILER_FILE = Path("src/repro/exec/delta_compiler.py")
METERED_FETCH_FILES = frozenset({OPERATORS_FILE, CODEGEN_FILE, DELTA_COMPILER_FILE})
#: Modules that emit (or are) generated closures: they may only reach base
#: data through the metered fetch protocol, never via storage classes.
CODEGEN_FILES = frozenset({CODEGEN_FILE, DELTA_COMPILER_FILE})
STORAGE_DIR = Path("src/repro/storage")
#: Shard workers read via pinned snapshots only: which repro.storage
#: submodules each sharded-serving module may import (empty = none).
SHARD_SERVING_FILES: dict[Path, frozenset[str]] = {
    Path("src/repro/engine/service/sharding.py"): frozenset(
        {"repro.storage.snapshots"}
    ),
    Path("src/repro/analysis/sharding.py"): frozenset(),
}

#: The persistent plan store holds plain data records; execution-layer
#: modules it may never import (closures/meters are rebuilt after load).
PLAN_STORE_FILE = Path("src/repro/engine/service/plan_store.py")
PLAN_STORE_FORBIDDEN = ("repro.exec", "repro.engine.service.cache")

DEPRECATED_NAMES = frozenset({"BoundedEngine", "MaintainedEngine"})
DEPRECATED_MODULES = frozenset(
    {"repro.engine.session", "repro.engine.maintenance"}
)
# The shims themselves, the packages re-exporting them for compatibility,
# and nothing else.
DEPRECATED_IMPORT_ALLOWLIST = frozenset(
    {
        Path("src/repro/__init__.py"),
        Path("src/repro/engine/__init__.py"),
        Path("src/repro/engine/session.py"),
        Path("src/repro/engine/maintenance.py"),
    }
)


@dataclass(frozen=True)
class Violation:
    path: Path
    line: int
    code: str
    message: str

    def __str__(self) -> str:
        return f"{self.path}:{self.line}: [{self.code}] {self.message}"


def _attribute_names(node: ast.AST) -> Iterator[tuple[str, int]]:
    for sub in ast.walk(node):
        if isinstance(sub, ast.Attribute):
            yield sub.attr, sub.lineno
        elif isinstance(sub, ast.Name):
            yield sub.id, sub.lineno


def check_metered_fetches(path: Path, tree: ast.Module) -> list[Violation]:
    """Every function touching ``.fetch`` must also reference the meter."""
    violations: list[Violation] = []
    for node in ast.walk(tree):
        if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        names = dict(_attribute_names(node))
        if "fetch" in names and "record_fetch" not in names:
            violations.append(
                Violation(
                    path,
                    names["fetch"],
                    "kernel.unmetered-fetch",
                    f"function {node.name!r} probes '.fetch' without charging "
                    "the IOMeter ('record_fetch'); every tuple crossing the "
                    "storage boundary must be metered in the same function",
                )
            )
    return violations


def check_storage_internals(path: Path, tree: ast.Module) -> list[Violation]:
    """``._tuples`` is storage-private; nobody else may touch it."""
    violations: list[Violation] = []
    for node in ast.walk(tree):
        if isinstance(node, ast.Attribute) and node.attr == "_tuples":
            violations.append(
                Violation(
                    path,
                    node.lineno,
                    "kernel.storage-internals",
                    "access to 'Relation._tuples' outside repro.storage "
                    "bypasses the relation's observer and statistics "
                    "protocol; use the public Relation API",
                )
            )
    return violations


def check_codegen_storage_imports(path: Path, tree: ast.Module) -> list[Violation]:
    """The codegen module must stay behind the metered fetch protocol."""
    parts = path.parts
    package_parts: tuple[str, ...] = ()
    if "src" in parts:
        start = parts.index("src") + 1
        package_parts = tuple(parts[start:-1])
    violations: list[Violation] = []

    def report(line: int, module: str) -> None:
        violations.append(
            Violation(
                path,
                line,
                "kernel.codegen-storage-import",
                f"codegen module imports {module!r}; generated closures may "
                "only touch base data through the metered fetch protocol "
                "(FetchProviderLike), never through storage classes",
            )
        )

    for node in ast.walk(tree):
        if isinstance(node, ast.ImportFrom):
            module = _imported_module(node, package_parts)
            if module == "repro.storage" or module.startswith("repro.storage."):
                report(node.lineno, module)
        elif isinstance(node, ast.Import):
            for alias in node.names:
                if alias.name == "repro.storage" or alias.name.startswith(
                    "repro.storage."
                ):
                    report(node.lineno, alias.name)
    return violations


def check_shard_storage_imports(
    path: Path, tree: ast.Module, allowed: frozenset[str]
) -> list[Violation]:
    """Sharded serving reads base data through pinned snapshots only."""
    parts = path.parts
    package_parts: tuple[str, ...] = ()
    if "src" in parts:
        start = parts.index("src") + 1
        package_parts = tuple(parts[start:-1])
    violations: list[Violation] = []

    def report(line: int, module: str) -> None:
        permitted = ", ".join(sorted(allowed)) or "nothing from repro.storage"
        violations.append(
            Violation(
                path,
                line,
                "kernel.shard-storage-import",
                f"sharded-serving module imports {module!r}; shard workers "
                "read through pinned immutable snapshots only (allowed: "
                f"{permitted}) — live Relation/Database/index handles could "
                "see torn state or mutate shared storage",
            )
        )

    def is_storage(module: str) -> bool:
        return module == "repro.storage" or module.startswith("repro.storage.")

    for node in ast.walk(tree):
        if isinstance(node, ast.ImportFrom):
            module = _imported_module(node, package_parts)
            if is_storage(module) and module not in allowed:
                report(node.lineno, module)
        elif isinstance(node, ast.Import):
            for alias in node.names:
                if is_storage(alias.name) and alias.name not in allowed:
                    report(node.lineno, alias.name)
    return violations


def check_histogram_imports(path: Path, tree: ast.Module) -> list[Violation]:
    """Histograms are reached only through the statistics API."""
    parts = path.parts
    package_parts: tuple[str, ...] = ()
    if "src" in parts:
        start = parts.index("src") + 1
        package_parts = tuple(parts[start:-1])
    violations: list[Violation] = []

    def report(line: int, module: str) -> None:
        violations.append(
            Violation(
                path,
                line,
                "kernel.histogram-import",
                f"module imports {module!r}; histograms and sketches are "
                "storage-internal — read them through the statistics API "
                "(Database.statistics() / TableStatistics), which owns "
                "their delta maintenance and rebuild scheduling",
            )
        )

    target = "repro.storage.histograms"
    for node in ast.walk(tree):
        if isinstance(node, ast.ImportFrom):
            module = _imported_module(node, package_parts)
            if module == target or module.startswith(target + "."):
                report(node.lineno, module)
            elif module == "repro.storage":
                # ``from repro.storage import histograms`` binds the
                # submodule just the same.
                for alias in node.names:
                    if alias.name == "histograms":
                        report(node.lineno, f"{module}.{alias.name}")
        elif isinstance(node, ast.Import):
            for alias in node.names:
                if alias.name == target or alias.name.startswith(target + "."):
                    report(node.lineno, alias.name)
    return violations


def check_plan_store_imports(path: Path, tree: ast.Module) -> list[Violation]:
    """The persistent plan store stays a plain-data module."""
    parts = path.parts
    package_parts: tuple[str, ...] = ()
    if "src" in parts:
        start = parts.index("src") + 1
        package_parts = tuple(parts[start:-1])
    violations: list[Violation] = []

    def report(line: int, module: str) -> None:
        violations.append(
            Violation(
                path,
                line,
                "kernel.plan-store-exec-import",
                f"plan-store module imports {module!r}; the persistent store "
                "holds plain data records only — compiled closures and "
                "runtime caches are rebuilt by the service after load",
            )
        )

    def is_forbidden(module: str) -> bool:
        return any(
            module == prefix or module.startswith(prefix + ".")
            for prefix in PLAN_STORE_FORBIDDEN
        )

    for node in ast.walk(tree):
        if isinstance(node, ast.ImportFrom):
            module = _imported_module(node, package_parts)
            if is_forbidden(module):
                report(node.lineno, module)
        elif isinstance(node, ast.Import):
            for alias in node.names:
                if is_forbidden(alias.name):
                    report(node.lineno, alias.name)
    return violations


def _imported_module(node: ast.ImportFrom, package_parts: tuple[str, ...]) -> str:
    """Absolute dotted module an ``ImportFrom`` resolves to (best effort)."""
    module = node.module or ""
    if node.level == 0:
        return module
    base = package_parts[: len(package_parts) - (node.level - 1)]
    return ".".join([*base, module] if module else base)


def check_deprecated_imports(path: Path, tree: ast.Module) -> list[Violation]:
    """No new imports of the deprecated engine shims."""
    violations: list[Violation] = []
    # Package the file belongs to, as dotted parts relative to src/.
    parts = path.parts
    package_parts: tuple[str, ...] = ()
    if "src" in parts:
        start = parts.index("src") + 1
        package_parts = tuple(parts[start:-1])

    def report(line: int, what: str) -> None:
        violations.append(
            Violation(
                path,
                line,
                "kernel.deprecated-import",
                f"import of deprecated {what}; new code should use "
                "repro.QueryService directly",
            )
        )

    for node in ast.walk(tree):
        if isinstance(node, ast.ImportFrom):
            module = _imported_module(node, package_parts)
            if module in DEPRECATED_MODULES:
                report(node.lineno, f"module {module!r}")
                continue
            for alias in node.names:
                if alias.name in DEPRECATED_NAMES:
                    report(node.lineno, f"shim {alias.name!r}")
        elif isinstance(node, ast.Import):
            for alias in node.names:
                if alias.name in DEPRECATED_MODULES:
                    report(node.lineno, f"module {alias.name!r}")
    return violations


def lint_file(path: Path, root: Path) -> list[Violation]:
    """All violations in one file (paths are reported relative to ``root``)."""
    relative = path.relative_to(root)
    tree = ast.parse(path.read_text(encoding="utf-8"), filename=str(path))
    violations: list[Violation] = []
    if relative in METERED_FETCH_FILES:
        violations += check_metered_fetches(relative, tree)
    if relative in CODEGEN_FILES:
        violations += check_codegen_storage_imports(relative, tree)
    if relative in SHARD_SERVING_FILES:
        violations += check_shard_storage_imports(
            relative, tree, SHARD_SERVING_FILES[relative]
        )
    if relative == PLAN_STORE_FILE:
        violations += check_plan_store_imports(relative, tree)
    if STORAGE_DIR not in relative.parents:
        violations += check_storage_internals(relative, tree)
        violations += check_histogram_imports(relative, tree)
    if relative not in DEPRECATED_IMPORT_ALLOWLIST:
        violations += check_deprecated_imports(relative, tree)
    return violations


def lint_tree(root: Path) -> list[Violation]:
    """Lint every library module under ``root / src / repro``."""
    violations: list[Violation] = []
    for path in sorted((root / "src" / "repro").rglob("*.py")):
        violations += lint_file(path, root)
    return violations


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--root",
        type=Path,
        default=Path(__file__).resolve().parent.parent,
        help="repository root (defaults to this script's grandparent)",
    )
    options = parser.parse_args(argv)
    violations = lint_tree(options.root.resolve())
    for violation in violations:
        print(violation)
    if violations:
        print(f"{len(violations)} kernel-discipline violation(s)")
        return 1
    print("kernel discipline ok")
    return 0


if __name__ == "__main__":
    sys.exit(main())
