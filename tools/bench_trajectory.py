#!/usr/bin/env python3
"""Commit the perf trajectory: measured numbers live in the repo, CI gates on them.

Three workloads are measured and their results written as ``BENCH_*.json``
at the repository root — *committed* files, so every PR that moves a number
moves it visibly in the diff:

``BENCH_graph_search.json``
    Bounded Q0 through the service on both execution tiers (interpreted
    operator tree vs. compiled closure), with the rows/``Dξ`` identity that
    makes the comparison meaningful.

``BENCH_service.json``
    Repeated-query throughput of a warmed service (12-query mix, pure plan
    cache hits, all answered by the compiled tier).

``BENCH_updates.json``
    Update throughput of ``QueryService.apply`` over mixed insert/delete
    batches, with a full view-consistency audit afterwards.

``BENCH_concurrency.json``
    Snapshot-isolated sharded serving (``shards=4``,
    ``retain_plans_on_write=True``) vs. the single-database baseline on a
    mixed read/write workload: the invariants pin rows, ``Dξ``, Q0's
    routed shard set and the shard-pruning statistics; the timings record
    ``query_many`` throughput under interleaved writes for both services
    and their speedup.

``BENCH_optimizer.json``
    Cost-based optimizer v2 on the skewed social-feed workload: the
    invariants pin rows and per-planner ``Dξ`` (greedy vs. DP ordering),
    the DP strategy, the adaptive re-plan tally of the growth scenario and
    the plan-store warm-restart behaviour (first post-restart execution on
    the compiled tier); the timings record warm per-query latency for both
    planners and the DP speedup.

Two modes::

    python tools/bench_trajectory.py            # measure, write the JSONs
    python tools/bench_trajectory.py --check    # re-measure, gate vs. committed

``--check`` (the CI gate) distinguishes two kinds of numbers:

* **Invariants** — row counts, ``Dξ`` (``tuples_fetched``), execution-tier
  tallies, cache hit rate, applied-update counts, view consistency.  These
  are machine-independent and must match the committed file **exactly**.
* **Timings** — throughput and latency depend on the machine, so the gate
  is deliberately loose: it fails only on catastrophic regressions (a tier
  speedup collapsing below its floor, or throughput falling to less than
  ``TIMING_TOLERANCE`` of the committed number), not on runner noise.
  Fresh timings are recorded by re-running without ``--check`` and
  committing the updated files.

Standard library only (plus ``repro`` itself) — no pytest, no plugins.
"""

from __future__ import annotations

import argparse
import json
import statistics
import sys
import time
from pathlib import Path
from typing import Callable

ROOT = Path(__file__).resolve().parent.parent
SRC = ROOT / "src"
if str(SRC) not in sys.path:
    sys.path.insert(0, str(SRC))

from repro.algebra.evaluation import evaluate_ucq  # noqa: E402
from repro.engine.service import QueryService  # noqa: E402
from repro.storage.updates import (  # noqa: E402
    Insertion,
    UpdateBatch,
    random_update_batch,
)
from repro.workloads import graph_search as gs  # noqa: E402
from repro.workloads import skewed  # noqa: E402

#: Committed-vs-measured throughput may differ by machine; only a collapse
#: below this fraction of the committed number fails the gate.
TIMING_TOLERANCE = 0.1

#: The compiled tier must stay at least this much faster than interpreted
#: on bounded Q0, regardless of what the committed file says.
SPEEDUP_FLOOR = 1.5

#: DP join ordering must stay at least this much faster than the greedy
#: builder on the skewed workload (the optimizer-v2 acceptance bar).
OPTIMIZER_SPEEDUP_FLOOR = 2.0

FILES = {
    "graph_search": ROOT / "BENCH_graph_search.json",
    "service": ROOT / "BENCH_service.json",
    "updates": ROOT / "BENCH_updates.json",
    "concurrency": ROOT / "BENCH_concurrency.json",
    "optimizer": ROOT / "BENCH_optimizer.json",
}

INSTANCE = {"num_persons": 1000, "num_movies": 500, "seed": 11}


def _service(instance, **kwargs) -> QueryService:
    return QueryService(
        instance.database, gs.access_schema(n0=instance.n0), gs.views(), **kwargs
    )


def _median_us(run: Callable[[], object], rounds: int, warmup: int = 10) -> float:
    for _ in range(warmup):
        run()
    samples = []
    for _ in range(rounds):
        start = time.perf_counter()
        run()
        samples.append(time.perf_counter() - start)
    return statistics.median(samples) * 1e6


def _query_mix() -> list:
    by_studio = "Q(mid) :- movie(mid, t, 'Universal', '2014'), rating(mid, 5)"
    by_year = "Q(mid) :- movie(mid, t, 'Universal', '2013'), rating(mid, 4)"
    return [gs.query_q0(), by_studio, by_year] * 4


def measure_graph_search() -> dict:
    instance = gs.generate(**INSTANCE)
    interpreted = _service(instance, codegen=False)
    compiled = _service(instance, codegen=True, codegen_warmup=0)
    q0 = gs.query_q0()
    answer_i = interpreted.query(q0)
    answer_c = compiled.query(q0)
    if answer_i.rows != answer_c.rows:
        raise AssertionError("tiers disagree on Q0 rows")
    if answer_i.tuples_fetched != answer_c.tuples_fetched:
        raise AssertionError("tiers disagree on Dξ for Q0")
    interpreted_us = _median_us(lambda: interpreted.query(q0), rounds=150)
    compiled_us = _median_us(lambda: compiled.query(q0), rounds=150)
    return {
        "workload": "graph_search_q0_tiers",
        "instance": INSTANCE,
        "invariants": {
            "rows": len(answer_c.rows),
            "tuples_fetched": answer_c.tuples_fetched,
            "interpreted_tier": answer_i.execution_tier,
            "compiled_tier": answer_c.execution_tier,
        },
        "timings": {
            "interpreted_us": round(interpreted_us, 1),
            "compiled_us": round(compiled_us, 1),
            "speedup": round(interpreted_us / compiled_us, 2),
        },
        "floors": {"min_speedup": SPEEDUP_FLOOR},
    }


def measure_service() -> dict:
    instance = gs.generate(**INSTANCE)
    service = _service(instance, codegen=True, codegen_warmup=0)
    mix = _query_mix()
    rounds = 20
    warm = service.query_many(mix, max_workers=1)
    service.stats.reset()
    start = time.perf_counter()
    for _ in range(rounds):
        answers = service.query_many(mix, max_workers=1)
    elapsed = time.perf_counter() - start
    if [a.rows for a in answers] != [a.rows for a in warm]:
        raise AssertionError("warmed service answers drifted across rounds")
    snapshot = service.stats.snapshot()
    return {
        "workload": "service_throughput",
        "instance": INSTANCE,
        "invariants": {
            "queries_per_round": len(mix),
            "rows_total_per_round": sum(len(a.rows) for a in answers),
            "cache_hit_rate": round(snapshot.cache_hit_rate, 3),
            "bounded_rate": round(snapshot.bounded_rate, 3),
            "tier_uses": dict(sorted(snapshot.tier_uses.items())),
        },
        "timings": {
            "queries_per_sec": round(len(mix) * rounds / elapsed, 1),
        },
    }


def measure_updates() -> dict:
    instance = gs.generate(**INSTANCE)
    service = _service(instance, codegen=True, codegen_warmup=0)
    service.query(gs.query_q0())  # a live cached plan to maintain through writes
    batch_size, batches = 1000, 5
    applied = inserted = deleted = 0
    elapsed = 0.0
    tier_runs: dict[str, int] = {}
    for index in range(batches):
        batch = random_update_batch(
            instance.database, size=batch_size, seed=100 + index
        )
        start = time.perf_counter()
        report = service.apply(batch)
        elapsed += time.perf_counter() - start
        applied += report.applied
        inserted += report.inserted
        deleted += report.deleted
        for tier, count in report.stats.tier_runs.items():
            tier_runs[tier] = tier_runs.get(tier, 0) + count
    recomputed = {
        view.name: frozenset(evaluate_ucq(view.as_ucq(), instance.database))
        for view in gs.views()
    }
    consistent = all(
        frozenset(service.view_cache[name]) == rows
        for name, rows in recomputed.items()
    )
    return {
        "workload": "update_throughput",
        "instance": INSTANCE,
        "invariants": {
            "batch_size": batch_size,
            "batches": batches,
            "applied": applied,
            "inserted": inserted,
            "deleted": deleted,
            "views_consistent_after": consistent,
            # Every touched view must keep running on the compiled
            # maintenance tier (warmup=0): a fall-back to interpreted rules
            # shows up here and fails --check.
            "maintenance_tiers": dict(sorted(tier_runs.items())),
        },
        "timings": {
            "updates_per_sec": round(batch_size * batches / elapsed, 1),
        },
    }


def measure_concurrency() -> dict:
    instance = gs.generate(**INSTANCE)
    mix = _query_mix()
    rounds = 5

    # Deterministic phase: the sharded service must agree with the baseline
    # bit for bit, and Q0 must route to exactly one of the four partitions.
    baseline = _service(instance, shards=None, codegen=True, codegen_warmup=0)
    sharded = QueryService(
        instance.database.copy(),
        gs.access_schema(n0=instance.n0),
        gs.views(),
        shards=4,
        retain_plans_on_write=True,
        codegen=True,
        codegen_warmup=0,
    )
    expected = [baseline.query(q) for q in mix]
    answers = [sharded.query(q) for q in mix]
    if [a.rows for a in answers] != [a.rows for a in expected]:
        raise AssertionError("sharded service disagrees with baseline on rows")
    if [a.tuples_fetched for a in answers] != [a.tuples_fetched for a in expected]:
        raise AssertionError("sharded service disagrees with baseline on Dξ")
    q0_explained = sharded.explain(gs.query_q0())
    q0_answer = sharded.query(gs.query_q0())
    stats = sharded.stats.snapshot()

    # Timing phase: interleaved write batches and query_many bursts.  The
    # writes are state-neutral per round (a batch and its inverse).
    updates = []
    for i in range(6):
        updates.append(Insertion("movie", (f"m_cc_{i}", f"cc{i}", "Universal", "2014")))
        updates.append(Insertion("rating", (f"m_cc_{i}", 5)))
    batch = UpdateBatch(updates)
    inverse = batch.inverted()

    def throughput(service: QueryService) -> float:
        service.apply(batch)  # warm the delta kernels
        service.apply(inverse)
        service.query_many(mix, max_workers=4)
        start = time.perf_counter()
        for _ in range(rounds):
            service.apply(batch)
            service.query_many(mix, max_workers=4)
            service.apply(inverse)
            service.query_many(mix, max_workers=4)
        elapsed = time.perf_counter() - start
        return 2 * len(mix) * rounds / elapsed

    sharded_qps = throughput(sharded)
    baseline_qps = throughput(baseline)
    return {
        "workload": "concurrent_sharded_serving",
        "instance": INSTANCE,
        "invariants": {
            "queries_per_round": 2 * len(mix),
            "rows_total_per_mix": sum(len(a.rows) for a in answers),
            "tuples_fetched_per_mix": sum(a.tuples_fetched for a in answers),
            "q0_single_shard_routable": q0_explained.shard_set.single_shard,
            "q0_shards_touched": list(q0_answer.shards_touched),
            "shards_total": q0_answer.shards_total,
            "single_shard_queries": stats.single_shard_queries,
            "fanout_queries": stats.fanout_queries,
            "shards_pruned": stats.shards_pruned,
        },
        "timings": {
            "sharded_queries_per_sec": round(sharded_qps, 1),
            "baseline_queries_per_sec": round(baseline_qps, 1),
            "speedup": round(sharded_qps / baseline_qps, 2),
        },
    }


def _measure_replan_scenario() -> int:
    """The deterministic adaptive re-planning scenario: grow past 10x.

    A two-atom join is planned under tiny statistics; the data then grows
    200x under ``retain_plans_on_write`` (so the mis-estimated plan stays
    cached), and the next warm execution's actual Dξ overshoots the
    estimate past the re-plan threshold.  Returns the replan tally (1: the
    corrected model converges in a single swap).
    """
    from repro.algebra.schema import schema_from_spec
    from repro.core.access import AccessConstraint, AccessSchema
    from repro.storage.instance import Database

    schema = schema_from_spec({"r": ("a", "b"), "s": ("b", "c")})
    access = AccessSchema(
        (
            AccessConstraint("r", ("a",), ("b",), 5000),
            AccessConstraint("s", ("b",), ("c",), 5000),
        )
    )
    database = Database(schema)
    database.add_many("r", [("k", f"b{i}") for i in range(10)])
    database.add_many("s", [(f"b{i}", f"c{i}") for i in range(10)])
    service = QueryService(
        database,
        access,
        planners=("cost", "topped"),
        retain_plans_on_write=True,
        codegen=False,
    )
    query = "Q(b, c) :- r('k', b), s(b, c)"
    before = service.query(query)
    service.apply(UpdateBatch([Insertion("r", ("k", f"B{i}")) for i in range(2000)]))
    service.apply(UpdateBatch([Insertion("s", (f"B{i}", f"C{i}")) for i in range(2000)]))
    replanned = service.query(query)
    settled = service.query(query)
    if before.rows - replanned.rows or replanned.rows != settled.rows:
        raise AssertionError("adaptive re-planning changed the answers")
    replans = service.stats.snapshot().replans
    service.close()
    return replans


def measure_optimizer() -> dict:
    import tempfile

    instance = skewed.generate()
    access = skewed.access_schema()
    query = skewed.query_feed()

    def planner_service(planners, **kwargs) -> QueryService:
        return QueryService(
            instance.database, access, skewed.views(), planners=planners, **kwargs
        )

    greedy = planner_service(("heuristic", "topped"), codegen=True, codegen_warmup=0)
    cost = planner_service(("cost", "topped"), codegen=True, codegen_warmup=0)
    greedy_answer = greedy.query(query)
    cost_answer = cost.query(query)
    if greedy_answer.rows != cost_answer.rows:
        raise AssertionError("greedy and DP orderings disagree on rows")
    strategy = cost.explain(query).order_strategy
    greedy_us = _median_us(lambda: greedy.query(query), rounds=30, warmup=3)
    cost_us = _median_us(lambda: cost.query(query), rounds=30, warmup=3)
    greedy.close()
    cost.close()

    replans = _measure_replan_scenario()

    # Warm restart through the persistent plan store: the first execution
    # of the restarted service must already run the compiled closure.
    with tempfile.TemporaryDirectory() as tmp:
        store_path = str(Path(tmp) / "plans.bin")
        first = planner_service(
            ("cost", "topped"), plan_store=store_path, codegen_warmup=0
        )
        first.query(query)
        first.close()
        restarted = planner_service(
            ("cost", "topped"), plan_store=store_path, codegen_warmup=0
        )
        restart_answer = restarted.query(query)
        store_hits = restarted.stats.snapshot().plan_store_hits
        restarted.close()
    if restart_answer.rows != cost_answer.rows:
        raise AssertionError("plan-store restart changed the answers")

    return {
        "workload": "optimizer_dp_vs_greedy",
        "instance": {"workload": "skewed", "seed": 11},
        "invariants": {
            "rows": len(cost_answer.rows),
            "greedy_tuples_fetched": greedy_answer.tuples_fetched,
            "dp_tuples_fetched": cost_answer.tuples_fetched,
            "order_strategy": strategy,
            "replans": replans,
            "plan_store_hits": store_hits,
            "restart_tier": restart_answer.execution_tier,
            "restart_cache_hit": restart_answer.cache_hit,
        },
        "timings": {
            "greedy_us": round(greedy_us, 1),
            "dp_us": round(cost_us, 1),
            "speedup": round(greedy_us / cost_us, 2),
        },
        "floors": {"min_speedup": OPTIMIZER_SPEEDUP_FLOOR},
    }


MEASURES: dict[str, Callable[[], dict]] = {
    "graph_search": measure_graph_search,
    "service": measure_service,
    "updates": measure_updates,
    "concurrency": measure_concurrency,
    "optimizer": measure_optimizer,
}


def _check_one(name: str, committed: dict, measured: dict) -> list[str]:
    problems = []
    if committed.get("invariants") != measured["invariants"]:
        problems.append(
            f"{name}: invariants drifted\n"
            f"  committed: {json.dumps(committed.get('invariants'), sort_keys=True)}\n"
            f"  measured:  {json.dumps(measured['invariants'], sort_keys=True)}"
        )
    if name == "graph_search":
        committed_speedup = committed.get("timings", {}).get("speedup", 0.0)
        floor = max(SPEEDUP_FLOOR, committed_speedup * 0.3)
        measured_speedup = measured["timings"]["speedup"]
        if measured_speedup < floor:
            problems.append(
                f"{name}: compiled-tier speedup collapsed to "
                f"{measured_speedup}x (gate {floor:.2f}x, committed "
                f"{committed_speedup}x)"
            )
    elif name == "optimizer":
        committed_speedup = committed.get("timings", {}).get("speedup", 0.0)
        floor = max(OPTIMIZER_SPEEDUP_FLOOR, committed_speedup * 0.3)
        measured_speedup = measured["timings"]["speedup"]
        if measured_speedup < floor:
            problems.append(
                f"{name}: DP-vs-greedy speedup collapsed to "
                f"{measured_speedup}x (gate {floor:.2f}x, committed "
                f"{committed_speedup}x)"
            )
    else:
        key = {
            "service": "queries_per_sec",
            "updates": "updates_per_sec",
            "concurrency": "sharded_queries_per_sec",
        }[name]
        committed_rate = committed.get("timings", {}).get(key, 0.0)
        measured_rate = measured["timings"][key]
        if measured_rate < committed_rate * TIMING_TOLERANCE:
            problems.append(
                f"{name}: {key} collapsed to {measured_rate} "
                f"(committed {committed_rate}, gate "
                f"{committed_rate * TIMING_TOLERANCE:.1f})"
            )
    return problems


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--check",
        action="store_true",
        help="re-measure and gate against the committed BENCH_*.json "
        "(exact on invariants, catastrophic-only on timings)",
    )
    options = parser.parse_args(argv)

    problems: list[str] = []
    for name, measure in MEASURES.items():
        path = FILES[name]
        measured = measure()
        if options.check:
            if not path.exists():
                problems.append(f"{name}: committed file {path.name} is missing")
                continue
            committed = json.loads(path.read_text(encoding="utf-8"))
            issues = _check_one(name, committed, measured)
            problems.extend(issues)
            status = "ok" if not issues else "FAIL"
            print(
                f"{path.name}: {status} "
                f"(measured {json.dumps(measured['timings'], sort_keys=True)})"
            )
        else:
            path.write_text(
                json.dumps(measured, indent=2, sort_keys=True) + "\n",
                encoding="utf-8",
            )
            print(f"wrote {path.name}: {json.dumps(measured['timings'], sort_keys=True)}")

    if problems:
        print()
        for problem in problems:
            print(problem)
        print(f"{len(problems)} trajectory regression(s)")
        return 1
    if options.check:
        print("perf trajectory ok")
    return 0


if __name__ == "__main__":
    sys.exit(main())
