"""Property-style tests: deltas keep every derived structure consistent.

After applying a random update batch through the storage layer, the
incrementally maintained structures must agree with from-scratch rebuilds:

* ``AccessIndex.lookup`` (maintained through relation observers) vs. a fresh
  :class:`IndexSet` over the post-update database;
* the relations' cached secondary hash indexes vs. freshly built ones;
* the cached ``Relation.tuples`` frozen view and per-relation statistics vs.
  recomputation;
* maintained views (compiled delta plans consuming the transaction's
  :class:`~repro.storage.deltas.DeltaStream`) vs. full re-evaluation — for
  counting-mode views including the derivation *counts*, and for the DRed
  fallback paths (self-joins, unions).
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.algebra.parser import parse_cq, parse_ucq
from repro.algebra.views import View, ViewSet
from repro.engine.service.maintenance import ViewMaintainer
from repro.storage.indexes import IndexSet
from repro.storage.instance import Database
from repro.storage.statistics import (
    discover_access_constraints,
    relation_statistics,
)
from repro.storage.updates import UpdateBatch, random_update_batch
from repro.workloads import graph_search as gs


def _fresh_copy(database: Database) -> Database:
    return Database.from_facts(database.schema, database.facts)


def _assert_index_sets_agree(maintained: IndexSet, rebuilt: IndexSet) -> None:
    for constraint in maintained.access_schema:
        left = maintained.index_for(constraint)
        right = rebuilt.index_for(constraint)
        assert left.keys == right.keys, constraint
        for key in left.keys | right.keys:
            assert left.lookup(key) == right.lookup(key), (constraint, key)
        assert left.max_group_size() == right.max_group_size(), constraint


@pytest.mark.parametrize("seed", [0, 1, 7])
def test_access_indexes_track_applied_deltas(seed):
    instance = gs.generate(num_persons=120, num_movies=80, seed=seed)
    database = instance.database
    access = gs.access_schema(n0=instance.n0, with_like_key=True)
    indexes = IndexSet(database, access)  # built BEFORE the updates

    batch = random_update_batch(
        database, size=60, seed=seed, access_schema=access, insert_ratio=0.6
    )
    inserted, deleted = batch.apply_to(database)
    assert inserted + deleted > 0

    _assert_index_sets_agree(indexes, IndexSet(database, access))

    # Undo the batch: the maintained indexes must roll back too.
    batch.inverted().apply_to(database)
    _assert_index_sets_agree(indexes, IndexSet(database, access))


@pytest.mark.parametrize("seed", [2, 5])
def test_secondary_indexes_and_statistics_survive_deltas(seed):
    instance = gs.generate(num_persons=100, num_movies=60, seed=seed)
    database = instance.database

    # Warm a secondary index and the statistics on every relation.
    warmed = {
        name: database.relation(name).index_on((0,))
        for name in database.schema.names
    }
    for name in database.schema.names:
        database.relation(name).statistics()

    batch = random_update_batch(database, size=40, seed=seed)
    batch.apply_to(database)

    for name in database.schema.names:
        relation = database.relation(name)
        # Cached frozen view matches the live tuple set.
        assert relation.tuples == frozenset(iter(relation))
        # The warmed index was maintained in place, not rebuilt.
        assert database.relation(name).index_on((0,)) is warmed[name]
        fresh = {}
        for row in relation:
            fresh.setdefault((row[0],), set()).add(row)
        assert {k: set(v) for k, v in warmed[name].items()} == fresh
        # Statistics agree with a from-scratch single-pass recomputation.
        assert relation.statistics() == relation_statistics(
            _fresh_copy(database).relation(name)
        )


def test_discovered_constraints_stay_indexable_under_updates():
    instance = gs.generate(num_persons=60, num_movies=40, seed=9)
    database = instance.database
    mined = discover_access_constraints(
        database, max_x_size=1, max_bound=200, relations=("rating", "movie")
    )
    assert len(tuple(mined)) > 0
    indexes = IndexSet(database, mined)
    batch = random_update_batch(database, size=30, seed=9, access_schema=mined)
    batch.apply_to(database)
    _assert_index_sets_agree(indexes, IndexSet(database, mined))


def test_access_index_does_not_memoise_missing_keys():
    from repro.algebra.schema import schema_from_spec
    from repro.core.access import AccessConstraint, AccessSchema

    schema = schema_from_spec({"R": ("a", "b")})
    database = Database(schema, {"R": [(1, 10)]})
    constraint = AccessConstraint("R", ("a",), ("b",), 5)
    indexes = IndexSet(database, AccessSchema([constraint]))
    index = indexes.index_for(constraint)
    for miss in range(1000):
        assert index.lookup((f"absent-{miss}",)) == frozenset()
    assert len(index._frozen) <= 1  # noqa: SLF001 - misses are not cached
    # A hit still memoises its frozen view.
    assert index.lookup((1,)) == {(1, 10)}
    assert (1,) in index._frozen  # noqa: SLF001


def test_inplace_set_operators_keep_caches_consistent():
    from repro.algebra.schema import schema_from_spec
    from repro.core.access import AccessConstraint, AccessSchema

    schema = schema_from_spec({"R": ("a", "b")})
    database = Database(schema, {"R": [(1, 10), (2, 20), (3, 30)]})
    relation = database.relation("R")
    constraint = AccessConstraint("R", ("a",), ("b",), 5)
    indexes = IndexSet(database, AccessSchema([constraint]))
    relation.index_on((0,))
    relation.statistics()

    relation._tuples -= {(2, 20)}  # noqa: SLF001 - in-place mutator bypass
    relation._tuples |= {(4, 40)}  # noqa: SLF001
    relation._tuples ^= {(4, 40), (5, 50)}  # noqa: SLF001 - drops 4, adds 5

    assert relation.tuples == {(1, 10), (3, 30), (5, 50)}
    assert indexes.fetch(constraint, (2,)) == frozenset()
    assert indexes.fetch(constraint, (5,)) == {(5, 50)}
    assert dict(relation.index_on((0,))) == {(1,): [(1, 10)], (3,): [(3, 30)], (5,): [(5, 50)]}
    assert relation.statistics() == relation_statistics(
        _fresh_copy(database).relation("R")
    )


def test_concurrent_queries_share_lazy_index_builds():
    """query_many-style read-only concurrency must not corrupt index caches."""
    from concurrent.futures import ThreadPoolExecutor

    from repro.algebra.evaluation import evaluate_cq
    from repro.algebra.parser import parse_cq

    instance = gs.generate(num_persons=300, num_movies=150, seed=4)
    database = instance.database
    queries = [
        parse_cq("Q(mid) :- movie(mid, t, 'Universal', '2014'), rating(mid, 5)"),
        parse_cq("Q(mid) :- movie(mid, t, 'Sony', '2013'), rating(mid, 4)"),
        parse_cq("Q(p) :- person(p, n, 'NASA'), like(p, m, 'movie')"),
    ] * 8
    with ThreadPoolExecutor(max_workers=8) as pool:
        results = list(pool.map(lambda q: evaluate_cq(q, database), queries))
    for query, rows in zip(queries, results):
        assert rows == evaluate_cq(query, database.facts), query.name


def test_random_batches_keep_maintained_views_row_identical():
    """Graph-search views (counting + DRed modes) vs. recomputation."""
    for seed in (3, 11, 19):
        instance = gs.generate(num_persons=120, num_movies=80, seed=seed)
        database = instance.database
        maintainer = ViewMaintainer(gs.views(), database, subscribe=True)
        assert maintainer.mode("V1") == "counting"  # no self-join, single CQ
        batch = random_update_batch(
            database, size=60, seed=seed, access_schema=gs.access_schema()
        )
        batch.apply_to(database)
        assert maintainer.verify(), seed  # rows AND derivation counts
        batch.inverted().apply_to(database)
        assert maintainer.verify(), seed  # rollback maintained too


def _edge_db(seed: int) -> Database:
    from repro.algebra.schema import schema_from_spec
    from repro.storage.generators import rng

    generator = rng(seed)
    schema = schema_from_spec({"E": ("src", "dst"), "L": ("node", "tag")})
    database = Database(schema)
    for _ in range(60):
        database.add("E", (generator.randint(0, 12), generator.randint(0, 12)))
    for node in range(0, 13, 2):
        database.add("L", (node, f"t{node % 3}"))
    return database


@settings(max_examples=15, deadline=None)
@given(seed=st.integers(min_value=0, max_value=10_000))
def test_random_batches_keep_self_join_and_union_views_exact(seed):
    """Property: the DRed fallback (self-joins, unions) matches recomputation
    after any random batch, including multi-relation mixed batches."""
    database = _edge_db(seed)
    views = ViewSet(
        (
            View("P2", parse_cq("P2(x, z) :- E(x, y), E(y, z)")),  # self-join
            View(
                "VU",
                parse_ucq("V(x) :- E(x, y), L(y, t); V(x) :- L(x, t)"),  # union
            ),
            View("VC", parse_cq("VC(x, t) :- E(x, y), L(y, t)")),  # counting
        )
    )
    maintainer = ViewMaintainer(views, database, subscribe=True)
    assert maintainer.mode("P2") == "dred"
    assert maintainer.mode("VU") == "dred"
    assert maintainer.mode("VC") == "counting"
    batch = random_update_batch(database, size=24, seed=seed, insert_ratio=0.45)
    batch.apply_to(database)
    assert maintainer.verify()
    batch.inverted().apply_to(database)
    assert maintainer.verify()


def test_deletion_keeps_projection_while_supported():
    """A projection disappears only when its last supporting tuple does."""
    from repro.algebra.schema import schema_from_spec
    from repro.core.access import AccessConstraint, AccessSchema
    from repro.storage.updates import Deletion

    schema = schema_from_spec({"R": ("a", "b", "c")})
    database = Database(schema, {"R": [(1, 10, "u"), (1, 10, "v")]})
    constraint = AccessConstraint("R", ("a",), ("b",), 5)
    indexes = IndexSet(database, AccessSchema([constraint]))
    assert indexes.fetch(constraint, (1,)) == {(1, 10)}
    # Two base tuples support the projection (1, 10): deleting one keeps it.
    UpdateBatch([Deletion("R", (1, 10, "u"))]).apply_to(database)
    assert indexes.fetch(constraint, (1,)) == {(1, 10)}
    UpdateBatch([Deletion("R", (1, 10, "v"))]).apply_to(database)
    assert indexes.fetch(constraint, (1,)) == frozenset()
