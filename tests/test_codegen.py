"""The codegen execution tier: bit-identical rows *and* ``Dξ`` accounting.

Three layers of evidence that a compiled closure is a drop-in replacement
for the interpreted operator tree:

* unit tests on the canonical workload plans (Figure 1, Q0, CDR): rows and
  every :class:`~repro.exec.iometer.IOMeter` field identical between tiers;
* service-level tests of the tier machinery — warmup, explain, per-tier
  stats, prepared/parameterised execution without ``bind_plan``, the
  verifier gate, and the stale-closure eviction regression;
* a differential property test over ~200 random CQs/UCQs on both backends,
  re-run after ``apply()`` write batches.
"""

from __future__ import annotations

import pytest

from repro.algebra.parser import parse_query
from repro.algebra.terms import Variable
from repro.algebra.ucq import UnionQuery
from repro.analysis import codegen_eligibility
from repro.core.plan_eval import FetchStats, PlanExecutor
from repro.engine.service import QueryService
from repro.errors import PlanError
from repro.exec.codegen import compile_plan_closure
from repro.storage.indexes import IndexSet
from repro.storage.updates import random_update_batch
from repro.workloads import cdr, graph_search
from repro.workloads.random_cq import RandomCQConfig, random_workload


def _meters_equal(a, b) -> bool:
    return (
        a.tuples_fetched == b.tuples_fetched
        and a.fetch_calls == b.fetch_calls
        and a.per_relation == b.per_relation
        and a.view_tuples_scanned == b.view_tuples_scanned
    )


def _assert_tiers_identical(plan, schema, access, provider, view_cache):
    """Execute ``plan`` on both tiers and compare rows plus full meters."""
    executor = PlanExecutor(schema, access, provider, view_cache)
    interpreted = executor.execute(plan)
    compiled = compile_plan_closure(plan, access)
    meter = FetchStats()
    rows = compiled.execute(provider, executor.view_cache, meter)
    assert rows == interpreted.rows
    assert compiled.attributes == plan.attributes
    assert _meters_equal(meter, interpreted.stats), (
        f"Dξ accounting diverged: compiled={meter} interpreted={interpreted.stats}"
    )
    return rows, meter


# --------------------------------------------------------------------------- #
# Unit: canonical plans, both tiers bit-identical
# --------------------------------------------------------------------------- #


def test_figure1_plan_identical_tiers(gs_instance, gs_schema, gs_access):
    service = QueryService(
        gs_instance.database, gs_access, graph_search.views(), codegen=False
    )
    rows, meter = _assert_tiers_identical(
        graph_search.figure1_plan(),
        gs_schema,
        gs_access,
        service.indexes,
        service.view_cache,
    )
    assert rows  # the instance is seeded so Q0 is non-empty
    assert meter.tuples_fetched > 0


def test_planner_q0_identical_tiers(gs_instance, gs_access, gs_q0, gs_schema):
    service = QueryService(
        gs_instance.database, gs_access, graph_search.views(), codegen=False
    )
    entry, _ = service.plan(gs_q0)
    assert entry.plan is not None
    _assert_tiers_identical(
        entry.plan, gs_schema, gs_access, service.indexes, service.view_cache
    )


def test_cdr_plans_identical_tiers():
    data = cdr.generate(num_customers=60, num_days=3, seed=1)
    service = QueryService(data.database, cdr.access_schema(), cdr.views(), codegen=False)
    config = RandomCQConfig(min_atoms=1, max_atoms=3, head_size=2, seed=23)
    checked = 0
    for query in random_workload(cdr.schema(), data.database, 40, config):
        entry, _ = service.plan(query, use_cache=False)
        if entry.plan is None:
            continue
        _assert_tiers_identical(
            entry.plan,
            data.database.schema,
            cdr.access_schema(),
            service.indexes,
            service.view_cache,
        )
        checked += 1
    assert checked >= 10


def test_compiled_plan_rejects_missing_bindings(gs_instance, gs_access):
    service = QueryService(
        gs_instance.database, gs_access, graph_search.views(), codegen=False
    )
    query = parse_query('Q(m, k) :- movie(m, mn, :studio, "2014"), rating(m, k)')
    entry, _ = service.plan(query)
    assert entry.plan is not None
    compiled = compile_plan_closure(entry.plan, gs_access)
    assert compiled.parameters == frozenset({"studio"})
    with pytest.raises(PlanError, match="studio"):
        compiled.execute(service.indexes, service.view_cache, FetchStats())


def test_compiled_fetch_without_constraint_rejected(gs_access):
    from repro.core.plans import FetchNode

    orphan = FetchNode(None, "person", (), ("pid", "name", "affiliation"))
    with pytest.raises(PlanError, match="covering access constraint"):
        compile_plan_closure(orphan, gs_access)


# --------------------------------------------------------------------------- #
# Service tier machinery: warmup, explain, stats
# --------------------------------------------------------------------------- #


@pytest.fixture
def gs_service(gs_instance, gs_access):
    return QueryService(
        gs_instance.database, gs_access, graph_search.views(), codegen_warmup=2
    )


def test_warmup_then_compiled_tier(gs_service, gs_q0):
    answers = [gs_service.query(gs_q0) for _ in range(4)]
    assert [a.execution_tier for a in answers] == [
        "interpreted",
        "interpreted",
        "compiled",
        "compiled",
    ]
    assert len({a.rows for a in answers}) == 1
    assert len({a.tuples_fetched for a in answers}) == 1
    assert len({a.view_tuples_scanned for a in answers}) == 1


def test_codegen_disabled_stays_interpreted(gs_instance, gs_access, gs_q0):
    service = QueryService(
        gs_instance.database, gs_access, graph_search.views(), codegen=False
    )
    for _ in range(4):
        assert service.query(gs_q0).execution_tier == "interpreted"
    entry, _ = service.plan(gs_q0)
    assert entry.compiled is None and entry.executions == 0


def test_warmup_zero_compiles_first_execution(gs_instance, gs_access, gs_q0):
    service = QueryService(
        gs_instance.database, gs_access, graph_search.views(), codegen_warmup=0
    )
    assert service.query(gs_q0).execution_tier == "compiled"


def test_sqlite_backend_keeps_interpreting(gs_service, gs_q0):
    for _ in range(3):
        memory = gs_service.query(gs_q0)
    sqlite = gs_service.query(gs_q0, backend="sqlite")
    assert memory.execution_tier == "compiled"
    assert sqlite.execution_tier == "interpreted"
    assert sqlite.rows == memory.rows


def test_explain_reports_warmup_then_compiled(gs_service, gs_q0):
    before = gs_service.explain(gs_q0)
    assert before.execution_tier == "interpreted"
    assert before.codegen_state == "pending"
    assert "warming up" in before.render()
    for _ in range(3):
        gs_service.query(gs_q0)
    after = gs_service.explain(gs_q0)
    assert after.execution_tier == "compiled"
    assert after.codegen_state == "compiled"
    assert after.compile_seconds is not None and after.compile_seconds > 0
    assert "execution tier: compiled" in after.render()


def test_explain_reports_disabled(gs_instance, gs_access, gs_q0):
    service = QueryService(
        gs_instance.database, gs_access, graph_search.views(), codegen=False
    )
    explanation = service.explain(gs_q0)
    assert explanation.codegen_state == "disabled"
    assert "execution tier" not in explanation.render()


def test_stats_count_executions_per_tier(gs_service, gs_q0):
    for _ in range(5):
        gs_service.query(gs_q0)
    snapshot = gs_service.stats.snapshot()
    assert snapshot.tier_uses == {"interpreted": 2, "compiled": 3}
    gs_service.stats.reset()
    assert gs_service.stats.snapshot().tier_uses == {}


def test_fallback_answers_count_as_interpreted(gs_service):
    # Not boundable under A0: no constant anchors the movie fetch.
    unbounded = parse_query("Q(m) :- movie(m, mn, s, r), rating(m, k)")
    answer = gs_service.query(unbounded)
    assert not answer.used_bounded_plan
    assert answer.execution_tier == "interpreted"


# --------------------------------------------------------------------------- #
# Prepared / parameterised execution (no bind_plan on the compiled tier)
# --------------------------------------------------------------------------- #


def test_prepared_query_compiles_and_matches_interpreted(gs_instance, gs_access):
    query = parse_query('Q(m, k) :- movie(m, mn, :studio, "2014"), rating(m, k)')
    compiled_service = QueryService(
        gs_instance.database, gs_access, graph_search.views(), codegen_warmup=1
    )
    interpreted_service = QueryService(
        gs_instance.database, gs_access, graph_search.views(), codegen=False
    )
    prepared = compiled_service.prepare(query)
    reference = interpreted_service.prepare(query)
    studios = sorted(
        {row[2] for row in gs_instance.database.relation("movie").tuples}
    )
    tiers = []
    for studio in studios:
        fast = prepared.execute(studio=studio)
        slow = reference.execute(studio=studio)
        tiers.append(fast.execution_tier)
        assert fast.rows == slow.rows
        assert fast.tuples_fetched == slow.tuples_fetched
    assert tiers[0] == "interpreted" and set(tiers[1:]) == {"compiled"}


def test_verifier_gates_codegen(gs_service, gs_q0):
    """An entry the verifier rejects is marked ineligible and keeps interpreting."""
    from repro.core.plans import FetchNode

    entry, _ = gs_service.plan(gs_q0)
    # Sabotage the cached outcome with a plan that cannot verify (fetch with
    # no covering constraint) — simulating a buggy planner.
    broken = FetchNode(None, "person", (), ("pid", "name", "affiliation"))
    entry.plan = broken
    entry.executions = 10  # past warmup: next execution attempts to compile
    gs_service._compile_entry(gs_q0, None, entry)
    assert entry.compiled is None
    assert entry.codegen_state == "ineligible"
    assert entry.codegen_reason
    explanation_entry, _ = gs_service.plan(gs_q0)
    assert explanation_entry is entry  # still the cached entry


def test_codegen_eligibility_accepts_real_plans(gs_instance, gs_access, gs_q0):
    service = QueryService(
        gs_instance.database, gs_access, graph_search.views(), codegen=False
    )
    entry, _ = service.plan(gs_q0)
    report = codegen_eligibility(
        entry.plan,
        gs_instance.database.schema,
        views=service.views,
        access_schema=gs_access,
        expected_arity=1,
        subject="Q0",
    )
    assert report.ok


def test_codegen_eligibility_rejects_corrupt_plans(gs_instance, gs_access):
    from repro.core.plans import FetchNode

    report = codegen_eligibility(
        FetchNode(None, "person", (), ("pid", "name", "affiliation")),
        gs_instance.database.schema,
        views=graph_search.views(),
        access_schema=gs_access,
    )
    assert not report.ok


# --------------------------------------------------------------------------- #
# Regression: writes must invalidate compiled artifacts (stale closures)
# --------------------------------------------------------------------------- #


def test_write_drops_compiled_closure_and_rewarms(gs_instance, gs_access, gs_q0):
    service = QueryService(
        gs_instance.database, gs_access, graph_search.views(), codegen_warmup=1
    )
    for _ in range(2):
        service.query(gs_q0)
    entry, _ = service.plan(gs_q0)
    assert entry.compiled is not None and entry.codegen_state == "compiled"
    batch = random_update_batch(gs_instance.database, size=20, seed=83)
    service.apply(batch)
    # The entry object may still be referenced by a PreparedQuery, so the
    # invalidation must reset the *entry*, not just the cache dict.
    assert entry.compiled is None
    assert entry.codegen_state == "pending"
    assert entry.executions == 0
    first_after = service.query(gs_q0)
    assert first_after.execution_tier == "interpreted"
    second_after = service.query(gs_q0)
    assert second_after.execution_tier == "compiled"
    assert second_after.rows == first_after.rows
    assert second_after.tuples_fetched == first_after.tuples_fetched
    service.apply(batch.inverted())


def test_prepared_query_never_serves_stale_closure(gs_instance, gs_access):
    """The stale-closure reproduction: prepare, compile, write, re-execute.

    A closure holds no data (provider and views are late-bound), but the
    cached *entry* it hangs off is declared stale by the write — a prepared
    query holding that entry must fall back to warmup instead of trusting
    the evicted planning outcome.
    """
    service = QueryService(
        gs_instance.database, gs_access, graph_search.views(), codegen_warmup=1
    )
    prepared = service.prepare(graph_search.query_q0())
    for _ in range(2):
        prepared.execute()
    assert prepared.entry.compiled is not None
    batch = random_update_batch(gs_instance.database, size=20, seed=7)
    service.apply(batch)
    assert prepared.entry.compiled is None, "stale closure survived the write"
    answer = prepared.execute()
    interpreted = QueryService(
        gs_instance.database, gs_access, graph_search.views(), codegen=False
    ).query(graph_search.query_q0())
    assert answer.rows == interpreted.rows
    assert answer.tuples_fetched == interpreted.tuples_fetched
    service.apply(batch.inverted())


def test_cache_clear_and_lru_eviction_invalidate_closures(gs_instance, gs_access, gs_q0):
    service = QueryService(
        gs_instance.database, gs_access, graph_search.views(),
        codegen_warmup=0, plan_cache_size=1,
    )
    service.query(gs_q0)
    entry, _ = service.plan(gs_q0)
    assert entry.compiled is not None
    # LRU eviction by capacity: planning a second query pushes Q0 out.
    service.query(parse_query('Q(k) :- movie(m, mn, "Universal", "2014"), rating(m, k)'))
    assert entry.compiled is None and entry.executions == 0
    # clear() does the same for everything still cached.
    service.query(gs_q0)
    entry2, _ = service.plan(gs_q0)
    assert entry2.compiled is not None
    service.plan_cache.clear()
    assert entry2.compiled is None


# --------------------------------------------------------------------------- #
# Probe-first factoring over arbitrary left-deep product chains
# --------------------------------------------------------------------------- #


def _movies_fetch(rename: str | None = None):
    """fetch(Universal/2014 ∈ φ1, movie, mid) — attrs (studio, release, mid)."""
    from repro.core.plans import ConstantScan, FetchNode, ProductNode, RenameNode

    keys = ProductNode(
        ConstantScan("Universal", attribute="studio"),
        ConstantScan("2014", attribute="release"),
    )
    movies = FetchNode(keys, "movie", ("studio", "release"), ("mid",))
    if rename is None:
        return movies
    return RenameNode(movies, {"mid": rename})


def _chain_select_plan(keyed: str):
    """σ over ``×(×(×(F0,F1),F2), D)`` with the join key in one chain factor.

    ``keyed`` picks which factor carries the key: ``"first"`` joins the V1
    scan of F0 against fetched movies, ``"middle"`` the constant rank of F1
    against fetched ratings, ``"last"`` the V2 scan of F2 against another V2
    scan.  All three are shapes the generalized ``_factored_matches`` must
    probe-first without materialising the three-factor chain.
    """
    from repro.core.plans import (
        AttributeEqualsAttribute,
        ConstantScan,
        FetchNode,
        ProductNode,
        ProjectNode,
        RenameNode,
        SelectNode,
        ViewScan,
    )

    f0 = RenameNode(ViewScan("V1", ("mid",)), {"mid": "mid_a"})
    f1 = ConstantScan(5, attribute="rank_c")
    f2 = RenameNode(ViewScan("V2", ("pid",)), {"pid": "pid_b"})
    chain = ProductNode(ProductNode(f0, f1), f2)
    if keyed == "first":
        right = _movies_fetch()
        predicate = AttributeEqualsAttribute("mid_a", "mid")
    elif keyed == "middle":
        candidates = ProjectNode(_movies_fetch(), ("mid",))
        right = RenameNode(
            FetchNode(candidates, "rating", ("mid",), ("rank",)), {"mid": "mid_d"}
        )
        predicate = AttributeEqualsAttribute("rank_c", "rank")
    else:
        right = RenameNode(ViewScan("V2", ("pid",)), {"pid": "pid_d"})
        predicate = AttributeEqualsAttribute("pid_b", "pid_d")
    return SelectNode(ProductNode(chain, right), (predicate,))


@pytest.mark.parametrize("keyed", ["first", "middle", "last"])
def test_three_factor_chain_identical_tiers(gs_instance, gs_schema, gs_access, keyed):
    service = QueryService(
        gs_instance.database, gs_access, graph_search.views(), codegen=False
    )
    rows, meter = _assert_tiers_identical(
        _chain_select_plan(keyed),
        gs_schema,
        gs_access,
        service.indexes,
        service.view_cache,
    )
    assert rows  # the planted answers keep every variant non-empty


def test_four_factor_chain_identical_tiers(gs_instance, gs_schema, gs_access):
    from repro.core.plans import (
        AttributeEqualsAttribute,
        ConstantScan,
        ProductNode,
        RenameNode,
        SelectNode,
        ViewScan,
    )

    f0 = ConstantScan("movie", attribute="type_c")
    f1 = RenameNode(ViewScan("V1", ("mid",)), {"mid": "mid_a"})
    f2 = ConstantScan(5, attribute="rank_c")
    f3 = RenameNode(ViewScan("V2", ("pid",)), {"pid": "pid_b"})
    chain = ProductNode(ProductNode(ProductNode(f0, f1), f2), f3)
    plan = SelectNode(
        ProductNode(chain, _movies_fetch("mid_d")),
        (AttributeEqualsAttribute("mid_a", "mid_d"),),
    )
    service = QueryService(
        gs_instance.database, gs_access, graph_search.views(), codegen=False
    )
    rows, _ = _assert_tiers_identical(
        plan, gs_schema, gs_access, service.indexes, service.view_cache
    )
    assert rows


def test_chain_key_spanning_factors_identical_tiers(gs_instance, gs_schema, gs_access):
    """A key spanning two chain factors cannot probe-first per factor; the
    fallback (coarse split or generic join) must still be bit-identical."""
    from repro.core.plans import (
        AttributeEqualsAttribute,
        ConstantScan,
        ProductNode,
        RenameNode,
        SelectNode,
        ViewScan,
    )

    f0 = RenameNode(ViewScan("V1", ("mid",)), {"mid": "mid_a"})
    f1 = ConstantScan(5, attribute="rank_c")
    f2 = RenameNode(ViewScan("V2", ("pid",)), {"pid": "pid_b"})
    chain = ProductNode(ProductNode(f0, f1), f2)
    right = RenameNode(
        ProductNode(_movies_fetch("mid_d"), ViewScan("V2", ("pid",))),
        {"pid": "pid_d"},
    )
    plan = SelectNode(
        ProductNode(chain, right),
        (
            AttributeEqualsAttribute("mid_a", "mid_d"),
            AttributeEqualsAttribute("pid_b", "pid_d"),
        ),
    )
    service = QueryService(
        gs_instance.database, gs_access, graph_search.views(), codegen=False
    )
    rows, _ = _assert_tiers_identical(
        plan, gs_schema, gs_access, service.indexes, service.view_cache
    )
    assert rows


# --------------------------------------------------------------------------- #
# Differential property test: ~200 random CQs/UCQs, both backends, with writes
# --------------------------------------------------------------------------- #


def _random_mixed_workload(schema, database, count: int, seed: int):
    """~``count`` queries: random CQs plus UCQs paired from equal-arity CQs."""
    config = RandomCQConfig(
        min_atoms=1, max_atoms=3, head_size=2, constant_probability=0.6, seed=seed
    )
    cqs = [
        q
        for q in random_workload(schema, database, count, config)
        if len(set(q.head)) == len(q.head)
    ]
    queries: list = list(cqs)
    by_arity: dict[int, list] = {}
    for q in cqs:
        by_arity.setdefault(q.head_arity, []).append(q)
    made = 0
    for arity, group in sorted(by_arity.items()):
        for i in range(0, len(group) - 1, 2):
            if made >= count // 4:
                break
            queries.append(
                UnionQuery(
                    (group[i], group[i + 1]), name=f"U{arity}_{i}"
                )
            )
            made += 1
    return queries


def _check_differential(service, queries, *, check_sqlite: bool) -> int:
    """Interpreted vs compiled on one service; returns #compiled-tier checks.

    Flipping ``service.codegen`` between the two executions guarantees both
    tiers run the *same* cached plan object — the comparison isolates the
    execution tier, not planner nondeterminism.
    """
    compiled_checks = 0
    for query in queries:
        service.codegen = False
        interpreted = service.query(query)
        service.codegen = True
        compiled = service.query(query)
        assert compiled.rows == interpreted.rows, query.name
        assert compiled.tuples_fetched == interpreted.tuples_fetched, query.name
        assert compiled.view_tuples_scanned == interpreted.view_tuples_scanned, (
            query.name
        )
        if compiled.used_bounded_plan:
            assert compiled.execution_tier == "compiled", query.name
            compiled_checks += 1
            if check_sqlite:
                sqlite = service.query(query, backend="sqlite")
                assert sqlite.rows == compiled.rows, query.name
    return compiled_checks


def test_differential_random_workload_with_writes():
    data = cdr.generate(num_customers=60, num_days=3, seed=1)
    service = QueryService(
        data.database, cdr.access_schema(), cdr.views(), codegen_warmup=0
    )
    queries = _random_mixed_workload(cdr.schema(), data.database, 160, seed=31)
    assert len(queries) >= 180  # ~200 including the paired UCQs
    compiled_checks = _check_differential(service, queries, check_sqlite=True)
    assert compiled_checks >= 50  # the workload genuinely exercises the tier

    # After write batches the evicted closures recompile against the new
    # state, and the two tiers must still agree — on every meter field.
    for seed in (101, 202):
        batch = random_update_batch(data.database, size=60, seed=seed)
        service.apply(batch)
        again = _check_differential(service, queries[:60], check_sqlite=False)
        assert again >= 15
