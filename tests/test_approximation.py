"""Tests for approximate query answering under a resource ratio α."""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.algebra.evaluation import evaluate_cq
from repro.algebra.parser import parse_cq
from repro.core.approximation import (
    AccuracyPoint,
    ResourceRatio,
    accuracy_sweep,
    answer_coverage,
    answer_precision,
    approximate_answer,
    distance_bound,
    normalized_hamming,
)
from repro.errors import EvaluationError
from repro.workloads import cdr, graph_search as gs


@pytest.fixture(scope="module")
def gs_instance():
    return gs.generate(num_persons=400, num_movies=200, seed=21)


def test_resource_ratio_budget():
    instance = gs.generate(num_persons=50, num_movies=30, seed=1)
    assert ResourceRatio(0.0).budget_for(instance.database) == 0
    assert ResourceRatio(1.0).budget_for(instance.database) == instance.database.size
    assert 0 < ResourceRatio(0.1).budget_for(instance.database) <= instance.database.size


def test_resource_ratio_rejects_out_of_range():
    with pytest.raises(EvaluationError):
        ResourceRatio(1.5)
    with pytest.raises(EvaluationError):
        ResourceRatio(-0.1)


def test_alpha_one_is_exact(gs_instance):
    query = gs.query_q0()
    exact = evaluate_cq(query, gs_instance.database.facts)
    answer = approximate_answer(query, gs_instance.database, gs.access_schema(), alpha=1.0)
    assert answer.rows == exact
    assert answer.tuples_accessed <= answer.budget


def test_alpha_zero_accesses_nothing(gs_instance):
    answer = approximate_answer(
        gs.query_q0(), gs_instance.database, gs.access_schema(), alpha=0.0
    )
    assert answer.tuples_accessed == 0
    assert answer.rows == frozenset()


def test_budget_respected_and_precision_one(gs_instance):
    query = gs.query_q0()
    exact = evaluate_cq(query, gs_instance.database.facts)
    for alpha in (0.05, 0.2, 0.5):
        answer = approximate_answer(query, gs_instance.database, gs.access_schema(), alpha)
        assert answer.tuples_accessed <= answer.budget
        # Monotone query over a sub-instance: no false positives.
        assert answer_precision(answer.rows, exact) == 1.0


def test_anchored_query_needs_tiny_alpha(gs_instance):
    """A query anchored on the access constraints gets full recall from a small α."""
    query = parse_cq(
        "Qa(mid) :- movie(mid, n, 'Universal', '2014'), rating(mid, 5)"
    )
    exact = evaluate_cq(query, gs_instance.database.facts)
    assert exact, "generator plants Universal/2014 movies rated 5"
    answer = approximate_answer(query, gs_instance.database, gs.access_schema(), alpha=0.05)
    assert answer.rows == exact
    assert answer.tuples_accessed <= answer.budget


def test_coverage_grows_with_alpha(gs_instance):
    points = accuracy_sweep(
        gs.query_q0(),
        gs_instance.database,
        gs.access_schema(),
        alphas=(0.02, 0.2, 1.0),
        seed=4,
    )
    assert all(isinstance(p, AccuracyPoint) for p in points)
    coverages = [p.coverage for p in points]
    assert coverages == sorted(coverages)
    assert coverages[-1] == 1.0
    assert all(p.tuples_accessed <= p.budget for p in points)


def test_coverage_and_precision_edge_cases():
    assert answer_coverage([], []) == 1.0
    assert answer_precision([], [(1,)]) == 1.0
    assert answer_coverage([(1,)], [(1,), (2,)]) == 0.5
    assert answer_precision([(1,), (3,)], [(1,)]) == 0.5


def test_normalized_hamming():
    assert normalized_hamming((1, 2, 3), (1, 2, 3)) == 0.0
    assert normalized_hamming((1, 2, 3), (1, 0, 0)) == pytest.approx(2 / 3)
    assert normalized_hamming((), ()) == 0.0
    with pytest.raises(EvaluationError):
        normalized_hamming((1,), (1, 2))


def test_distance_bound_eta():
    assert distance_bound([], []) == 0.0
    assert distance_bound([], [(1,)]) is None
    assert distance_bound([(1, 2)], [(1, 2)]) == 0.0
    eta = distance_bound([(1, 2)], [(1, 2), (1, 3)])
    assert eta == pytest.approx(0.5)


def test_cdr_workload_approximation_shape():
    instance = cdr.generate(num_customers=120, num_days=3, seed=8)
    query = cdr.workload(instance, count=1, seed=5)[0]
    exact = evaluate_cq(query, instance.database.facts)
    answer = approximate_answer(query, instance.database, cdr.access_schema(), alpha=0.3)
    assert answer.tuples_accessed <= answer.budget
    assert answer_precision(answer.rows, exact) == 1.0


@settings(max_examples=15, deadline=None)
@given(alpha=st.floats(min_value=0.0, max_value=1.0))
def test_property_budget_and_precision(alpha):
    instance = gs.generate(num_persons=60, num_movies=40, seed=2)
    query = gs.query_q0()
    exact = evaluate_cq(query, instance.database.facts)
    answer = approximate_answer(query, instance.database, gs.access_schema(), alpha)
    assert answer.tuples_accessed <= answer.budget
    assert answer.rows <= exact
