"""Unit tests for covered variables and the bounded output problem (Theorem 3.4)."""

import pytest

from repro.algebra.atoms import EqualityAtom, RelationAtom
from repro.algebra.cq import ConjunctiveQuery
from repro.algebra.schema import schema_from_spec
from repro.algebra.terms import Constant, Variable
from repro.algebra.ucq import UnionQuery
from repro.core.access import AccessConstraint, AccessSchema
from repro.core.bounded_output import (
    bounded_output_witness,
    coverage_bounds,
    covered_variables,
    cq_bounded_output,
    has_bounded_output,
    output_bound_estimate,
)

SCHEMA = schema_from_spec({"R": ("a", "b"), "S": ("b", "c"), "T": ("a", "b", "c")})
X, Y, Z, W = Variable("x"), Variable("y"), Variable("z"), Variable("w")


def access(*constraints):
    return AccessSchema(constraints)


def test_covered_variables_fixpoint_chains_through_atoms():
    # R(1, y), S(y, z): y covered via R(a -> b), then z via S(b -> c).
    query = ConjunctiveQuery(
        head=(Z,),
        atoms=(RelationAtom("R", (Constant(1), Y)), RelationAtom("S", (Y, Z))),
    )
    schema_a = access(
        AccessConstraint("R", ("a",), ("b",), 3), AccessConstraint("S", ("b",), ("c",), 2)
    )
    covered = covered_variables(query, schema_a, SCHEMA)
    assert covered == {Y, Z}


def test_covered_variables_requires_anchor():
    query = ConjunctiveQuery(
        head=(Z,),
        atoms=(RelationAtom("R", (X, Y)), RelationAtom("S", (Y, Z))),
    )
    schema_a = access(
        AccessConstraint("R", ("a",), ("b",), 3), AccessConstraint("S", ("b",), ("c",), 2)
    )
    assert covered_variables(query, schema_a, SCHEMA) == set()


def test_empty_x_constraint_covers_unconditionally():
    query = ConjunctiveQuery(head=(X,), atoms=(RelationAtom("R", (X, Y)),))
    schema_a = access(AccessConstraint("R", (), ("a",), 5))
    assert X in covered_variables(query, schema_a, SCHEMA)


def test_coverage_bounds_multiply_along_derivation():
    query = ConjunctiveQuery(
        head=(Z,),
        atoms=(RelationAtom("R", (Constant(1), Y)), RelationAtom("S", (Y, Z))),
    )
    schema_a = access(
        AccessConstraint("R", ("a",), ("b",), 3), AccessConstraint("S", ("b",), ("c",), 2)
    )
    bounds = coverage_bounds(query, schema_a, SCHEMA)
    assert bounds[Y] == 3
    assert bounds[Z] == 6


def test_example_1_1_style_boundedness():
    """Anchored lookups are bounded; unanchored scans are not."""
    anchored = ConjunctiveQuery(
        head=(Y,), atoms=(RelationAtom("R", (Constant("u"), Y)),)
    )
    unanchored = ConjunctiveQuery(head=(Y,), atoms=(RelationAtom("R", (X, Y)),))
    schema_a = access(AccessConstraint("R", ("a",), ("b",), 100))
    assert has_bounded_output(anchored, schema_a, SCHEMA)
    assert not has_bounded_output(unanchored, schema_a, SCHEMA)
    assert output_bound_estimate(anchored, schema_a, SCHEMA) == 100
    assert output_bound_estimate(unanchored, schema_a, SCHEMA) is None


def test_boolean_queries_always_bounded():
    query = ConjunctiveQuery(head=(), atoms=(RelationAtom("R", (X, Y)),))
    assert has_bounded_output(query, AccessSchema(()), SCHEMA)


def test_head_constants_are_bounded():
    query = ConjunctiveQuery(
        head=(Constant(1), Y), atoms=(RelationAtom("R", (Constant(2), Y)),)
    )
    schema_a = access(AccessConstraint("R", ("a",), ("b",), 4))
    assert has_bounded_output(query, schema_a, SCHEMA)


def test_element_query_equalities_can_make_output_bounded():
    """Boundedness that only shows up on element queries (Lemma 3.7).

    Q(w) :- T(k, 1, z), T(k, w, z') with T((a) -> b, 1):  in every element
    query w must be equated with the constant 1, so the output is bounded even
    though cov on the original query does not cover w.
    """
    k = Variable("k")
    query = ConjunctiveQuery(
        head=(W,),
        atoms=(
            RelationAtom("T", (k, Constant(1), Z)),
            RelationAtom("T", (k, W, Variable("z2"))),
        ),
    )
    schema_a = access(AccessConstraint("T", ("a",), ("b",), 1))
    assert covered_variables(query, schema_a, SCHEMA) == set()
    assert has_bounded_output(query, schema_a, SCHEMA)


def test_witness_contains_counterexample_element_query():
    query = ConjunctiveQuery(head=(Y,), atoms=(RelationAtom("R", (X, Y)),))
    schema_a = access(AccessConstraint("R", ("a",), ("b",), 2))
    witness = bounded_output_witness(query, schema_a, SCHEMA)
    assert not witness.bounded
    assert witness.counterexample is not None
    assert witness.uncovered


def test_unsatisfiable_query_is_trivially_bounded():
    query = ConjunctiveQuery(
        head=(X,),
        atoms=(RelationAtom("R", (X, Y)),),
        equalities=(EqualityAtom(X, Constant(1)), EqualityAtom(X, Constant(2))),
    )
    witness = cq_bounded_output(query, AccessSchema(()), SCHEMA)
    assert witness.bounded and witness.output_bound == 0


def test_ucq_bounded_iff_every_disjunct_bounded():
    bounded = ConjunctiveQuery(head=(Y,), atoms=(RelationAtom("R", (Constant(1), Y)),))
    unbounded = ConjunctiveQuery(head=(Y,), atoms=(RelationAtom("S", (Y, Z)),))
    schema_a = access(AccessConstraint("R", ("a",), ("b",), 2))
    assert has_bounded_output(UnionQuery((bounded,)), schema_a, SCHEMA)
    assert not has_bounded_output(UnionQuery((bounded, unbounded)), schema_a, SCHEMA)


def test_fd_chase_helps_the_quick_check():
    # R(1, y), R(1, z), S(z, w) head w with R FD: y = z forced, then w covered
    # through S(b -> c) only if z is covered; z is covered via R(a -> b, 1).
    query = ConjunctiveQuery(
        head=(W,),
        atoms=(
            RelationAtom("R", (Constant(1), Y)),
            RelationAtom("R", (Constant(1), Z)),
            RelationAtom("S", (Z, W)),
        ),
    )
    schema_a = access(
        AccessConstraint("R", ("a",), ("b",), 1), AccessConstraint("S", ("b",), ("c",), 3)
    )
    assert has_bounded_output(query, schema_a, SCHEMA)
    assert output_bound_estimate(query, schema_a, SCHEMA) == 3
