"""Tests for cross-language bounded rewriting VBRP+(L1, L2) (Section 6)."""

import pytest

from repro.algebra.atoms import RelationAtom
from repro.algebra.cq import ConjunctiveQuery
from repro.algebra.schema import schema_from_spec
from repro.algebra.terms import Constant, Variable
from repro.algebra.views import View, ViewSet
from repro.core.access import AccessConstraint, AccessSchema
from repro.core.plans import (
    CQ,
    EFO_PLUS,
    FO,
    UCQ,
    ConstantScan,
    DifferenceNode,
    FetchNode,
    ProjectNode,
    UnionNode,
    ViewScan,
)
from repro.core.vbrp_plus import decide_vbrp_plus, verify_cross_language_rewriting
from repro.errors import UnsupportedQueryError

SCHEMA = schema_from_spec({"R": ("a", "b")})
ACCESS = AccessSchema((AccessConstraint("R", ("a",), ("b",), 2),))
NO_VIEWS = ViewSet(())
X, Y = Variable("x"), Variable("y")


def anchored_query():
    return ConjunctiveQuery(head=(Y,), atoms=(RelationAtom("R", (Constant(1), Y)),))


def test_l1_must_be_contained_in_l2():
    with pytest.raises(UnsupportedQueryError):
        decide_vbrp_plus(
            anchored_query(), NO_VIEWS, ACCESS, SCHEMA, 3,
            source_language=UCQ, target_language=CQ,
        )
    with pytest.raises(UnsupportedQueryError):
        decide_vbrp_plus(
            anchored_query(), NO_VIEWS, ACCESS, SCHEMA, 3,
            source_language=FO, target_language=FO,
        )


def test_cq_to_ucq_rewriting_found_when_cq_one_exists():
    result = decide_vbrp_plus(
        anchored_query(), NO_VIEWS, ACCESS, SCHEMA, 3,
        source_language=CQ, target_language=UCQ,
    )
    assert result.has_rewriting
    assert result.exact
    assert result.plan is not None


def test_cq_to_fo_search_is_marked_inexact_on_failure():
    open_query = ConjunctiveQuery(head=(Y,), atoms=(RelationAtom("R", (X, Y)),))
    result = decide_vbrp_plus(
        open_query, NO_VIEWS, ACCESS, SCHEMA, 3,
        source_language=CQ, target_language=FO,
    )
    assert not result.has_rewriting
    assert not result.exact  # FO-only plans were not explored exhaustively


def test_verify_cross_language_rewriting_checks_size_language_conformance():
    query = anchored_query()
    plan = ProjectNode(FetchNode(ConstantScan(1, attribute="a"), "R", ("a",), ("b",)), ("b",))
    assert verify_cross_language_rewriting(plan, query, NO_VIEWS, ACCESS, SCHEMA, 3, UCQ)
    assert not verify_cross_language_rewriting(plan, query, NO_VIEWS, ACCESS, SCHEMA, 2, UCQ)

    union_plan = UnionNode(plan, ProjectNode(
        FetchNode(ConstantScan(1, attribute="a"), "R", ("a",), ("b",)), ("b",)
    ))
    # A UCQ plan is not acceptable when the target language is CQ.
    assert not verify_cross_language_rewriting(union_plan, query, NO_VIEWS, ACCESS, SCHEMA, 9, CQ)
    assert verify_cross_language_rewriting(union_plan, query, NO_VIEWS, ACCESS, SCHEMA, 9, UCQ)


def test_verify_cross_language_rejects_wrong_plans():
    query = anchored_query()
    wrong = ProjectNode(FetchNode(ConstantScan(2, attribute="a"), "R", ("a",), ("b",)), ("b",))
    assert not verify_cross_language_rewriting(wrong, query, NO_VIEWS, ACCESS, SCHEMA, 5, UCQ)


def test_fo_plan_verification_accepts_conforming_difference_plan():
    """FO plans (with difference) pass the structural checks; their
    A-equivalence must be argued separately, as the docstring says."""
    view = View("VB", ConjunctiveQuery(head=(Y,), atoms=(RelationAtom("R", (Constant(1), Y)),)))
    views = ViewSet((view,))
    boolean_query = ConjunctiveQuery(head=(), atoms=(RelationAtom("R", (Constant(1), Y)),))
    left = ProjectNode(ViewScan("VB", ("y",)), ())
    right = ProjectNode(ViewScan("VB", ("y",)), ())
    plan = DifferenceNode(left, right)
    assert plan.language() == FO
    assert verify_cross_language_rewriting(plan, boolean_query, views, ACCESS, SCHEMA, 9, FO)
    assert not verify_cross_language_rewriting(plan, boolean_query, views, ACCESS, SCHEMA, 9, EFO_PLUS)
