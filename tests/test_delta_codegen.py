"""The compiled maintenance tier: bit-identical view state *and* ``Dξ``.

Mirror of ``test_codegen.py`` for the write path.  Three layers of evidence
that the generated delta kernels are a drop-in replacement for the
interpreted delta rules:

* a differential property test over ~200 random CQ/UCQ views (self-join
  DRed fallback included): after every random insert/delete batch, the
  compiled and interpreted maintainers agree on every view's rows, on the
  counting-mode derivation counts, on the work counters
  (``delta_queries``/``support_checks``) and on every IOMeter field;
* lifecycle tests of the warmup→verify→compile machinery — warmup counting,
  the ineligible-forever gate, ``invalidate_compiled``, ``explain`` — and of
  the service surface (``explain_maintenance``, ``maintenance-*`` tier
  stats, both backends);
* introspection of the generated kernel sources (data independence).
"""

from __future__ import annotations

import pytest

from repro.algebra.atoms import RelationAtom
from repro.algebra.cq import ConjunctiveQuery
from repro.algebra.terms import Variable
from repro.algebra.ucq import UnionQuery
from repro.algebra.views import View, ViewSet
from repro.engine.service import QueryService, ViewMaintainer
from repro.engine.service.maintenance import MaintenanceStats
from repro.errors import DeltaCompilationError
from repro.exec.delta_compiler import compile_maintenance, compile_view_delta
from repro.exec.iometer import IOMeter
from repro.storage.updates import random_update_batch
from repro.workloads import cdr
from repro.workloads.random_cq import RandomCQConfig, random_workload


def _meters_equal(a: IOMeter, b: IOMeter) -> bool:
    return (
        a.tuples_fetched == b.tuples_fetched
        and a.fetch_calls == b.fetch_calls
        and a.per_relation == b.per_relation
        and a.view_tuples_scanned == b.view_tuples_scanned
    )


# --------------------------------------------------------------------------- #
# Random view workloads
# --------------------------------------------------------------------------- #


def _connected(query) -> bool:
    """Multi-atom queries must share variables (no accidental cartesians)."""
    if len(query.atoms) <= 1:
        return True
    for index, atom in enumerate(query.atoms):
        mine = set(atom.variables)
        others = set()
        for j, other in enumerate(query.atoms):
            if j != index:
                others |= set(other.variables)
        if not (mine & others):
            return False
    return True


def _self_join_views() -> list[View]:
    """Hand-built self-joins: counting-ineligible, forcing the DRed kernels."""
    p1, p2, n1, n2, pl, r1, r2 = (Variable(x) for x in ("p1", "p2", "n1", "n2", "pl", "r1", "r2"))
    same_plan = View(
        "SJ_plan",
        # customer(phone, name, plan, region)
        UnionQuery(
            (
                ConjunctiveQuery(
                    head=(p1, p2),
                    atoms=(
                        RelationAtom("customer", (p1, n1, pl, r1)),
                        RelationAtom("customer", (p2, n2, pl, r2)),
                    ),
                    name="SJ_plan_def",
                ),
            ),
            name="SJ_plan_u",
        ),
    )
    return [same_plan]


def _random_views(schema, database, count: int, seed: int) -> list[View]:
    """~``count`` views: random CQs plus UCQs paired from equal-arity CQs."""
    config = RandomCQConfig(
        min_atoms=1,
        max_atoms=3,
        head_size=2,
        constant_probability=0.6,
        join_probability=0.7,
        seed=seed,
    )
    cqs = [
        q
        for q in random_workload(schema, database, count + 60, config)
        if q.head and _connected(q)
    ]
    views: list[View] = [
        View(f"Vr{i}", q) for i, q in enumerate(cqs[:count])
    ]
    by_arity: dict[int, list] = {}
    for q in cqs[:count]:
        by_arity.setdefault(q.head_arity, []).append(q)
    made = 0
    for arity, group in sorted(by_arity.items()):
        for i in range(0, len(group) - 1, 2):
            if made >= count // 5:
                break
            views.append(
                View(
                    f"Ur{arity}_{i}",
                    UnionQuery((group[i], group[i + 1]), name=f"Ur{arity}_{i}_def"),
                )
            )
            made += 1
    views.extend(_self_join_views())
    return views


def _paired_maintainers(views, database):
    """(interpreted, compiled) maintainers over the same database."""
    interpreted = ViewMaintainer(views, database, codegen=False)
    compiled = ViewMaintainer(views, database, codegen=True, codegen_warmup=0)
    return interpreted, compiled


def _assert_identical_step(interpreted, compiled, stream) -> None:
    """One stream through both maintainers: state and accounting must agree."""
    stats_i, stats_c = MaintenanceStats(), MaintenanceStats()
    meter_i, meter_c = IOMeter(), IOMeter()
    interpreted.apply_stream(stream, stats_i, meter=meter_i)
    compiled.apply_stream(stream, stats_c, meter=meter_c)
    for view in interpreted.views:
        name = view.name
        assert compiled.rows(name) == interpreted.rows(name), name
        if interpreted.mode(name) == "counting":
            assert compiled.counts(name) == interpreted.counts(name), name
    assert stats_c.delta_queries == stats_i.delta_queries
    assert stats_c.support_checks == stats_i.support_checks
    assert stats_c.rows_added == stats_i.rows_added
    assert stats_c.rows_removed == stats_i.rows_removed
    assert _meters_equal(meter_c, meter_i), (
        f"Dξ accounting diverged: compiled={meter_c} interpreted={meter_i}"
    )


# --------------------------------------------------------------------------- #
# Differential property test: ~200 random views, random update batches
# --------------------------------------------------------------------------- #


def test_differential_random_views_with_updates():
    data = cdr.generate(num_customers=40, num_days=2, seed=7)
    views = _random_views(cdr.schema(), data.database, 170, seed=29)
    assert len(views) >= 190  # ~200 including the paired UCQs and self-joins
    interpreted, compiled = _paired_maintainers(ViewSet(views), data.database)
    assert interpreted.modes == compiled.modes
    assert any(mode == "dred" for mode in compiled.modes.values())
    assert compiled.mode("SJ_plan") == "dred"  # the self-join fallback

    for seed in (11, 22, 33):
        batch = random_update_batch(data.database, size=50, seed=seed)
        stream = data.database.apply(batch)
        _assert_identical_step(interpreted, compiled, stream)

    # Most touched views actually reached the compiled tier (warmup=0).
    states = [compiled.explain(v.name).codegen_state for v in compiled.views]
    assert states.count("compiled") >= 0.6 * len(states)
    assert compiled.explain("SJ_plan").tier == "compiled"
    # Both maintainers still match a from-scratch recomputation.
    fresh = compiled.recompute()
    for view in compiled.views:
        assert compiled.rows(view.name) == fresh[view.name], view.name


def test_differential_both_backends_after_updates():
    """Two identically-seeded services (compiled vs interpreted maintenance)
    fed identical batches agree on every view's rows — served through the
    memory *and* the sqlite backend."""
    instances = [cdr.generate(num_customers=30, num_days=2, seed=5) for _ in range(2)]
    compiled_service = QueryService(
        instances[0].database, cdr.access_schema(), cdr.views(),
        codegen=True, codegen_warmup=0,
    )
    interpreted_service = QueryService(
        instances[1].database, cdr.access_schema(), cdr.views(), codegen=False
    )
    for seed in (41, 42):
        # Identical databases yield identical (deterministic) batches.
        batches = [
            random_update_batch(inst.database, size=40, seed=seed)
            for inst in instances
        ]
        assert batches[0].updates == batches[1].updates
        compiled_service.apply(batches[0])
        interpreted_service.apply(batches[1])
    assert compiled_service.maintainer.snapshot() == interpreted_service.maintainer.snapshot()
    assert compiled_service.maintainer.verify()
    # Both backends of both services agree on queries the views answer.
    for query in (
        'Q(p) :- customer(p, n, "premium", r)',
        "Q(c, d) :- call(c, e, d, u, l)",
    ):
        rows = [
            service.baseline(query, backend=backend).rows
            for service in (compiled_service, interpreted_service)
            for backend in ("memory", "sqlite")
        ]
        assert len(set(rows)) == 1, query
    tiers = compiled_service.stats.snapshot().tier_uses
    assert tiers.get("maintenance-compiled", 0) > 0
    assert "maintenance-interpreted" not in tiers


# --------------------------------------------------------------------------- #
# Lifecycle: warmup, ineligible-forever, invalidation, explain
# --------------------------------------------------------------------------- #


def _touching_stream(database, seed: int):
    batch = random_update_batch(database, size=10, relations=("customer",), seed=seed)
    return database.apply(batch)


def test_warmup_counts_touching_streams_then_compiles():
    data = cdr.generate(num_customers=20, num_days=2, seed=3)
    maintainer = ViewMaintainer(
        cdr.views(), data.database, codegen=True, codegen_warmup=2
    )
    tiers = []
    for seed in (1, 2, 3, 4):
        stats = MaintenanceStats()
        maintainer.apply_stream(_touching_stream(data.database, seed), stats)
        explanation = maintainer.explain("V_premium")
        tiers.append(explanation.tier)
    # Two interpreted warmup runs, then the compiled tier from run 3 on.
    assert tiers == ["interpreted", "interpreted", "compiled", "compiled"]
    explanation = maintainer.explain("V_premium")
    assert explanation.codegen_state == "compiled"
    assert explanation.mode == "counting"
    assert explanation.warmup == 2
    # V_daily is touched only by call-relation streams: still warming up.
    assert maintainer.explain("V_daily").codegen_state == "pending"
    assert maintainer.explain("V_daily").runs == 0
    assert maintainer.verify()


def test_codegen_disabled_stays_interpreted():
    data = cdr.generate(num_customers=20, num_days=2, seed=3)
    maintainer = ViewMaintainer(cdr.views(), data.database, codegen=False)
    stats = MaintenanceStats()
    maintainer.apply_stream(_touching_stream(data.database, 1), stats)
    assert maintainer.explain("V_premium").tier == "interpreted"
    assert stats.tier_runs.get("compiled", 0) == 0
    assert stats.tier_runs["interpreted"] >= 1


def test_failed_compilation_parks_view_as_ineligible(monkeypatch):
    """A view whose kernel generation fails keeps its interpreted rules
    forever — and the failure never surfaces to the write."""
    data = cdr.generate(num_customers=20, num_days=2, seed=3)
    maintainer = ViewMaintainer(
        cdr.views(), data.database, codegen=True, codegen_warmup=0
    )

    def broken(compiled):
        raise DeltaCompilationError("injected failure", view_name=compiled.name)

    monkeypatch.setattr(
        "repro.engine.service.maintenance.compile_maintenance", broken
    )
    stats = MaintenanceStats()
    maintainer.apply_stream(_touching_stream(data.database, 1), stats)
    explanation = maintainer.explain("V_premium")
    assert explanation.codegen_state == "ineligible"
    assert explanation.tier == "interpreted"
    assert "injected failure" in explanation.codegen_reason
    # The gate is checked once; later streams run interpreted without retry.
    monkeypatch.undo()
    maintainer.apply_stream(_touching_stream(data.database, 2), stats)
    assert maintainer.explain("V_premium").codegen_state == "ineligible"
    assert stats.tier_runs.get("compiled", 0) == 0
    assert maintainer.verify()


def test_invalidate_compiled_restarts_lifecycle():
    data = cdr.generate(num_customers=20, num_days=2, seed=3)
    maintainer = ViewMaintainer(
        cdr.views(), data.database, codegen=True, codegen_warmup=0
    )
    maintainer.apply_stream(_touching_stream(data.database, 1))
    assert maintainer.explain("V_premium").codegen_state == "compiled"
    maintainer.invalidate_compiled("V_premium")
    after = maintainer.explain("V_premium")
    assert after.codegen_state == "pending"
    assert after.runs == 0
    # The next touching stream re-verifies and recompiles (warmup=0).
    maintainer.apply_stream(_touching_stream(data.database, 2))
    assert maintainer.explain("V_premium").codegen_state == "compiled"
    # Invalidate-all covers every view.
    maintainer.invalidate_compiled()
    assert maintainer.explain("V_premium").codegen_state == "pending"
    assert maintainer.verify()


def test_explain_maintenance_service_surface():
    data = cdr.generate(num_customers=20, num_days=2, seed=3)
    service = QueryService(
        data.database, cdr.access_schema(), cdr.views(),
        codegen=True, codegen_warmup=0,
    )
    before = service.explain_maintenance("V_premium")
    assert before.codegen_state == "pending"
    service.apply(random_update_batch(data.database, size=15, seed=9))
    after = service.explain_maintenance("V_premium")
    assert after.tier == "compiled"
    assert after.codegen_state == "compiled"
    tiers = service.stats.snapshot().tier_uses
    assert tiers.get("maintenance-compiled", 0) >= 1


# --------------------------------------------------------------------------- #
# Generated sources: introspection and data independence
# --------------------------------------------------------------------------- #


def test_generated_kernel_sources_are_data_independent():
    views = cdr.views()
    disjuncts = tuple(
        d.normalize() for d in views.view("V_premium").as_ucq().disjuncts
    )
    kernels = compile_maintenance(compile_view_delta("V_premium", disjuncts))
    assert kernels.counting
    assert kernels.compile_seconds > 0
    (disjunct_kernels,) = kernels.disjuncts
    for per_atom in disjunct_kernels.rules.values():
        for rule_kernels in per_atom:
            assert set(rule_kernels.sources) == {"count", "insert", "affected"}
            for source in rule_kernels.sources.values():
                assert "def _kernel" in source
                # Data independence: the "premium" seed constant is bound via
                # an exec-namespace name, never interpolated into the source.
                assert "premium" not in source
    assert "def _kernel" in disjunct_kernels.support_source
    assert "premium" not in disjunct_kernels.support_source
