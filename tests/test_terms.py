"""Unit tests for terms (variables, constants, fresh-variable factory)."""

import pytest

from repro.algebra.terms import (
    Constant,
    FreshVariableFactory,
    Variable,
    as_term,
    is_constant,
    is_variable,
    term_names,
    variables,
)


def test_variable_equality_by_name():
    assert Variable("x") == Variable("x")
    assert Variable("x") != Variable("y")
    assert len({Variable("x"), Variable("x"), Variable("y")}) == 2


def test_variable_never_equals_constant():
    assert Variable("x") != Constant("x")
    assert Constant("x") != Variable("x")


def test_constant_equality_by_value():
    assert Constant(1) == Constant(1)
    assert Constant(1) != Constant("1")


def test_is_variable_and_is_constant():
    assert is_variable(Variable("x"))
    assert not is_variable(Constant(3))
    assert is_constant(Constant(3))
    assert not is_constant("raw string")


def test_as_term_wraps_values_but_keeps_terms():
    assert as_term(5) == Constant(5)
    assert as_term("NASA") == Constant("NASA")
    x = Variable("x")
    assert as_term(x) is x
    c = Constant(2)
    assert as_term(c) is c


def test_variables_helper_splits_names():
    xs = variables("x y z")
    assert xs == (Variable("x"), Variable("y"), Variable("z"))
    assert variables(["a", "b"]) == (Variable("a"), Variable("b"))


def test_fresh_factory_avoids_used_names():
    factory = FreshVariableFactory(used=["x", "y"])
    fresh = factory.fresh("x")
    assert fresh.name not in {"x", "y"}
    again = factory.fresh("x")
    assert again != fresh


def test_fresh_factory_reserve_and_many():
    factory = FreshVariableFactory()
    factory.reserve(["v0"])
    batch = factory.fresh_many(3, hint="v0")
    assert len(set(batch)) == 3
    assert all(v.name != "v0" for v in batch)


def test_term_names_yields_only_variables():
    terms = [Variable("x"), Constant(1), Variable("y")]
    assert list(term_names(terms)) == ["x", "y"]


def test_variables_are_ordered_for_sorting():
    assert sorted([Variable("b"), Variable("a")]) == [Variable("a"), Variable("b")]
