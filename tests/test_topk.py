"""Tests for diversified top-k selection over bounded answers."""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.topk import (
    constant_score,
    diversified_answer,
    diversity_objective,
    top_k_diversified,
)
from repro.core.approximation import normalized_hamming
from repro.engine.session import BoundedEngine
from repro.errors import EvaluationError
from repro.workloads import graph_search as gs

ROWS = [
    ("a", 1, "x"),
    ("a", 1, "y"),
    ("a", 2, "x"),
    ("b", 3, "z"),
    ("c", 4, "w"),
]


def score_by_rank(row: tuple) -> float:
    return float(row[1])


def test_top_k_returns_k_rows():
    result = top_k_diversified(ROWS, k=3, score=score_by_rank)
    assert len(result) == 3
    assert result.candidates == len(ROWS)
    assert len(set(result.rows)) == 3


def test_top_k_k_larger_than_candidates():
    result = top_k_diversified(ROWS, k=50)
    assert len(result) == len(ROWS)


def test_top_k_zero_and_empty():
    assert len(top_k_diversified(ROWS, k=0)) == 0
    assert len(top_k_diversified([], k=3)) == 0


def test_pure_relevance_ranking():
    result = top_k_diversified(ROWS, k=2, score=score_by_rank, diversity_weight=0.0)
    assert result.rows[0] == ("c", 4, "w")
    assert result.rows[1] == ("b", 3, "z")


def test_pure_diversity_prefers_spread_rows():
    # With λ = 1 the second pick maximises distance from the first; the
    # near-duplicate of the seed row is picked last.
    result = top_k_diversified(ROWS, k=3, score=score_by_rank, diversity_weight=1.0)
    assert ("a", 1, "y") not in result.rows[:2] or ("a", 1, "x") not in result.rows[:2]


def test_diversified_beats_duplicates():
    """Diversification avoids returning three near-identical answers."""
    rows = [("a", 1), ("a", 2), ("a", 3), ("b", 1), ("c", 1)]
    plain = top_k_diversified(rows, k=3, diversity_weight=0.0)
    diverse = top_k_diversified(rows, k=3, diversity_weight=0.8)
    plain_first = {row[0] for row in plain.rows}
    diverse_first = {row[0] for row in diverse.rows}
    assert len(diverse_first) >= len(plain_first)


def test_objective_matches_manual_computation():
    rows = [("a", 1), ("b", 2)]
    objective = diversity_objective(rows, constant_score, normalized_hamming, 0.5)
    assert objective == pytest.approx(0.5 * 2 + 0.5 * 1.0)


def test_invalid_parameters_rejected():
    with pytest.raises(EvaluationError):
        top_k_diversified(ROWS, k=-1)
    with pytest.raises(EvaluationError):
        top_k_diversified(ROWS, k=2, diversity_weight=1.5)


def test_deterministic_tie_breaking():
    first = top_k_diversified(ROWS, k=4)
    second = top_k_diversified(list(reversed(ROWS)), k=4)
    assert first.rows == second.rows


def test_diversified_answer_through_engine():
    instance = gs.generate(num_persons=200, num_movies=120, seed=13, planted_answers=4)
    engine = BoundedEngine(instance.database, gs.access_schema(), gs.views())
    answer = diversified_answer(engine, gs.query_q0(), k=2)
    assert answer.used_bounded_plan
    assert answer.tuples_scanned == 0
    assert len(answer) <= 2
    full = engine.answer(gs.query_q0()).rows
    assert set(answer.rows) <= set(full)


@settings(max_examples=25, deadline=None)
@given(
    rows=st.lists(
        st.tuples(st.integers(0, 5), st.integers(0, 5)), min_size=0, max_size=12
    ),
    k=st.integers(min_value=0, max_value=6),
    weight=st.floats(min_value=0.0, max_value=1.0),
)
def test_property_selection_is_subset_and_sized(rows, k, weight):
    result = top_k_diversified(rows, k=k, diversity_weight=weight)
    unique = {tuple(r) for r in rows}
    assert len(result) == min(k, len(unique))
    assert set(result.rows) <= unique
    assert len(set(result.rows)) == len(result.rows)
