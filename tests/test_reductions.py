"""Tests validating the lower-bound reduction gadgets against brute force.

These tests run the decision procedures on the reduction instances built from
tiny propositional formulas and check that the outcome agrees with the
formula's satisfiability — i.e. the reductions behave exactly as the proofs
of Theorem 3.4 and Proposition 4.5 claim.
"""

import pytest

from repro.algebra.evaluation import evaluate_cq
from repro.core.bounded_output import has_bounded_output
from repro.core.element_queries import ElementQueryBudget
from repro.core.equivalence import a_equivalent
from repro.core.plans import CQ
from repro.core.vbrp import decide_vbrp
from repro.workloads import reductions as red


# --------------------------------------------------------------------------- #
# Formulas and the Figure 2 gadgets
# --------------------------------------------------------------------------- #


def test_formula_satisfiability_bruteforce():
    assert red.satisfiable_example().is_satisfiable()
    assert not red.unsatisfiable_example().is_satisfiable()
    tautology_ish = red.formula(1, [[(0, False), (0, True)]])
    assert tautology_ish.is_satisfiable()


def test_formula_validation():
    with pytest.raises(Exception):
        red.formula(1, [[(1, False)]])  # variable index out of range
    with pytest.raises(Exception):
        red.formula(1, [[]])  # empty clause


def test_figure2_database_matches_truth_tables():
    db = red.figure2_database()
    assert len(db.relation(red.R_OR)) == 4
    assert len(db.relation(red.R_AND)) == 4
    assert len(db.relation(red.R_NOT)) == 2
    assert len(db.relation(red.R01)) == 2
    # The gadget access constraints hold on the intended instance.
    from repro.core.access import AccessSchema

    assert db.satisfies(AccessSchema(red.gadget_access_constraints()))


def test_encode_formula_evaluates_truthfully_on_figure2():
    """The CQ gate encoding agrees with direct formula evaluation."""
    db = red.figure2_database()
    for phi in (red.satisfiable_example(), red.unsatisfiable_example()):
        encoding = red.encode_formula(phi)
        from repro.algebra.cq import ConjunctiveQuery

        query = ConjunctiveQuery(
            head=tuple(encoding.variables) + (encoding.output,),
            atoms=encoding.atoms,
            name="gates",
        )
        rows = evaluate_cq(query, db.facts)
        seen = {}
        for row in rows:
            assignment = tuple(bool(v) for v in row[: phi.num_variables])
            output = bool(row[-1])
            # Only Boolean assignments are relevant on the Figure 2 instance.
            if all(v in (0, 1) for v in row[: phi.num_variables]):
                seen[assignment] = output
        for assignment, output in seen.items():
            assert output == phi.evaluate(assignment)


# --------------------------------------------------------------------------- #
# Theorem 3.4: BOP reduction
# --------------------------------------------------------------------------- #


@pytest.mark.parametrize(
    "phi",
    [red.unsatisfiable_example(), red.formula(1, [[(0, False)]]), red.satisfiable_example()],
    ids=["unsat", "single_positive", "sat_two_vars"],
)
def test_bop_reduction_agrees_with_satisfiability(phi):
    instance = red.bop_reduction(phi)
    budget = ElementQueryBudget(max_partitions=5_000_000, max_element_queries=1_000_000)
    bounded = has_bounded_output(
        instance.query, instance.access_schema, instance.schema, budget
    )
    assert bounded == instance.expected_bounded == (not phi.is_satisfiable())


def test_bop_reduction_structure():
    instance = red.bop_reduction(red.unsatisfiable_example())
    assert instance.query.head_arity == 1
    assert red.R_O in instance.query.relation_names
    assert any(c.relation == red.R_O for c in instance.access_schema)


# --------------------------------------------------------------------------- #
# Proposition 4.5: VBRP(CQ) with FD-only access schema, M = 1
# --------------------------------------------------------------------------- #


@pytest.mark.parametrize(
    "phi",
    [red.satisfiable_example(), red.unsatisfiable_example()],
    ids=["sat", "unsat"],
)
def test_prop45_reduction_agrees_with_satisfiability(phi):
    instance = red.prop45_reduction(phi)
    assert instance.access_schema.is_fd_only
    result = decide_vbrp(
        instance.query,
        instance.views,
        instance.access_schema,
        instance.schema,
        max_size=instance.max_size,
        language=CQ,
    )
    assert result.has_rewriting == instance.expected_rewriting == phi.is_satisfiable()


def test_prop45_equivalence_check_directly():
    """The reduction's core claim: V ≡_A Q iff the formula is satisfiable."""
    for phi, expected in ((red.satisfiable_example(), True), (red.unsatisfiable_example(), False)):
        instance = red.prop45_reduction(phi)
        view = instance.views.view("Vqc")
        assert (
            a_equivalent(
                view.as_ucq(), instance.query, instance.access_schema, instance.schema
            )
            == expected
        )


def test_random_formula_generator_is_deterministic():
    one = red.random_formula(3, 4, seed=9)
    two = red.random_formula(3, 4, seed=9)
    assert one == two
    assert len(one.clauses) == 4
