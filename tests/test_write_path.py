"""Tests for the first-class write path: delta streams, ``QueryService.apply``,
dependency-tracked plan-cache invalidation and delta-consuming backends."""

from __future__ import annotations

import pytest

from repro.algebra.parser import parse_cq, parse_ucq
from repro.algebra.schema import schema_from_spec
from repro.algebra.views import View, ViewSet
from repro.core.access import AccessSchema
from repro.engine.service import QueryService, ViewMaintainer
from repro.storage.deltas import DeltaStream
from repro.storage.instance import Database
from repro.storage.updates import Deletion, Insertion, UpdateBatch, random_update_batch
from repro.workloads import graph_search as gs


# --------------------------------------------------------------------------- #
# DeltaStream semantics
# --------------------------------------------------------------------------- #


def test_delta_stream_nets_out_cancelling_updates():
    stream = DeltaStream()
    stream.record_insert("R", (1, 2))
    stream.record_delete("R", (1, 2))  # inserted in this txn: cancels
    stream.record_delete("R", (3, 4))
    stream.record_insert("R", (3, 4))  # was present before: cancels
    assert stream.is_empty
    assert stream.applied == 4  # effective ops are still counted
    assert stream.relations == ()


def test_delta_stream_orders_relations_by_first_touch():
    stream = DeltaStream()
    stream.record_insert("S", (1,))
    stream.record_delete("R", (2, 2))
    stream.record_insert("S", (3,))
    assert stream.relations == ("S", "R")
    assert set(stream.inserted("S")) == {(1,), (3,)}
    assert stream.deleted("R") == ((2, 2),)


def test_database_apply_notifies_subscribers_once_per_transaction():
    schema = schema_from_spec({"R": ("a", "b")})
    database = Database(schema, {"R": {(1, 10)}})

    calls = []

    class Observer:
        def on_delta(self, stream):
            calls.append(stream)

    observer = Observer()
    database.subscribe(observer)
    stream = database.apply(
        UpdateBatch([Insertion("R", (2, 20)), Deletion("R", (1, 10))])
    )
    assert len(calls) == 1 and calls[0] is stream
    assert set(stream.inserted("R")) == {(2, 20)}
    # A batch that nets to nothing does not notify at all.
    database.apply(UpdateBatch([Insertion("R", (2, 20))]))  # already present
    assert len(calls) == 1


def test_database_apply_admit_predicate_skips_and_counts():
    schema = schema_from_spec({"R": ("a", "b")})
    database = Database(schema, {"R": {(1, 10)}})
    stream = database.apply(
        UpdateBatch([Insertion("R", (1, 11)), Insertion("R", (2, 20))]),
        admit=lambda update: update.row[0] != 1,
    )
    assert stream.skipped_inadmissible == 1
    assert (1, 11) not in database.relation("R")
    assert (2, 20) in database.relation("R")


def test_database_apply_notifies_partial_stream_on_mid_batch_error():
    """An exception mid-batch must still deliver the partial delta: the
    earlier updates ARE applied, and observers going stale would be silent."""
    from repro.errors import SchemaError

    schema = schema_from_spec({"R": ("a", "b")})
    database = Database(schema)
    streams = []

    class Observer:
        def on_delta(self, stream):
            streams.append(stream)

    observer = Observer()
    database.subscribe(observer)
    with pytest.raises(SchemaError):
        database.apply(
            [Insertion("R", (1, 2)), Insertion("R", (9,))]  # second: bad arity
        )
    assert (1, 2) in database.relation("R")
    assert len(streams) == 1 and streams[0].inserted("R") == ((1, 2),)


def test_sqlite_delta_replay_handles_none_values():
    """Deletes in the SQLite mirror must be null-safe (IS, not =)."""
    schema = schema_from_spec({"R": ("a", "b")})
    database = Database(schema, {"R": {(None, 1), (2, 3)}})
    service = QueryService(database, AccessSchema(()), backend="sqlite")
    assert service.baseline("Q(a, b) :- R(a, b)", backend="sqlite").rows == {
        (None, 1),
        (2, 3),
    }
    service.apply(UpdateBatch([Deletion("R", (None, 1))]))
    assert service.baseline("Q(a, b) :- R(a, b)", backend="sqlite").rows == {(2, 3)}


def test_incremental_view_cache_shim_tolerates_no_op_updates():
    """The caller-driven shim cannot know an update was a no-op; its DRed
    (set-semantics) maintenance must stay exact regardless."""
    from repro.engine.maintenance import IncrementalViewCache

    schema = schema_from_spec({"R": ("a", "b"), "S": ("b", "c")})
    database = Database(schema, {"R": {(1, 2)}, "S": {(2, 3)}})
    views = ViewSet((View("V", parse_cq("V(x, z) :- R(x, y), S(y, z)")),))
    cache = IncrementalViewCache(views, database)
    assert cache.rows("V") == {(1, 3)}
    # No-op: the row is already present; a careless caller reports it anyway.
    cache.apply(Insertion("R", (1, 2)))
    assert cache.verify()
    # The later real deletion must actually remove the view row.
    database.relation("R").discard((1, 2))
    cache.apply(Deletion("R", (1, 2)))
    assert cache.rows("V") == frozenset()
    assert cache.verify()


# --------------------------------------------------------------------------- #
# QueryService.apply: the native write API
# --------------------------------------------------------------------------- #


@pytest.fixture()
def gs_service():
    instance = gs.generate(num_persons=250, num_movies=140, seed=29)
    service = QueryService(instance.database, gs.access_schema(), gs.views())
    return instance, service


def test_apply_keeps_answers_identical_to_baseline(gs_service):
    instance, service = gs_service
    batch = random_update_batch(
        instance.database, size=80, seed=31, access_schema=gs.access_schema()
    )
    report = service.apply(batch)
    assert report.applied > 0
    answer = service.query(gs.query_q0())
    assert answer.used_bounded_plan
    assert answer.rows == service.baseline(gs.query_q0()).rows
    assert service.maintainer.verify()


def test_apply_enforces_bounded_admissibility(gs_service):
    _instance, service = gs_service
    # rating(mid -> rank, 1): a second rating for an existing movie violates A.
    existing = next(iter(service.database.relation("rating")))
    report = service.apply(
        UpdateBatch([Insertion("rating", (existing[0], existing[1] + 100))])
    )
    assert report.skipped_inadmissible == 1 and report.applied == 0
    assert service.database.satisfies(service.access_schema)
    # Without enforcement the same update goes through.
    report = service.apply(
        UpdateBatch([Insertion("rating", (existing[0], existing[1] + 100))]),
        enforce_admissible=False,
    )
    assert report.applied == 1
    service.apply(UpdateBatch([Deletion("rating", (existing[0], existing[1] + 100))]))


def test_apply_reports_view_deltas(gs_service):
    _instance, service = gs_service
    nasa_pid = next(
        row[0] for row in service.database.relation("person") if row[2] == "NASA"
    )
    report = service.apply(
        UpdateBatch(
            [
                Insertion("movie", ("m_fresh", "t", "Universal", "2014")),
                Insertion("like", (nasa_pid, "m_fresh", "movie")),
            ]
        )
    )
    v1 = next(delta for delta in report.view_deltas if delta.view == "V1")
    assert ("m_fresh",) in v1.added
    assert service.maintainer.rows("V1") == service.maintainer.recompute()["V1"]
    service.apply(
        UpdateBatch(
            [
                Deletion("movie", ("m_fresh", "t", "Universal", "2014")),
                Deletion("like", (nasa_pid, "m_fresh", "movie")),
            ]
        )
    )
    assert service.maintainer.verify()


def test_external_writers_keep_a_subscribed_service_fresh(gs_service):
    instance, service = gs_service
    before = service.query(gs.query_q0()).rows
    batch = random_update_batch(
        instance.database, size=40, seed=37, access_schema=gs.access_schema()
    )
    # The write bypasses the service entirely: storage-level transaction.
    batch.apply_to(instance.database)
    answer = service.query(gs.query_q0())
    assert answer.rows == service.baseline(gs.query_q0()).rows
    assert service.maintainer.verify()
    batch.inverted().apply_to(instance.database)
    assert service.query(gs.query_q0()).rows == before


# --------------------------------------------------------------------------- #
# Dependency-tracked plan-cache invalidation
# --------------------------------------------------------------------------- #


def test_untouched_relations_keep_their_cached_plans(gs_service):
    _instance, service = gs_service
    movie_query = "Q(mid) :- movie(mid, t, 'Universal', '2014'), rating(mid, 5)"
    assert not service.query(movie_query).cache_hit
    assert service.query(movie_query).cache_hit

    # The batch touches only person: movie/rating plans must survive.
    person = next(iter(service.database.relation("person")))
    report = service.apply(
        UpdateBatch(
            [
                Insertion("person", ("p_cache_test", "fresh", "ESA")),
                Deletion("person", person),
            ]
        )
    )
    assert report.applied == 2
    assert service.query(movie_query).cache_hit
    service.apply(
        UpdateBatch(
            [
                Deletion("person", ("p_cache_test", "fresh", "ESA")),
                Insertion("person", person),
            ]
        )
    )


def test_touched_relations_evict_their_cached_plans(gs_service):
    _instance, service = gs_service
    movie_query = "Q(mid) :- movie(mid, t, 'Sony', '2013'), rating(mid, 4)"
    service.query(movie_query)
    assert service.query(movie_query).cache_hit
    service.apply(
        UpdateBatch(
            [
                Insertion("movie", ("m_evict", "t", "Sony", "2013")),
                Insertion("rating", ("m_evict", 4)),
            ]
        )
    )
    answer = service.query(movie_query)
    assert not answer.cache_hit  # the plan read movie: evicted
    assert ("m_evict",) in answer.rows
    service.apply(
        UpdateBatch(
            [
                Deletion("movie", ("m_evict", "t", "Sony", "2013")),
                Deletion("rating", ("m_evict", 4)),
            ]
        )
    )


def test_view_scanning_plans_are_evicted_when_view_base_relations_change(gs_service):
    _instance, service = gs_service
    # Q0's bounded plan scans V1 (person ⋈ movie ⋈ like): a person-only write
    # must evict it even though the query's own atoms include person anyway;
    # check via a plan whose *only* dependence on person is through the view.
    service.query(gs.query_q0())
    assert service.query(gs.query_q0()).cache_hit
    person = ("p_view_dep", "n", "NASA")
    service.apply(UpdateBatch([Insertion("person", person)]))
    assert not service.query(gs.query_q0()).cache_hit
    service.apply(UpdateBatch([Deletion("person", person)]))


def test_provider_only_refresh_keeps_plan_cache_and_prepared_plans(gs_service):
    _instance, service = gs_service
    prepared = service.prepare("Q(mid) :- movie(mid, t, :studio, '2014'), rating(mid, 5)")
    movie_query = "Q(mid) :- movie(mid, t, 'Universal', '2014'), rating(mid, 5)"
    service.query(movie_query)
    before = len(service.plan_cache)
    assert before > 0

    # Swapping only the execution provider (same database, same views) keeps
    # every cached outcome and the prepared query's bound plan.
    service.refresh_data(provider=service.indexes)
    assert len(service.plan_cache) == before
    assert service.query(movie_query).cache_hit
    assert prepared.execute(studio="Universal").used_bounded_plan

    # Wholesale view-row swaps have unknown scope: conservative full clear.
    service.refresh_data(view_cache=service.view_cache)
    assert len(service.plan_cache) == 0


# --------------------------------------------------------------------------- #
# Backends consume the delta stream
# --------------------------------------------------------------------------- #


def test_sqlite_backend_consumes_deltas_without_reload(gs_service):
    _instance, service = gs_service
    q0 = gs.query_q0()
    assert service.query(q0, backend="sqlite").rows == service.query(q0).rows
    backend = service._backend("sqlite")
    connection = backend._connection
    assert connection is not None

    nasa_pid = next(
        row[0] for row in service.database.relation("person") if row[2] == "NASA"
    )
    service.apply(
        UpdateBatch(
            [
                Insertion("movie", ("m_sqlite", "t", "Universal", "2014")),
                Insertion("rating", ("m_sqlite", 5)),
                Insertion("like", (nasa_pid, "m_sqlite", "movie")),
            ]
        )
    )
    # Same connection object: the delta was applied in place, not reloaded.
    assert backend._connection is connection
    rows = service.query(q0, backend="sqlite").rows
    assert ("m_sqlite",) in rows
    assert rows == service.query(q0, backend="memory").rows

    service.apply(
        UpdateBatch(
            [
                Deletion("movie", ("m_sqlite", "t", "Universal", "2014")),
                Deletion("rating", ("m_sqlite", 5)),
                Deletion("like", (nasa_pid, "m_sqlite", "movie")),
            ]
        )
    )
    assert backend._connection is connection
    assert ("m_sqlite",) not in service.query(q0, backend="sqlite").rows


# --------------------------------------------------------------------------- #
# Maintenance strategies: counting where sound, DRed otherwise
# --------------------------------------------------------------------------- #


def test_counting_and_dred_mode_classification():
    schema = schema_from_spec({"E": ("src", "dst"), "L": ("node", "label")})
    database = Database(
        schema,
        {"E": {(1, 2), (2, 3), (3, 4)}, "L": {(1, "a"), (4, "b")}},
    )
    views = ViewSet(
        (
            View("V_join", parse_cq("V(x, y) :- E(x, z), L(z, y)")),  # counting
            View("V_path", parse_cq("V(x, z) :- E(x, y), E(y, z)")),  # self-join
            View(
                "V_union",
                parse_ucq("V(x) :- E(x, y); V(x) :- L(x, l)"),
            ),
        )
    )
    maintainer = ViewMaintainer(views, database, subscribe=True)
    assert maintainer.mode("V_join") == "counting"
    assert maintainer.mode("V_path") == "dred"
    assert maintainer.mode("V_union") == "dred"


def test_counting_mode_tracks_derivation_multiplicities():
    schema = schema_from_spec({"R": ("a", "b"), "S": ("b", "c")})
    database = Database(
        schema, {"R": {(1, 5), (2, 5)}, "S": {(5, 9)}}
    )
    views = ViewSet((View("V", parse_cq("V(c) :- R(a, b), S(b, c)")),))
    maintainer = ViewMaintainer(views, database, subscribe=True)
    assert maintainer.mode("V") == "counting"
    assert maintainer.counts("V") == {(9,): 2}  # two derivations of (9,)

    # Deleting one derivation decrements the count; the row survives.
    database.apply(UpdateBatch([Deletion("R", (1, 5))]))
    assert maintainer.counts("V") == {(9,): 1}
    assert maintainer.rows("V") == {(9,)}
    # Deleting the last derivation removes the row — no re-derivation needed.
    database.apply(UpdateBatch([Deletion("R", (2, 5))]))
    assert maintainer.counts("V") == {}
    assert maintainer.rows("V") == frozenset()
    assert maintainer.verify()


def test_self_join_view_falls_back_to_dred_and_stays_exact():
    schema = schema_from_spec({"E": ("src", "dst")})
    database = Database(schema, {"E": {(1, 2), (2, 3), (2, 4)}})
    views = ViewSet((View("P", parse_cq("P(x, z) :- E(x, y), E(y, z)")),))
    maintainer = ViewMaintainer(views, database, subscribe=True)
    assert maintainer.mode("P") == "dred"
    assert maintainer.rows("P") == {(1, 3), (1, 4)}

    # One inserted edge participates in both atom positions.
    database.apply(UpdateBatch([Insertion("E", (3, 1))]))
    assert maintainer.rows("P") == {(1, 3), (1, 4), (2, 1), (3, 2)}
    # Deleting an edge used by several paths over-deletes and re-derives:
    # (1,3) and (2,1) lose their only derivation, (3,2) keeps one through
    # (3,1),(1,2) and must survive the support check.
    database.apply(UpdateBatch([Deletion("E", (2, 3))]))
    assert maintainer.rows("P") == {(1, 4), (3, 2)}
    assert maintainer.verify()


def test_multi_relation_batch_is_telescoped_exactly():
    """Inserting a joining pair in ONE batch must count the derivation once."""
    schema = schema_from_spec({"R": ("a", "b"), "S": ("b", "c")})
    database = Database(schema, {"R": {(0, 0)}, "S": {(0, 1)}})
    views = ViewSet((View("V", parse_cq("V(a, c) :- R(a, b), S(b, c)")),))
    maintainer = ViewMaintainer(views, database, subscribe=True)
    database.apply(
        UpdateBatch([Insertion("R", (7, 8)), Insertion("S", (8, 9))])
    )
    assert maintainer.counts("V")[(7, 9)] == 1
    # Removing either side alone must remove the row (count 1, not 2).
    database.apply(UpdateBatch([Deletion("S", (8, 9))]))
    assert (7, 9) not in maintainer.rows("V")
    assert maintainer.verify()

    # And a batch deleting both sides of a pre-existing derivation at once.
    database.apply(UpdateBatch([Deletion("R", (0, 0)), Deletion("S", (0, 1))]))
    assert maintainer.rows("V") == frozenset()
    assert maintainer.verify()


def test_boolean_view_rows_are_maintained():
    schema = schema_from_spec({"R": ("a", "b")})
    database = Database(schema, {"R": {(1, 1)}})
    views = ViewSet((View("B", parse_cq("B() :- R(x, x)")),))
    maintainer = ViewMaintainer(views, database, subscribe=True)
    assert maintainer.rows("B") == {()}
    database.apply(UpdateBatch([Deletion("R", (1, 1))]))
    assert maintainer.rows("B") == frozenset()
    database.apply(UpdateBatch([Insertion("R", (5, 5)), Insertion("R", (5, 6))]))
    assert maintainer.rows("B") == {()}
    assert maintainer.verify()
