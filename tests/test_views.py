"""Unit tests for views and view sets."""

import pytest

from repro.algebra.atoms import RelationAtom
from repro.algebra.cq import ConjunctiveQuery
from repro.algebra.fo import atom, conj, exists, neg
from repro.algebra.schema import schema_from_spec
from repro.algebra.terms import Constant, Variable
from repro.algebra.ucq import UnionQuery
from repro.algebra.views import View, ViewSet, views_from_mapping
from repro.errors import QueryError, SchemaError, UnsupportedQueryError

X, Y = Variable("x"), Variable("y")


def cq_view_definition():
    return ConjunctiveQuery(
        head=(X,), atoms=(RelationAtom("R", (X, Y)),), name="def"
    )


def test_cq_view_defaults():
    view = View("V", cq_view_definition())
    assert view.arity == 1
    assert view.language == "CQ"
    assert view.attributes == ("x",)
    assert view.relation_schema().name == "V"
    assert view.as_ucq().is_single_cq
    assert view.head_variables == (X,)


def test_ucq_view_language():
    union = UnionQuery((cq_view_definition(), cq_view_definition()))
    view = View("V", union)
    assert view.language == "UCQ"
    assert len(view.as_ucq().disjuncts) == 2


def test_fo_view_requires_head_and_has_no_ucq_form():
    definition = conj(atom("R", X, Y), neg(atom("S", X)))
    with pytest.raises(QueryError):
        View("V", definition)
    view = View("V", definition, head=(X, Y))
    assert view.language == "FO"
    with pytest.raises(UnsupportedQueryError):
        view.as_ucq()
    assert view.as_fo() is definition


def test_fo_view_head_must_cover_free_variables():
    definition = atom("R", X, Y)
    with pytest.raises(QueryError):
        View("V", definition, head=(X,))


def test_view_head_arity_must_match_definition():
    with pytest.raises(QueryError):
        View("V", cq_view_definition(), head=(X, Y))


def test_view_attributes_for_constant_head_positions():
    definition = ConjunctiveQuery(
        head=(X, Constant(1)), atoms=(RelationAtom("R", (X, Y)),)
    )
    view = View("V", definition)
    assert view.attributes[0] == "x"
    assert view.attributes[1].startswith("V_a")


def test_view_as_fo_of_cq_definition_evaluates_identically():
    from repro.algebra.evaluation import evaluate_cq
    from repro.algebra.fo import evaluate_fo

    facts = {"R": {(1, 2), (3, 4)}}
    view = View("V", cq_view_definition())
    assert evaluate_fo(view.as_fo(), facts, head=(X,)) == evaluate_cq(
        cq_view_definition(), facts
    )


def test_viewset_lookup_and_extended_schema():
    views = ViewSet([View("V1", cq_view_definition())])
    assert "V1" in views
    assert "V2" not in views
    assert views.view("V1").name == "V1"
    with pytest.raises(SchemaError):
        views.view("V2")
    base = schema_from_spec({"R": ("a", "b"), "S": ("a",)})
    extended = views.extended_schema(base)
    assert "V1" in extended
    assert extended.relation("V1").attributes == ("x",)
    assert views.languages() == {"CQ"}


def test_viewset_rejects_conflicting_redefinition():
    views = ViewSet([View("V1", cq_view_definition())])
    views.add(View("V1", cq_view_definition()))  # identical
    other = ConjunctiveQuery(head=(Y,), atoms=(RelationAtom("S", (Y,)),))
    with pytest.raises(SchemaError):
        views.add(View("V1", other))


def test_views_from_mapping():
    views = views_from_mapping({"A": cq_view_definition()})
    assert views.names == ("A",)
