"""Tests for bounded incremental maintenance of views and indices."""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.algebra.parser import parse_cq
from repro.algebra.views import View, ViewSet
from repro.core.access import AccessConstraint, AccessSchema
from repro.algebra.schema import schema_from_spec
from repro.engine.maintenance import (
    IncrementalViewCache,
    MaintainedEngine,
    MaintainedIndexSet,
    MaintenanceStats,
)
from repro.errors import UnsupportedQueryError
from repro.storage.instance import Database
from repro.storage.updates import Deletion, Insertion, UpdateBatch, random_update_batch
from repro.workloads import graph_search as gs


# --------------------------------------------------------------------------- #
# MaintainedIndexSet
# --------------------------------------------------------------------------- #

SCHEMA = schema_from_spec({"R": ("a", "b"), "S": ("c", "d")})
ACCESS = AccessSchema(
    (
        AccessConstraint("R", ("a",), ("b",), 3),
        AccessConstraint("S", ("c",), ("d",), 2),
    )
)


def make_db():
    return Database(
        SCHEMA,
        {"R": {(1, 10), (1, 11), (2, 20)}, "S": {(5, 50), (6, 60)}},
    )


def test_index_fetch_matches_initial_contents():
    index_set = MaintainedIndexSet(make_db(), ACCESS)
    constraint = ACCESS.constraints[0]
    assert index_set.fetch(constraint, (1,)) == {(1, 10), (1, 11)}
    assert index_set.fetch(constraint, (99,)) == frozenset()


def test_index_insert_and_delete_maintained():
    database = make_db()
    index_set = MaintainedIndexSet(database, ACCESS)
    constraint = ACCESS.constraints[0]

    database.add("R", (2, 21))
    index_set.apply(Insertion("R", (2, 21)))
    assert index_set.fetch(constraint, (2,)) == {(2, 20), (2, 21)}

    database.relation("R")._tuples.discard((2, 20))
    index_set.apply(Deletion("R", (2, 20)))
    assert index_set.fetch(constraint, (2,)) == {(2, 21)}

    database.relation("R")._tuples.discard((2, 21))
    index_set.apply(Deletion("R", (2, 21)))
    assert index_set.fetch(constraint, (2,)) == frozenset()


def test_index_admissibility_check_is_bucket_local():
    index_set = MaintainedIndexSet(make_db(), ACCESS)
    # (1, *) already has 2 distinct b-values; bound is 3.
    assert index_set.admissible(Insertion("R", (1, 12)))
    index_set.apply(Insertion("R", (1, 12)))
    assert not index_set.admissible(Insertion("R", (1, 13)))
    # Re-inserting an existing value never violates the bound.
    assert index_set.admissible(Insertion("R", (1, 10)))
    assert index_set.admissible(Deletion("R", (1, 10)))


# --------------------------------------------------------------------------- #
# IncrementalViewCache
# --------------------------------------------------------------------------- #


def view_pairs():
    return View("Vpairs", parse_cq("V(a, d) :- R(a, b), S(b, d)"))


def pairs_db():
    return Database(
        SCHEMA,
        {"R": {(1, 5), (2, 6)}, "S": {(5, 50), (6, 60), (7, 70)}},
    )


def test_view_cache_initial_materialisation():
    cache = IncrementalViewCache(ViewSet((view_pairs(),)), pairs_db())
    assert cache.rows("Vpairs") == {(1, 50), (2, 60)}


def test_view_cache_insertion_adds_new_rows():
    database = pairs_db()
    cache = IncrementalViewCache(ViewSet((view_pairs(),)), database)
    database.add("R", (3, 7))
    deltas = cache.apply(Insertion("R", (3, 7)))
    assert cache.rows("Vpairs") == {(1, 50), (2, 60), (3, 70)}
    assert any(delta.added == {(3, 70)} for delta in deltas)
    assert cache.verify()


def test_view_cache_deletion_removes_unsupported_rows():
    database = pairs_db()
    cache = IncrementalViewCache(ViewSet((view_pairs(),)), database)
    database.relation("S")._tuples.discard((5, 50))
    deltas = cache.apply(Deletion("S", (5, 50)))
    assert cache.rows("Vpairs") == {(2, 60)}
    assert any(delta.removed == {(1, 50)} for delta in deltas)
    assert cache.verify()


def test_view_cache_deletion_keeps_rows_with_other_support():
    database = pairs_db()
    database.add("R", (1, 6))  # second derivation for a=1 via S(6, 60)
    cache = IncrementalViewCache(ViewSet((view_pairs(),)), database)
    database.relation("R")._tuples.discard((1, 5))
    cache.apply(Deletion("R", (1, 5)))
    # (1, 60) still derivable through R(1,6); (1, 50) is gone.
    assert cache.rows("Vpairs") == {(1, 60), (2, 60)}
    assert cache.verify()


def test_view_cache_rejects_fo_views():
    from repro.algebra.fo import atom, neg, conj
    from repro.algebra.terms import Variable

    x = Variable("x")
    fo_view = View("Vneg", conj(atom("R", x, x), neg(atom("S", x, x))), head=(x,))
    with pytest.raises(UnsupportedQueryError):
        IncrementalViewCache(ViewSet((fo_view,)), pairs_db())


def test_view_cache_stats_accounting():
    database = pairs_db()
    cache = IncrementalViewCache(ViewSet((view_pairs(),)), database)
    stats = MaintenanceStats()
    database.add("R", (3, 7))
    cache.apply(Insertion("R", (3, 7)), stats)
    assert stats.updates == 1
    assert stats.delta_queries >= 1
    assert stats.rows_added == 1


# --------------------------------------------------------------------------- #
# MaintainedEngine end-to-end
# --------------------------------------------------------------------------- #


@pytest.fixture(scope="module")
def gs_setup():
    instance = gs.generate(num_persons=200, num_movies=120, seed=17)
    engine = MaintainedEngine(instance.database, gs.access_schema(), gs.views())
    return instance, engine


def test_maintained_engine_answers_match_baseline_after_updates(gs_setup):
    instance, engine = gs_setup
    query = gs.query_q0()
    batch = random_update_batch(
        instance.database, size=40, seed=23, access_schema=gs.access_schema()
    )
    report = engine.apply(batch)
    assert report.applied + report.skipped_inadmissible <= len(batch)

    answer = engine.answer(query)
    baseline = engine.baseline(query)
    assert answer.rows == baseline.rows
    assert answer.used_bounded_plan
    assert engine.verify_caches()


def test_maintained_engine_skips_inadmissible_insertions(gs_setup):
    _instance, engine = gs_setup
    # rating(mid -> rank, 1): a second rating for an existing movie violates A.
    existing = next(iter(engine.database.relation("rating")))
    bad = Insertion("rating", (existing[0], existing[1] + 100))
    report = engine.apply(UpdateBatch([bad]))
    assert report.skipped_inadmissible == 1
    assert report.applied == 0
    assert engine.database.satisfies(engine.access_schema)


def test_maintained_engine_insert_new_answer_appears():
    instance = gs.generate(num_persons=80, num_movies=50, seed=3)
    engine = MaintainedEngine(instance.database, gs.access_schema(), gs.views())
    before = engine.answer(gs.query_q0()).rows

    new_movie = "m_planted_new"
    nasa_person = next(
        row for row in engine.database.relation("person") if row[2] == "NASA"
    )
    batch = UpdateBatch(
        [
            Insertion("movie", (new_movie, "fresh", "Universal", "2014")),
            Insertion("rating", (new_movie, 5)),
            Insertion("like", (nasa_person[0], new_movie, "movie")),
        ]
    )
    report = engine.apply(batch)
    assert report.applied == 3
    after = engine.answer(gs.query_q0())
    assert (new_movie,) in after.rows
    assert after.rows == before | {(new_movie,)}
    assert engine.verify_caches()


def test_maintained_engine_delete_removes_answer():
    instance = gs.generate(num_persons=80, num_movies=50, seed=3)
    engine = MaintainedEngine(instance.database, gs.access_schema(), gs.views())
    answers = sorted(engine.answer(gs.query_q0()).rows)
    assert answers, "generator plants at least one answer"
    victim_mid = answers[0][0]
    engine.apply(UpdateBatch([Deletion("rating", (victim_mid, 5))]))
    assert (victim_mid,) not in engine.answer(gs.query_q0()).rows
    assert engine.verify_caches()


@settings(max_examples=10, deadline=None)
@given(seed=st.integers(min_value=0, max_value=10_000))
def test_maintained_caches_always_match_recomputation(seed):
    """Property: after any admissible batch, incremental == recomputed."""
    database = pairs_db()
    cache = IncrementalViewCache(ViewSet((view_pairs(),)), database)
    batch = random_update_batch(database, size=12, seed=seed)
    for update in batch:
        relation = database.relation(update.relation)
        if isinstance(update, Insertion):
            if update.row in relation:
                continue
            database.add(update.relation, update.row)
        else:
            if update.row not in relation:
                continue
            relation._tuples.discard(update.row)
        cache.apply(update)
    assert cache.verify()


def test_maintained_engine_constructor_emits_deprecation_warning():
    with pytest.warns(DeprecationWarning, match="MaintainedEngine is deprecated"):
        MaintainedEngine(pairs_db(), AccessSchema(()), ViewSet(()))
