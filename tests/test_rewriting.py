"""Unit tests for plan -> query conversions and view unfolding."""

import pytest

from repro.algebra.atoms import RelationAtom
from repro.algebra.cq import ConjunctiveQuery
from repro.algebra.evaluation import evaluate_cq, evaluate_ucq
from repro.algebra.fo import evaluate_fo
from repro.algebra.schema import schema_from_spec
from repro.algebra.terms import Constant, Variable
from repro.algebra.views import View, ViewSet
from repro.core.plans import (
    AttributeEqualsAttribute,
    AttributeEqualsConstant,
    ConstantScan,
    DifferenceNode,
    FetchNode,
    ProductNode,
    ProjectNode,
    RenameNode,
    SelectNode,
    UnionNode,
    ViewScan,
)
from repro.core.rewriting import plan_to_cq, plan_to_fo, plan_to_ucq, unfold_view_atoms
from repro.errors import UnsupportedQueryError

SCHEMA = schema_from_spec({"R": ("a", "b"), "S": ("b", "c")})
X, Y, Z = Variable("x"), Variable("y"), Variable("z")

FACTS = {
    "R": {(1, 10), (1, 11), (2, 20)},
    "S": {(10, "p"), (20, "q"), (30, "r")},
}

VIEWS = ViewSet(
    [
        View(
            "V",
            ConjunctiveQuery(
                head=(X,), atoms=(RelationAtom("R", (X, Y)), RelationAtom("S", (Y, Z)))
            ),
        )
    ]
)


def fetch_r():
    return FetchNode(ConstantScan(1, attribute="a"), "R", ("a",), ("b",))


def test_constant_scan_expresses_constant_query():
    ucq = plan_to_ucq(ConstantScan(7, "c"), SCHEMA)
    assert evaluate_ucq(ucq, FACTS) == {(7,)}


def test_fetch_plan_expresses_anchored_atom():
    cq = plan_to_cq(fetch_r(), SCHEMA)
    assert evaluate_cq(cq, FACTS) == {(1, 10), (1, 11)}


def test_project_select_rename_pipeline():
    plan = ProjectNode(
        SelectNode(RenameNode(fetch_r(), {"b": "bb"}), (AttributeEqualsConstant("bb", 10),)),
        ("bb",),
    )
    cq = plan_to_cq(plan, SCHEMA)
    assert evaluate_cq(cq, FACTS) == {(10,)}


def test_empty_key_fetch_plan():
    plan = FetchNode(None, "S", (), ("b", "c"))
    cq = plan_to_cq(plan, SCHEMA)
    assert evaluate_cq(cq, FACTS) == FACTS["S"]


def test_product_and_attribute_selection():
    left = ProjectNode(fetch_r(), ("b",))
    right = RenameNode(FetchNode(None, "S", (), ("b", "c")), {"b": "b2", "c": "c2"})
    plan = SelectNode(ProductNode(left, right), (AttributeEqualsAttribute("b", "b2"),))
    cq = plan_to_cq(plan, SCHEMA)
    assert evaluate_cq(cq, FACTS) == {(10, 10, "p")}


def test_union_plan_yields_ucq():
    one = ProjectNode(fetch_r(), ("b",))
    other = ProjectNode(
        FetchNode(ConstantScan(2, attribute="a"), "R", ("a",), ("b",)), ("b",)
    )
    plan = UnionNode(one, other)
    ucq = plan_to_ucq(plan, SCHEMA)
    assert len(ucq.disjuncts) == 2
    assert evaluate_ucq(ucq, FACTS) == {(10,), (11,), (20,)}
    with pytest.raises(UnsupportedQueryError):
        plan_to_cq(plan, SCHEMA)


def test_view_scan_unfolded_and_not_unfolded():
    scan = ViewScan("V", ("x",))
    unfolded = plan_to_ucq(scan, SCHEMA, VIEWS, unfold_views=True)
    assert unfolded.relation_names == {"R", "S"}
    assert evaluate_ucq(unfolded, FACTS) == {(1,), (2,)}
    folded = plan_to_ucq(scan, SCHEMA, VIEWS, unfold_views=False)
    assert folded.relation_names == {"V"}


def test_difference_requires_fo_conversion():
    left = ProjectNode(fetch_r(), ("b",))
    right = ProjectNode(
        SelectNode(fetch_r(), (AttributeEqualsConstant("b", 11),)), ("b",)
    )
    plan = DifferenceNode(left, right)
    with pytest.raises(UnsupportedQueryError):
        plan_to_ucq(plan, SCHEMA)
    formula, head = plan_to_fo(plan, SCHEMA)
    head_vars = [t for t in head]
    answers = evaluate_fo(formula, FACTS, head=head_vars)
    assert answers == {(10,)}


def test_plan_to_fo_agrees_with_plan_to_ucq_on_positive_plans():
    plan = ProjectNode(fetch_r(), ("b",))
    ucq = plan_to_ucq(plan, SCHEMA)
    formula, head = plan_to_fo(plan, SCHEMA)
    assert evaluate_fo(formula, FACTS, head=list(head)) == evaluate_ucq(ucq, FACTS)


def test_plan_to_fo_unfolds_views():
    scan = ViewScan("V", ("x",))
    formula, head = plan_to_fo(scan, SCHEMA, VIEWS, unfold_views=True)
    assert formula.relation_names == {"R", "S"}
    assert evaluate_fo(formula, FACTS, head=list(head)) == {(1,), (2,)}


def test_negated_selection_only_in_fo():
    plan = SelectNode(fetch_r(), (AttributeEqualsConstant("b", 10, negated=True),))
    with pytest.raises(UnsupportedQueryError):
        plan_to_ucq(plan, SCHEMA)
    formula, head = plan_to_fo(plan, SCHEMA)
    # The first output term is the constant 1 (from the constant scan); only
    # variable output terms are enumerated by the active-domain evaluation.
    assert head[0] == Constant(1)
    variable_head = [t for t in head if isinstance(t, Variable)]
    assert evaluate_fo(formula, FACTS, head=variable_head) == {(11,)}


def test_unfold_view_atoms_in_queries():
    # Q(x) :- V(x), S(y0, 'p') over the extended schema.
    query = ConjunctiveQuery(
        head=(X,),
        atoms=(RelationAtom("V", (X,)), RelationAtom("S", (Y, Constant("p")))),
        name="QV",
    )
    unfolded = unfold_view_atoms(query, VIEWS)
    assert unfolded.relation_names == {"R", "S"}
    assert evaluate_ucq(unfolded, FACTS) == {(1,), (2,)}


def test_unfold_view_atoms_with_constant_argument():
    query = ConjunctiveQuery(head=(), atoms=(RelationAtom("V", (Constant(2),)),))
    unfolded = unfold_view_atoms(query, VIEWS)
    assert evaluate_ucq(unfolded, FACTS) == {()}
    query_miss = ConjunctiveQuery(head=(), atoms=(RelationAtom("V", (Constant(9),)),))
    assert evaluate_ucq(unfold_view_atoms(query_miss, VIEWS), FACTS) == set()
