"""Tests for CQ / UCQ minimisation (cores)."""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.algebra.containment import equivalent
from repro.algebra.cq import ConjunctiveQuery
from repro.algebra.parser import parse_cq, parse_ucq
from repro.algebra.schema import schema_from_spec
from repro.core.access import AccessConstraint, AccessSchema
from repro.core.minimization import (
    is_minimal,
    minimize_cq,
    minimize_ucq,
    minimize_under_fds,
)
from repro.errors import QueryError


def test_redundant_atom_removed():
    query = parse_cq("Q(x) :- R(x, y), R(x, z)")
    minimized = minimize_cq(query)
    assert len(minimized.atoms) == 1
    assert equivalent(minimized, query)


def test_non_redundant_join_kept():
    query = parse_cq("Q(x, z) :- R(x, y), R(y, z)")
    minimized = minimize_cq(query)
    assert len(minimized.atoms) == 2


def test_constants_block_folding():
    query = parse_cq("Q(x) :- R(x, 1), R(x, 2)")
    minimized = minimize_cq(query)
    assert len(minimized.atoms) == 2


def test_triangle_with_redundant_path():
    # R(x,y), R(y,z), R(x,z), R(x,w) — the last atom folds onto R(x,y)/R(x,z).
    query = parse_cq("Q(x) :- R(x, y), R(y, z), R(x, z), R(x, w)")
    minimized = minimize_cq(query)
    assert len(minimized.atoms) == 3
    assert equivalent(minimized, query)


def test_head_variables_never_dropped():
    query = parse_cq("Q(x, y) :- R(x, y), R(x, z)")
    minimized = minimize_cq(query)
    assert {v.name for v in minimized.head_variables} == {"x", "y"}
    assert equivalent(minimized, query)


def test_is_minimal():
    assert is_minimal(parse_cq("Q(x, z) :- R(x, y), R(y, z)"))
    assert not is_minimal(parse_cq("Q(x) :- R(x, y), R(x, z)"))


def test_unsatisfiable_query_returned_unchanged():
    query = parse_cq("Q(x) :- R(x, y), y = 1, y = 2")
    assert minimize_cq(query) is query


def test_minimize_ucq_drops_subsumed_disjunct():
    union = parse_ucq("Q(x) :- R(x, y) ; Q(x) :- R(x, 1)")
    minimized = minimize_ucq(union)
    # R(x,1) is contained in R(x,y): only the general disjunct survives.
    assert len(minimized.disjuncts) == 1
    assert equivalent(minimized, union)


def test_minimize_ucq_keeps_incomparable_disjuncts():
    union = parse_ucq("Q(x) :- R(x, 1) ; Q(x) :- S(x, 2)")
    assert len(minimize_ucq(union).disjuncts) == 2


def test_minimize_ucq_equivalent_disjuncts_keep_one():
    union = parse_ucq("Q(x) :- R(x, y) ; Q(x) :- R(x, z)")
    assert len(minimize_ucq(union).disjuncts) == 1


def test_minimize_under_fds():
    schema = schema_from_spec({"R": ("a", "b")})
    fds = AccessSchema((AccessConstraint("R", ("a",), ("b",), 1),))
    # The FD a -> b equates y and z, making the second atom redundant.
    query = parse_cq("Q(x) :- R(x, y), R(x, z)")
    minimized = minimize_under_fds(query, fds, schema)
    assert len(minimized.atoms) == 1


def test_minimize_under_fds_unsatisfiable_raises():
    schema = schema_from_spec({"R": ("a", "b")})
    fds = AccessSchema((AccessConstraint("R", ("a",), ("b",), 1),))
    query = parse_cq("Q() :- R(1, 1), R(1, 2)")
    with pytest.raises(QueryError):
        minimize_under_fds(query, fds, schema)


@settings(max_examples=30, deadline=None)
@given(
    atoms=st.lists(
        st.tuples(st.integers(min_value=0, max_value=3), st.integers(min_value=0, max_value=3)),
        min_size=1,
        max_size=4,
    )
)
def test_minimization_preserves_equivalence(atoms):
    """Property: the minimised query is always classically equivalent."""
    from repro.algebra.atoms import RelationAtom
    from repro.algebra.terms import Variable

    relation_atoms = tuple(
        RelationAtom("E", (Variable(f"v{a}"), Variable(f"v{b}"))) for a, b in atoms
    )
    head_variable = relation_atoms[0].terms[0]
    query = ConjunctiveQuery(head=(head_variable,), atoms=relation_atoms, name="Qp")
    minimized = minimize_cq(query)
    assert len(minimized.atoms) <= len(set(relation_atoms))
    assert equivalent(minimized, query)
