"""Tests for the size-bounded effective syntax (Theorem 5.2)."""

import pytest

from repro.algebra.fo import atom, conj, eq, evaluate_fo, exists
from repro.algebra.terms import Variable
from repro.core.size_bounded import (
    is_size_bounded,
    make_size_bounded,
    match_size_bounded,
    size_bound_of,
    size_bounded_guard,
)
from repro.errors import QueryError

X, Y = Variable("x"), Variable("y")

# Kept deliberately tiny: the active-domain evaluation of the universally
# quantified guard is exponential in (bound + 1) * |head|.
FACTS_SMALL = {"R": {(1, 10), (2, 20)}}
FACTS_BIG = {"R": {(1, 10), (2, 20), (3, 30), (4, 40)}}


def inner_query():
    """Q'(x) = ∃y R(x, y)."""
    return exists([Y], atom("R", X, Y))


def test_constructor_checks_head_covers_free_variables():
    with pytest.raises(QueryError):
        make_size_bounded(atom("R", X, Y), head=(X,), bound=2)
    with pytest.raises(QueryError):
        make_size_bounded(inner_query(), head=(X,), bound=-1)


def test_recogniser_accepts_constructed_queries():
    bounded = make_size_bounded(inner_query(), head=(X,), bound=3)
    assert is_size_bounded(bounded, head=(X,))
    assert size_bound_of(bounded, head=(X,)) == 3
    match = match_size_bounded(bounded, head=(X,))
    assert match is not None and match.inner == inner_query()


def test_recogniser_rejects_other_shapes():
    assert not is_size_bounded(inner_query(), head=(X,))
    assert not is_size_bounded(conj(inner_query(), eq(X, 1)), head=(X,))
    assert size_bound_of(atom("R", X, Y), head=(X, Y)) is None
    # A guard for a different inner query must not be accepted.
    other_guard = size_bounded_guard(atom("R", X, X), (X,), 3)
    franken = conj(inner_query(), other_guard)
    assert not is_size_bounded(franken, head=(X,))


def test_semantics_when_output_within_bound():
    bounded = make_size_bounded(inner_query(), head=(X,), bound=3)
    assert evaluate_fo(bounded, FACTS_SMALL, head=(X,)) == {(1,), (2,)}


def test_semantics_when_output_exceeds_bound():
    """When |Q'| > K the guard fails and the query returns the empty set —
    so the size-bounded query always has output at most K (Theorem 5.2(b))."""
    bounded = make_size_bounded(inner_query(), head=(X,), bound=2)
    assert evaluate_fo(bounded, FACTS_BIG, head=(X,)) == set()
    generous = make_size_bounded(inner_query(), head=(X,), bound=2)
    assert evaluate_fo(generous, FACTS_SMALL, head=(X,)) == {(1,), (2,)}


def test_bound_zero_means_always_empty_or_trivial():
    bounded = make_size_bounded(inner_query(), head=(X,), bound=0)
    assert evaluate_fo(bounded, FACTS_SMALL, head=(X,)) == set()
    assert size_bound_of(bounded, head=(X,)) == 0


def test_different_bounds_are_recognised():
    for bound in (1, 2, 4):
        q = make_size_bounded(inner_query(), head=(X,), bound=bound)
        assert size_bound_of(q, head=(X,)) == bound


def test_multi_variable_head():
    inner = atom("R", X, Y)
    bounded = make_size_bounded(inner, head=(X, Y), bound=2)
    assert is_size_bounded(bounded, head=(X, Y))
    assert size_bound_of(bounded, head=(X, Y)) == 2
    assert evaluate_fo(bounded, FACTS_SMALL, head=(X, Y)) == FACTS_SMALL["R"]
    # The recogniser rejects the same query read with a different head order.
    assert not is_size_bounded(bounded, head=(Y, X))
