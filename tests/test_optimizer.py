"""Tests for the heuristic bounded-plan builder (the engine's practical path)."""

import pytest

from repro.algebra.atoms import RelationAtom
from repro.algebra.cq import ConjunctiveQuery
from repro.algebra.schema import schema_from_spec
from repro.algebra.terms import Constant, Variable
from repro.algebra.ucq import UnionQuery
from repro.algebra.views import View, ViewSet
from repro.core.access import AccessConstraint, AccessSchema
from repro.core.conformance import conforms_to
from repro.core.equivalence import a_equivalent
from repro.core.rewriting import plan_to_ucq
from repro.engine.optimizer import build_bounded_plan, build_bounded_plan_ucq
from repro.errors import UnsupportedQueryError

SCHEMA = schema_from_spec({"R": ("a", "b"), "S": ("b", "c"), "U": ("u", "v")})
ACCESS = AccessSchema(
    (
        AccessConstraint("R", ("a",), ("b",), 2),
        AccessConstraint("S", ("b",), ("c",), 1),
    )
)
NO_VIEWS = ViewSet(())
X, Y, Z = Variable("x"), Variable("y"), Variable("z")


def test_builds_plan_for_anchored_chain_and_it_is_equivalent():
    query = ConjunctiveQuery(
        head=(Z,),
        atoms=(RelationAtom("R", (Constant(1), Y)), RelationAtom("S", (Y, Z))),
        name="chain",
    )
    outcome = build_bounded_plan(query, NO_VIEWS, ACCESS, SCHEMA)
    assert outcome.found
    plan = outcome.plan
    assert conforms_to(plan, ACCESS, SCHEMA, NO_VIEWS).conforms
    expressed = plan_to_ucq(plan, SCHEMA, NO_VIEWS)
    assert a_equivalent(expressed, query, ACCESS, SCHEMA)


def test_reports_unfetchable_atoms():
    query = ConjunctiveQuery(
        head=(Variable("v"),),
        atoms=(RelationAtom("U", (Variable("u"), Variable("v"))),),
        name="nocover",
    )
    outcome = build_bounded_plan(query, NO_VIEWS, ACCESS, SCHEMA)
    assert not outcome.found
    assert "cannot be fetched" in outcome.reason


def test_view_enables_plan_by_covering_atoms(gs_schema, gs_access, gs_views, gs_q0):
    """Example 1.1: Q0 needs V1 to cover the person/like atoms."""
    no_views_outcome = build_bounded_plan(gs_q0, ViewSet(()), gs_access, gs_schema)
    assert not no_views_outcome.found
    with_views = build_bounded_plan(gs_q0, gs_views, gs_access, gs_schema)
    assert with_views.found
    assert "V1" in with_views.plan.view_names()
    expressed = plan_to_ucq(with_views.plan, gs_schema, gs_views)
    assert a_equivalent(expressed, gs_q0, gs_access, gs_schema)


def test_view_as_pure_filter_keeps_equivalence():
    """A view that cannot replace atoms may still be joined in as a filter
    (Example 3.3(b)); the plan stays equivalent to the query."""
    view = View(
        "VS",
        ConjunctiveQuery(head=(Y,), atoms=(RelationAtom("S", (Y, Z)),), name="vs_def"),
    )
    query = ConjunctiveQuery(
        head=(Y,),
        atoms=(RelationAtom("R", (Constant(1), Y)), RelationAtom("S", (Y, Constant("c1")))),
        name="filtered",
    )
    outcome = build_bounded_plan(query, ViewSet((view,)), ACCESS, SCHEMA)
    assert outcome.found
    expressed = plan_to_ucq(outcome.plan, SCHEMA, ViewSet((view,)))
    assert a_equivalent(expressed, query, ACCESS, SCHEMA)


def test_max_size_limits_plan():
    query = ConjunctiveQuery(
        head=(Y,), atoms=(RelationAtom("R", (Constant(1), Y)),), name="small"
    )
    outcome = build_bounded_plan(query, NO_VIEWS, ACCESS, SCHEMA, max_size=1)
    assert not outcome.found and "nodes > M" in outcome.reason
    assert build_bounded_plan(query, NO_VIEWS, ACCESS, SCHEMA, max_size=10).found


def test_duplicate_head_variables_rejected():
    query = ConjunctiveQuery(
        head=(Y, Y), atoms=(RelationAtom("R", (Constant(1), Y)),)
    )
    with pytest.raises(UnsupportedQueryError):
        build_bounded_plan(query, NO_VIEWS, ACCESS, SCHEMA)


def test_constant_head_positions_are_supported():
    query = ConjunctiveQuery(
        head=(Constant("tag"), Y),
        atoms=(RelationAtom("R", (Constant(1), Y)),),
    )
    outcome = build_bounded_plan(query, NO_VIEWS, ACCESS, SCHEMA)
    assert outcome.found
    assert len(outcome.plan.attributes) == 2


def test_ucq_plans_are_unions_of_disjunct_plans():
    q1 = ConjunctiveQuery(head=(Y,), atoms=(RelationAtom("R", (Constant(1), Y)),))
    q2 = ConjunctiveQuery(head=(Z,), atoms=(RelationAtom("R", (Constant(2), Z)),))
    union = UnionQuery((q1, q2), name="u")
    outcome = build_bounded_plan_ucq(union, NO_VIEWS, ACCESS, SCHEMA)
    assert outcome.found
    assert outcome.plan.language() in ("UCQ", "CQ")

    bad = UnionQuery(
        (q1, ConjunctiveQuery(head=(Variable("v"),), atoms=(RelationAtom("U", (Variable("u"), Variable("v"))),))),
    )
    assert not build_bounded_plan_ucq(bad, NO_VIEWS, ACCESS, SCHEMA).found
