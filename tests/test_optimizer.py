"""Tests for the heuristic bounded-plan builder (the engine's practical path)."""

import pytest

from repro.algebra.atoms import RelationAtom
from repro.algebra.cq import ConjunctiveQuery
from repro.algebra.schema import schema_from_spec
from repro.algebra.terms import Constant, Variable
from repro.algebra.ucq import UnionQuery
from repro.algebra.views import View, ViewSet
from repro.core.access import AccessConstraint, AccessSchema
from repro.core.conformance import conforms_to
from repro.core.equivalence import a_equivalent
from repro.core.rewriting import plan_to_ucq
from repro.engine.optimizer import build_bounded_plan, build_bounded_plan_ucq
from repro.errors import UnsupportedQueryError

SCHEMA = schema_from_spec({"R": ("a", "b"), "S": ("b", "c"), "U": ("u", "v")})
ACCESS = AccessSchema(
    (
        AccessConstraint("R", ("a",), ("b",), 2),
        AccessConstraint("S", ("b",), ("c",), 1),
    )
)
NO_VIEWS = ViewSet(())
X, Y, Z = Variable("x"), Variable("y"), Variable("z")


def test_builds_plan_for_anchored_chain_and_it_is_equivalent():
    query = ConjunctiveQuery(
        head=(Z,),
        atoms=(RelationAtom("R", (Constant(1), Y)), RelationAtom("S", (Y, Z))),
        name="chain",
    )
    outcome = build_bounded_plan(query, NO_VIEWS, ACCESS, SCHEMA)
    assert outcome.found
    plan = outcome.plan
    assert conforms_to(plan, ACCESS, SCHEMA, NO_VIEWS).conforms
    expressed = plan_to_ucq(plan, SCHEMA, NO_VIEWS)
    assert a_equivalent(expressed, query, ACCESS, SCHEMA)


def test_reports_unfetchable_atoms():
    query = ConjunctiveQuery(
        head=(Variable("v"),),
        atoms=(RelationAtom("U", (Variable("u"), Variable("v"))),),
        name="nocover",
    )
    outcome = build_bounded_plan(query, NO_VIEWS, ACCESS, SCHEMA)
    assert not outcome.found
    assert "cannot be fetched" in outcome.reason


def test_view_enables_plan_by_covering_atoms(gs_schema, gs_access, gs_views, gs_q0):
    """Example 1.1: Q0 needs V1 to cover the person/like atoms."""
    no_views_outcome = build_bounded_plan(gs_q0, ViewSet(()), gs_access, gs_schema)
    assert not no_views_outcome.found
    with_views = build_bounded_plan(gs_q0, gs_views, gs_access, gs_schema)
    assert with_views.found
    assert "V1" in with_views.plan.view_names()
    expressed = plan_to_ucq(with_views.plan, gs_schema, gs_views)
    assert a_equivalent(expressed, gs_q0, gs_access, gs_schema)


def test_view_as_pure_filter_keeps_equivalence():
    """A view that cannot replace atoms may still be joined in as a filter
    (Example 3.3(b)); the plan stays equivalent to the query."""
    view = View(
        "VS",
        ConjunctiveQuery(head=(Y,), atoms=(RelationAtom("S", (Y, Z)),), name="vs_def"),
    )
    query = ConjunctiveQuery(
        head=(Y,),
        atoms=(RelationAtom("R", (Constant(1), Y)), RelationAtom("S", (Y, Constant("c1")))),
        name="filtered",
    )
    outcome = build_bounded_plan(query, ViewSet((view,)), ACCESS, SCHEMA)
    assert outcome.found
    expressed = plan_to_ucq(outcome.plan, SCHEMA, ViewSet((view,)))
    assert a_equivalent(expressed, query, ACCESS, SCHEMA)


def test_max_size_limits_plan():
    query = ConjunctiveQuery(
        head=(Y,), atoms=(RelationAtom("R", (Constant(1), Y)),), name="small"
    )
    outcome = build_bounded_plan(query, NO_VIEWS, ACCESS, SCHEMA, max_size=1)
    assert not outcome.found and "nodes > M" in outcome.reason
    assert build_bounded_plan(query, NO_VIEWS, ACCESS, SCHEMA, max_size=10).found


def test_duplicate_head_variables_rejected():
    query = ConjunctiveQuery(
        head=(Y, Y), atoms=(RelationAtom("R", (Constant(1), Y)),)
    )
    with pytest.raises(UnsupportedQueryError):
        build_bounded_plan(query, NO_VIEWS, ACCESS, SCHEMA)


def test_constant_head_positions_are_supported():
    query = ConjunctiveQuery(
        head=(Constant("tag"), Y),
        atoms=(RelationAtom("R", (Constant(1), Y)),),
    )
    outcome = build_bounded_plan(query, NO_VIEWS, ACCESS, SCHEMA)
    assert outcome.found
    assert len(outcome.plan.attributes) == 2


def test_ucq_plans_are_unions_of_disjunct_plans():
    q1 = ConjunctiveQuery(head=(Y,), atoms=(RelationAtom("R", (Constant(1), Y)),))
    q2 = ConjunctiveQuery(head=(Z,), atoms=(RelationAtom("R", (Constant(2), Z)),))
    union = UnionQuery((q1, q2), name="u")
    outcome = build_bounded_plan_ucq(union, NO_VIEWS, ACCESS, SCHEMA)
    assert outcome.found
    assert outcome.plan.language() in ("UCQ", "CQ")

    bad = UnionQuery(
        (q1, ConjunctiveQuery(head=(Variable("v"),), atoms=(RelationAtom("U", (Variable("u"), Variable("v"))),))),
    )
    assert not build_bounded_plan_ucq(bad, NO_VIEWS, ACCESS, SCHEMA).found


# --------------------------------------------------------------------------- #
# Differential property test: greedy vs DP ordering on ~200 random CQs/UCQs
# --------------------------------------------------------------------------- #


def _random_mixed_workload(schema, database, count: int, seed: int):
    """~``count * 1.25`` queries: random CQs plus UCQs paired by arity."""
    from repro.workloads.random_cq import RandomCQConfig, random_workload

    config = RandomCQConfig(
        min_atoms=1, max_atoms=3, head_size=2, constant_probability=0.6, seed=seed
    )
    cqs = [
        q
        for q in random_workload(schema, database, count, config)
        if len(set(q.head)) == len(q.head)
    ]
    queries: list = list(cqs)
    by_arity: dict[int, list] = {}
    for q in cqs:
        by_arity.setdefault(q.head_arity, []).append(q)
    made = 0
    for arity, group in sorted(by_arity.items()):
        for i in range(0, len(group) - 1, 2):
            if made >= count // 4:
                break
            queries.append(UnionQuery((group[i], group[i + 1]), name=f"U{arity}_{i}"))
            made += 1
    return queries


def test_differential_greedy_vs_dp_random_workload():
    """Join ordering is pure optimisation: on ~200 random CQs/UCQs the
    cost-based DP planner must return bit-identical rows to the greedy
    builder — on both backends — and every DP plan must pass the static
    verifier.  Answers, not costs, are the contract."""
    from repro.analysis import verify_plan
    from repro.engine.service import QueryService
    from repro.workloads import cdr

    data = cdr.generate(num_customers=60, num_days=3, seed=1)
    queries = _random_mixed_workload(cdr.schema(), data.database, 160, seed=31)
    assert len(queries) >= 180  # ~200 including the paired UCQs
    greedy = QueryService(
        data.database,
        cdr.access_schema(),
        cdr.views(),
        planners=("heuristic", "topped"),
        codegen=False,
    )
    cost = QueryService(
        data.database,
        cdr.access_schema(),
        cdr.views(),
        planners=("cost", "topped"),
        codegen=False,
    )
    try:
        bounded = 0
        dp_ordered = 0
        for query in queries:
            greedy_answer = greedy.query(query)
            cost_answer = cost.query(query)
            assert cost_answer.rows == greedy_answer.rows, query.name
            assert (
                cost_answer.used_bounded_plan == greedy_answer.used_bounded_plan
            ), query.name
            if not cost_answer.used_bounded_plan:
                continue
            bounded += 1
            sqlite_rows = cost.query(query, backend="sqlite").rows
            assert sqlite_rows == greedy.query(query, backend="sqlite").rows
            assert sqlite_rows == cost_answer.rows, query.name
            explanation = cost.explain(query)
            if explanation.order_strategy == "dp":
                dp_ordered += 1
            report = verify_plan(
                explanation.plan,
                data.database.schema,
                views=cdr.views(),
                access_schema=cdr.access_schema(),
            )
            assert report.ok, (query.name, report.errors)
        # The workload genuinely exercises the optimizer, not a corner of it.
        assert bounded >= 100, bounded
        assert dp_ordered >= 20, dp_ordered
    finally:
        greedy.close()
        cost.close()
