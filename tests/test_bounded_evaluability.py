"""Tests for bounded evaluability (the V = ∅ special case of bounded rewriting)."""

from __future__ import annotations

import pytest

from repro.algebra.parser import parse_access_schema, parse_cq
from repro.algebra.schema import schema_from_spec
from repro.algebra.terms import Variable
from repro.core.bounded_evaluability import (
    bounded_evaluability_report,
    certify_plan_needs_no_views,
    is_boundedly_evaluable,
    is_effectively_bounded,
    suggest_view_targets,
)
from repro.core.plans import ConstantScan, FetchNode, ProjectNode, ViewScan
from repro.errors import UnsupportedQueryError
from repro.workloads import graph_search as gs

SCHEMA = schema_from_spec({"R": ("a", "b"), "S": ("c", "d")})
ACCESS = parse_access_schema(
    """
    R(a -> b, 3)
    S(c -> d, 2)
    """
)


def test_anchored_chain_is_effectively_bounded():
    query = parse_cq("Q(y, w) :- R(1, y), S(y, w)")
    assert is_effectively_bounded(query, ACCESS, SCHEMA)


def test_unanchored_query_is_not_effectively_bounded():
    query = parse_cq("Q(x, y) :- R(x, y)")
    report = bounded_evaluability_report(query, ACCESS, SCHEMA)
    assert not report.effectively_bounded
    assert Variable("x") in report.unreachable_variables
    assert report.reasons


def test_uncoverable_atom_reported():
    # T has no access constraint at all.
    schema = schema_from_spec({"R": ("a", "b"), "T": ("e", "f")})
    query = parse_cq("Q(y) :- R(1, y), T(y, z)")
    report = bounded_evaluability_report(query, ACCESS, schema)
    assert not report.effectively_bounded
    assert report.uncoverable_atoms


def test_exact_decision_finds_plan_for_anchored_lookup():
    query = parse_cq("Q(y) :- R(1, y)")
    result = is_boundedly_evaluable(query, ACCESS, SCHEMA, max_size=4)
    assert result.has_rewriting
    assert result.plan is not None
    assert not result.plan.uses_views()


def test_exact_decision_rejects_full_scan_query():
    query = parse_cq("Q(x, y) :- R(x, y)")
    result = is_boundedly_evaluable(query, ACCESS, SCHEMA, max_size=3)
    assert not result.has_rewriting


def test_example_11_q0_is_not_boundedly_evaluable():
    """Example 1.1: Q0 is not boundedly evaluable under A0 (person/like unbounded)."""
    report = bounded_evaluability_report(gs.query_q0(), gs.access_schema(), gs.schema())
    assert not report.effectively_bounded
    assert Variable("xp") in report.unreachable_variables


def test_example_11_view_targets_point_at_the_nasa_join():
    targets = suggest_view_targets(gs.query_q0(), gs.access_schema(), gs.schema())
    names = {v.name for v in targets}
    # The person/like part of the query is the obstruction V1 repairs.
    assert "xp" in names


def test_boolean_and_unsatisfiable_disjuncts_are_fine():
    query = parse_cq("Q() :- R(1, y)")
    assert is_effectively_bounded(query, ACCESS, SCHEMA)
    unsat = parse_cq("Q(x) :- R(x, y), x = 1, x = 2")
    assert is_effectively_bounded(unsat, ACCESS, SCHEMA)


def test_certify_plan_needs_no_views():
    fetch_plan = ProjectNode(
        FetchNode(ConstantScan(1, attribute="a"), "R", ("a",), ("b",)), ("b",)
    )
    certify_plan_needs_no_views(fetch_plan)
    with pytest.raises(UnsupportedQueryError):
        certify_plan_needs_no_views(ViewScan("V1", ("mid",)))


def test_report_on_ucq_checks_every_disjunct():
    from repro.algebra.parser import parse_ucq

    union = parse_ucq("Q(y) :- R(1, y) ; Q(y) :- S(y, w)")
    report = bounded_evaluability_report(union, ACCESS, SCHEMA)
    assert not report.effectively_bounded
    assert Variable("y") in report.unreachable_variables
