"""Tests for the kernel-discipline linter (``tools/lint_kernel.py``)."""

from __future__ import annotations

import sys
import textwrap
from pathlib import Path

import pytest

TOOLS = Path(__file__).resolve().parent.parent / "tools"
sys.path.insert(0, str(TOOLS))

import lint_kernel  # noqa: E402  (path set up above)

REPO_ROOT = TOOLS.parent


def _write(root: Path, relative: str, source: str) -> Path:
    path = root / relative
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(textwrap.dedent(source), encoding="utf-8")
    return path


def test_repository_is_clean():
    assert lint_kernel.lint_tree(REPO_ROOT) == []


def test_cli_exits_zero_on_clean_tree(capsys):
    assert lint_kernel.main(["--root", str(REPO_ROOT)]) == 0
    assert "kernel discipline ok" in capsys.readouterr().out


def test_unmetered_fetch_is_flagged(tmp_path):
    _write(
        tmp_path,
        "src/repro/exec/operators.py",
        """
        class Rogue:
            def _produce(self):
                for key in self._keys():
                    yield from self._provider.fetch(self._constraint, key)

            def metered(self):
                rows = self._provider.fetch(self._constraint, ())
                self._meter.record_fetch(self._relation, len(rows))
                return rows
        """,
    )
    violations = lint_kernel.lint_tree(tmp_path)
    assert [v.code for v in violations] == ["kernel.unmetered-fetch"]
    assert "_produce" in violations[0].message


def test_storage_internals_access_is_flagged(tmp_path):
    _write(
        tmp_path,
        "src/repro/exec/shortcut.py",
        """
        def peek(relation):
            return len(relation._tuples)
        """,
    )
    # The same access *inside* storage is the implementation, not a violation.
    _write(
        tmp_path,
        "src/repro/storage/instance.py",
        """
        class Relation:
            def __len__(self):
                return len(self._tuples)
        """,
    )
    violations = lint_kernel.lint_tree(tmp_path)
    assert [v.code for v in violations] == ["kernel.storage-internals"]
    assert violations[0].path == Path("src/repro/exec/shortcut.py")


def test_unmetered_fetch_in_codegen_closure_is_flagged(tmp_path):
    # The generated closure is a nested function — the rule must descend
    # into it, not just check the module's top-level functions.
    _write(
        tmp_path,
        "src/repro/exec/codegen.py",
        """
        def compile_fetch(constraint):
            def step(runtime):
                return runtime.provider.fetch(constraint, ())

            return step

        def compile_fetch_metered(constraint, relation):
            def step(runtime):
                fetched = runtime.provider.fetch(constraint, ())
                runtime.meter.record_fetch(relation, len(fetched))
                return fetched

            return step
        """,
    )
    violations = lint_kernel.lint_tree(tmp_path)
    # Both the unmetered closure and its enclosing compile function carry
    # the probe, so the walk reports the defect at both levels.
    assert {v.code for v in violations} == {"kernel.unmetered-fetch"}
    assert any("step" in v.message for v in violations)


@pytest.mark.parametrize(
    "source",
    [
        "from repro.storage.instance import Database\n",
        "from repro.storage import indexes\n",
        "import repro.storage.indexes\n",
        "from ..storage.instance import Relation\n",
    ],
)
def test_codegen_storage_imports_are_flagged(tmp_path, source):
    _write(tmp_path, "src/repro/exec/codegen.py", source)
    violations = lint_kernel.lint_tree(tmp_path)
    assert [v.code for v in violations] == ["kernel.codegen-storage-import"]


def test_unmetered_fetch_in_delta_compiler_is_flagged(tmp_path):
    # The delta-maintenance kernels live in delta_compiler.py and obey the
    # same discipline as the read-side codegen: any function (generated
    # closures included) touching `.fetch` must charge the meter.
    _write(
        tmp_path,
        "src/repro/exec/delta_compiler.py",
        """
        def compile_delta(constraint):
            def kernel(runtime):
                return runtime.provider.fetch(constraint, ())

            return kernel
        """,
    )
    violations = lint_kernel.lint_tree(tmp_path)
    assert {v.code for v in violations} == {"kernel.unmetered-fetch"}
    assert any("kernel" in v.message for v in violations)


@pytest.mark.parametrize(
    "source",
    [
        "from repro.storage.instance import Database\n",
        "from ..storage.deltas import DeltaStream\n",
        "import repro.storage.indexes\n",
    ],
)
def test_delta_compiler_storage_imports_are_flagged(tmp_path, source):
    _write(tmp_path, "src/repro/exec/delta_compiler.py", source)
    violations = lint_kernel.lint_tree(tmp_path)
    assert [v.code for v in violations] == ["kernel.codegen-storage-import"]


def test_storage_imports_elsewhere_are_not_codegen_violations(tmp_path):
    _write(
        tmp_path,
        "src/repro/engine/module.py",
        "from ..storage.instance import Database\n",
    )
    assert lint_kernel.lint_tree(tmp_path) == []


@pytest.mark.parametrize(
    "source",
    [
        "from repro.engine.session import BoundedEngine\n",
        "from repro.engine.maintenance import MaintainedEngine\n",
        "import repro.engine.maintenance\n",
        "from ..engine.session import BoundedEngine\n",
    ],
)
def test_deprecated_imports_are_flagged(tmp_path, source):
    _write(tmp_path, "src/repro/workloads/new_module.py", source)
    violations = lint_kernel.lint_tree(tmp_path)
    assert [v.code for v in violations] == ["kernel.deprecated-import"]


def test_shims_themselves_are_allowlisted(tmp_path):
    _write(
        tmp_path,
        "src/repro/engine/__init__.py",
        "from .session import BoundedEngine\n",
    )
    _write(
        tmp_path,
        "src/repro/engine/maintenance.py",
        "from .session import EngineAnswer\n",
    )
    assert lint_kernel.lint_tree(tmp_path) == []


def test_cli_exits_one_and_reports_violations(tmp_path, capsys):
    _write(
        tmp_path,
        "src/repro/core/hack.py",
        "from repro.engine.session import BoundedEngine\n",
    )
    assert lint_kernel.main(["--root", str(tmp_path)]) == 1
    out = capsys.readouterr().out
    assert "kernel.deprecated-import" in out
    assert "1 kernel-discipline violation(s)" in out


@pytest.mark.parametrize(
    "source",
    [
        "from repro.storage.instance import Database\n",
        "from repro.storage.indexes import IndexSet\n",
        "import repro.storage.instance\n",
        "from ...storage.instance import Relation\n",
        "from ...storage import indexes\n",
    ],
)
def test_shard_worker_storage_imports_are_flagged(tmp_path, source):
    _write(tmp_path, "src/repro/engine/service/sharding.py", source)
    violations = lint_kernel.lint_tree(tmp_path)
    assert [v.code for v in violations] == ["kernel.shard-storage-import"]
    assert "pinned immutable snapshots" in violations[0].message


def test_shard_worker_snapshot_imports_are_allowed(tmp_path):
    _write(
        tmp_path,
        "src/repro/engine/service/sharding.py",
        """
        from repro.storage.snapshots import DatabaseSnapshot
        from ...storage.snapshots import SnapshotManager
        """,
    )
    assert lint_kernel.lint_tree(tmp_path) == []


def test_analysis_sharding_may_not_import_storage_at_all(tmp_path):
    _write(
        tmp_path,
        "src/repro/analysis/sharding.py",
        "from ..storage.snapshots import ShardingLayout\n",
    )
    violations = lint_kernel.lint_tree(tmp_path)
    assert [v.code for v in violations] == ["kernel.shard-storage-import"]
    assert "nothing from repro.storage" in violations[0].message
    assert violations[0].path == Path("src/repro/analysis/sharding.py")


@pytest.mark.parametrize(
    "source",
    [
        "from repro.storage.histograms import EquiDepthHistogram\n",
        "from repro.storage import histograms\n",
        "import repro.storage.histograms\n",
        "from ..storage.histograms import ColumnStatistics\n",
    ],
)
def test_histogram_imports_outside_storage_are_flagged(tmp_path, source):
    _write(tmp_path, "src/repro/engine/optimizer.py", source)
    violations = lint_kernel.lint_tree(tmp_path)
    assert [v.code for v in violations] == ["kernel.histogram-import"]
    assert "statistics API" in violations[0].message


def test_histogram_imports_inside_storage_are_allowed(tmp_path):
    # statistics.py *is* the sanctioned consumer: it wraps histograms
    # behind the TableStatistics API.
    _write(
        tmp_path,
        "src/repro/storage/statistics.py",
        "from .histograms import ColumnStatistics\n",
    )
    # Importing the statistics facade from outside storage is the intended
    # access path and must stay clean.
    _write(
        tmp_path,
        "src/repro/engine/optimizer.py",
        "from ..storage.statistics import estimate_eq\n",
    )
    assert lint_kernel.lint_tree(tmp_path) == []


@pytest.mark.parametrize(
    "source",
    [
        "from repro.exec.iometer import IOMeter\n",
        "from repro.exec import codegen\n",
        "import repro.exec.codegen\n",
        "from ...exec.plan_runner import execute_plan\n",
        "from .cache import CachedPlan\n",
    ],
)
def test_plan_store_exec_imports_are_flagged(tmp_path, source):
    _write(tmp_path, "src/repro/engine/service/plan_store.py", source)
    violations = lint_kernel.lint_tree(tmp_path)
    assert [v.code for v in violations] == ["kernel.plan-store-exec-import"]
    assert "plain data records" in violations[0].message


def test_plan_store_data_imports_are_allowed(tmp_path):
    # Plain-data imports (errors, stdlib) are fine; and the same exec
    # import from the *service* module is not a plan-store violation.
    _write(
        tmp_path,
        "src/repro/engine/service/plan_store.py",
        """
        import io
        import pickle
        from ...errors import PlanStoreError
        """,
    )
    _write(
        tmp_path,
        "src/repro/engine/service/service.py",
        "from ...exec.iometer import IOMeter\n",
    )
    assert lint_kernel.lint_tree(tmp_path) == []
