"""Tests for the static-analysis subsystem (:mod:`repro.analysis`).

The heart is a property test: every plan any planner of the fallback chain
produces for ≥200 random CQs passes :func:`verify_plan` (zero false
positives), while seeded structural mutations of those plans — input swaps,
dropped projection columns, unbound lookup keys — are each rejected with the
diagnostic the mutation predicts.
"""

from __future__ import annotations

import pytest

from repro import QueryService
from repro.algebra.parser import parse_cq
from repro.algebra.views import View, ViewSet
from repro.analysis import (
    analyze_view_dependencies,
    lint_query,
    plan_mutations,
    verify_delta_program,
    verify_plan,
)
from repro.engine.service.planners import resolve_planners
from repro.errors import PlanVerificationError, SchemaError
from repro.workloads import cdr, graph_search as gs
from repro.workloads.random_cq import RandomCQConfig, random_workload

WORKLOAD_SIZE = 200


@pytest.fixture(scope="module")
def gs_data():
    return gs.generate(num_persons=200, num_movies=120, seed=5)


@pytest.fixture(scope="module")
def service(gs_data):
    return QueryService(
        gs_data.database, gs.access_schema(), gs.views(), verify_plans=True
    )


# The property tests run over the CDR workload: its access schema covers far
# more of the random-CQ space than Graph Search's, so a 200-query workload
# yields a large corpus of real plans to verify and mutate.


@pytest.fixture(scope="module")
def cdr_service():
    data = cdr.generate(num_customers=60, num_days=3, seed=1)
    return QueryService(
        data.database, cdr.access_schema(), cdr.views(), verify_plans=True
    )


@pytest.fixture(scope="module")
def workload(cdr_service):
    config = RandomCQConfig(
        min_atoms=1, max_atoms=3, head_size=2, constant_probability=0.6, seed=11
    )
    queries = random_workload(
        cdr.schema(), cdr_service.database, WORKLOAD_SIZE, config
    )
    assert len(queries) == WORKLOAD_SIZE
    return [q for q in queries if len(set(q.head)) == len(q.head)]


@pytest.fixture(scope="module")
def verified_plans(cdr_service, workload):
    """(query, plan) for every plan any planner of the chain finds.

    The service runs with ``verify_plans=True``, so merely planning the whole
    workload asserts the verifier has zero false positives on real plans.
    """
    plans = []
    for query in workload:
        for planner in resolve_planners(None):
            if not planner.can_plan(query):
                continue
            entry, _ = cdr_service.plan(
                query, planners=[planner], use_cache=False
            )
            if entry.plan is not None:
                plans.append((query, entry.plan))
    return plans


# --------------------------------------------------------------------------- #
# Property: real plans verify, mutated plans are rejected
# --------------------------------------------------------------------------- #


def test_every_planned_query_passes_verification(cdr_service, verified_plans):
    assert len(verified_plans) >= 50  # the workload is plannable in bulk
    for query, plan in verified_plans:
        report = verify_plan(
            plan,
            cdr_service.database.schema,
            views=cdr_service.views,
            access_schema=cdr_service.access_schema,
            expected_arity=query.head_arity,
            subject=query.name,
        )
        assert report.ok, f"{query.name}: {report.render()}"


def test_mutated_plans_are_rejected_with_predicted_diagnostics(
    cdr_service, verified_plans
):
    mutated = 0
    for index, (query, plan) in enumerate(verified_plans):
        for mutation in plan_mutations(plan, seed=index):
            mutated += 1
            report = verify_plan(
                mutation.plan,
                cdr_service.database.schema,
                views=cdr_service.views,
                access_schema=cdr_service.access_schema,
                expected_attributes=plan.attributes,
                subject=query.name,
            )
            assert not report.ok, (
                f"{query.name}: verifier accepted a corrupted plan "
                f"({mutation.kind}: {mutation.description})"
            )
            assert report.codes() & mutation.expected_codes, (
                f"{query.name}: {mutation.kind} expected one of "
                f"{sorted(mutation.expected_codes)}, got "
                f"{sorted(report.codes())}"
            )
    assert mutated >= 100  # the corpus exercises all three mutation kinds


def test_verify_plans_service_survives_full_workload(cdr_service, workload):
    """The debug mode plans (and caches) everything without a single raise."""
    for query in workload:
        entry, _ = cdr_service.plan(query)
        if entry.plan is not None:
            answer = cdr_service.query(query)
            assert answer.rows is not None


def test_verify_plans_rejects_corrupted_plan_via_service(
    cdr_service, verified_plans
):
    query, plan = next((q, p) for q, p in verified_plans if p.fetch_nodes())
    mutations = plan_mutations(plan, seed=3)
    assert mutations
    report = verify_plan(
        mutations[0].plan,
        cdr_service.database.schema,
        views=cdr_service.views,
        access_schema=cdr_service.access_schema,
        expected_attributes=plan.attributes,
    )
    with pytest.raises(PlanVerificationError) as excinfo:
        raise PlanVerificationError(
            "plan verification failed",
            diagnostics=tuple(report.errors),
            query_name=query.name,
        )
    assert excinfo.value.diagnostics
    assert excinfo.value.query_name == query.name


# --------------------------------------------------------------------------- #
# Certificates and explain()
# --------------------------------------------------------------------------- #


def test_explain_bounded_query_carries_certificates(service):
    explanation = service.explain(gs.query_q0())
    assert explanation.bounded
    assert explanation.plan is not None
    assert explanation.planner
    assert explanation.fetch_bound is not None
    assert explanation.certificates
    for certificate in explanation.certificates:
        assert certificate.bounded
        assert certificate.constraint is not None
    text = explanation.render()
    assert "served by" in text
    assert "worst-case tuples fetched" in text


def test_explain_unbounded_query_names_uncovered_variables(service):
    explanation = service.explain("Q(x) :- person(x, n, c)")
    assert not explanation.bounded
    assert explanation.plan is None
    assert explanation.counterexample is not None
    assert "x" in explanation.counterexample.uncovered
    assert "uncovered variables" in explanation.render()


def test_explain_reports_cache_hits(service):
    source = "Q(mid) :- movie(mid, t, 'Universal', '2014')"
    first = service.explain(source)
    second = service.explain(source)
    assert first.bounded
    assert second.cache_hit


# --------------------------------------------------------------------------- #
# Query lints
# --------------------------------------------------------------------------- #


def test_lint_flags_cartesian_product_and_unused_atoms(service):
    diagnostics = service.lint("Q(x) :- person(x, n, c), movie(m, t, s, y)")
    codes = {d.code for d in diagnostics}
    assert "query.cartesian" in codes
    assert "query.unused-atoms" in codes


def test_lint_flags_contradiction():
    query = parse_cq("Q(x) :- person(x, n, c), n = 'a', n = 'b'")
    codes = {d.code for d in lint_query(query)}
    assert codes == {"query.contradiction"}


def test_lint_flags_single_use_variables():
    query = parse_cq("Q(x) :- person(x, n, c)")
    diagnostics = lint_query(query)
    info = [d for d in diagnostics if d.code == "query.single-use-variable"]
    assert info and "'n'" in info[0].message


def test_lint_clean_query_is_quiet():
    query = parse_cq("Q(x, n) :- person(x, n, c), like(x, m, c)")
    codes = {d.code for d in lint_query(query)}
    assert "query.cartesian" not in codes
    assert "query.unused-atoms" not in codes


def test_lint_flags_unsafe_fo_negation():
    from repro.algebra.fo import atom, conj, neg
    from repro.algebra.terms import Variable

    x, y, z = Variable("x"), Variable("y"), Variable("z")
    unsafe = conj(atom("person", x, y, z), neg(atom("rating", Variable("m"), x)))
    codes = {d.code for d in lint_query(unsafe)}
    assert "query.unsafe-negation" in codes

    safe = conj(atom("person", x, y, z), neg(atom("rating", x, y)))
    codes = {d.code for d in lint_query(safe)}
    assert "query.unsafe-negation" not in codes


# --------------------------------------------------------------------------- #
# Delta-program verification and view dependencies
# --------------------------------------------------------------------------- #


def test_compiled_delta_programs_verify(service):
    for name in service.views.names:
        compiled = service.maintainer.compiled_delta(name)
        report = verify_delta_program(compiled, service.database.schema)
        assert report.ok, report.render()


def test_view_dependency_analysis_stratifies(service):
    report = analyze_view_dependencies(service.views)
    assert report.ok
    assert set(report.order) == set(service.views.names)
    for view in service.views:
        assert report.strata[view.name] >= 1
        for read in report.edges[view.name]:
            assert report.strata[read] < report.strata[view.name]


def test_view_dependency_analysis_detects_cycles():
    views = ViewSet(
        (
            View("A", parse_cq("A(x) :- B(x, y)")),
            View("B", parse_cq("B(x, y) :- A(x), person(y, n, c)")),
        )
    )
    report = analyze_view_dependencies(views)
    assert not report.ok
    assert report.cycles
    assert {"A", "B"} <= set(report.cycles[0])
    assert any(d.code == "views.cycle" for d in report.diagnostics)


# --------------------------------------------------------------------------- #
# Maintainer typed errors
# --------------------------------------------------------------------------- #


def test_maintainer_unknown_view_raises_schema_error(service):
    with pytest.raises(SchemaError, match="no view named 'nope'"):
        service.maintainer.rows("nope")
    with pytest.raises(SchemaError, match="no view named"):
        service.maintainer.mode("missing")


def test_maintainer_compiled_delta_unknown_view(service):
    with pytest.raises(SchemaError):
        service.maintainer.compiled_delta("nope")
