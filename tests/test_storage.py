"""Unit tests for the storage layer: instances, indices, statistics."""

import pytest

from repro.algebra.schema import schema_from_spec
from repro.core.access import AccessConstraint, AccessSchema
from repro.errors import AccessConstraintError, SchemaError
from repro.storage.indexes import AccessIndex, IndexSet
from repro.storage.instance import Database, Relation
from repro.storage.statistics import (
    constraint_bound,
    discover_access_constraints,
    verify_expected_schema,
)


@pytest.fixture
def schema():
    return schema_from_spec({"R": ("a", "b", "c"), "S": ("x",)})


@pytest.fixture
def database(schema):
    db = Database(schema)
    db.add_many("R", [(1, 10, "u"), (1, 11, "v"), (2, 20, "u"), (2, 20, "w")])
    db.add("S", ("only",))
    return db


def test_relation_arity_check(schema):
    relation = Relation(schema.relation("S"))
    relation.add(("ok",))
    with pytest.raises(SchemaError):
        relation.add(("too", "long"))
    assert len(relation) == 1
    assert ("ok",) in relation


def test_database_population_and_sizes(database):
    assert database.size == 5
    assert database.relation_sizes() == {"R": 4, "S": 1}
    assert database.relation("R").project(("a",)) == {(1,), (2,)}
    with pytest.raises(SchemaError):
        database.add("T", (1,))


def test_database_facts_and_active_domain(database):
    facts = database.facts
    assert facts["S"] == {("only",)}
    assert {1, 2, "u", "only"} <= database.active_domain()


def test_database_copy_is_independent(database):
    clone = database.copy()
    clone.add("S", ("second",))
    assert database.relation_sizes()["S"] == 1
    assert clone.relation_sizes()["S"] == 2


def test_satisfaction_of_access_schema(database):
    ok = AccessSchema([AccessConstraint("R", ("a",), ("b",), 2)])
    assert database.satisfies(ok)
    tight = AccessSchema([AccessConstraint("R", ("a",), ("b",), 1)])
    assert not database.satisfies(tight)
    assert database.violations(tight)


def test_duplicate_tuples_are_set_semantics(schema):
    db = Database(schema)
    db.add("S", ("v",))
    db.add("S", ("v",))
    assert db.size == 1


def test_access_index_lookup(database):
    constraint = AccessConstraint("R", ("a",), ("b",), 2)
    index = AccessIndex(constraint, database)
    assert index.lookup((1,)) == {(1, 10), (1, 11)}
    assert index.lookup((99,)) == frozenset()
    assert index.max_group_size() == 2
    assert index.output_attributes == ("a", "b")


def test_access_index_with_empty_key(database):
    constraint = AccessConstraint("S", (), ("x",), 5)
    index = AccessIndex(constraint, database)
    assert index.lookup(()) == {("only",)}


def test_index_set_fetch_and_unknown_constraint(database):
    access = AccessSchema([AccessConstraint("R", ("a",), ("b",), 2)])
    indexes = IndexSet(database, access)
    constraint = access.constraints[0]
    assert indexes.fetch(constraint, (2,)) == {(2, 20)}
    other = AccessConstraint("R", ("b",), ("c",), 5)
    with pytest.raises(AccessConstraintError):
        indexes.fetch(other, (10,))


def test_index_set_validates_constraints_against_schema(database):
    bad = AccessSchema([AccessConstraint("R", ("missing",), ("b",), 1)])
    with pytest.raises(AccessConstraintError):
        IndexSet(database, bad)


def test_constraint_bound_measures_tight_bound(database):
    assert constraint_bound(database, "R", ("a",), ("b",)) == 2
    assert constraint_bound(database, "R", ("a", "b"), ("c",)) == 2  # (2,20) -> u,w
    assert constraint_bound(database, "S", (), ("x",)) == 1


def test_discover_access_constraints(database):
    discovered = discover_access_constraints(database, max_x_size=1, max_bound=10)
    as_set = {(c.relation, c.x, c.y, c.bound) for c in discovered}
    assert ("R", ("a",), ("b",), 2) in as_set
    assert ("S", (), ("x",), 1) in as_set
    # Every discovered constraint is actually satisfied by the data.
    assert database.satisfies(discovered)


def test_verify_expected_schema(database):
    access = AccessSchema([AccessConstraint("R", ("a",), ("b",), 5)])
    measured = verify_expected_schema(database, access)
    assert list(measured.values()) == [2]
