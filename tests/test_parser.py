"""Tests for the textual CQ / UCQ / access-constraint parser."""

from __future__ import annotations

import pytest

from repro.algebra.cq import ConjunctiveQuery
from repro.algebra.parser import (
    parse_access_constraint,
    parse_access_schema,
    parse_cq,
    parse_ucq,
)
from repro.algebra.terms import Constant, Variable
from repro.algebra.evaluation import evaluate_cq
from repro.errors import QueryError
from repro.workloads import graph_search as gs


def test_parse_simple_cq():
    query = parse_cq("Q(x, y) :- R(x, y)")
    assert query.name == "Q"
    assert query.head == (Variable("x"), Variable("y"))
    assert len(query.atoms) == 1
    assert query.atoms[0].relation == "R"


def test_parse_constants_strings_and_numbers():
    query = parse_cq("Q(x) :- movie(x, y, 'Universal', '2014'), rating(x, 5)")
    movie_atom = query.atoms[0]
    assert movie_atom.terms[2] == Constant("Universal")
    assert movie_atom.terms[3] == Constant("2014")
    assert query.atoms[1].terms[1] == Constant(5)


def test_parse_negative_and_float_numbers():
    query = parse_cq("Q(x) :- R(x, -3), S(x, 2.5)")
    assert query.atoms[0].terms[1] == Constant(-3)
    assert query.atoms[1].terms[1] == Constant(2.5)


def test_parse_equality_conditions():
    query = parse_cq("Q(x) :- R(x, y), x = y, y = 'a'")
    assert len(query.equalities) == 2
    normalized = query.normalize()
    # x and y collapse onto the constant 'a'.
    assert normalized.head == (Constant("a"),)


def test_parse_boolean_query_and_empty_body():
    query = parse_cq("Q() :- R(1, 2)")
    assert query.is_boolean
    constant_query = parse_cq("Q(1)")
    assert constant_query.head == (Constant(1),)
    assert constant_query.atoms == ()


def test_parse_alternative_arrow():
    query = parse_cq("Q(x) <- R(x, y)")
    assert len(query.atoms) == 1


def test_parsed_query_matches_handwritten_q0():
    """The parsed Example 1.1 query evaluates identically to the module's Q0."""
    parsed = parse_cq(
        "Q0(mid) :- person(xp, xpn, 'NASA'), movie(mid, ym, 'Universal', '2014'), "
        "like(xp, mid, 'movie'), rating(mid, 5)"
    )
    instance = gs.generate(num_persons=200, num_movies=120, seed=3)
    expected = evaluate_cq(gs.query_q0(), instance.database.facts)
    assert evaluate_cq(parsed, instance.database.facts) == expected


def test_parse_ucq_multiple_disjuncts():
    union = parse_ucq("Q(x) :- R(x, 1) ; Q(x) :- S(x, 2) ; Q(x) :- T(x, 3)")
    assert len(union.disjuncts) == 3
    assert all(isinstance(d, ConjunctiveQuery) for d in union.disjuncts)


def test_parse_ucq_single_rule():
    union = parse_ucq("Q(x) :- R(x, y)")
    assert len(union.disjuncts) == 1


def test_parse_ucq_arity_mismatch_rejected():
    with pytest.raises(QueryError):
        parse_ucq("Q(x) :- R(x, y) ; Q(x, y) :- S(x, y)")


def test_parse_errors_report_position():
    with pytest.raises(QueryError):
        parse_cq("Q(x) :- R(x,")
    with pytest.raises(QueryError):
        parse_cq("Q(x) :- R(x) extra")
    with pytest.raises(QueryError):
        parse_cq("Q(x) :- ???")


def test_parse_access_constraint_basic():
    constraint = parse_access_constraint("movie(studio, release -> mid, 100)")
    assert constraint.relation == "movie"
    assert constraint.x == ("studio", "release")
    assert constraint.y == ("mid",)
    assert constraint.bound == 100


def test_parse_access_constraint_empty_x():
    constraint = parse_access_constraint("Ror(-> B, A1, A2, 4)")
    assert constraint.x == ()
    assert constraint.y == ("B", "A1", "A2")
    assert constraint.bound == 4


def test_parse_access_constraint_missing_bound():
    with pytest.raises(QueryError):
        parse_access_constraint("movie(studio -> mid)")


def test_parse_access_schema_multiline_matches_example():
    parsed = parse_access_schema(
        """
        movie(studio, release -> mid, 100)
        rating(mid -> rank, 1)
        """
    )
    assert parsed == gs.access_schema()


def test_parse_access_schema_from_list():
    parsed = parse_access_schema(["rating(mid -> rank, 1)"])
    assert len(parsed) == 1
    assert parsed.is_fd_only
