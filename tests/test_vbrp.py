"""Tests for the VBRP decision procedures (Theorem 3.1 upper bound, Lemma 3.12,
Theorem 4.2's AlgMP/AlgACQ) on small, fully checkable instances."""

import pytest

from repro.algebra.atoms import RelationAtom
from repro.algebra.cq import ConjunctiveQuery
from repro.algebra.schema import schema_from_spec
from repro.algebra.terms import Constant, Variable
from repro.algebra.views import View, ViewSet
from repro.core.access import AccessConstraint, AccessSchema
from repro.core.plans import CQ, UCQ, ConstantScan, FetchNode, ProjectNode, ViewScan
from repro.core.vbrp import (
    PlanSearchSpace,
    alg_acq,
    alg_mp,
    decide_vbrp,
    enumerate_candidate_plans,
    is_bounded_rewriting,
)
from repro.errors import UnsupportedQueryError

SCHEMA = schema_from_spec({"R": ("a", "b"), "S": ("b", "c")})
X, Y, Z = Variable("x"), Variable("y"), Variable("z")

ACCESS = AccessSchema(
    (
        AccessConstraint("R", ("a",), ("b",), 2),
        AccessConstraint("S", ("b",), ("c",), 1),
    )
)
NO_VIEWS = ViewSet(())


def anchored_query():
    """Q(y) :- R(1, y): boundedly rewritable with a 2-node plan."""
    return ConjunctiveQuery(
        head=(Y,), atoms=(RelationAtom("R", (Constant(1), Y)),), name="anchored"
    )


def unanchored_query():
    """Q(y) :- R(x, y): no bounded rewriting without helpful views."""
    return ConjunctiveQuery(head=(Y,), atoms=(RelationAtom("R", (X, Y)),), name="open")


def test_enumerate_candidate_plans_is_deduplicated_and_size_bounded():
    space = PlanSearchSpace(constants=(1,))
    plans = enumerate_candidate_plans(SCHEMA, NO_VIEWS, ACCESS, 3, space, language=CQ)
    assert plans
    assert all(plan.size() <= 3 for plan in plans)
    keys = set()
    for plan in plans:
        keys.add(plan.pretty())
    assert len(keys) == len(plans)
    # Larger M strictly enlarges the candidate space.
    more = enumerate_candidate_plans(SCHEMA, NO_VIEWS, ACCESS, 4, space, language=CQ)
    assert len(more) > len(plans)


def test_decide_vbrp_finds_anchored_rewriting():
    result = decide_vbrp(anchored_query(), NO_VIEWS, ACCESS, SCHEMA, max_size=3, language=CQ)
    assert result.has_rewriting
    assert result.plan is not None
    assert result.plan.size() <= 3
    assert is_bounded_rewriting(result.plan, anchored_query(), NO_VIEWS, ACCESS, SCHEMA, 3)


def test_decide_vbrp_rejects_unanchored_query():
    result = decide_vbrp(unanchored_query(), NO_VIEWS, ACCESS, SCHEMA, max_size=3, language=CQ)
    assert not result.has_rewriting
    assert result.plan is None


def test_decide_vbrp_uses_view_when_needed():
    """The unanchored query becomes rewritable when the view caches it."""
    view = View("VY", ConjunctiveQuery(head=(Y,), atoms=(RelationAtom("R", (X, Y)),)))
    views = ViewSet((view,))
    result = decide_vbrp(unanchored_query(), views, ACCESS, SCHEMA, max_size=2, language=CQ)
    assert result.has_rewriting
    assert result.plan.view_names() == {"VY"}


def test_decide_vbrp_respects_max_size():
    """The anchored two-step query needs at least 4 nodes (const, fetch, π, fetch)."""
    query = ConjunctiveQuery(
        head=(Z,),
        atoms=(RelationAtom("R", (Constant(1), Y)), RelationAtom("S", (Y, Z))),
        name="two_step",
    )
    small = decide_vbrp(query, NO_VIEWS, ACCESS, SCHEMA, max_size=3, language=CQ)
    assert not small.has_rewriting
    big = decide_vbrp(query, NO_VIEWS, ACCESS, SCHEMA, max_size=5, language=CQ)
    assert big.has_rewriting
    assert big.plan.size() <= 5


def test_decide_vbrp_with_explicit_candidates():
    """The fixed-QPQ setting of Theorem 3.11."""
    query = anchored_query()
    good_plan = FetchNode(ConstantScan(1, attribute="a"), "R", ("a",), ("b",))
    good = ProjectNode(good_plan, ("b",))
    unrelated = ConstantScan(5, attribute="c")
    result = decide_vbrp(
        query, NO_VIEWS, ACCESS, SCHEMA, max_size=3, language=CQ,
        candidate_plans=[unrelated, good],
    )
    assert result.has_rewriting
    assert result.plan is good


def test_decide_vbrp_for_fo_requires_candidates():
    with pytest.raises(UnsupportedQueryError):
        decide_vbrp(anchored_query(), NO_VIEWS, ACCESS, SCHEMA, max_size=2, language="FO")


def test_vbrp_result_counts_candidates():
    result = decide_vbrp(anchored_query(), NO_VIEWS, ACCESS, SCHEMA, max_size=2, language=CQ)
    assert result.candidates > 0
    assert result.conforming >= 1


def test_alg_mp_finds_unique_maximum_plan():
    query = anchored_query()
    fetch = FetchNode(ConstantScan(1, attribute="a"), "R", ("a",), ("b",))
    full = ProjectNode(fetch, ("b",))
    narrowed = ProjectNode(
        FetchNode(ConstantScan(1, attribute="a"), "R", ("a",), ("b",)), ("b",)
    )
    result = alg_mp(query, [full, narrowed], NO_VIEWS, ACCESS, SCHEMA)
    assert result.maximum is not None


def test_alg_mp_reports_no_candidates():
    query = anchored_query()
    result = alg_mp(query, [ConstantScan(9, "c")], NO_VIEWS, ACCESS, SCHEMA)
    assert result.maximum is None
    assert "no conforming" in result.reason


def test_alg_acq_agrees_with_decide_vbrp():
    query = anchored_query()
    via_acq = alg_acq(query, NO_VIEWS, ACCESS, SCHEMA, max_size=3)
    via_generic = decide_vbrp(query, NO_VIEWS, ACCESS, SCHEMA, max_size=3, language=CQ)
    assert via_acq.has_rewriting == via_generic.has_rewriting is True

    open_query = unanchored_query()
    assert not alg_acq(open_query, NO_VIEWS, ACCESS, SCHEMA, max_size=3).has_rewriting


def test_alg_acq_rejects_cyclic_queries():
    triangle = ConjunctiveQuery(
        head=(),
        atoms=(
            RelationAtom("R", (X, Y)),
            RelationAtom("R", (Y, Z)),
            RelationAtom("R", (Z, X)),
        ),
    )
    with pytest.raises(UnsupportedQueryError):
        alg_acq(triangle, NO_VIEWS, ACCESS, SCHEMA, max_size=2)


def test_ucq_rewriting_of_a_ucq_query():
    """A hand-built union plan is recognised as a UCQ rewriting of a UCQ query."""
    from repro.algebra.ucq import UnionQuery
    from repro.core.plans import UnionNode

    q1 = ConjunctiveQuery(head=(Y,), atoms=(RelationAtom("R", (Constant(1), Y)),))
    q2 = ConjunctiveQuery(head=(Y,), atoms=(RelationAtom("R", (Constant(2), Y)),))
    union = UnionQuery((q1, q2), name="u")

    def branch(value):
        return ProjectNode(
            FetchNode(ConstantScan(value, attribute="a"), "R", ("a",), ("b",)), ("b",)
        )

    union_plan = UnionNode(branch(1), branch(2))
    assert union_plan.language() == "UCQ"
    result = decide_vbrp(
        union, NO_VIEWS, ACCESS, SCHEMA, max_size=7, language=UCQ,
        candidate_plans=[branch(1), union_plan],
    )
    assert result.has_rewriting
    assert result.plan is union_plan
    # A CQ plan alone cannot express the union.
    cq_only = decide_vbrp(
        union, NO_VIEWS, ACCESS, SCHEMA, max_size=7, language=CQ,
        candidate_plans=[branch(1), branch(2)],
    )
    assert not cq_only.has_rewriting
