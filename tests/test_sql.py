"""Tests for the SQL translation layer, cross-validated against SQLite.

Every generated statement is executed on an in-memory SQLite database loaded
from the same :class:`repro.storage.instance.Database`, and the result is
compared with the library's own plan executor / CQ evaluator — the strongest
form of validation available without a commercial DBMS.
"""

from __future__ import annotations

import sqlite3

import pytest

from repro.algebra.evaluation import evaluate_cq, evaluate_ucq
from repro.algebra.parser import parse_cq, parse_ucq
from repro.core.plan_eval import execute_plan
from repro.core.plans import (
    AttributeEqualsConstant,
    ConstantScan,
    DifferenceNode,
    FetchNode,
    ProjectNode,
    SelectNode,
    UnionNode,
    ViewScan,
)
from repro.engine.session import BoundedEngine
from repro.engine.sql import (
    cq_to_sql,
    create_index_statements,
    create_table_statements,
    insert_statements,
    materialize_view_statements,
    plan_to_sql,
    quote_identifier,
    quote_literal,
    ucq_to_sql,
    view_table_name,
)
from repro.errors import UnsupportedQueryError
from repro.storage.indexes import IndexSet
from repro.workloads import example63, graph_search as gs


# --------------------------------------------------------------------------- #
# Helpers
# --------------------------------------------------------------------------- #


def load_sqlite(database, access_schema=None, views=None, view_cache=None):
    """Create an in-memory SQLite database mirroring ``database`` (+ views)."""
    connection = sqlite3.connect(":memory:")
    for statement in create_table_statements(database.schema):
        connection.execute(statement)
    if access_schema is not None:
        for statement in create_index_statements(access_schema, database.schema):
            connection.execute(statement)
    for statement, rows in insert_statements(database):
        connection.executemany(statement, rows)
    if views is not None:
        for create, insert, rows in materialize_view_statements(views, view_cache or {}):
            connection.execute(create)
            if rows:
                connection.executemany(insert, rows)
    connection.commit()
    return connection


def run_sql(connection, sql_text):
    return {tuple(row) for row in connection.execute(sql_text).fetchall()}


@pytest.fixture(scope="module")
def gs_instance():
    return gs.generate(num_persons=300, num_movies=150, seed=5)


@pytest.fixture(scope="module")
def gs_engine(gs_instance):
    return BoundedEngine(gs_instance.database, gs.access_schema(), gs.views())


# --------------------------------------------------------------------------- #
# Lexical helpers
# --------------------------------------------------------------------------- #


def test_quote_identifier_escapes_quotes():
    assert quote_identifier('we"ird') == '"we""ird"'


def test_quote_literal_kinds():
    assert quote_literal("o'hara") == "'o''hara'"
    assert quote_literal(5) == "5"
    assert quote_literal(2.5) == "2.5"
    assert quote_literal(None) == "NULL"
    assert quote_literal(True) == "1"


# --------------------------------------------------------------------------- #
# CQ / UCQ translation
# --------------------------------------------------------------------------- #


def test_cq_to_sql_matches_evaluator(gs_instance):
    query = gs.query_q0()
    sql_text = cq_to_sql(query, gs.schema())
    connection = load_sqlite(gs_instance.database)
    assert run_sql(connection, sql_text) == evaluate_cq(query, gs_instance.database.facts)


def test_cq_to_sql_with_constants_in_head(gs_instance):
    query = parse_cq("Q(x, 'tag') :- rating(x, 5)")
    sql_text = cq_to_sql(query, gs.schema())
    connection = load_sqlite(gs_instance.database)
    assert run_sql(connection, sql_text) == evaluate_cq(query, gs_instance.database.facts)


def test_boolean_cq_to_sql(gs_instance):
    query = parse_cq("Q() :- rating(x, 5)")
    sql_text = cq_to_sql(query, gs.schema())
    connection = load_sqlite(gs_instance.database)
    rows = run_sql(connection, sql_text)
    expected = evaluate_cq(query, gs_instance.database.facts)
    assert bool(rows) == bool(expected)


def test_unsatisfiable_cq_rejected():
    query = parse_cq("Q(x) :- rating(x, y), y = 1, y = 2")
    with pytest.raises(UnsupportedQueryError):
        cq_to_sql(query, gs.schema())


def test_ucq_to_sql_matches_evaluator(gs_instance):
    union = parse_ucq(
        "Q(x) :- rating(x, 5) ; Q(x) :- movie(x, y, 'Universal', '2014')"
    )
    sql_text = ucq_to_sql(union, gs.schema())
    connection = load_sqlite(gs_instance.database)
    assert run_sql(connection, sql_text) == evaluate_ucq(union, gs_instance.database.facts)


# --------------------------------------------------------------------------- #
# Plan translation
# --------------------------------------------------------------------------- #


def test_figure1_plan_to_sql_matches_executor(gs_instance, gs_engine):
    plan = gs.figure1_plan()
    translation = plan_to_sql(plan, gs.schema(), gs.views(), gs.access_schema())
    assert translation.columns == ("mid",)
    assert any("movie" in comment for comment in translation.fetch_comments)

    connection = load_sqlite(
        gs_instance.database, gs.access_schema(), gs.views(), gs_engine.view_cache
    )
    sql_rows = run_sql(connection, translation.text)

    indexes = IndexSet(gs_instance.database, gs.access_schema())
    executed = execute_plan(
        plan, gs.schema(), gs.access_schema(), indexes, gs_engine.view_cache
    )
    assert sql_rows == set(executed.rows)
    # And both agree with the original query.
    assert sql_rows == evaluate_cq(gs.query_q0(), gs_instance.database.facts)


def test_plan_sql_has_one_cte_per_node(gs_instance):
    plan = gs.figure1_plan()
    translation = plan_to_sql(plan, gs.schema(), gs.views(), gs.access_schema())
    assert translation.text.count(" AS (") == plan.size()


def test_constant_and_select_plan_sql(gs_instance):
    plan = SelectNode(
        FetchNode(ConstantScan("m_000001", attribute="mid"), "rating", ("mid",), ("rank",)),
        (AttributeEqualsConstant("rank", 5),),
    )
    translation = plan_to_sql(plan, gs.schema(), None, gs.access_schema())
    connection = load_sqlite(gs_instance.database)
    sql_rows = run_sql(connection, translation.text)
    indexes = IndexSet(gs_instance.database, gs.access_schema())
    executed = execute_plan(plan, gs.schema(), gs.access_schema(), indexes, {})
    assert sql_rows == set(executed.rows)


def test_union_and_difference_plan_sql(gs_instance, gs_engine):
    ratings = FetchNode(ConstantScan("m_000001", attribute="mid"), "rating", ("mid",), ("rank",))
    high = ProjectNode(SelectNode(ratings, (AttributeEqualsConstant("rank", 5),)), ("mid",))
    ratings2 = FetchNode(ConstantScan("m_000002", attribute="mid"), "rating", ("mid",), ("rank",))
    other = ProjectNode(ratings2, ("mid",))
    for plan in (UnionNode(high, other), DifferenceNode(other, high)):
        translation = plan_to_sql(plan, gs.schema(), None, gs.access_schema())
        connection = load_sqlite(gs_instance.database)
        sql_rows = run_sql(connection, translation.text)
        indexes = IndexSet(gs_instance.database, gs.access_schema())
        executed = execute_plan(plan, gs.schema(), gs.access_schema(), indexes, {})
        assert sql_rows == set(executed.rows)


def test_boolean_plan_sql_marker_column(gs_instance, gs_engine):
    plan = ProjectNode(ViewScan("V1", ("mid",)), ())
    translation = plan_to_sql(plan, gs.schema(), gs.views(), gs.access_schema())
    assert translation.columns == ()
    assert translation.marker_column is not None
    connection = load_sqlite(
        gs_instance.database, None, gs.views(), gs_engine.view_cache
    )
    rows = run_sql(connection, translation.text)
    assert bool(rows) == bool(gs_engine.view_cache["V1"])


def test_example63_fo_plan_sql(gs_instance):
    """The Example 6.3 FO plan (V3 \\ V1) ∪ V2 runs on SQLite via EXCEPT/UNION."""
    from repro.algebra.terms import Variable
    from repro.storage.instance import Database

    canonical = example63.canonical_instance_of(example63.query_q())
    # The canonical instance uses labelled nulls (Variable objects) as values;
    # SQLite needs primitive values, so rename them to strings.
    sanitized = {
        name: {
            tuple(f"null_{v.name}" if isinstance(v, Variable) else v for v in row)
            for row in rows
        }
        for name, rows in canonical.facts.items()
    }
    instance = Database.from_facts(example63.schema(), sanitized)
    views = example63.views()
    engine = BoundedEngine(instance, example63.access_schema(), views)
    plan = example63.fo_plan()
    translation = plan_to_sql(plan, example63.schema(), views, example63.access_schema())
    connection = load_sqlite(instance, None, views, engine.view_cache)
    sql_rows = run_sql(connection, translation.text)
    rows, _stats = engine.execute_plan(plan)
    assert bool(sql_rows) == bool(rows)


def test_view_table_name_and_materialisation(gs_engine):
    statements = materialize_view_statements(gs.views(), gs_engine.view_cache)
    names = {create.split('"')[1] for create, _insert, _rows in statements}
    assert view_table_name("V1") in names
    assert view_table_name("V2") in names


def test_create_index_statements_skip_empty_x():
    from repro.workloads import reductions as red

    access = red.bop_reduction(red.unsatisfiable_example()).access_schema
    statements = create_index_statements(access, red.gadget_schema())
    # Only the Ro constraint has a non-empty X.
    assert len(statements) == 1
    assert "Ro" in statements[0]
