"""Unit tests for unions of conjunctive queries."""

import pytest

from repro.algebra.atoms import EqualityAtom, RelationAtom
from repro.algebra.cq import ConjunctiveQuery
from repro.algebra.terms import Constant, Variable
from repro.algebra.ucq import UnionQuery, as_union, union_of
from repro.errors import QueryError

X, Y = Variable("x"), Variable("y")


def cq_r(name="Q1"):
    return ConjunctiveQuery(head=(X,), atoms=(RelationAtom("R", (X, Y)),), name=name)


def cq_s(name="Q2"):
    return ConjunctiveQuery(head=(X,), atoms=(RelationAtom("S", (X, Y)),), name=name)


def test_union_requires_same_arity():
    boolean = ConjunctiveQuery(head=(), atoms=(RelationAtom("R", (X, Y)),))
    with pytest.raises(QueryError):
        UnionQuery((cq_r(), boolean))


def test_union_accessors():
    union = UnionQuery((cq_r(), cq_s()), name="U")
    assert union.head_arity == 1
    assert not union.is_boolean
    assert not union.is_single_cq
    assert union.relation_names == {"R", "S"}
    assert union.variables == {X, Y}
    assert len(union) == 2
    assert list(union) == list(union.disjuncts)


def test_as_union_coerces_cq():
    single = as_union(cq_r())
    assert isinstance(single, UnionQuery)
    assert single.is_single_cq
    already = UnionQuery((cq_r(),))
    assert as_union(already) is already
    with pytest.raises(QueryError):
        as_union("not a query")


def test_union_of_flattens():
    nested = union_of([cq_r(), UnionQuery((cq_s(),))], name="flat")
    assert len(nested) == 2
    assert nested.name == "flat"


def test_satisfiable_disjuncts_drops_contradictions():
    contradictory = ConjunctiveQuery(
        head=(X,),
        atoms=(RelationAtom("R", (X, Y)),),
        equalities=(EqualityAtom(X, Constant(1)), EqualityAtom(X, Constant(2))),
    )
    union = UnionQuery((cq_r(), contradictory))
    kept = union.satisfiable_disjuncts()
    assert len(kept) == 1
    assert kept[0].name == "Q1"


def test_union_constants():
    with_constant = ConjunctiveQuery(
        head=(X,), atoms=(RelationAtom("R", (X, Constant(9))),)
    )
    union = UnionQuery((cq_r(), with_constant))
    assert Constant(9) in union.constants
