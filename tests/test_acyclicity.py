"""Unit tests for hypergraph acyclicity (GYO) and join trees."""

from repro.algebra.atoms import RelationAtom
from repro.algebra.cq import ConjunctiveQuery
from repro.algebra.acyclicity import (
    hypergraph,
    is_acyclic,
    is_self_join_free,
    join_tree,
)
from repro.algebra.terms import Constant, Variable

X, Y, Z, W = Variable("x"), Variable("y"), Variable("z"), Variable("w")


def test_single_atom_is_acyclic():
    q = ConjunctiveQuery(head=(X,), atoms=(RelationAtom("R", (X, Y)),))
    assert is_acyclic(q)


def test_path_query_is_acyclic():
    q = ConjunctiveQuery(
        head=(X, Z),
        atoms=(RelationAtom("R", (X, Y)), RelationAtom("S", (Y, Z))),
    )
    assert is_acyclic(q)
    tree = join_tree(q)
    assert tree is not None
    assert len(tree.parent) == 2


def test_triangle_is_cyclic():
    q = ConjunctiveQuery(
        head=(),
        atoms=(
            RelationAtom("E", (X, Y)),
            RelationAtom("E", (Y, Z)),
            RelationAtom("E", (Z, X)),
        ),
    )
    assert not is_acyclic(q)
    assert join_tree(q) is None


def test_star_query_is_acyclic():
    q = ConjunctiveQuery(
        head=(X,),
        atoms=(
            RelationAtom("R", (X, Y)),
            RelationAtom("S", (X, Z)),
            RelationAtom("T", (X, W)),
        ),
    )
    assert is_acyclic(q)


def test_q0_of_example_11_is_acyclic():
    from repro.workloads import graph_search

    assert is_acyclic(graph_search.query_q0())


def test_disconnected_query_is_acyclic():
    q = ConjunctiveQuery(
        head=(),
        atoms=(RelationAtom("R", (X, Y)), RelationAtom("S", (Z, W))),
    )
    assert is_acyclic(q)


def test_equalities_affect_hypergraph_via_normalisation():
    from repro.algebra.atoms import EqualityAtom

    # R(x,y), S(y,z), T(z,x) is cyclic, but equating x = y collapses it.
    cyclic = ConjunctiveQuery(
        head=(),
        atoms=(
            RelationAtom("R", (X, Y)),
            RelationAtom("S", (Y, Z)),
            RelationAtom("T", (Z, X)),
        ),
    )
    assert not is_acyclic(cyclic)
    collapsed = cyclic.with_extra_equalities([EqualityAtom(X, Y)])
    assert is_acyclic(collapsed)


def test_hypergraph_edges_and_constants():
    q = ConjunctiveQuery(
        head=(X,),
        atoms=(RelationAtom("R", (X, Constant(1))), RelationAtom("S", (X, Y))),
    )
    edges = hypergraph(q)
    assert edges[0].variables == {X}
    assert edges[1].variables == {X, Y}


def test_self_join_free_detection():
    q = ConjunctiveQuery(
        head=(X,),
        atoms=(RelationAtom("R", (X, Y)), RelationAtom("S", (Y, Z))),
    )
    assert is_self_join_free(q)
    q2 = ConjunctiveQuery(
        head=(X,),
        atoms=(RelationAtom("R", (X, Y)), RelationAtom("R", (Y, Z))),
    )
    assert not is_self_join_free(q2)
