"""Cross-validation of the execution backends: the SQLite backend must be
row-identical to the in-memory executor on the paper's workloads."""

import pytest

from repro.engine.service import QueryService
from repro.workloads import cdr, graph_search as gs


@pytest.fixture(scope="module")
def gs_service():
    data = gs.generate(num_persons=1_500, num_movies=400, seed=5)
    return QueryService(data.database, gs.access_schema(n0=data.n0), gs.views())


@pytest.fixture(scope="module")
def cdr_service():
    instance = cdr.generate(num_customers=120, num_days=4, seed=9)
    return QueryService(instance.database, cdr.access_schema(), cdr.views()), instance


def test_graph_search_q0_row_identical(gs_service):
    memory = gs_service.query(gs.query_q0(), backend="memory")
    sqlite = gs_service.query(gs.query_q0(), backend="sqlite")
    assert memory.used_bounded_plan and sqlite.used_bounded_plan
    assert sqlite.rows == memory.rows
    assert sqlite.backend == "sqlite" and memory.backend == "memory"


def test_graph_search_figure1_plan_row_identical(gs_service):
    plan = gs.figure1_plan()
    memory = gs_service.execute_plan(plan, backend="memory")
    sqlite = gs_service.execute_plan(plan, backend="sqlite")
    assert sqlite.rows == memory.rows


def test_graph_search_baseline_row_identical(gs_service):
    memory = gs_service.query(gs.query_q0(), backend="memory", planners=())
    sqlite = gs_service.query(gs.query_q0(), backend="sqlite", planners=())
    assert not memory.used_bounded_plan and not sqlite.used_bounded_plan
    assert sqlite.rows == memory.rows


def test_cdr_workload_row_identical_across_backends(cdr_service):
    service, instance = cdr_service
    for query in cdr.workload(instance, count=8, seed=21):
        memory = service.query(query, backend="memory")
        sqlite = service.query(query, backend="sqlite")
        assert sqlite.rows == memory.rows, f"backend mismatch on {query.name}"
        assert sqlite.used_bounded_plan == memory.used_bounded_plan


def test_backend_per_service_default(gs_service):
    data = gs.generate(num_persons=300, num_movies=100, seed=6)
    service = QueryService(
        data.database, gs.access_schema(n0=data.n0), gs.views(), backend="sqlite"
    )
    answer = service.query(gs.query_q0())
    assert answer.backend == "sqlite"
    reference = service.query(gs.query_q0(), backend="memory")
    assert reference.rows == answer.rows


def test_unknown_backend_raises(gs_service):
    from repro.errors import UnsupportedQueryError

    with pytest.raises(UnsupportedQueryError):
        gs_service.query(gs.query_q0(), backend="oracle")


def test_sqlite_backend_boolean_query(gs_service):
    boolean = "Q() :- movie(mid, t, 'Universal', '2014')"
    memory = gs_service.query(boolean, backend="memory")
    sqlite = gs_service.query(boolean, backend="sqlite")
    assert sqlite.rows == memory.rows


def test_sqlite_backend_prepared_param(gs_service):
    prepared = gs_service.prepare(
        "Q(mid) :- movie(mid, t, :studio, '2014'), rating(mid, 5)"
    )
    memory = prepared.execute(studio="Universal", backend="memory")
    sqlite = prepared.execute(studio="Universal", backend="sqlite")
    assert sqlite.rows == memory.rows
