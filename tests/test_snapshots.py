"""MVCC snapshots: versioned reads, COW maintenance, and torn-read immunity.

The unit tests pin the storage-level contracts of
:mod:`repro.storage.snapshots` — deterministic shard hashing, layout
classification, fetch equality with the live indices, copy-on-write
``advance`` equivalence with a full rebuild, reader immutability and
out-of-band staleness detection.  The property test at the end is the
concurrency acceptance check: readers racing a writer thread must only ever
observe full pre- or post-batch states (rows *and* ``Dξ`` match some
serially computed version), never a torn mix.
"""

from __future__ import annotations

import threading
import time
import zlib

import pytest

from repro.engine.service import QueryService
from repro.storage.indexes import IndexSet
from repro.storage.snapshots import ShardingLayout, shard_of, single_shard_layout
from repro.storage.updates import Deletion, Insertion, UpdateBatch, random_update_batch
from repro.workloads import graph_search as gs


@pytest.fixture(scope="module")
def instance():
    return gs.generate(num_persons=60, num_movies=80, seed=5)


def _service(instance, **kwargs) -> QueryService:
    return QueryService(
        instance.database, gs.access_schema(n0=instance.n0), gs.views(), **kwargs
    )


# --------------------------------------------------------------------------- #
# Shard hashing and layout derivation
# --------------------------------------------------------------------------- #


def test_shard_of_is_deterministic_and_hash_seed_free():
    key = ("Universal", "2014")
    expected = zlib.crc32(repr(tuple(key)).encode("utf-8")) % 4
    assert shard_of(key, 4) == expected
    assert shard_of(key, 4) == shard_of(list(key), 4)
    assert shard_of(key, 1) == 0
    assert all(0 <= shard_of((i,), 8) < 8 for i in range(100))


def test_layout_partitions_only_keyed_high_bound_constraints():
    schema, access = gs.schema(), gs.access_schema(n0=100)
    layout = ShardingLayout.derive(schema, access, 4)
    by_relation = {c.relation: c for c in access}
    assert layout.shard_count == 4
    # movie(studio,release -> mid, 100): keyed and high-bound => partitioned.
    assert layout.constraint_is_partitioned(by_relation["movie"])
    # rating(mid -> rank, 1): reference tier (bound <= 1) => global.
    assert not layout.constraint_is_partitioned(by_relation["rating"])

    single = ShardingLayout.derive(schema, access, 1)
    assert not any(single.constraint_is_partitioned(c) for c in access)
    with pytest.raises(ValueError):
        ShardingLayout.derive(schema, access, 0)
    assert single_shard_layout().shard_count == 1


# --------------------------------------------------------------------------- #
# Snapshot contents vs. live indices
# --------------------------------------------------------------------------- #


def _probe_keys(instance):
    movies = list(instance.database.relation("movie"))
    keys = sorted({(row[2], row[3]) for row in movies})[:10]
    keys.append(("NoSuchStudio", "1900"))
    mids = sorted(row[0] for row in movies)[:10]
    return keys, mids


def test_snapshot_fetch_matches_live_indexes(instance):
    access = gs.access_schema(n0=instance.n0)
    layout = ShardingLayout.derive(instance.database.schema, access, 4)
    manager = instance.database.enable_snapshots(layout, access)
    live = IndexSet(instance.database, access)
    by_relation = {c.relation: c for c in access}
    keys, mids = _probe_keys(instance)
    snapshot = manager.reader()
    for key in keys:
        assert snapshot.fetch(by_relation["movie"], key) == live.fetch(
            by_relation["movie"], key
        )
    for mid in mids:
        assert snapshot.fetch(by_relation["rating"], (mid,)) == live.fetch(
            by_relation["rating"], (mid,)
        )
    assert snapshot.facts == instance.database.facts


def test_advance_matches_full_rebuild_and_readers_stay_pinned():
    instance = gs.generate(num_persons=40, num_movies=60, seed=9)
    access = gs.access_schema(n0=instance.n0)
    layout = ShardingLayout.derive(instance.database.schema, access, 4)
    manager = instance.database.enable_snapshots(layout, access)
    before = manager.reader()
    facts_before = before.facts

    batch = random_update_batch(instance.database, size=40, seed=3)
    instance.database.apply(batch)

    # The manager advanced copy-on-write inside the transaction; a manager
    # built from scratch on the post state must agree bucket for bucket.
    after = manager.reader()
    assert after.version > before.version
    rebuilt = instance.database.enable_snapshots(layout, access).reader()
    assert after.facts == rebuilt.facts == instance.database.facts
    by_relation = {c.relation: c for c in access}
    keys, mids = _probe_keys(instance)
    for key in keys:
        assert after.fetch(by_relation["movie"], key) == rebuilt.fetch(
            by_relation["movie"], key
        )
    for mid in mids:
        assert after.fetch(by_relation["rating"], (mid,)) == rebuilt.fetch(
            by_relation["rating"], (mid,)
        )
    # The pre-write reader is pinned: it still serves the pre-write state.
    assert before.facts == facts_before


def test_out_of_band_mutation_is_detected_and_healed(instance):
    service = _service(instance)
    q0 = gs.query_q0()
    service.query(q0)
    assert not service._snapshots.stale()
    # Bypass the delta stream entirely: a direct Relation.add is invisible
    # to observers of Database.apply, but bumps the mutation counter.
    row = ("m_oob", "oob", "Universal", "2014")
    instance.database.relation("movie").add(row)
    try:
        assert service._snapshots.stale()
        healed = service.query(q0)
        fresh = _service(instance).query(q0)
        assert healed.rows == fresh.rows
        assert healed.tuples_fetched == fresh.tuples_fetched
        assert not service._snapshots.stale()
    finally:
        instance.database.relation("movie").discard(row)


def test_explicit_provider_disables_snapshot_serving(instance):
    service = _service(instance, shards=4)
    assert service.shard_count == 4
    service.refresh_data(provider=IndexSet(instance.database, service.access_schema))
    assert service.shard_count == 0
    assert service._snapshots is None
    answer = service.query(gs.query_q0())
    assert answer.shards_touched == ()


# --------------------------------------------------------------------------- #
# The torn-read property test
# --------------------------------------------------------------------------- #


def _paired_batches(database, count: int) -> list[UpdateBatch]:
    """Batches whose partial application is observable in (rows, Dξ).

    Each batch inserts a Universal/2014 movie together with its rating and a
    NASA like — Q0 gains the movie only once all three rows are visible, and
    a torn state (movie without rating) shifts ``Dξ`` away from both the
    pre- and post-batch version.  The tail batches delete earlier movies
    again, so versions also shrink.
    """
    pid = next(row[0] for row in database.relation("person") if row[2] == "NASA")
    batches = []
    rows = [
        (
            (f"m_torn_{i}", f"torn{i}", "Universal", "2014"),
            (f"m_torn_{i}", 5),
            (pid, f"m_torn_{i}", "movie"),
        )
        for i in range(count)
    ]
    for movie, rating, like in rows:
        batches.append(
            UpdateBatch(
                [Insertion("movie", movie), Insertion("rating", rating), Insertion("like", like)]
            )
        )
    for movie, rating, like in rows[::2]:
        batches.append(
            UpdateBatch(
                [Deletion("movie", movie), Deletion("rating", rating), Deletion("like", like)]
            )
        )
    return batches


@pytest.mark.parametrize("shards", [1, 4])
def test_concurrent_readers_never_observe_torn_state(shards):
    q0 = gs.query_q0()
    generate = dict(num_persons=40, num_movies=60, seed=13)

    # Serial oracle: the exact (rows, Dξ, view scans) of every version.
    serial = gs.generate(**generate)
    oracle = _service(serial, shards=shards, codegen_warmup=0)
    batches = _paired_batches(serial.database, 8)
    answer = oracle.query(q0)
    valid = {(answer.rows, answer.tuples_fetched, answer.view_tuples_scanned)}
    for batch in batches:
        oracle.apply(batch)
        answer = oracle.query(q0)
        valid.add((answer.rows, answer.tuples_fetched, answer.view_tuples_scanned))

    # Concurrent run on an identical instance: a writer thread applies the
    # same batches while readers hammer Q0.  Every observation must be one
    # of the serial versions — snapshot publication is all-or-nothing.
    concurrent = gs.generate(**generate)
    service = _service(concurrent, shards=shards, codegen_warmup=0)
    live_batches = _paired_batches(concurrent.database, 8)
    done = threading.Event()
    torn: list[tuple] = []
    observed = 0

    def read() -> None:
        nonlocal observed
        while not done.is_set():
            a = service.query(q0)
            seen = (a.rows, a.tuples_fetched, a.view_tuples_scanned)
            observed += 1
            if seen not in valid:
                torn.append(seen)

    readers = [threading.Thread(target=read) for _ in range(3)]
    for thread in readers:
        thread.start()
    try:
        for batch in live_batches:
            service.apply(batch)
            time.sleep(0.002)
    finally:
        done.set()
        for thread in readers:
            thread.join()
    assert not torn, f"torn observations: {torn[:3]}"
    assert observed > 0

    final = service.query(q0)
    expected = oracle.query(q0)
    assert final.rows == expected.rows
    assert final.tuples_fetched == expected.tuples_fetched
