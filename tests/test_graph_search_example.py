"""End-to-end tests reproducing Examples 1.1, 2.2, 2.3 and 3.3 of the paper."""

import pytest

from repro.algebra.atoms import RelationAtom
from repro.algebra.cq import ConjunctiveQuery
from repro.algebra.terms import Constant, Variable
from repro.algebra.views import ViewSet
from repro.core.bounded_output import has_bounded_output
from repro.core.conformance import conforms_to
from repro.core.equivalence import a_equivalent
from repro.core.plan_eval import PlanExecutor
from repro.core.rewriting import plan_to_ucq, unfold_view_atoms
from repro.engine.session import BoundedEngine
from repro.storage.indexes import IndexSet
from repro.workloads import graph_search as gs


def test_generated_data_satisfies_a0(gs_instance, gs_access):
    assert gs_instance.database.satisfies(gs_access)
    assert gs_instance.database.satisfies(gs.access_schema(with_like_key=True))


def test_q0_is_not_boundedly_evaluable_without_views(gs_q0, gs_access, gs_schema):
    """Example 1.1: under A0 alone, Q0 has no bounded plan (person/like are free)."""
    from repro.engine.optimizer import build_bounded_plan

    outcome = build_bounded_plan(gs_q0, ViewSet(()), gs_access, gs_schema)
    assert not outcome.found


def test_v1_does_not_have_bounded_output(gs_access, gs_schema, gs_views):
    """V1 itself is not boundedly evaluable / has unbounded output under A0."""
    v1 = gs_views.view("V1")
    assert not has_bounded_output(v1.as_ucq(), gs_access, gs_schema)


def test_figure1_plan_is_an_11_bounded_rewriting(gs_q0, gs_access, gs_schema, gs_views):
    """Example 2.2: ξ0 conforms to A0, answers Q0 and fetches at most 2·N0 tuples."""
    plan = gs.figure1_plan()
    assert plan.size() <= 13  # 11 in the paper's counting, +2 explicit renames here
    report = conforms_to(plan, gs_access, gs_schema, gs_views, compute_bound=True)
    assert report.conforms
    assert report.fetch_bound == 2 * 100


def test_figure1_plan_expresses_example_23_rewriting(gs_q0, gs_access, gs_schema, gs_views):
    """Example 2.3: ξ0 expresses Qξ(mid) = movie(mid,·,U,2014) ∧ V1(mid) ∧ rating(mid,5),
    which is a CQ rewriting of Q0 using V1, A-equivalent to Q0 under A0."""
    plan = gs.figure1_plan()
    expressed = plan_to_ucq(plan, gs_schema, gs_views, unfold_views=True)
    assert a_equivalent(expressed, gs_q0, gs_access, gs_schema)

    # The rewriting written over the view relation, as in the paper.
    mid, ym = Variable("mid"), Variable("ym")
    q_xi = ConjunctiveQuery(
        head=(mid,),
        atoms=(
            RelationAtom("movie", (mid, ym, Constant("Universal"), Constant("2014"))),
            RelationAtom("V1", (mid,)),
            RelationAtom("rating", (mid, Constant(5))),
        ),
        name="Q_xi",
    )
    unfolded = unfold_view_atoms(q_xi, gs_views)
    assert a_equivalent(unfolded, gs_q0, gs_access, gs_schema)


def test_figure1_plan_answers_match_direct_evaluation(gs_instance, gs_q0, gs_access, gs_schema, gs_views):
    engine = BoundedEngine(gs_instance.database, gs_access, gs_views)
    plan_rows, stats = engine.execute_plan(gs.figure1_plan())
    baseline = engine.baseline(gs_q0)
    assert plan_rows == baseline.rows
    assert len(plan_rows) >= 3  # planted answers
    assert stats.tuples_fetched <= 2 * gs_instance.n0
    assert stats.tuples_fetched < baseline.tuples_scanned


def test_engine_finds_bounded_plan_for_q0(gs_instance, gs_q0, gs_access, gs_views):
    engine = BoundedEngine(gs_instance.database, gs_access, gs_views)
    answer = engine.answer(gs_q0)
    assert answer.used_bounded_plan
    assert answer.rows == engine.baseline(gs_q0).rows
    assert answer.tuples_scanned == 0


def test_io_gap_grows_with_data():
    """The scale-independence claim: fetched I/O stays flat, scans grow."""
    small = gs.generate(num_persons=150, num_movies=100, seed=3)
    large = gs.generate(num_persons=600, num_movies=400, seed=3)
    q0 = gs.query_q0()
    access, views = gs.access_schema(), gs.views()
    small_engine = BoundedEngine(small.database, access, views)
    large_engine = BoundedEngine(large.database, access, views)
    small_answer = small_engine.answer(q0)
    large_answer = large_engine.answer(q0)
    assert small_answer.used_bounded_plan and large_answer.used_bounded_plan
    assert large_answer.tuples_fetched <= 2 * large.n0
    assert large_engine.baseline(q0).tuples_scanned > small_engine.baseline(q0).tuples_scanned


def test_example_33_v2_bounded_output_depends_on_constraints(gs_schema, gs_views):
    """Example 3.3(a): the rewriting via V2 needs V2 to have bounded output,
    i.e. a constraint bounding the number of NASA employees."""
    v2 = gs_views.view("V2")
    base = gs.access_schema(with_like_key=True)
    assert not has_bounded_output(v2.as_ucq(), base, gs_schema)
    from repro.core.access import AccessConstraint

    with_cap = base.extended_with(
        [AccessConstraint("person", ("affiliation",), ("pid",), 50)]
    )
    assert has_bounded_output(v2.as_ucq(), with_cap, gs_schema)


def test_example_33_rewriting_with_v2_under_extended_schema(gs_instance, gs_q0, gs_schema):
    """Example 3.3(a): with A1 plus a cap on NASA employees, Q0 can be
    answered through V2 as well; the engine's plan stays correct."""
    from repro.core.access import AccessConstraint

    access = gs.access_schema(with_like_key=True).extended_with(
        [AccessConstraint("person", ("affiliation",), ("pid", "name"), 50)]
    )
    if not gs_instance.database.satisfies(access):
        pytest.skip("generated instance has more than 50 NASA employees")
    views = ViewSet((gs.view_v2(),))
    engine = BoundedEngine(gs_instance.database, access, views)
    answer = engine.answer(gs_q0)
    assert answer.rows == engine.baseline(gs_q0).rows
