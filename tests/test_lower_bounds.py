"""Tests for the Theorem 4.1 and Theorem 3.11 lower-bound gadgets.

The gadgets are validated at three levels:

* *structural* — the constructions use exactly the fixed schemas and access
  constraints the theorems require, and the case-(1)/(2) queries are acyclic;
* *positive direction* — for satisfiable / colorable sources, the witness
  instance of the proof satisfies ``A`` and makes the gadget query true;
* *negative direction* — where the exact ``Q ≡_A ∅`` test is feasible
  (case (1) on tiny graphs) it is run in full; for the larger gadgets the
  intended-instance family is swept instead (the exact sweep being infeasible
  is precisely what the lower bounds assert).
"""

from __future__ import annotations

import itertools

import pytest

from repro.algebra.acyclicity import is_acyclic
from repro.algebra.evaluation import evaluate_cq
from repro.core.equivalence import a_equivalent_to_empty, is_a_satisfiable
from repro.errors import QueryError
from repro.storage.instance import Database
from repro.workloads import lower_bounds as lb
from repro.workloads.reductions import formula


# --------------------------------------------------------------------------- #
# Graphs
# --------------------------------------------------------------------------- #


def test_graph_normalisation_and_queries():
    graph = lb.Graph(3, [(1, 0), (1, 2), (0, 1)])
    assert graph.edges == ((0, 1), (1, 2))
    assert graph.degree(1) == 2
    assert graph.leaves() == (0, 2)


def test_graph_rejects_self_loops_and_bad_edges():
    with pytest.raises(QueryError):
        lb.Graph(2, [(0, 0)])
    with pytest.raises(QueryError):
        lb.Graph(2, [(0, 5)])


def test_three_colorability_brute_force():
    assert lb.cycle_graph(3).is_three_colorable()
    assert lb.path_graph(4).is_three_colorable()
    assert not lb.complete_graph(4).is_three_colorable()


def test_precoloring_extendability_brute_force():
    edge = lb.path_graph(1)
    assert edge.precoloring_extendable({0: "r"})
    assert edge.precoloring_extendable({0: "r", 1: "g"})
    assert not edge.precoloring_extendable({0: "r", 1: "r"})


# --------------------------------------------------------------------------- #
# Theorem 4.1 case (1): precoloring extension
# --------------------------------------------------------------------------- #


def test_case1_structure_is_fixed_and_acyclic():
    instance = lb.precoloring_reduction(lb.path_graph(2), {0: "r", 2: "g"})
    assert set(instance.schema.names) == {"R"}
    constraints = instance.access_schema.constraints
    assert len(constraints) == 1 and constraints[0].bound == 2
    assert is_acyclic(instance.query)
    assert instance.query.is_boolean


def test_case1_rejects_non_leaf_precoloring():
    with pytest.raises(QueryError):
        lb.precoloring_reduction(lb.path_graph(2), {1: "r"})
    with pytest.raises(QueryError):
        lb.precoloring_reduction(lb.path_graph(1), {0: "purple"})


def test_case1_witness_instance_positive_direction():
    instance = lb.precoloring_reduction(lb.path_graph(2), {0: "r", 2: "g"})
    assert not instance.expected_empty
    witness = instance.witness_instance()
    assert witness.satisfies(instance.access_schema)
    assert evaluate_cq(instance.query, witness.facts)


def test_case1_exact_emptiness_matches_extendability():
    """Full biconditional on single-edge graphs (small enough for the exact sweep)."""
    edge = lb.path_graph(1)
    extendable = lb.precoloring_reduction(edge, {0: "r", 1: "g"})
    assert not extendable.expected_empty
    assert is_a_satisfiable(
        extendable.query, extendable.access_schema, extendable.schema
    )

    blocked = lb.precoloring_reduction(edge, {0: "r", 1: "r"})
    assert blocked.expected_empty
    assert a_equivalent_to_empty(blocked.query, blocked.access_schema, blocked.schema)


def test_case1_witness_raises_when_not_extendable():
    blocked = lb.precoloring_reduction(lb.path_graph(1), {0: "b", 1: "b"})
    with pytest.raises(QueryError):
        blocked.witness_instance()


# --------------------------------------------------------------------------- #
# Theorem 4.1 case (2): 3-colorability
# --------------------------------------------------------------------------- #


def test_case2_structure_is_fixed_and_acyclic():
    instance = lb.three_colorability_reduction(lb.cycle_graph(3))
    assert set(instance.schema.names) == {"R", "Rp"}
    bounds = {c.relation: c.bound for c in instance.access_schema}
    assert bounds == {"R": 1, "Rp": 6}
    assert is_acyclic(instance.query)


def test_case2_witness_instance_for_colorable_graph():
    instance = lb.three_colorability_reduction(lb.cycle_graph(3))
    assert not instance.expected_empty
    witness = instance.witness_instance()
    assert witness.satisfies(instance.access_schema)
    assert evaluate_cq(instance.query, witness.facts)


def test_case2_non_colorable_graph_has_no_intended_witness():
    instance = lb.three_colorability_reduction(lb.complete_graph(4))
    assert instance.expected_empty
    with pytest.raises(QueryError):
        instance.witness_instance()
    # Sweep the intended-instance family: no vertex-to-color assignment makes
    # the gadget query true on an instance satisfying A.
    graph = instance.graph
    for coloring in graph.colorings():
        database = Database(instance.schema)
        for left, right in itertools.permutations(lb.COLORS, 2):
            database.add("Rp", (left, right))
        for vertex in graph.vertices:
            database.add("R", (vertex + 1, coloring[vertex]))
        assert database.satisfies(instance.access_schema)
        assert not evaluate_cq(instance.query, database.facts)


# --------------------------------------------------------------------------- #
# Theorem 4.1 case (3): 3SAT as an ACQ
# --------------------------------------------------------------------------- #


def test_case3_structure_is_fixed():
    instance = lb.acq_3sat_reduction(formula(2, [[(0, False), (1, True)]]))
    bounds = {c.relation: (c.x, c.bound) for c in instance.access_schema}
    assert bounds["R"] == (("a", "b"), 1)
    assert bounds["Rp"] == ((), 2)
    assert instance.query.is_boolean


def test_case3_satisfiable_formula_witness():
    phi = formula(2, [[(0, False), (1, True)], [(1, False)]])
    instance = lb.acq_3sat_reduction(phi)
    assert not instance.expected_empty
    witness = instance.witness_instance()
    assert witness.satisfies(instance.access_schema)
    assert evaluate_cq(instance.query, witness.facts)


def test_case3_unsatisfiable_formula_intended_instances_empty():
    phi = formula(1, [[(0, False)], [(0, True)]])
    instance = lb.acq_3sat_reduction(phi)
    assert instance.expected_empty
    with pytest.raises(QueryError):
        instance.witness_instance()
    # Sweep the intended-instance family (every Boolean assignment).
    for assignment in itertools.product((False, True), repeat=phi.num_variables):
        database = Database(instance.schema)
        database.add("Rp", (0,))
        database.add("Rp", (1,))
        for row in lb._gate_truth_rows():
            database.add("R", row)
        for index, value in enumerate(assignment):
            database.add("R", (f"var{index}", "dot", int(value)))
        assert database.satisfies(instance.access_schema)
        assert not evaluate_cq(instance.query, database.facts)


def test_case3_three_literal_clause_round_trip():
    phi = formula(3, [[(0, False), (1, False), (2, False)], [(0, True), (1, True), (2, True)]])
    instance = lb.acq_3sat_reduction(phi)
    assert not instance.expected_empty
    witness = instance.witness_instance()
    assert evaluate_cq(instance.query, witness.facts)


# --------------------------------------------------------------------------- #
# Theorem 3.11
# --------------------------------------------------------------------------- #


def test_nested_family_construction():
    family = lb.nested_formula_family(2, k=1)
    assert len(family) == 3
    assert [phi.is_satisfiable() for phi in family] == [True, True, False]
    with pytest.raises(QueryError):
        lb.nested_formula_family(5, k=1)


def test_theorem311_rejects_non_nested_families():
    sat = formula(1, [[(0, False)]])
    unsat = formula(1, [[(0, False)], [(0, True)]])
    with pytest.raises(QueryError):
        lb.theorem311_reduction((unsat, sat, sat))
    with pytest.raises(QueryError):
        lb.theorem311_reduction((sat, sat))


def test_theorem311_structure():
    instance = lb.theorem311_reduction(lb.nested_formula_family(1, k=1))
    assert len(instance.views) == 1
    assert instance.query.head_arity == 1
    rs = instance.schema.relation("Rs")
    assert rs.arity == 4  # V0, V1, V2, U
    assert len(instance.rs_rows()) == 6
    assert instance.canonical_database().satisfies(instance.access_schema)


@pytest.mark.parametrize("satisfiable_count", [0, 1, 2, 3])
def test_theorem311_parity_characterisation_on_canonical_instance(satisfiable_count):
    """Q_Θ(Ds) equals ∅ or some V_i(Ds) exactly when the satisfiable count is even."""
    instance = lb.theorem311_reduction(
        lb.nested_formula_family(satisfiable_count, k=1)
    )
    assert instance.satisfiable_count == satisfiable_count
    database = instance.canonical_database()
    query_rows = evaluate_cq(instance.query, database.facts)

    # Q_Θ(Ds) = {0, ..., l} where l is the largest satisfiable index.
    expected_rows = {(u,) for u in range(satisfiable_count)}
    assert query_rows == expected_rows

    matches_some_view = False
    for view in instance.views:
        view_rows = evaluate_cq(view.definition, database.facts)
        if view_rows == query_rows:
            matches_some_view = True
    rewriting_witnessed = (not query_rows) or matches_some_view
    assert rewriting_witnessed == instance.expected_rewriting
