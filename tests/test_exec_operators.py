"""Unit tests for the execution kernel (repro.exec): operators and compilers."""

import pytest

from repro.algebra.parser import parse_cq
from repro.algebra.schema import schema_from_spec
from repro.core.access import AccessConstraint, AccessSchema
from repro.core.plan_eval import PlanExecutor
from repro.core.plans import (
    AttributeEqualsConstant,
    ConstantScan,
    FetchNode,
    ProjectNode,
    SelectNode,
)
from repro.exec import (
    Distinct,
    HashJoin,
    IOMeter,
    LookupJoin,
    Materialize,
    Project,
    Scan,
    Select,
    SemiJoin,
    Union,
)
from repro.exec.operators import IndexLookup
from repro.storage.indexes import IndexSet
from repro.storage.instance import Database


# --------------------------------------------------------------------------- #
# Operators
# --------------------------------------------------------------------------- #


def test_scan_records_view_io_once_per_open():
    meter = IOMeter()
    scan = Scan(frozenset({(1,), (2,), (3,)}), meter=meter)
    assert sorted(scan.rows()) == [(1,), (2,), (3,)]
    assert meter.view_tuples_scanned == 3
    assert meter.tuples_fetched == 0


def test_hash_join_on_positions_and_cross_product():
    left = Scan([(1, "a"), (2, "b")])
    right = Scan([("a", 10), ("a", 11), ("c", 12)])
    joined = sorted(HashJoin(left, right, (1,), (0,)).rows())
    assert joined == [(1, "a", "a", 10), (1, "a", "a", 11)]
    # Empty keys: single bucket = cross product.
    cross = set(HashJoin(Scan([(1,), (2,)]), Scan([(3,), (4,)]), (), ()).rows())
    assert cross == {(1, 3), (1, 4), (2, 3), (2, 4)}


def test_semi_join_and_anti_semi_join():
    left = Scan([(1, "x"), (2, "y"), (3, "z")])
    right = Scan([("x", 0), ("z", 0)])
    assert sorted(SemiJoin(left, right, (1,), (0,)).rows()) == [(1, "x"), (3, "z")]
    left2 = Scan([(1, "x"), (2, "y"), (3, "z")])
    right2 = Scan([("x", 0), ("z", 0)])
    assert sorted(SemiJoin(left2, right2, (1,), (0,), anti=True).rows()) == [(2, "y")]
    # Degenerate empty-key case: everything passes iff the right side is empty.
    assert list(SemiJoin(Scan([(1,)]), Scan([]), (), (), anti=True).rows()) == [(1,)]
    assert list(SemiJoin(Scan([(1,)]), Scan([]), (), ()).rows()) == []


def test_lookup_join_probes_prebuilt_index():
    index = {("a",): [(7,)], ("b",): [(8,), (9,)]}
    joined = LookupJoin(
        Scan([("a",), ("b",), ("c",)]),
        lambda key: index.get(key, ()),
        lambda row: (row[0],),
    )
    assert sorted(joined.rows()) == [("a", 7), ("b", 8), ("b", 9)]


def test_project_select_union_distinct_materialize():
    rows = [(1, 2), (1, 3), (2, 2)]
    assert sorted(Distinct(Project(Scan(rows), (0,))).rows()) == [(1,), (2,)]
    assert list(Select(Scan(rows), lambda r: r[0] == r[1]).rows()) == [(2, 2)]
    union = Distinct(Union((Scan([(1,)]), Scan([(1,), (2,)]))))
    assert sorted(union.rows()) == [(1,), (2,)]
    materialized = Materialize(Scan(rows))
    assert sorted(materialized.rows()) == sorted(rows)
    assert sorted(materialized.rows()) == sorted(rows)  # restartable


def test_operators_are_restartable():
    op = Distinct(Project(Scan([(1, 2), (1, 3)]), (0,)))
    assert list(op.rows()) == [(1,)]
    assert list(op.rows()) == [(1,)]


def test_index_lookup_dedupes_keys_and_charges_meter():
    schema = schema_from_spec({"R": ("a", "b")})
    database = Database(schema, {"R": [(1, 10), (1, 11), (2, 20)]})
    constraint = AccessConstraint("R", ("a",), ("b",), 2)
    provider = IndexSet(database, AccessSchema([constraint]))
    meter = IOMeter()
    # Child emits duplicate keys; only distinct keys are fetched (S_j is a set).
    lookup = IndexLookup(
        Scan([(1,), (1,), (2,)]), "R", constraint, provider, (0,), (0, 1), meter
    )
    assert sorted(lookup.rows()) == [(1, 10), (1, 11), (2, 20)]
    assert meter.fetch_calls == 2
    assert meter.tuples_fetched == 3
    assert meter.per_relation == {"R": 3}


# --------------------------------------------------------------------------- #
# Compilers: plan executor and CQ evaluation run on the same kernel
# --------------------------------------------------------------------------- #


@pytest.fixture
def small_db():
    schema = schema_from_spec({"R": ("a", "b"), "S": ("b", "c")})
    return Database(
        schema, {"R": [(1, 10), (2, 20), (2, 21)], "S": [(10, "x"), (21, "y")]}
    )


def test_plan_executor_compiles_to_operator_tree(small_db):
    constraint = AccessConstraint("R", ("a",), ("b",), 2)
    access = AccessSchema([constraint])
    provider = IndexSet(small_db, access)
    executor = PlanExecutor(small_db.schema, access, provider)
    plan = ProjectNode(
        SelectNode(
            FetchNode(ConstantScan(2, attribute="a"), "R", ("a",), ("b",)),
            (AttributeEqualsConstant("b", 20),),
        ),
        ("b",),
    )
    operator = executor.compile(plan)
    assert sorted(operator.rows()) == [(20,)]
    result = executor.execute(plan)
    assert result.rows == {(20,)}
    assert result.stats.tuples_fetched == 2  # both R(2, ·) tuples cross the index


def test_evaluate_cq_identical_over_database_and_plain_facts(small_db):
    from repro.algebra.evaluation import evaluate_cq

    query = parse_cq("Q(a, c) :- R(a, b), S(b, c)")
    via_database = evaluate_cq(query, small_db)
    via_mapping = evaluate_cq(query, small_db.facts)
    assert via_database == via_mapping == {(1, "x"), (2, "y")}


def test_evaluate_cq_uses_cached_secondary_indexes(small_db):
    from repro.algebra.evaluation import evaluate_cq

    query = parse_cq("Q(b) :- R(2, b)")
    assert evaluate_cq(query, small_db) == {(20,), (21,)}
    # The constant probe built (and cached) a secondary index on column 0.
    relation = small_db.relation("R")
    assert (0,) in relation._indexes  # noqa: SLF001 - asserting the cache
    # The cached index is maintained: new tuples are visible immediately.
    small_db.add("R", (2, 22))
    assert evaluate_cq(query, small_db) == {(20,), (21,), (22,)}
