"""Unit tests for classical CQ/UCQ containment and equivalence."""

import pytest

from repro.algebra.atoms import RelationAtom
from repro.algebra.containment import (
    acyclic_contained_in,
    cq_contained_in,
    cq_contained_in_ucq,
    contained_in,
    equivalent,
    is_satisfiable,
    minimal_disjuncts,
)
from repro.algebra.cq import ConjunctiveQuery
from repro.algebra.terms import Constant, Variable
from repro.algebra.ucq import UnionQuery
from repro.errors import QueryError

X, Y, Z, W = Variable("x"), Variable("y"), Variable("z"), Variable("w")


def q_edge():
    return ConjunctiveQuery(head=(X, Y), atoms=(RelationAtom("E", (X, Y)),), name="edge")


def q_path2():
    return ConjunctiveQuery(
        head=(X, Z),
        atoms=(RelationAtom("E", (X, Y)), RelationAtom("E", (Y, Z))),
        name="path2",
    )


def q_triangle():
    return ConjunctiveQuery(
        head=(),
        atoms=(
            RelationAtom("E", (X, Y)),
            RelationAtom("E", (Y, Z)),
            RelationAtom("E", (Z, X)),
        ),
        name="triangle",
    )


def q_self_loop():
    return ConjunctiveQuery(head=(), atoms=(RelationAtom("E", (X, X)),), name="loop")


def test_more_specific_query_is_contained():
    specific = ConjunctiveQuery(
        head=(X,), atoms=(RelationAtom("E", (X, Constant(1))),), name="to_one"
    )
    general = ConjunctiveQuery(head=(X,), atoms=(RelationAtom("E", (X, Y)),), name="to_any")
    assert cq_contained_in(specific, general)
    assert not cq_contained_in(general, specific)


def test_classical_triangle_loop_containment():
    # A self loop contains a triangle homomorphically: loop ⊆ triangle.
    assert cq_contained_in(q_self_loop(), q_triangle())
    # But a triangle pattern does not imply a self loop.
    assert not cq_contained_in(q_triangle(), q_self_loop())


def test_containment_requires_same_arity():
    with pytest.raises(QueryError):
        contained_in(q_edge(), q_triangle())


def test_cq_in_ucq_containment():
    union = UnionQuery((q_edge(), ConjunctiveQuery(head=(X, Y), atoms=(RelationAtom("F", (X, Y)),))))
    assert cq_contained_in_ucq(q_edge(), union)
    assert contained_in(union, union)


def test_equivalence_up_to_variable_renaming():
    renamed = ConjunctiveQuery(head=(Z, W), atoms=(RelationAtom("E", (Z, W)),))
    assert equivalent(q_edge(), renamed)


def test_unsatisfiable_contained_in_everything():
    from repro.algebra.atoms import EqualityAtom

    unsat = ConjunctiveQuery(
        head=(X, Y),
        atoms=(RelationAtom("E", (X, Y)),),
        equalities=(EqualityAtom(X, Constant(1)), EqualityAtom(X, Constant(2))),
    )
    assert cq_contained_in(unsat, q_edge())
    assert not is_satisfiable(unsat)
    assert is_satisfiable(q_edge())


def test_acyclic_containment_matches_generic_one():
    assert acyclic_contained_in(q_path2(), q_edge()) == cq_contained_in(q_path2(), q_edge())
    # path2 is contained in edge?  No: edge(x, z) needs a direct edge.
    assert not acyclic_contained_in(q_path2(), q_edge())
    # edge ⊆ path2 does not hold either (path2 needs two steps).
    assert not acyclic_contained_in(q_edge(), q_path2())
    with pytest.raises(QueryError):
        acyclic_contained_in(q_edge(), q_triangle())  # triangle is cyclic


def test_minimal_disjuncts_removes_subsumed():
    specific = ConjunctiveQuery(
        head=(X,), atoms=(RelationAtom("E", (X, Constant(1))),), name="specific"
    )
    general = ConjunctiveQuery(head=(X,), atoms=(RelationAtom("E", (X, Y)),), name="general")
    union = UnionQuery((specific, general))
    minimal = minimal_disjuncts(union)
    assert len(minimal.disjuncts) == 1
    assert minimal.disjuncts[0].name == "general"
