"""Unit tests for access constraints and access schemas."""

import pytest

from repro.algebra.atoms import RelationAtom
from repro.algebra.cq import ConjunctiveQuery
from repro.algebra.schema import schema_from_spec
from repro.algebra.terms import Constant, Variable
from repro.core.access import AccessConstraint, AccessSchema, access_constraint, tableau_satisfies
from repro.errors import AccessConstraintError

SCHEMA = schema_from_spec({"R": ("a", "b", "c"), "S": ("x", "y")})


def test_constraint_construction_and_validation():
    constraint = AccessConstraint("R", ("a",), ("b", "c"), 3)
    constraint.validate(SCHEMA)
    assert constraint.output_attributes == ("a", "b", "c")
    assert not constraint.is_functional_dependency
    assert AccessConstraint("R", ("a",), ("b",), 1).is_functional_dependency


def test_constraint_rejects_bad_bounds_and_duplicates():
    with pytest.raises(AccessConstraintError):
        AccessConstraint("R", ("a",), ("b",), 0)
    with pytest.raises(AccessConstraintError):
        AccessConstraint("R", ("a", "a"), ("b",), 1)


def test_constraint_validate_unknown_attribute():
    constraint = AccessConstraint("R", ("nope",), ("b",), 1)
    with pytest.raises(AccessConstraintError):
        constraint.validate(SCHEMA)


def test_covers_fetch_semantics():
    constraint = AccessConstraint("R", ("a",), ("b",), 2)
    assert constraint.covers_fetch(("a",), ("b",))
    assert constraint.covers_fetch(("a",), ("a", "b"))
    assert not constraint.covers_fetch(("a",), ("c",))
    assert not constraint.covers_fetch(("b",), ("a",))
    assert not constraint.covers_fetch((), ("b",))


def test_satisfaction_over_facts():
    constraint = AccessConstraint("R", ("a",), ("b",), 1)
    good = {"R": {(1, 10, "u"), (2, 20, "v")}}
    bad = {"R": {(1, 10, "u"), (1, 11, "v")}}
    assert constraint.satisfied_by(good, SCHEMA)
    assert not constraint.satisfied_by(bad, SCHEMA)
    messages = list(constraint.violations(bad, SCHEMA))
    assert len(messages) == 1 and "bound is 1" in messages[0]


def test_empty_x_constraint_bounds_whole_relation():
    constraint = AccessConstraint("S", (), ("x",), 2)
    assert constraint.satisfied_by({"S": {(1, "a"), (2, "b")}}, SCHEMA)
    assert not constraint.satisfied_by({"S": {(1, "a"), (2, "b"), (3, "c")}}, SCHEMA)


def test_access_schema_api():
    schema = AccessSchema(
        (
            AccessConstraint("R", ("a",), ("b",), 2),
            AccessConstraint("S", ("x",), ("y",), 1),
        )
    )
    assert len(schema) == 2
    assert bool(schema)
    assert schema.relations == {"R", "S"}
    assert not schema.is_fd_only
    assert schema.max_bound == 2
    assert len(schema.for_relation("R")) == 1
    found = schema.find_covering("S", ("x",), ("y",))
    assert found is not None and found.bound == 1
    assert schema.find_covering("S", ("y",), ("x",)) is None
    extended = schema.extended_with([AccessConstraint("R", ("b",), ("c",), 4)])
    assert len(extended) == 3
    assert AccessSchema(()).is_fd_only  # vacuously FD-only
    assert AccessSchema(()).max_bound == 0


def test_access_schema_equality_and_hash():
    one = AccessSchema((AccessConstraint("R", ("a",), ("b",), 2),))
    two = AccessSchema((AccessConstraint("R", ("a",), ("b",), 2),))
    assert one == two
    assert hash(one) == hash(two)


def test_access_constraint_helper_parses_strings():
    constraint = access_constraint("R", "a b", "c", 7)
    assert constraint.x == ("a", "b")
    assert constraint.y == ("c",)
    assert str(constraint) == "R((a, b) -> (c), 7)"


def test_tableau_satisfaction_treats_variables_as_distinct_constants():
    x, y1, y2 = Variable("x"), Variable("y1"), Variable("y2")
    query = ConjunctiveQuery(
        head=(),
        atoms=(RelationAtom("R", (x, y1, Constant(1))), RelationAtom("R", (x, y2, Constant(2)))),
    )
    tableau = query.tableau()
    tight = AccessSchema([AccessConstraint("R", ("a",), ("b",), 1)])
    loose = AccessSchema([AccessConstraint("R", ("a",), ("b",), 2)])
    assert not tableau_satisfies(tableau.facts(), tight, SCHEMA)
    assert tableau_satisfies(tableau.facts(), loose, SCHEMA)
