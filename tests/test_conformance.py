"""Unit tests for plan conformance to access schemas (Lemma 3.8)."""

from repro.algebra.atoms import RelationAtom
from repro.algebra.cq import ConjunctiveQuery
from repro.algebra.schema import schema_from_spec
from repro.algebra.terms import Constant, Variable
from repro.algebra.views import View, ViewSet
from repro.core.access import AccessConstraint, AccessSchema
from repro.core.conformance import conforms_to
from repro.core.plans import (
    ConstantScan,
    FetchNode,
    ProjectNode,
    ViewScan,
    join_on_shared_attributes,
)
from repro.workloads import graph_search

SCHEMA = schema_from_spec({"R": ("a", "b"), "S": ("b", "c")})
ACCESS = AccessSchema(
    (
        AccessConstraint("R", ("a",), ("b",), 2),
        AccessConstraint("S", ("b",), ("c",), 1),
    )
)
X, Y = Variable("x"), Variable("y")

UNBOUNDED_VIEW = ViewSet(
    [View("VR", ConjunctiveQuery(head=(Y,), atoms=(RelationAtom("R", (X, Y)),)))]
)
BOUNDED_VIEW = ViewSet(
    [
        View(
            "VA",
            ConjunctiveQuery(head=(Y,), atoms=(RelationAtom("R", (Constant(1), Y)),)),
        )
    ]
)


def test_plan_without_fetches_conforms_trivially():
    report = conforms_to(ConstantScan(1, "a"), ACCESS, SCHEMA)
    assert report.conforms and not report.reasons


def test_fetch_anchored_by_constant_conforms():
    plan = FetchNode(ConstantScan(1, attribute="a"), "R", ("a",), ("b",))
    report = conforms_to(plan, ACCESS, SCHEMA, compute_bound=True)
    assert report.conforms
    assert report.fetch_bound == 2


def test_fetch_without_covering_constraint_fails():
    plan = FetchNode(ConstantScan(10, attribute="b"), "R", ("b",), ("a",))
    report = conforms_to(plan, ACCESS, SCHEMA)
    assert not report.conforms
    assert "no access constraint" in report.reasons[0]


def test_chained_fetches_conform_and_accumulate_bound():
    first = FetchNode(ConstantScan(1, attribute="a"), "R", ("a",), ("b",))
    second = FetchNode(ProjectNode(first, ("b",)), "S", ("b",), ("c",))
    report = conforms_to(second, ACCESS, SCHEMA, compute_bound=True)
    assert report.conforms
    # 2 tuples from R plus at most 2 keys x bound 1 from S.
    assert report.fetch_bound == 4


def test_fetch_fed_by_unbounded_view_fails():
    # The view exposes all b-values of R: its output is unbounded under A.
    # Attribute names must match the constraint's X ("b"), so rename first.
    from repro.core.plans import RenameNode

    scan = ProjectNode(ViewScan("VR", ("y",)), ("y",))
    fetch = FetchNode(RenameNode(scan, {"y": "b"}), "S", ("b",), ("c",))
    report = conforms_to(fetch, ACCESS, SCHEMA, views=UNBOUNDED_VIEW)
    assert not report.conforms
    assert "bounded output" in report.reasons[0]


def test_fetch_fed_by_bounded_view_conforms():
    from repro.core.plans import RenameNode

    scan = ProjectNode(ViewScan("VA", ("y",)), ("y",))
    fetch = FetchNode(RenameNode(scan, {"y": "b"}), "S", ("b",), ("c",))
    report = conforms_to(fetch, ACCESS, SCHEMA, views=BOUNDED_VIEW)
    assert report.conforms


def test_empty_key_fetch_conforms_with_relation_bound():
    access = AccessSchema((AccessConstraint("S", (), ("b", "c"), 7),))
    plan = FetchNode(None, "S", (), ("b", "c"))
    report = conforms_to(plan, access, SCHEMA, compute_bound=True)
    assert report.conforms
    assert report.fetch_bound == 7


def test_figure1_plan_conforms_to_a0():
    """Example 2.2: ξ0 conforms to A0 and fetches at most 2·N0 tuples."""
    plan = graph_search.figure1_plan()
    report = conforms_to(
        plan,
        graph_search.access_schema(n0=100),
        graph_search.schema(),
        graph_search.views(),
        compute_bound=True,
    )
    assert report.conforms
    assert report.fetch_bound == 200  # 2 * N0, exactly the paper's bound


def test_view_fed_fetch_unverifiable_without_viewset():
    from repro.core.plans import RenameNode

    scan = ProjectNode(ViewScan("VA", ("y",)), ("y",))
    fetch = FetchNode(RenameNode(scan, {"y": "b"}), "S", ("b",), ("c",))
    report = conforms_to(fetch, ACCESS, SCHEMA, views=None)
    assert not report.conforms
