"""Unit tests for CQ/UCQ/Yannakakis evaluation over fact sets."""

import pytest

from repro.algebra.atoms import EqualityAtom, RelationAtom
from repro.algebra.cq import ConjunctiveQuery
from repro.algebra.evaluation import (
    active_domain,
    evaluate_cq,
    evaluate_cq_yannakakis,
    evaluate_ucq,
)
from repro.algebra.terms import Constant, Variable
from repro.algebra.ucq import UnionQuery
from repro.errors import EvaluationError, QueryError

X, Y, Z = Variable("x"), Variable("y"), Variable("z")

FACTS = {
    "R": {(1, 10), (1, 11), (2, 20)},
    "S": {(10, "a"), (11, "b"), (20, "c"), (30, "d")},
}


def path_query():
    return ConjunctiveQuery(
        head=(X, Z),
        atoms=(RelationAtom("R", (X, Y)), RelationAtom("S", (Y, Z))),
    )


def test_evaluate_join():
    assert evaluate_cq(path_query(), FACTS) == {(1, "a"), (1, "b"), (2, "c")}


def test_evaluate_with_constant_selection():
    q = ConjunctiveQuery(
        head=(Y,),
        atoms=(RelationAtom("R", (Constant(1), Y)),),
    )
    assert evaluate_cq(q, FACTS) == {(10,), (11,)}


def test_evaluate_boolean_query():
    q = ConjunctiveQuery(head=(), atoms=(RelationAtom("S", (Constant(30), Y)),))
    assert evaluate_cq(q, FACTS) == {()}
    q_empty = ConjunctiveQuery(head=(), atoms=(RelationAtom("S", (Constant(99), Y)),))
    assert evaluate_cq(q_empty, FACTS) == set()


def test_evaluate_respects_equalities():
    q = ConjunctiveQuery(
        head=(X,),
        atoms=(RelationAtom("R", (X, Y)),),
        equalities=(EqualityAtom(Y, Constant(20)),),
    )
    assert evaluate_cq(q, FACTS) == {(2,)}


def test_evaluate_constant_head_positions():
    q = ConjunctiveQuery(
        head=(Constant("tag"), X),
        atoms=(RelationAtom("R", (X, Constant(20))),),
    )
    assert evaluate_cq(q, FACTS) == {("tag", 2)}


def test_unsatisfiable_query_evaluates_to_empty():
    q = ConjunctiveQuery(
        head=(X,),
        atoms=(RelationAtom("R", (X, Y)),),
        equalities=(EqualityAtom(X, Constant(1)), EqualityAtom(X, Constant(5))),
    )
    assert evaluate_cq(q, FACTS) == set()


def test_unsafe_head_variable_raises():
    q = ConjunctiveQuery(head=(Z,), atoms=(RelationAtom("R", (X, Y)),))
    with pytest.raises(EvaluationError):
        evaluate_cq(q, FACTS)


def test_evaluate_ucq_unions_answers():
    q1 = ConjunctiveQuery(head=(X,), atoms=(RelationAtom("R", (X, Constant(10))),))
    q2 = ConjunctiveQuery(head=(X,), atoms=(RelationAtom("R", (X, Constant(20))),))
    union = UnionQuery((q1, q2))
    assert evaluate_ucq(union, FACTS) == {(1,), (2,)}
    assert evaluate_ucq(q1, FACTS) == {(1,)}


def test_yannakakis_agrees_with_generic_evaluation():
    q = path_query()
    assert evaluate_cq_yannakakis(q, FACTS) == evaluate_cq(q, FACTS)


def test_yannakakis_rejects_cyclic_queries():
    triangle = ConjunctiveQuery(
        head=(),
        atoms=(
            RelationAtom("E", (X, Y)),
            RelationAtom("E", (Y, Z)),
            RelationAtom("E", (Z, X)),
        ),
    )
    with pytest.raises(QueryError):
        evaluate_cq_yannakakis(triangle, {"E": {(1, 2)}})


def test_yannakakis_star_query_with_dangling_tuples():
    facts = {
        "R": {(1, 2), (5, 6)},
        "S": {(1, 3)},
        "T": {(1, 4), (7, 8)},
    }
    q = ConjunctiveQuery(
        head=(X,),
        atoms=(
            RelationAtom("R", (X, Y)),
            RelationAtom("S", (X, Z)),
            RelationAtom("T", (X, Variable("w"))),
        ),
    )
    assert evaluate_cq_yannakakis(q, facts) == {(1,)}
    assert evaluate_cq(q, facts) == {(1,)}


def test_missing_relation_treated_as_empty():
    q = ConjunctiveQuery(head=(X,), atoms=(RelationAtom("Missing", (X,)),))
    assert evaluate_cq(q, FACTS) == set()


def test_active_domain():
    domain = active_domain(FACTS, extra=["zzz"])
    assert {1, 2, 10, "a", "zzz"} <= domain
