"""Tests for the BoundedEngine and the naive baseline."""

import pytest

from repro.algebra.atoms import RelationAtom
from repro.algebra.cq import ConjunctiveQuery
from repro.algebra.fo import atom, conj, eq, exists, neg
from repro.algebra.schema import schema_from_spec
from repro.algebra.terms import Constant, Variable
from repro.algebra.views import ViewSet
from repro.core.access import AccessConstraint, AccessSchema
from repro.engine.baseline import NaiveEngine
from repro.engine.session import BoundedEngine
from repro.errors import EvaluationError
from repro.storage.instance import Database

X, Y, Z = Variable("x"), Variable("y"), Variable("z")

SCHEMA = schema_from_spec({"R": ("a", "b"), "S": ("b", "c")})
ACCESS = AccessSchema(
    (
        AccessConstraint("R", ("a",), ("b",), 2),
        AccessConstraint("S", ("b",), ("c",), 1),
    )
)


def make_db(extra_rows: int = 0) -> Database:
    db = Database(SCHEMA)
    db.add_many("R", [(1, 10), (1, 11), (2, 20)])
    db.add_many("S", [(10, "p"), (11, "q"), (20, "r")])
    for i in range(extra_rows):
        db.add("R", (100 + i, 1000 + i))
        db.add("S", (1000 + i, f"x{i}"))
    return db


def anchored_chain():
    return ConjunctiveQuery(
        head=(Z,),
        atoms=(RelationAtom("R", (Constant(1), Y)), RelationAtom("S", (Y, Z))),
        name="chain",
    )


def open_scan():
    return ConjunctiveQuery(
        head=(Y, Z), atoms=(RelationAtom("S", (Y, Z)),), name="scan_all"
    )


def test_engine_answers_with_bounded_plan_and_matches_baseline():
    engine = BoundedEngine(make_db(), ACCESS, ViewSet(()))
    answer = engine.answer(anchored_chain())
    assert answer.used_bounded_plan
    assert answer.rows == {("p",), ("q",)}
    assert answer.tuples_fetched > 0
    assert answer.tuples_scanned == 0
    baseline = engine.baseline(anchored_chain())
    assert baseline.rows == answer.rows
    assert baseline.tuples_scanned == make_db().size


def test_engine_falls_back_to_full_scan():
    engine = BoundedEngine(make_db(), ACCESS, ViewSet(()))
    answer = engine.answer(open_scan())
    assert not answer.used_bounded_plan
    assert answer.tuples_scanned > 0
    assert answer.rows == {(10, "p"), (11, "q"), (20, "r")}
    assert answer.reason


def test_bounded_io_is_scale_independent_while_scan_grows():
    small_engine = BoundedEngine(make_db(0), ACCESS, ViewSet(()))
    big_engine = BoundedEngine(make_db(500), ACCESS, ViewSet(()))
    query = anchored_chain()
    small = small_engine.answer(query)
    big = big_engine.answer(query)
    assert small.used_bounded_plan and big.used_bounded_plan
    assert small.tuples_fetched == big.tuples_fetched
    assert big_engine.baseline(query).tuples_scanned > small_engine.baseline(query).tuples_scanned


def test_engine_rejects_database_violating_access_schema():
    db = make_db()
    db.add("R", (1, 12))
    db.add("R", (1, 13))  # key 1 now has 4 b-values > bound 2
    with pytest.raises(EvaluationError):
        BoundedEngine(db, ACCESS, ViewSet(()))
    # Unless the check is explicitly disabled.
    BoundedEngine(db, ACCESS, ViewSet(()), check_constraints=False)


def test_engine_materialises_views(gs_instance, gs_access, gs_views):
    engine = BoundedEngine(gs_instance.database, gs_access, gs_views)
    assert set(engine.view_cache) == {"V1", "V2"}
    assert engine.view_cache_size == sum(len(v) for v in engine.view_cache.values())


def test_engine_explain_returns_plan_or_none():
    engine = BoundedEngine(make_db(), ACCESS, ViewSet(()))
    assert engine.explain(anchored_chain()) is not None
    assert engine.explain(open_scan()) is None


def test_engine_answer_fo_via_topped_plan():
    engine = BoundedEngine(make_db(), ACCESS, ViewSet(()))
    query = conj(atom("R", Constant(1), Y), neg(exists([Z], conj(atom("S", Y, Z), eq(Z, "p")))))
    answer = engine.answer_fo(query, head=(Y,), max_size=None)
    # y values reachable from key 1 whose S-value is not "p": only 11.
    assert answer.rows == {(11,)}
    assert answer.used_bounded_plan


def test_engine_answer_fo_falls_back_when_not_topped():
    engine = BoundedEngine(make_db(), ACCESS, ViewSet(()))
    query = atom("R", X, Y)  # unanchored: not topped without views
    answer = engine.answer_fo(query, head=(X, Y))
    assert not answer.used_bounded_plan
    assert answer.rows == {(1, 10), (1, 11), (2, 20)}


def test_naive_engine_scan_cost_counts_atom_scans():
    db = make_db()
    naive = NaiveEngine(db)
    assert naive.scan_cost(anchored_chain()) == db.size
    two_r = ConjunctiveQuery(
        head=(Y,), atoms=(RelationAtom("R", (X, Y)), RelationAtom("R", (Y, Z)))
    )
    assert naive.scan_cost(two_r) == 2 * len(db.relation("R"))


def test_naive_engine_fo_answers():
    db = make_db()
    naive = NaiveEngine(db)
    result = naive.answer_fo(atom("R", Constant(1), Y), head=(Y,))
    assert result.rows == {(10,), (11,)}
    assert result.tuples_scanned == len(db.relation("R"))


def test_bounded_engine_constructor_emits_deprecation_warning():
    with pytest.warns(DeprecationWarning, match="BoundedEngine is deprecated"):
        BoundedEngine(make_db(), ACCESS, ViewSet(()))
