"""Tests for the random CQ workload generator."""

from repro.engine.session import BoundedEngine
from repro.workloads import cdr
from repro.workloads.random_cq import RandomCQConfig, random_workload


def test_random_workload_is_deterministic():
    instance = cdr.generate(num_customers=60, num_days=3, seed=1)
    config = RandomCQConfig(seed=13)
    one = random_workload(cdr.schema(), instance.database, 8, config)
    two = random_workload(cdr.schema(), instance.database, 8, config)
    assert [str(q) for q in one] == [str(q) for q in two]


def test_random_queries_are_valid_and_mixed():
    instance = cdr.generate(num_customers=60, num_days=3, seed=1)
    config = RandomCQConfig(min_atoms=1, max_atoms=3, seed=99)
    queries = random_workload(cdr.schema(), instance.database, 20, config)
    assert len(queries) == 20
    for query in queries:
        query.validate(cdr.schema())
        assert 1 <= len(query.atoms) <= 3
    # Constants are drawn from the database, so some queries are anchored.
    anchored = [q for q in queries if q.constants]
    assert anchored


def test_random_queries_answerable_by_engine():
    instance = cdr.generate(num_customers=60, num_days=3, seed=1)
    engine = BoundedEngine(instance.database, cdr.access_schema(), cdr.views())
    config = RandomCQConfig(min_atoms=1, max_atoms=2, head_size=1, seed=5)
    queries = random_workload(cdr.schema(), instance.database, 10, config)
    for query in queries:
        if len(set(t for t in query.head)) != len(query.head):
            continue  # the heuristic builder requires distinct head variables
        answer = engine.answer(query)
        baseline = engine.baseline(query)
        assert answer.rows == baseline.rows, query.name
