"""Tests for the persistent plan store: round-trips, staleness, migrations,
corruption handling, and the service-level load/save integration."""

import pickle

import pytest

from repro.algebra.atoms import RelationAtom
from repro.algebra.cq import ConjunctiveQuery
from repro.algebra.schema import schema_from_spec
from repro.algebra.terms import Constant, Variable
from repro.engine.service import QueryService
from repro.engine.service.plan_store import (
    FORMAT_VERSION,
    _MAGIC,
    PlanStore,
    StoredEntry,
)
from repro.errors import PlanStoreError
from repro.storage.instance import Database
from repro.core.access import AccessConstraint, AccessSchema

FP = "fingerprint-a"
CHAIN = (("heuristic", ()), ("topped", ()))


def _entry(key=("q", CHAIN, None, None, None), plan="PLAN", **overrides):
    fields = dict(
        cache_key=key,
        plan=plan,
        planner="heuristic",
        reason="",
        parameters=frozenset(),
        dependencies=frozenset({"R"}),
        executions=3,
        codegen_state="compiled",
        estimated_fetches=12.5,
        replans=1,
        replan_reason="why",
    )
    fields.update(overrides)
    return StoredEntry(**fields)


# --------------------------------------------------------------------------- #
# Round-trips and staleness
# --------------------------------------------------------------------------- #


def test_round_trip_preserves_entries(tmp_path):
    store = PlanStore(str(tmp_path / "plans.bin"))
    entries = [_entry(), _entry(key=("q2", CHAIN, None, None, None), plan=("a", "b"))]
    store.save(FP, CHAIN, entries)
    assert store.saved == 2

    fresh = PlanStore(store.path)
    loaded = fresh.load(FP, CHAIN)
    assert loaded == entries
    assert fresh.loaded == 2


def test_missing_file_loads_empty(tmp_path):
    assert PlanStore(str(tmp_path / "absent.bin")).load(FP, CHAIN) == []


def test_stale_fingerprint_loads_empty(tmp_path):
    store = PlanStore(str(tmp_path / "plans.bin"))
    store.save(FP, CHAIN, [_entry()])
    assert store.load("fingerprint-b", CHAIN) == []


def test_stale_chain_signature_loads_empty(tmp_path):
    store = PlanStore(str(tmp_path / "plans.bin"))
    store.save(FP, CHAIN, [_entry()])
    assert store.load(FP, (("cost", ()),)) == []


def test_save_is_atomic_and_leaves_no_temp_files(tmp_path):
    store = PlanStore(str(tmp_path / "plans.bin"))
    store.save(FP, CHAIN, [_entry()])
    store.save(FP, CHAIN, [_entry(), _entry(key=("q2", CHAIN, None, None, None))])
    assert [p.name for p in tmp_path.iterdir()] == ["plans.bin"]
    assert len(store.load(FP, CHAIN)) == 2


# --------------------------------------------------------------------------- #
# Version handling: migration forward, discard of unknown versions
# --------------------------------------------------------------------------- #


def _write_payload(path, payload):
    path.write_bytes(_MAGIC + pickle.dumps(payload))


def test_v1_payload_is_migrated_with_defaults(tmp_path):
    path = tmp_path / "plans.bin"
    v1_entry = {
        "cache_key": ("q", CHAIN, None, None, None),
        "plan": "PLAN",
        "planner": "heuristic",
        "executions": 7,
        "codegen_state": "compiled",
        # no estimated_fetches / fetch_estimates / replans / order_report:
        # those fields arrived with optimizer v2 (format_version 2).
    }
    _write_payload(
        path,
        {
            "format_version": 1,
            "fingerprint": FP,
            "chain_signature": CHAIN,
            "entries": [v1_entry],
        },
    )
    (loaded,) = PlanStore(str(path)).load(FP, CHAIN)
    assert loaded.executions == 7
    assert loaded.codegen_state == "compiled"
    assert loaded.estimated_fetches is None
    assert loaded.fetch_estimates == ()
    assert loaded.replans == 0
    assert loaded.order_report is None


def test_future_version_is_discarded_not_an_error(tmp_path):
    path = tmp_path / "plans.bin"
    _write_payload(
        path,
        {
            "format_version": FORMAT_VERSION + 1,
            "fingerprint": FP,
            "chain_signature": CHAIN,
            "entries": [{"cache_key": ("q",), "plan": "P", "shape": "unknown"}],
        },
    )
    assert PlanStore(str(path)).load(FP, CHAIN) == []


def test_ancient_version_without_migration_is_discarded(tmp_path):
    path = tmp_path / "plans.bin"
    _write_payload(path, {"format_version": 0, "entries": []})
    assert PlanStore(str(path)).load(FP, CHAIN) == []


def test_non_integer_version_is_discarded(tmp_path):
    path = tmp_path / "plans.bin"
    _write_payload(path, {"format_version": "2", "entries": []})
    assert PlanStore(str(path)).load(FP, CHAIN) == []


# --------------------------------------------------------------------------- #
# Corruption: truncated / garbage files raise PlanStoreError
# --------------------------------------------------------------------------- #


def test_garbage_file_raises(tmp_path):
    path = tmp_path / "plans.bin"
    path.write_bytes(b"this is not a plan store")
    with pytest.raises(PlanStoreError, match="bad magic"):
        PlanStore(str(path)).load(FP, CHAIN)


def test_truncated_file_raises(tmp_path):
    store = PlanStore(str(tmp_path / "plans.bin"))
    store.save(FP, CHAIN, [_entry()])
    blob = (tmp_path / "plans.bin").read_bytes()
    (tmp_path / "plans.bin").write_bytes(blob[: len(blob) // 2])
    with pytest.raises(PlanStoreError, match="corrupt or truncated"):
        store.load(FP, CHAIN)


def test_garbage_after_magic_raises(tmp_path):
    path = tmp_path / "plans.bin"
    path.write_bytes(_MAGIC + b"\x00\x01garbage")
    with pytest.raises(PlanStoreError, match="corrupt or truncated"):
        PlanStore(str(path)).load(FP, CHAIN)


def test_non_dict_payload_raises(tmp_path):
    path = tmp_path / "plans.bin"
    path.write_bytes(_MAGIC + pickle.dumps(["not", "a", "dict"]))
    with pytest.raises(PlanStoreError, match="unrecognised payload"):
        PlanStore(str(path)).load(FP, CHAIN)


def test_dict_without_version_raises(tmp_path):
    path = tmp_path / "plans.bin"
    _write_payload(path, {"entries": []})
    with pytest.raises(PlanStoreError, match="unrecognised payload"):
        PlanStore(str(path)).load(FP, CHAIN)


# --------------------------------------------------------------------------- #
# Service integration: restart reuse, graceful fallback on damage
# --------------------------------------------------------------------------- #

SCHEMA = schema_from_spec({"R": ("a", "b"), "S": ("b", "c")})
ACCESS = AccessSchema(
    (
        AccessConstraint("R", ("a",), ("b",), 2),
        AccessConstraint("S", ("b",), ("c",), 1),
    )
)


def _database():
    db = Database(SCHEMA)
    db.add_many("R", [(1, 10), (1, 11), (2, 20)])
    db.add_many("S", [(10, "x"), (11, "y"), (20, "z")])
    return db


def _chain_query():
    y, z = Variable("y"), Variable("z")
    return ConjunctiveQuery(
        head=(z,),
        atoms=(RelationAtom("R", (Constant(1), y)), RelationAtom("S", (y, z))),
        name="chain",
    )


def test_service_restart_reuses_persisted_plans(tmp_path):
    path = str(tmp_path / "plans.bin")
    database = _database()
    query = _chain_query()

    first = QueryService(database, ACCESS, plan_store=path)
    expected = first.query(query).rows
    first.close()
    assert first.plan_store.saved >= 1

    second = QueryService(database, ACCESS, plan_store=path)
    answer = second.query(query)
    assert answer.rows == expected
    assert answer.cache_hit  # planned before the restart, not after
    assert second.stats.snapshot().plan_store_hits == 1
    assert second.plan_store_error == ""
    second.close()


def test_service_replans_when_data_changed_since_store(tmp_path):
    path = str(tmp_path / "plans.bin")
    database = _database()
    query = _chain_query()

    first = QueryService(database, ACCESS, plan_store=path)
    first.query(query)
    first.close()

    database.add("R", (4, 40))  # statistics fingerprint moves on
    second = QueryService(database, ACCESS, plan_store=path)
    answer = second.query(query)
    assert not answer.cache_hit
    assert second.stats.snapshot().plan_store_hits == 0
    second.close()


def test_service_survives_corrupt_store_and_rewrites_it(tmp_path):
    path = tmp_path / "plans.bin"
    path.write_bytes(b"garbage, not a store")
    database = _database()
    query = _chain_query()

    service = QueryService(database, ACCESS, plan_store=str(path))
    assert "bad magic" in service.plan_store_error  # noted, not fatal
    expected = service.query(query).rows  # serving is unaffected
    service.close()  # close() replaces the damaged file with a good one

    fresh = QueryService(database, ACCESS, plan_store=str(path))
    assert fresh.plan_store_error == ""
    answer = fresh.query(query)
    assert answer.rows == expected
    assert answer.cache_hit
    fresh.close()
