"""Unit tests for conjunctive queries and their tableau representation."""

import pytest

from repro.algebra.atoms import EqualityAtom, RelationAtom
from repro.algebra.cq import ConjunctiveQuery, check_same_arity
from repro.algebra.schema import schema_from_spec
from repro.algebra.terms import Constant, FreshVariableFactory, Variable
from repro.errors import QueryError


X, Y, Z = Variable("x"), Variable("y"), Variable("z")


def simple_query():
    return ConjunctiveQuery(
        head=(X,),
        atoms=(RelationAtom("R", (X, Y)), RelationAtom("S", (Y, Z))),
        name="Q",
    )


def test_variable_partitions():
    q = simple_query()
    assert q.variables == {X, Y, Z}
    assert q.head_variables == {X}
    assert q.existential_variables == {Y, Z}
    assert not q.is_boolean
    assert q.head_arity == 1


def test_constants_collects_all_positions():
    q = ConjunctiveQuery(
        head=(Constant("a"),),
        atoms=(RelationAtom("R", (X, Constant(1))),),
        equalities=(EqualityAtom(X, Constant(2)),),
    )
    assert q.constants == {Constant("a"), Constant(1), Constant(2)}


def test_normalize_folds_equalities():
    q = ConjunctiveQuery(
        head=(X, Y),
        atoms=(RelationAtom("R", (X, Y)),),
        equalities=(EqualityAtom(Y, Constant(5)),),
    )
    normalized = q.normalize()
    assert normalized.equalities == ()
    assert normalized.head == (X, Constant(5))
    assert normalized.atoms[0].terms == (X, Constant(5))


def test_normalize_transitive_equalities():
    q = ConjunctiveQuery(
        head=(X,),
        atoms=(RelationAtom("R", (X, Y, Z)),),
        equalities=(EqualityAtom(X, Y), EqualityAtom(Y, Z)),
    )
    normalized = q.normalize()
    terms = set(normalized.atoms[0].terms)
    assert len(terms) == 1  # all three variables merged


def test_unsatisfiable_when_constants_equated():
    q = ConjunctiveQuery(
        head=(),
        atoms=(RelationAtom("R", (X,)),),
        equalities=(EqualityAtom(X, Constant(1)), EqualityAtom(X, Constant(2))),
    )
    assert not q.is_satisfiable()
    with pytest.raises(QueryError):
        q.normalize()


def test_tableau_facts_and_summary():
    q = ConjunctiveQuery(
        head=(X,),
        atoms=(RelationAtom("R", (X, Constant("c"))),),
    )
    tableau = q.tableau()
    assert tableau.facts() == {"R": {(X, "c")}}
    assert tableau.summary_values() == (X,)
    assert tableau.variables == {X}


def test_equality_atoms_in_cq_must_not_be_negated():
    with pytest.raises(QueryError):
        ConjunctiveQuery(
            head=(X,),
            atoms=(RelationAtom("R", (X,)),),
            equalities=(EqualityAtom(X, Constant(1), negated=True),),
        )


def test_substitute_replaces_terms_everywhere():
    q = simple_query()
    substituted = q.substitute({Y: Constant(7)})
    assert substituted.atoms[0].terms == (X, Constant(7))
    assert substituted.atoms[1].terms == (Constant(7), Z)


def test_rename_apart_keeps_selected_variables():
    q = simple_query()
    factory = FreshVariableFactory(used=["x", "y", "z"])
    renamed, mapping = q.rename_apart(factory, keep=[X])
    assert X in renamed.variables
    assert Y not in renamed.variables
    assert mapping[Y] != Y


def test_project_head_and_conjoin():
    q = simple_query()
    projected = q.project_head([0])
    assert projected.head == (X,)
    with pytest.raises(QueryError):
        q.project_head([3])
    other = ConjunctiveQuery(head=(Z,), atoms=(RelationAtom("T", (Z,)),), name="O")
    combined = q.conjoin(other)
    assert combined.head == (X, Z)
    assert len(combined.atoms) == 3


def test_validate_checks_arity_and_safety():
    schema = schema_from_spec({"R": ("a", "b"), "S": ("b", "c")})
    simple_query().validate(schema)

    bad_arity = ConjunctiveQuery(head=(X,), atoms=(RelationAtom("R", (X,)),))
    with pytest.raises(Exception):
        bad_arity.validate(schema)

    unsafe = ConjunctiveQuery(head=(Z,), atoms=(RelationAtom("R", (X, Y)),))
    with pytest.raises(QueryError):
        unsafe.validate(schema)

    # A head variable equated to a constant is safe.
    safe_by_equality = ConjunctiveQuery(
        head=(Z,),
        atoms=(RelationAtom("R", (X, Y)),),
        equalities=(EqualityAtom(Z, Constant(1)),),
    )
    safe_by_equality.validate(schema)


def test_check_same_arity():
    q1 = simple_query()
    q2 = ConjunctiveQuery(head=(Y,), atoms=(RelationAtom("R", (Y, Z)),))
    assert check_same_arity([q1, q2]) == 1
    boolean = ConjunctiveQuery(head=(), atoms=(RelationAtom("R", (X, Y)),))
    with pytest.raises(QueryError):
        check_same_arity([q1, boolean])
    with pytest.raises(QueryError):
        check_same_arity([])


def test_cq_is_hashable_and_str():
    q = simple_query()
    assert q in {q}
    text = str(q)
    assert "R(" in text and "Q(" in text
