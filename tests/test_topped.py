"""Tests for the topped-query effective syntax (Section 5.2, Theorem 5.1)."""

import pytest

from repro.algebra.atoms import RelationAtom
from repro.algebra.cq import ConjunctiveQuery
from repro.algebra.fo import atom, conj, disj, eq, evaluate_fo, exists, neg
from repro.algebra.schema import schema_from_spec
from repro.algebra.terms import Constant, Variable
from repro.algebra.views import View, ViewSet
from repro.core.access import AccessConstraint, AccessSchema
from repro.core.plan_eval import PlanExecutor
from repro.core.topped import analyze_topped, is_topped, topped_plan
from repro.storage.indexes import IndexSet
from repro.storage.instance import Database

X, Y, Z, W = Variable("x"), Variable("y"), Variable("z"), Variable("w")

SCHEMA = schema_from_spec({"R": ("a", "b"), "T": ("c", "e")})
ACCESS = AccessSchema(
    (
        AccessConstraint("R", ("a",), ("b",), 3),
        AccessConstraint("T", ("c",), ("e",), 3),
    )
)
NO_VIEWS = ViewSet(())


def make_database():
    db = Database(SCHEMA)
    db.add_many("R", [(1, 1), (2, 2), (1, 7), (3, 3), (7, 8)])
    db.add_many("T", [(1, 1), (1, 5), (2, 9), (4, 1)])
    return db


def check_plan_matches_fo(query, head, views=NO_VIEWS, schema=SCHEMA, access=ACCESS, db=None):
    """Execute the generated plan and compare with active-domain FO evaluation."""
    plan = topped_plan(query, head, schema, views, access)
    assert plan is not None, "query should be topped"
    database = db if db is not None else make_database()
    assert database.satisfies(access)
    view_cache = {}
    for view in views:
        from repro.algebra.evaluation import evaluate_ucq

        view_cache[view.name] = evaluate_ucq(view.as_ucq(), database.facts)
    executor = PlanExecutor(schema, access, IndexSet(database, access), view_cache)
    result = executor.execute(plan)
    # Evaluate the query directly; view atoms read from the materialised cache.
    facts = dict(database.facts)
    facts.update(view_cache)
    expected = evaluate_fo(query, facts, head=head)
    assert result.rows == expected
    return plan, result


def test_constant_equality_is_topped():
    query = eq(X, 1)
    assert is_topped(query, SCHEMA, NO_VIEWS, ACCESS, max_size=2)
    analysis = analyze_topped(query, SCHEMA, NO_VIEWS, ACCESS)
    assert analysis.covered and analysis.size == 1


def test_anchored_atom_is_topped_and_plan_is_correct():
    # ∃b-free version: Q(y) = R(1, y).
    query = atom("R", Constant(1), Y)
    assert is_topped(query, SCHEMA, NO_VIEWS, ACCESS, max_size=4)
    check_plan_matches_fo(query, head=(Y,))


def test_unanchored_atom_is_not_topped_without_views():
    query = atom("R", X, Y)
    assert not is_topped(query, SCHEMA, NO_VIEWS, ACCESS, max_size=10)


def test_view_atom_is_always_topped():
    view = View("VR", ConjunctiveQuery(head=(X, Y), atoms=(RelationAtom("R", (X, Y)),)))
    views = ViewSet((view,))
    query = atom("VR", X, Y)
    assert is_topped(query, SCHEMA, views, ACCESS, max_size=2)
    check_plan_matches_fo(query, head=(X, Y), views=views)


def test_value_propagation_through_conjunction_case_4a():
    """Q(y, z) = R(1, y) ∧ T(y, z): z is reachable only by propagating y."""
    query = conj(atom("R", Constant(1), Y), atom("T", Y, Z))
    assert is_topped(query, SCHEMA, NO_VIEWS, ACCESS, max_size=10)
    check_plan_matches_fo(query, head=(Y, Z))


def test_existential_projection_case_7c():
    query = exists([Z], conj(atom("R", Constant(1), Y), atom("T", Y, Z)))
    assert is_topped(query, SCHEMA, NO_VIEWS, ACCESS, max_size=10)
    check_plan_matches_fo(query, head=(Y,))


def test_disjunction_requires_same_free_variables():
    good = disj(atom("R", Constant(1), Y), atom("R", Constant(2), Y))
    assert is_topped(good, SCHEMA, NO_VIEWS, ACCESS, max_size=12)
    check_plan_matches_fo(good, head=(Y,))
    bad = disj(atom("R", Constant(1), Y), atom("R", Constant(2), Z))
    assert not is_topped(bad, SCHEMA, NO_VIEWS, ACCESS, max_size=12)


def test_negation_difference_case_6():
    """Q(y) = R(1, y) ∧ ¬R(2, y)."""
    query = conj(atom("R", Constant(1), Y), neg(atom("R", Constant(2), Y)))
    assert is_topped(query, SCHEMA, NO_VIEWS, ACCESS, max_size=12)
    check_plan_matches_fo(query, head=(Y,))


def test_negation_with_value_propagation_case_6b():
    """Q(y) = R(1, y) ∧ ¬T(y, 5): the negated atom is only reachable by
    propagating y from the positive part (case 6b with K = 1)."""
    query = conj(atom("R", Constant(1), Y), neg(exists([Z], conj(atom("T", Y, Z), eq(Z, 5)))))
    # The inner conjunct has size 2 > K=1, so raise the cut-off.
    assert is_topped(query, SCHEMA, NO_VIEWS, ACCESS, max_size=30, inner_size_cutoff=2)
    plan = topped_plan(query, (Y,), SCHEMA, NO_VIEWS, ACCESS, inner_size_cutoff=2)
    assert plan is not None
    database = make_database()
    executor = PlanExecutor(SCHEMA, ACCESS, IndexSet(database, ACCESS), {})
    rows = executor.execute(plan).rows
    assert rows == evaluate_fo(query, database.facts, head=(Y,))


def test_size_estimate_respects_bound_m():
    query = conj(atom("R", Constant(1), Y), atom("T", Y, Z))
    analysis = analyze_topped(query, SCHEMA, NO_VIEWS, ACCESS)
    assert analysis.covered
    assert is_topped(query, SCHEMA, NO_VIEWS, ACCESS, max_size=int(analysis.size))
    assert not is_topped(query, SCHEMA, NO_VIEWS, ACCESS, max_size=int(analysis.size) - 1)


def test_pure_negation_is_not_topped():
    assert not is_topped(neg(atom("R", X, Y)), SCHEMA, NO_VIEWS, ACCESS, max_size=10)


def test_plan_fetches_constant_amount():
    query = conj(atom("R", Constant(1), Y), atom("T", Y, Z))
    plan = topped_plan(query, (Y, Z), SCHEMA, NO_VIEWS, ACCESS)
    small = make_database()
    big = make_database()
    big.add_many("R", [(100 + i, 200 + i) for i in range(300)])
    big.add_many("T", [(200 + i, 300 + i) for i in range(300)])
    assert big.satisfies(ACCESS)

    def fetched(db):
        executor = PlanExecutor(SCHEMA, ACCESS, IndexSet(db, ACCESS), {})
        return executor.execute(plan).stats.tuples_fetched

    assert fetched(small) == fetched(big)


def test_example_53_query_q3_is_topped():
    """Example 5.3: q3(z) = q4(z) ∧ ¬∃w R(z, w) over R1 = {R(A,B), T(C,E)}.

    q4(z) = ∃x∃y (V3(x, y) ∧ x = 1 ∧ R(y, z)) with the view
    V3(x, y) = R(y, y) ∧ T(x, y); A2 = {R(A -> B, N), T(C -> E, N)}.
    """
    schema = schema_from_spec({"R": ("A", "B"), "T": ("C", "E")})
    access = AccessSchema(
        (
            AccessConstraint("R", ("A",), ("B",), 3),
            AccessConstraint("T", ("C",), ("E",), 3),
        )
    )
    v3 = View(
        "V3",
        ConjunctiveQuery(
            head=(X, Y),
            atoms=(RelationAtom("R", (Y, Y)), RelationAtom("T", (X, Y))),
            name="V3_def",
        ),
    )
    views = ViewSet((v3,))
    q4 = exists([X, Y], conj(atom("V3", X, Y), eq(X, 1), atom("R", Y, Z)))
    q3 = conj(q4, neg(exists([W], atom("R", Z, W))))

    assert is_topped(q3, schema, views, access, max_size=40, inner_size_cutoff=1)
    plan = topped_plan(q3, (Z,), schema, views, access)
    assert plan is not None

    # Execute on an instance satisfying A2 and compare with direct evaluation.
    db = Database(schema)
    db.add_many("R", [(7, 7), (7, 3), (2, 9), (9, 1), (5, 5)])
    db.add_many("T", [(1, 7), (1, 5), (2, 7)])
    assert db.satisfies(access)
    from repro.algebra.evaluation import evaluate_ucq

    view_cache = {"V3": evaluate_ucq(v3.as_ucq(), db.facts)}
    executor = PlanExecutor(schema, access, IndexSet(db, access), view_cache)
    rows = executor.execute(plan).rows
    facts = dict(db.facts)
    facts.update(view_cache)
    expected = evaluate_fo(q3, facts, head=(Z,))
    assert rows == expected
    assert (3,) in expected  # z = 3 has an incoming R-edge from 7 but no outgoing one
