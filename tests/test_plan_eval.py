"""Unit tests for plan execution and Dξ (fetched-tuple) accounting."""

import pytest

from repro.algebra.schema import schema_from_spec
from repro.core.access import AccessConstraint, AccessSchema
from repro.core.plan_eval import FetchStats, PlanExecutor, execute_plan
from repro.core.plans import (
    AttributeEqualsAttribute,
    AttributeEqualsConstant,
    ConstantScan,
    DifferenceNode,
    FetchNode,
    ProductNode,
    ProjectNode,
    RenameNode,
    SelectNode,
    UnionNode,
    ViewScan,
)
from repro.errors import PlanError
from repro.storage.indexes import IndexSet
from repro.storage.instance import Database

SCHEMA = schema_from_spec({"R": ("a", "b"), "S": ("b", "c")})
ACCESS = AccessSchema(
    (
        AccessConstraint("R", ("a",), ("b",), 2),
        AccessConstraint("S", ("b",), ("c",), 1),
        AccessConstraint("S", (), ("b", "c"), 10),
    )
)


@pytest.fixture
def database():
    db = Database(SCHEMA)
    db.add_many("R", [(1, 10), (1, 11), (2, 20), (3, 30)])
    db.add_many("S", [(10, "p"), (11, "q"), (20, "r"), (30, "s")])
    return db


@pytest.fixture
def executor(database):
    return PlanExecutor(SCHEMA, ACCESS, IndexSet(database, ACCESS), {"V": {(10,), (99,)}})


def test_constant_and_view_scans(executor):
    assert executor.execute(ConstantScan(5, "c")).rows == {(5,)}
    result = executor.execute(ViewScan("V", ("b",)))
    assert result.rows == {(10,), (99,)}
    assert result.stats.tuples_fetched == 0
    assert result.stats.view_tuples_scanned == 2


def test_missing_view_raises(executor):
    with pytest.raises(PlanError):
        executor.execute(ViewScan("W", ("b",)))


def test_fetch_counts_io(executor):
    plan = FetchNode(ConstantScan(1, attribute="a"), "R", ("a",), ("b",))
    result = executor.execute(plan)
    assert result.rows == {(1, 10), (1, 11)}
    assert result.stats.fetch_calls == 1
    assert result.stats.tuples_fetched == 2
    assert result.stats.per_relation == {"R": 2}


def test_fetch_with_empty_key(executor):
    plan = FetchNode(None, "S", (), ("b", "c"))
    result = executor.execute(plan)
    assert len(result.rows) == 4
    assert result.stats.fetch_calls == 1
    assert result.stats.tuples_fetched == 4


def test_chained_fetches_accumulate_io(executor):
    movies = FetchNode(ConstantScan(1, attribute="a"), "R", ("a",), ("b",))
    keys = ProjectNode(movies, ("b",))
    ratings = FetchNode(keys, "S", ("b",), ("c",))
    result = executor.execute(ratings)
    assert result.rows == {(10, "p"), (11, "q")}
    assert result.stats.fetch_calls == 3  # 1 for R + 2 keys for S
    assert result.stats.tuples_fetched == 4
    assert result.stats.per_relation == {"R": 2, "S": 2}


def test_fetch_without_covering_constraint_fails(executor):
    plan = FetchNode(ConstantScan(10, attribute="b"), "R", ("b",), ("a",))
    with pytest.raises(PlanError):
        executor.execute(plan)


def test_select_project_rename_product(executor):
    base = FetchNode(None, "S", (), ("b", "c"))
    selected = SelectNode(base, (AttributeEqualsConstant("c", "p"),))
    assert executor.execute(selected).rows == {(10, "p")}
    negated = SelectNode(base, (AttributeEqualsConstant("c", "p", negated=True),))
    assert len(executor.execute(negated).rows) == 3
    renamed = RenameNode(base, {"b": "key"})
    assert executor.execute(renamed).attributes == ("key", "c")
    product = ProductNode(ConstantScan(1, "l"), ConstantScan(2, "r"))
    assert executor.execute(product).rows == {(1, 2)}


def test_attribute_equality_selection(executor):
    both = ProductNode(
        RenameNode(ProjectNode(FetchNode(None, "S", (), ("b", "c")), ("b",)), {"b": "b1"}),
        ProjectNode(FetchNode(None, "S", (), ("b", "c")), ("b",)),
    )
    equal = SelectNode(both, (AttributeEqualsAttribute("b1", "b"),))
    assert len(executor.execute(equal).rows) == 4


def test_union_and_difference(executor):
    one = ProjectNode(FetchNode(ConstantScan(1, attribute="a"), "R", ("a",), ("b",)), ("b",))
    two = ProjectNode(FetchNode(ConstantScan(2, attribute="a"), "R", ("a",), ("b",)), ("b",))
    union = UnionNode(one, two)
    assert executor.execute(union).rows == {(10,), (11,), (20,)}
    difference = DifferenceNode(union, two)
    assert executor.execute(difference).rows == {(10,), (11,)}


def test_execute_plan_wrapper(database):
    plan = FetchNode(ConstantScan(3, attribute="a"), "R", ("a",), ("b",))
    result = execute_plan(plan, SCHEMA, ACCESS, IndexSet(database, ACCESS))
    assert result.rows == {(3, 30)}
    assert len(result) == 1


def test_fetch_stats_merge():
    stats = FetchStats()
    stats.record_fetch("R", 3)
    other = FetchStats()
    other.record_fetch("R", 1)
    other.record_fetch("S", 2)
    other.record_view_scan(5)
    merged = stats.merged_with(other)
    assert merged.tuples_fetched == 6
    assert merged.fetch_calls == 3
    assert merged.per_relation == {"R": 4, "S": 2}
    assert merged.view_tuples_scanned == 5


def test_dx_is_independent_of_database_size():
    """The scale-independence property: Dξ stays constant as |D| grows."""
    small = Database(SCHEMA)
    small.add_many("R", [(1, 10), (1, 11)])
    small.add_many("S", [(10, "p"), (11, "q")])
    big = Database(SCHEMA)
    big.add_many("R", [(1, 10), (1, 11)] + [(i, i * 10) for i in range(5, 400)])
    big.add_many("S", [(10, "p"), (11, "q")] + [(i * 10, f"v{i}") for i in range(5, 400)])

    plan = FetchNode(
        ProjectNode(FetchNode(ConstantScan(1, attribute="a"), "R", ("a",), ("b",)), ("b",)),
        "S",
        ("b",),
        ("c",),
    )
    small_stats = execute_plan(plan, SCHEMA, ACCESS, IndexSet(small, ACCESS)).stats
    big_stats = execute_plan(plan, SCHEMA, ACCESS, IndexSet(big, ACCESS)).stats
    assert small_stats.tuples_fetched == big_stats.tuples_fetched == 4
