"""Unit tests for the FO AST, conversions and active-domain evaluation."""

import pytest

from repro.algebra.cq import ConjunctiveQuery
from repro.algebra.atoms import RelationAtom
from repro.algebra.fo import (
    FOAnd,
    FOAtom,
    FOEquality,
    FOExists,
    FOForAll,
    FONot,
    FOOr,
    FOTrue,
    atom,
    classify_language,
    conj,
    disj,
    eq,
    evaluate_fo,
    exists,
    forall,
    from_cq,
    is_disjunction_free,
    is_positive_existential,
    neg,
    neq,
    rectify,
    to_ucq,
)
from repro.algebra.terms import Constant, Variable
from repro.algebra.evaluation import evaluate_ucq
from repro.errors import QueryError, UnsupportedQueryError

X, Y, Z = Variable("x"), Variable("y"), Variable("z")

FACTS = {
    "R": {(1, 10), (2, 20)},
    "S": {(10,), (99,)},
}


def test_free_variables():
    q = exists([Y], conj(atom("R", X, Y), atom("S", Y)))
    assert q.free_variables == {X}
    assert forall([X], q).free_variables == set()
    assert neg(atom("R", X, Y)).free_variables == {X, Y}
    assert FOTrue().free_variables == set()


def test_size_counts_atoms():
    q = conj(atom("R", X, Y), eq(X, 1), neg(atom("S", X)))
    assert q.size() == 3
    assert FOTrue().size() == 0


def test_language_classification():
    cq_like = exists([Y], conj(atom("R", X, Y), eq(X, 1)))
    assert classify_language(cq_like) == "CQ"
    ucq_like = exists([Y], disj(atom("R", X, Y), atom("R", Y, X)))
    assert classify_language(ucq_like) in ("UCQ", "EFO+")
    efo = exists([Y], conj(atom("S", Y), disj(atom("R", X, Y), atom("R", Y, X))))
    assert classify_language(efo) == "EFO+"
    fo = conj(atom("S", X), neg(atom("R", X, X)))
    assert classify_language(fo) == "FO"
    assert is_positive_existential(cq_like)
    assert not is_positive_existential(fo)
    assert is_disjunction_free(cq_like)
    assert not is_disjunction_free(ucq_like)


def test_negated_equality_is_not_positive():
    assert not is_positive_existential(neq(X, Y))


def test_conj_drops_tautologies_and_flattens_singletons():
    assert conj(FOTrue(), atom("S", X)) == atom("S", X)
    assert isinstance(conj(), FOTrue)
    assert isinstance(conj(atom("S", X), atom("S", Y)), FOAnd)


def test_substitute_respects_binding():
    q = exists([Y], conj(atom("R", X, Y), eq(Y, 3)))
    substituted = q.substitute({X: Constant(7), Y: Constant(9)})
    # The bound variable Y must not be substituted.
    assert Constant(9) not in substituted.constants
    assert Constant(7) in substituted.constants


def test_rectify_renames_clashing_bound_variables():
    inner = exists([X], atom("S", X))
    q = conj(atom("R", X, Y), inner)
    rectified = rectify(q)
    # The free occurrence of x must stay free; the bound one must be renamed.
    assert X in rectified.free_variables


def test_to_ucq_round_trip_against_fo_evaluation():
    q = exists([Y], conj(atom("R", X, Y), atom("S", Y)))
    ucq = to_ucq(q, head=(X,))
    assert evaluate_ucq(ucq, FACTS) == evaluate_fo(q, FACTS, head=(X,)) == {(1,)}


def test_to_ucq_distributes_disjunction():
    q = conj(
        disj(atom("R", X, Y), atom("R", Y, X)),
        disj(atom("S", X), atom("S", Y)),
    )
    ucq = to_ucq(q, head=(X, Y))
    assert len(ucq.disjuncts) == 4


def test_to_ucq_rejects_negation():
    with pytest.raises(UnsupportedQueryError):
        to_ucq(neg(atom("S", X)), head=(X,))


def test_from_cq_and_back():
    cq = ConjunctiveQuery(
        head=(X,), atoms=(RelationAtom("R", (X, Y)), RelationAtom("S", (Y,)))
    )
    fo = from_cq(cq)
    assert fo.free_variables == {X}
    assert evaluate_fo(fo, FACTS, head=(X,)) == {(1,)}


def test_evaluate_fo_with_negation_and_universal():
    # Values x with an R-edge to some y that is NOT in S.
    q = exists([Y], conj(atom("R", X, Y), neg(atom("S", Y))))
    assert evaluate_fo(q, FACTS, head=(X,)) == {(2,)}
    # For all y: R(x, y) implies S(y)  ==  ¬∃y (R(x,y) ∧ ¬S(y))
    q_all = forall([Y], disj(neg(atom("R", X, Y)), atom("S", Y)))
    answers = evaluate_fo(q_all, FACTS, head=(X,))
    assert (1,) in answers and (2,) not in answers


def test_evaluate_fo_requires_head_covering_free_variables():
    q = atom("R", X, Y)
    with pytest.raises(QueryError):
        evaluate_fo(q, FACTS, head=(X,))


def test_boolean_fo_evaluation():
    q = exists([X, Y], conj(atom("R", X, Y), atom("S", Y)))
    assert evaluate_fo(q, FACTS) == {()}
    q_false = exists([X], conj(atom("S", X), eq(X, 1)))
    assert evaluate_fo(q_false, FACTS) == set()
