"""Property-based tests (hypothesis) for the core data structures and invariants.

The strategies generate small random schemas, instances, access constraints
and conjunctive queries, and check the paper's structural invariants:

* containment is reflexive and transitive, and evaluation is monotone w.r.t.
  containment;
* the tableau/canonical-database duality (a CQ always "answers itself");
* element queries are contained in their query and their tableaux satisfy A;
* ``cov`` is monotone in the access schema, and bounded-output answers are
  consistent with brute-force evaluation growth;
* bounded-plan answers agree with the naive baseline on every generated
  instance (the end-to-end soundness property of the engine).
"""

from __future__ import annotations

import itertools

from hypothesis import HealthCheck, given, settings, strategies as st

from repro.algebra.atoms import RelationAtom
from repro.algebra.containment import cq_contained_in
from repro.algebra.cq import ConjunctiveQuery
from repro.algebra.evaluation import evaluate_cq
from repro.algebra.schema import schema_from_spec
from repro.algebra.terms import Constant, Variable
from repro.algebra.views import ViewSet
from repro.core.access import AccessConstraint, AccessSchema
from repro.core.bounded_output import covered_variables, has_bounded_output
from repro.core.element_queries import element_queries
from repro.engine.session import BoundedEngine
from repro.storage.instance import Database

SCHEMA = schema_from_spec({"R": ("a", "b"), "S": ("b", "c")})
RELATIONS = {"R": 2, "S": 2}

VALUES = st.integers(min_value=0, max_value=4)
VARIABLES = st.sampled_from([Variable(name) for name in "uvwxyz"])
TERMS = st.one_of(VARIABLES, VALUES.map(Constant))

SETTINGS = settings(
    max_examples=40,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.filter_too_much],
)


@st.composite
def relation_atoms(draw):
    name = draw(st.sampled_from(sorted(RELATIONS)))
    terms = draw(st.tuples(*[TERMS for _ in range(RELATIONS[name])]))
    return RelationAtom(name, terms)


@st.composite
def conjunctive_queries(draw, max_atoms=3):
    atoms = tuple(draw(st.lists(relation_atoms(), min_size=1, max_size=max_atoms)))
    variables = sorted(
        {t for atom in atoms for t in atom.variables}, key=lambda v: v.name
    )
    if variables:
        head_size = draw(st.integers(min_value=0, max_value=min(2, len(variables))))
        head = tuple(variables[:head_size])
    else:
        head = ()
    return ConjunctiveQuery(head=head, atoms=atoms, name="Qrand")


@st.composite
def small_databases(draw, max_rows=6):
    db = Database(SCHEMA)
    for name, arity in RELATIONS.items():
        rows = draw(
            st.lists(st.tuples(*[VALUES for _ in range(arity)]), min_size=0, max_size=max_rows)
        )
        db.add_many(name, rows)
    return db


@st.composite
def access_schemas(draw):
    constraints = []
    if draw(st.booleans()):
        constraints.append(AccessConstraint("R", ("a",), ("b",), draw(st.integers(1, 3))))
    if draw(st.booleans()):
        constraints.append(AccessConstraint("S", ("b",), ("c",), draw(st.integers(1, 3))))
    if draw(st.booleans()):
        constraints.append(AccessConstraint("S", (), ("b", "c"), draw(st.integers(1, 5))))
    return AccessSchema(constraints)


# --------------------------------------------------------------------------- #
# Containment and evaluation
# --------------------------------------------------------------------------- #


@SETTINGS
@given(query=conjunctive_queries())
def test_containment_is_reflexive(query):
    assert cq_contained_in(query, query)


@SETTINGS
@given(query=conjunctive_queries(), database=small_databases())
def test_query_answers_its_own_canonical_database(query, database):
    """The summary is always an answer of Q over its tableau (Chandra–Merlin)."""
    tableau = query.tableau()
    answers = evaluate_cq(query, tableau.facts())
    assert tableau.summary_values() in answers
    del database


@SETTINGS
@given(q1=conjunctive_queries(max_atoms=2), q2=conjunctive_queries(max_atoms=2),
       database=small_databases())
def test_containment_implies_answer_inclusion(q1, q2, database):
    if q1.head_arity != q2.head_arity:
        return
    if cq_contained_in(q1, q2):
        assert evaluate_cq(q1, database.facts) <= evaluate_cq(q2, database.facts)


@SETTINGS
@given(query=conjunctive_queries(), database=small_databases(), extra=small_databases(max_rows=3))
def test_cq_evaluation_is_monotone_in_the_data(query, database, extra):
    merged = database.copy()
    for name, rows in extra.facts.items():
        merged.add_many(name, rows)
    assert evaluate_cq(query, database.facts) <= evaluate_cq(query, merged.facts)


# --------------------------------------------------------------------------- #
# Element queries, cov and bounded output
# --------------------------------------------------------------------------- #


@SETTINGS
@given(query=conjunctive_queries(max_atoms=2), access=access_schemas())
def test_element_queries_invariants(query, access):
    for element in element_queries(query, access, SCHEMA):
        assert cq_contained_in(element, query)
        assert access.satisfied_by(element.tableau().facts(), SCHEMA)


@SETTINGS
@given(query=conjunctive_queries(max_atoms=2), access=access_schemas())
def test_cov_is_monotone_in_the_access_schema(query, access):
    weaker = AccessSchema(tuple(access)[:1])
    assert covered_variables(query, weaker, SCHEMA) <= covered_variables(query, access, SCHEMA)


@SETTINGS
@given(query=conjunctive_queries(max_atoms=2))
def test_queries_with_constant_keys_only_have_bounded_output_when_cov_says_so(query):
    """Consistency of the two BOP paths: the quick sufficient check never
    contradicts the exact element-query decision."""
    access = AccessSchema(
        (
            AccessConstraint("R", ("a",), ("b",), 2),
            AccessConstraint("S", ("b",), ("c",), 2),
        )
    )
    covered = covered_variables(query.normalize(), access, SCHEMA)
    head_vars = {t for t in query.normalize().head if isinstance(t, Variable)}
    if head_vars <= covered:
        assert has_bounded_output(query, access, SCHEMA)


# --------------------------------------------------------------------------- #
# End-to-end engine soundness
# --------------------------------------------------------------------------- #


@SETTINGS
@given(database=small_databases(), anchor=VALUES, day=VALUES)
def test_engine_bounded_answers_agree_with_baseline(database, anchor, day):
    access = AccessSchema(
        (
            AccessConstraint("R", ("a",), ("b",), 10),
            AccessConstraint("S", ("b",), ("c",), 10),
        )
    )
    y, z = Variable("y"), Variable("z")
    query = ConjunctiveQuery(
        head=(z,),
        atoms=(RelationAtom("R", (Constant(anchor), y)), RelationAtom("S", (y, z))),
        name="anchored",
    )
    engine = BoundedEngine(database, access, ViewSet(()), check_constraints=False)
    answer = engine.answer(query)
    assert answer.rows == engine.baseline(query).rows
    del day
