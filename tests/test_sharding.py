"""Hash-sharded serving: differential equivalence, routing, the worker pool.

The core guarantee is *bit-identical answers*: partitioning the
access-constraint indices by key hash must change nothing observable except
``shards_touched`` — every probe key owns exactly one partition, so rows and
``Dξ`` match the unsharded service by construction.  The differential test
drives ~100 random CQs/UCQs through unsharded and N=1,2,4 sharded services
and compares everything; the router tests check the static shard-set
prediction against the partitions execution actually touched.
"""

from __future__ import annotations

import pytest

from repro.algebra.parser import parse_query
from repro.algebra.ucq import UnionQuery
from repro.engine.service import QueryService, ShardExecutor
from repro.storage.snapshots import shard_of
from repro.workloads import graph_search as gs
from repro.workloads.random_cq import RandomCQConfig, random_workload


@pytest.fixture(scope="module")
def instance():
    return gs.generate(num_persons=80, num_movies=120, seed=17)


def _service(instance, **kwargs) -> QueryService:
    return QueryService(
        instance.database, gs.access_schema(n0=instance.n0), gs.views(), **kwargs
    )


def _workload(instance) -> list:
    """~100 random CQs plus UCQs paired from arity-matching CQs."""
    cqs = random_workload(
        instance.database.schema,
        instance.database,
        80,
        RandomCQConfig(seed=29),
    )
    queries: list = list(cqs)
    by_arity: dict[int, list] = {}
    for cq in cqs:
        by_arity.setdefault(cq.head_arity, []).append(cq)
    for arity, group in sorted(by_arity.items()):
        for left, right in zip(group[0::2], group[1::2]):
            queries.append(UnionQuery((left, right), name=f"U{arity}_{left.name}"))
            if len(queries) >= 104:
                break
    # Statically keyed lookups (constant studio/release): single-shard
    # routable under the movie constraint, one per distinct key hash.
    pairs = sorted({(row[2], row[3]) for row in instance.database.relation("movie")})
    keyed = []
    for studio, release in pairs[:8]:
        keyed.append(
            parse_query(
                f"Qk(mid) :- movie(mid, t, '{studio}', '{release}'), rating(mid, 5)"
            )
        )
    queries.extend(keyed)
    # A guaranteed fan-out: a UCQ whose disjunct keys hash to different
    # partitions, so sharded execution must union partial results.
    by_shard = {shard_of((p[0], p[1]), 4): p for p in pairs}
    if len(by_shard) >= 2:
        (a, b) = list(by_shard.values())[:2]
        left = parse_query(f"Qf(mid) :- movie(mid, t, '{a[0]}', '{a[1]}'), rating(mid, 5)")
        right = parse_query(f"Qf(mid) :- movie(mid, t, '{b[0]}', '{b[1]}'), rating(mid, 4)")
        queries.append(UnionQuery((left, right), name="Qfan"))
    queries.append(gs.query_q0())
    return queries


# --------------------------------------------------------------------------- #
# Differential: sharded == unsharded, bit for bit
# --------------------------------------------------------------------------- #


def test_sharded_services_answer_bit_identically(instance):
    queries = _workload(instance)
    unsharded = _service(instance, shards=None)
    sharded = {n: _service(instance, shards=n) for n in (1, 2, 4)}
    fanouts = 0
    for query in queries:
        expected = unsharded.query(query)
        for n, service in sharded.items():
            answer = service.query(query)
            label = f"{getattr(query, 'name', query)} (shards={n})"
            assert answer.rows == expected.rows, label
            assert answer.used_bounded_plan == expected.used_bounded_plan, label
            assert answer.tuples_fetched == expected.tuples_fetched, label
            assert answer.view_tuples_scanned == expected.view_tuples_scanned, label
            if answer.used_bounded_plan:
                assert answer.shards_total == n, label
            assert all(0 <= s < n for s in answer.shards_touched), label
            if n == 4 and len(answer.shards_touched) > 1:
                fanouts += 1
    # The workload must actually exercise multi-shard execution.
    assert fanouts > 0


def test_router_prediction_matches_touched_shards(instance):
    queries = _workload(instance)
    service = _service(instance, shards=4)
    checked = 0
    for query in queries:
        answer = service.query(query)
        if not answer.used_bounded_plan:
            continue
        shard_set = service.explain(query).shard_set
        assert shard_set is not None
        if shard_set.dynamic_relations:
            continue
        # Static prediction is exact on the touched side: execution may
        # probe no partition the router did not predict, and a plan whose
        # key subtrees all evaluate statically probes what it predicted
        # unless an empty join input short-circuits the fetch entirely.
        assert set(answer.shards_touched) <= set(shard_set.shards), str(query)
        if answer.shards_touched:
            assert set(answer.shards_touched) == set(shard_set.shards), str(query)
        checked += 1
    assert checked >= 5


def test_q0_is_single_shard_routable(instance):
    service = _service(instance, shards=4)
    q0 = gs.query_q0()
    explanation = service.explain(q0)
    assert explanation.shard_set is not None
    assert explanation.shard_set.single_shard
    assert explanation.shard_set.shards_pruned == 3
    assert "single-shard routable" in explanation.render()
    answer = service.query(q0)
    assert len(answer.shards_touched) == 1
    assert tuple(sorted(explanation.shard_set.shards)) == answer.shards_touched
    snapshot = service.stats.snapshot()
    assert snapshot.single_shard_queries >= 1
    assert snapshot.shards_pruned >= 3


def test_unsharded_and_single_shard_answers_report_no_fanout(instance):
    service = _service(instance, shards=1)
    answer = service.query(gs.query_q0())
    assert answer.shards_total == 1
    assert answer.shards_touched == ()  # nothing is partitioned at N=1


# --------------------------------------------------------------------------- #
# The persistent worker pool
# --------------------------------------------------------------------------- #


def test_query_many_matches_serial_and_reuses_the_pool(instance):
    queries = _workload(instance)[:24]
    serial = _service(instance, shards=4)
    parallel = _service(instance, shards=4)
    expected = [serial.query(q) for q in queries]
    answers = parallel.query_many(queries, max_workers=4)
    assert [a.rows for a in answers] == [a.rows for a in expected]
    assert [a.tuples_fetched for a in answers] == [a.tuples_fetched for a in expected]
    pool = parallel._shard_executor
    assert pool is not None and pool.started
    parallel.query_many(queries, max_workers=4)
    assert parallel._shard_executor is pool  # persistent, not per-call
    parallel.close()
    assert parallel._shard_executor is None


def test_query_many_pool_grows_but_never_shrinks(instance):
    service = _service(instance, shards=4)
    queries = _workload(instance)[:8]
    service.query_many(queries, max_workers=2)
    first = service._shard_executor
    assert first is not None and first.max_workers == 2
    service.query_many(queries, max_workers=3)
    second = service._shard_executor
    assert second is not first and second.max_workers == 3
    service.query_many(queries, max_workers=2)
    assert service._shard_executor is second
    service.close()


def test_query_many_on_legacy_service_uses_persistent_pool(instance):
    service = _service(instance, shards=None)
    queries = _workload(instance)[:8]
    expected = [service.query(q).rows for q in queries]
    assert [a.rows for a in service.query_many(queries, max_workers=4)] == expected
    assert service._shard_executor is not None
    service.close()


def test_shard_executor_affinity_preserves_order_and_propagates_errors():
    executor = ShardExecutor(3)
    tasks = [lambda i=i: i * i for i in range(10)]
    affinities = [0, 1, None, 0, 2, None, 1, 0, None, 2]
    assert executor.map_with_affinity(tasks, affinities) == [i * i for i in range(10)]

    def boom() -> int:
        raise RuntimeError("shard task failed")

    with pytest.raises(RuntimeError, match="shard task failed"):
        executor.map_with_affinity([tasks[0], boom], [0, 0])
    with pytest.raises(ValueError):
        executor.map_with_affinity(tasks, affinities[:-1])
    executor.shutdown()
    assert not executor.started


def test_context_manager_closes_the_service(instance):
    with _service(instance, shards=2) as service:
        service.query_many(_workload(instance)[:4], max_workers=2)
        assert service._shard_executor is not None
    assert service._shard_executor is None


# --------------------------------------------------------------------------- #
# Plan retention across writes
# --------------------------------------------------------------------------- #


def test_retain_plans_on_write_keeps_cache_entries(instance):
    from repro.storage.updates import Insertion, UpdateBatch

    q0 = gs.query_q0()
    evicting = _service(instance, shards=4)
    retaining = _service(instance, shards=4, retain_plans_on_write=True)
    for service in (evicting, retaining):
        service.query(q0)

    row = ("m_retain", "r", "Universal", "2014")
    rating = ("m_retain", 5)
    batch = UpdateBatch([Insertion("movie", row), Insertion("rating", rating)])
    try:
        # The write goes through `evicting`; both services observe it via the
        # delta stream, but each applies its own retention policy.
        evicting.apply(batch)
        assert not evicting.query(q0).cache_hit  # default: dependency eviction
        assert retaining.query(q0).cache_hit  # opt-in: the entry survived
    finally:
        from repro.storage.updates import Deletion

        evicting.apply(
            UpdateBatch([Deletion("movie", row), Deletion("rating", rating)])
        )


def test_retained_plans_still_answer_correctly_after_writes(instance):
    from repro.storage.updates import Deletion, Insertion, UpdateBatch

    q0 = gs.query_q0()
    retaining = _service(instance, shards=4, retain_plans_on_write=True)
    fresh = _service(instance, shards=4)
    retaining.query(q0)

    row = ("m_retain2", "r2", "Universal", "2014")
    rating = ("m_retain2", 4)
    batch = UpdateBatch([Insertion("movie", row), Insertion("rating", rating)])
    try:
        retaining.apply(batch)
        answer = retaining.query(q0)
        assert answer.cache_hit  # the entry survived the write
        expected = fresh.query(q0)
        assert answer.rows == expected.rows
        assert answer.tuples_fetched == expected.tuples_fetched
    finally:
        retaining.apply(
            UpdateBatch([Deletion("movie", row), Deletion("rating", rating)])
        )
