"""Shared fixtures: small schemas, databases and the Example 1.1 workload."""

from __future__ import annotations

import pytest

from repro.algebra.atoms import RelationAtom
from repro.algebra.cq import ConjunctiveQuery
from repro.algebra.schema import schema_from_spec
from repro.algebra.terms import Constant, Variable
from repro.algebra.views import View, ViewSet
from repro.core.access import AccessConstraint, AccessSchema
from repro.storage.instance import Database
from repro.workloads import graph_search


@pytest.fixture
def rs_schema():
    """A tiny two-relation schema R(a, b), S(b, c) used across unit tests."""
    return schema_from_spec({"R": ("a", "b"), "S": ("b", "c")})


@pytest.fixture
def rs_database(rs_schema):
    db = Database(rs_schema)
    db.add_many("R", [(1, 10), (1, 11), (2, 20), (3, 30)])
    db.add_many("S", [(10, "x"), (11, "y"), (20, "z"), (99, "w")])
    return db


@pytest.fixture
def rs_access_schema():
    """R(a -> b, 2) and S(b -> c, 1): satisfied by ``rs_database``."""
    return AccessSchema(
        (
            AccessConstraint("R", ("a",), ("b",), 2),
            AccessConstraint("S", ("b",), ("c",), 1),
        )
    )


@pytest.fixture
def path_query():
    """Q(a, c) :- R(a, b), S(b, c)."""
    a, b, c = Variable("a"), Variable("b"), Variable("c")
    return ConjunctiveQuery(
        head=(a, c),
        atoms=(RelationAtom("R", (a, b)), RelationAtom("S", (b, c))),
        name="path",
    )


@pytest.fixture
def anchored_path_query():
    """Q(c) :- R(1, b), S(b, c) — anchored by the constant, hence bounded."""
    b, c = Variable("b"), Variable("c")
    return ConjunctiveQuery(
        head=(c,),
        atoms=(RelationAtom("R", (Constant(1), b)), RelationAtom("S", (b, c))),
        name="anchored_path",
    )


# --------------------------------------------------------------------------- #
# Example 1.1 fixtures (small scale so every test stays fast)
# --------------------------------------------------------------------------- #


@pytest.fixture(scope="session")
def gs_instance():
    return graph_search.generate(num_persons=200, num_movies=120, seed=5)


@pytest.fixture(scope="session")
def gs_schema():
    return graph_search.schema()


@pytest.fixture(scope="session")
def gs_access():
    return graph_search.access_schema(n0=100)


@pytest.fixture(scope="session")
def gs_views():
    return graph_search.views()


@pytest.fixture(scope="session")
def gs_q0():
    return graph_search.query_q0()
