"""Unit tests for relation and database schemas."""

import pytest

from repro.algebra.schema import DatabaseSchema, RelationSchema, schema_from_spec
from repro.errors import SchemaError


def test_relation_schema_positions():
    movie = RelationSchema("movie", ("mid", "mname", "studio", "release"))
    assert movie.arity == 4
    assert movie.position("studio") == 2
    assert movie.positions(("release", "mid")) == (3, 0)


def test_relation_schema_rejects_duplicate_attributes():
    with pytest.raises(SchemaError):
        RelationSchema("r", ("a", "a"))


def test_relation_schema_unknown_attribute():
    r = RelationSchema("r", ("a", "b"))
    with pytest.raises(SchemaError):
        r.position("c")
    assert not r.has_attributes(("a", "c"))
    assert r.has_attributes(("b",))


def test_database_schema_lookup_and_iteration():
    schema = schema_from_spec({"R": ("a", "b"), "S": ("b", "c")})
    assert "R" in schema
    assert "T" not in schema
    assert schema.names == ("R", "S")
    assert len(schema) == 2
    assert {r.name for r in schema} == {"R", "S"}


def test_database_schema_unknown_relation():
    schema = schema_from_spec({"R": ("a",)})
    with pytest.raises(SchemaError):
        schema.relation("S")


def test_database_schema_conflicting_redefinition():
    schema = DatabaseSchema([RelationSchema("R", ("a", "b"))])
    schema.add(RelationSchema("R", ("a", "b")))  # identical re-add is fine
    with pytest.raises(SchemaError):
        schema.add(RelationSchema("R", ("a", "c")))


def test_schema_restriction_and_merge():
    schema = schema_from_spec({"R": ("a",), "S": ("b",), "T": ("c",)})
    restricted = schema.restricted_to(["R", "T"])
    assert restricted.names == ("R", "T")
    other = schema_from_spec({"U": ("d",)})
    merged = restricted.merged_with(other)
    assert set(merged.names) == {"R", "T", "U"}


def test_schema_equality():
    one = schema_from_spec({"R": ("a", "b")})
    two = schema_from_spec({"R": ("a", "b")})
    assert one == two
    assert one != schema_from_spec({"R": ("a",)})
