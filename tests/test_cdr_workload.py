"""Tests for the synthetic CDR workload (the stand-in for the industrial data)."""

import pytest

from repro.algebra.acyclicity import is_acyclic
from repro.engine.session import BoundedEngine
from repro.storage.statistics import verify_expected_schema
from repro.workloads import cdr


@pytest.fixture(scope="module")
def instance():
    return cdr.generate(num_customers=120, num_days=4, seed=2)


@pytest.fixture(scope="module")
def engine(instance):
    return BoundedEngine(instance.database, cdr.access_schema(), cdr.views())


def test_generated_data_satisfies_declared_constraints(instance):
    access = cdr.access_schema()
    assert instance.database.satisfies(access)
    measured = verify_expected_schema(instance.database, access)
    for constraint, bound in measured.items():
        assert bound <= constraint.bound


def test_schema_and_views_are_consistent():
    schema = cdr.schema()
    views = cdr.views()
    for view in views:
        view.as_ucq().validate(schema)
    cdr.access_schema().validate(schema)


def test_workload_queries_are_well_formed(instance):
    schema = cdr.schema()
    queries = cdr.workload(instance, count=18)
    assert len(queries) == 18
    names = {q.name for q in queries}
    assert len(names) == 18
    for query in queries:
        query.validate(schema)
        assert is_acyclic(query)


def test_workload_is_deterministic(instance):
    first = cdr.workload(instance, count=6, seed=5)
    second = cdr.workload(instance, count=6, seed=5)
    assert [str(q) for q in first] == [str(q) for q in second]


def test_engine_answers_match_baseline_on_workload(instance, engine):
    queries = cdr.workload(instance, count=10, seed=4)
    bounded = 0
    for query in queries:
        answer = engine.answer(query)
        baseline = engine.baseline(query)
        assert answer.rows == baseline.rows, query.name
        if answer.used_bounded_plan:
            bounded += 1
            assert answer.tuples_fetched <= baseline.tuples_scanned
    # The workload mixes bounded and unbounded queries; most are bounded.
    assert bounded >= len(queries) // 2


def test_bounded_queries_fetch_less_as_data_grows():
    small = cdr.generate(num_customers=80, num_days=3, seed=7)
    big = cdr.generate(num_customers=240, num_days=3, seed=7)
    small_engine = BoundedEngine(small.database, cdr.access_schema(), cdr.views())
    big_engine = BoundedEngine(big.database, cdr.access_schema(), cdr.views())
    # Use the same query template anchored to a phone present in both.
    query = cdr.workload(small, count=1, seed=1)[0]
    small_answer = small_engine.answer(query)
    if not small_answer.used_bounded_plan:
        pytest.skip("first workload query happens to be an unbounded analytics query")
    big_answer = big_engine.answer(query)
    assert big_answer.used_bounded_plan
    assert big_answer.tuples_fetched <= cdr.MAX_CALLS_PER_DAY * 3 + 10
    assert big_engine.baseline(query).tuples_scanned > small_engine.baseline(query).tuples_scanned
