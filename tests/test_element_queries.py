"""Unit tests for element queries (Section 3.1)."""

import pytest

from repro.algebra.atoms import RelationAtom
from repro.algebra.containment import cq_contained_in
from repro.algebra.cq import ConjunctiveQuery
from repro.algebra.schema import schema_from_spec
from repro.algebra.terms import Constant, Variable
from repro.core.access import AccessConstraint, AccessSchema
from repro.core.element_queries import (
    ElementQueryBudget,
    element_queries,
    has_element_query,
    iter_element_queries,
)
from repro.errors import BudgetExceededError

SCHEMA = schema_from_spec({"R": ("a", "b")})
X, Y, Z = Variable("x"), Variable("y"), Variable("z")


def test_no_constraints_identity_partition_is_element_query():
    query = ConjunctiveQuery(head=(X,), atoms=(RelationAtom("R", (X, Y)),))
    results = element_queries(query, AccessSchema(()), SCHEMA)
    # Every partition satisfies the empty access schema; they are all element
    # queries, and the identity one (x, y distinct) is among them.
    assert any(len(e.variables) == 2 for e in results)
    assert len(results) == 2  # {x}{y} and {x=y}


def test_element_queries_are_contained_in_the_query():
    query = ConjunctiveQuery(
        head=(X,), atoms=(RelationAtom("R", (X, Y)), RelationAtom("R", (Y, Z)))
    )
    access = AccessSchema([AccessConstraint("R", ("a",), ("b",), 1)])
    for element in element_queries(query, access, SCHEMA):
        assert cq_contained_in(element, query)


def test_constraint_filters_partitions():
    # R(x, y) ∧ R(x, z) with R(a -> b, 1): y and z must be equated.
    query = ConjunctiveQuery(
        head=(Y, Z), atoms=(RelationAtom("R", (X, Y)), RelationAtom("R", (X, Z)))
    )
    access = AccessSchema([AccessConstraint("R", ("a",), ("b",), 1)])
    results = element_queries(query, access, SCHEMA)
    assert results
    for element in results:
        tableau = element.tableau()
        summary = tableau.summary_values()
        assert summary[0] == summary[1]


def test_paper_example_element_queries():
    """The running example of Section 3.1 (query over R(X, Y) with N = 2)."""
    x, x1, x2, x3, y = (Variable("x"), Variable("x1"), Variable("x2"), Variable("x3"), Variable("y"))
    from repro.algebra.atoms import EqualityAtom

    query = ConjunctiveQuery(
        head=(x,),
        atoms=(
            RelationAtom("R", (y, x1)),
            RelationAtom("R", (y, x2)),
            RelationAtom("R", (y, x3)),
            RelationAtom("R", (x3, x)),
        ),
        equalities=(
            EqualityAtom(x1, Constant(1)),
            EqualityAtom(x2, Constant(2)),
            EqualityAtom(y, Constant("k")),
        ),
    )
    access = AccessSchema([AccessConstraint("R", ("a",), ("b",), 2)])
    results = element_queries(query, access, SCHEMA)
    assert results, "the query has satisfiable element queries under A"
    # In every element query, x3 is equated with one of the constants 1 / 2
    # (the paper's Q2 and Q3), since the key 'k' admits only two B-values.
    for element in results:
        facts = element.tableau().facts()["R"]
        values_for_k = {b for (a, b) in facts if a == "k"}
        assert len(values_for_k) <= 2


def test_unsatisfiable_query_has_no_element_queries():
    from repro.algebra.atoms import EqualityAtom

    query = ConjunctiveQuery(
        head=(),
        atoms=(RelationAtom("R", (X, Y)),),
        equalities=(EqualityAtom(X, Constant(1)), EqualityAtom(X, Constant(2))),
    )
    assert element_queries(query, AccessSchema(()), SCHEMA) == []
    assert not has_element_query(query, AccessSchema(()), SCHEMA)


def test_has_element_query_detects_a_unsatisfiability():
    # R(1, x) ∧ R(1, y) ∧ R(1, z) with all of x, y, z pairwise... under
    # R(a -> b, 1) they must all merge, which is fine -> satisfiable.
    query = ConjunctiveQuery(
        head=(),
        atoms=(
            RelationAtom("R", (Constant(1), Constant("p"))),
            RelationAtom("R", (Constant(1), Constant("q"))),
        ),
    )
    access = AccessSchema([AccessConstraint("R", ("a",), ("b",), 1)])
    # Two distinct constants under an FD with bound 1: no instance satisfying
    # A can contain both tuples, so there is no element query.
    assert not has_element_query(query, access, SCHEMA)
    relaxed = AccessSchema([AccessConstraint("R", ("a",), ("b",), 2)])
    assert has_element_query(query, relaxed, SCHEMA)


def test_budget_is_enforced():
    variables = [Variable(f"v{i}") for i in range(8)]
    atoms = tuple(RelationAtom("R", (variables[i], variables[i + 1])) for i in range(7))
    query = ConjunctiveQuery(head=(variables[0],), atoms=atoms)
    tiny = ElementQueryBudget(max_partitions=10)
    with pytest.raises(BudgetExceededError):
        element_queries(query, AccessSchema(()), SCHEMA, tiny)


def test_deduplication_by_tableau():
    # Both "merge y into x" and "merge x into y" yield the same tableau.
    query = ConjunctiveQuery(head=(), atoms=(RelationAtom("R", (X, Y)),))
    results = element_queries(query, AccessSchema(()), SCHEMA)
    tableaux = {(e.tableau().atoms, e.tableau().summary) for e in results}
    assert len(tableaux) == len(results)
