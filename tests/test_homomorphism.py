"""Unit tests for homomorphism search."""

import pytest

from repro.algebra.atoms import EqualityAtom, RelationAtom
from repro.algebra.cq import ConjunctiveQuery
from repro.algebra.homomorphism import (
    find_homomorphism,
    has_homomorphism,
    homomorphism_between,
    iter_homomorphisms,
)
from repro.algebra.terms import Constant, Variable
from repro.errors import QueryError

X, Y, Z = Variable("x"), Variable("y"), Variable("z")

FACTS = {
    "R": {(1, 2), (2, 3), (3, 3)},
    "S": {(3, "a")},
}


def test_find_homomorphism_simple_join():
    q = ConjunctiveQuery(
        head=(X,),
        atoms=(RelationAtom("R", (X, Y)), RelationAtom("S", (Y, Z))),
    )
    assignment = find_homomorphism(q, FACTS)
    assert assignment is not None
    assert assignment[Y] == 3
    assert assignment[X] in {2, 3}


def test_iter_homomorphisms_enumerates_all():
    q = ConjunctiveQuery(head=(X,), atoms=(RelationAtom("R", (X, Y)),))
    results = list(iter_homomorphisms(q, FACTS))
    assert len(results) == 3


def test_head_values_restrict_search():
    q = ConjunctiveQuery(head=(X,), atoms=(RelationAtom("R", (X, Y)),))
    assert find_homomorphism(q, FACTS, head_values=(2,)) is not None
    assert find_homomorphism(q, FACTS, head_values=(9,)) is None
    with pytest.raises(QueryError):
        find_homomorphism(q, FACTS, head_values=(1, 2))


def test_constants_must_match_exactly():
    q = ConjunctiveQuery(head=(), atoms=(RelationAtom("S", (Constant(3), Constant("a"))),))
    assert has_homomorphism(q, FACTS)
    q_bad = ConjunctiveQuery(head=(), atoms=(RelationAtom("S", (Constant(3), Constant("b"))),))
    assert not has_homomorphism(q_bad, FACTS)


def test_equalities_are_honoured():
    q = ConjunctiveQuery(
        head=(),
        atoms=(RelationAtom("R", (X, Y)),),
        equalities=(EqualityAtom(X, Y),),
    )
    # Only (3, 3) satisfies x = y.  The query is normalised first, so the
    # assignment binds the representative of the merged {x, y} class.
    results = list(iter_homomorphisms(q, FACTS))
    assert len(results) == 1
    assert set(results[0].values()) == {3}


def test_unsatisfiable_query_has_no_homomorphism():
    q = ConjunctiveQuery(
        head=(),
        atoms=(RelationAtom("R", (X, Y)),),
        equalities=(EqualityAtom(X, Constant(1)), EqualityAtom(X, Constant(2))),
    )
    assert find_homomorphism(q, FACTS) is None


def test_homomorphism_between_witnesses_containment():
    # target: Q1(x) :- R(x, y), S(y, z); source: Q2(x) :- R(x, y)
    target = ConjunctiveQuery(
        head=(X,), atoms=(RelationAtom("R", (X, Y)), RelationAtom("S", (Y, Z)))
    )
    source = ConjunctiveQuery(head=(X,), atoms=(RelationAtom("R", (X, Y)),))
    # Q1 ⊆ Q2: homomorphism from Q2 into Q1's tableau.
    assert homomorphism_between(source, target) is not None
    # Q2 ⊄ Q1 (R alone does not imply the S atom).
    assert homomorphism_between(target, source) is None


def test_homomorphism_between_arity_mismatch():
    q1 = ConjunctiveQuery(head=(X,), atoms=(RelationAtom("R", (X, Y)),))
    q2 = ConjunctiveQuery(head=(), atoms=(RelationAtom("R", (X, Y)),))
    with pytest.raises(QueryError):
        homomorphism_between(q1, q2)


def test_repeated_variables_in_atom():
    q = ConjunctiveQuery(head=(X,), atoms=(RelationAtom("R", (X, X)),))
    assignment = find_homomorphism(q, FACTS)
    assert assignment == {X: 3}
