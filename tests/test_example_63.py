"""Example 6.3: a CQ with a 5-bounded rewriting in FO but none in UCQ.

The example is about the *language* of the rewriting: with Boolean views V1,
V2, V3 it exhibits Q such that the FO plan (V3 \\ V1) ∪ V2 is a 5-bounded
rewriting while no 5-bounded UCQ rewriting exists.  The A-equivalence parts of
the argument involve queries that are too large for the exact element-query
sweep, so these tests validate the example the way the paper itself does: by
checking the claimed relationships on witness instances satisfying A, and by
checking the structural side conditions (conformance, size, language) of the
FO plan exactly.  The construction lives in :mod:`repro.workloads.example63`.
"""

import pytest

from repro.algebra.evaluation import evaluate_cq, evaluate_ucq
from repro.core.plan_eval import PlanExecutor
from repro.core.vbrp_plus import verify_cross_language_rewriting
from repro.storage.indexes import IndexSet
from repro.storage.instance import Database
from repro.workloads import example63 as ex


@pytest.fixture(scope="module")
def setting():
    return ex.schema(), ex.access_schema(), ex.query_q(), ex.views()


def test_tableaux_satisfy_the_access_schema(setting):
    schema, access, q, views = setting
    assert access.satisfied_by(q.tableau().facts(), schema)
    assert access.satisfied_by(
        views.view("V1").as_ucq().disjuncts[0].tableau().facts(), schema
    )


def test_q_and_v1_are_incomparable_on_witness_instances(setting):
    """Q ⋢_A V1 and V1 ⋢_A Q, witnessed by their canonical instances."""
    schema, access, q, views = setting
    v1 = views.view("V1").as_ucq().disjuncts[0]
    dq = ex.canonical_instance_of(q)
    dv = ex.canonical_instance_of(v1)
    assert dq.satisfies(access) and dv.satisfies(access)
    assert evaluate_cq(q, dq.facts) == {()}
    assert evaluate_cq(v1, dq.facts) == set()  # Q true, V1 false: Q ⋢ V1
    assert evaluate_cq(v1, dv.facts) == {()}
    assert evaluate_cq(q, dv.facts) == set()  # V1 true, Q false: V1 ⋢ Q


def test_v2_and_v3_relate_to_q_as_claimed(setting):
    """V2 behaves as V1 ∧ Q and V3 as V1 ∪ Q on the witness instances."""
    schema, access, q, views = setting
    v1 = views.view("V1").as_ucq()
    v2 = views.view("V2").as_ucq()
    v3 = views.view("V3").as_ucq()
    for db in ex.witness_instances():
        assert db.satisfies(access)
        q_ans = evaluate_cq(q, db.facts)
        v1_ans = evaluate_ucq(v1, db.facts)
        assert evaluate_ucq(v2, db.facts) == (q_ans & v1_ans)
        assert evaluate_ucq(v3, db.facts) == (q_ans | v1_ans)


def test_fo_rewriting_agrees_with_q_on_witness_instances(setting):
    """Q_FO = (V3 \\ V1) ∪ V2 agrees with Q on instances satisfying A."""
    schema, access, q, views = setting
    plan = ex.fo_plan()
    assert plan.size() == 5
    assert plan.language() == "FO"

    for db in ex.witness_instances():
        view_cache = {
            view.name: frozenset(evaluate_ucq(view.as_ucq(), db.facts)) for view in views
        }
        executor = PlanExecutor(schema, access, IndexSet(db, access), view_cache)
        plan_answer = executor.execute(plan).rows
        direct_answer = evaluate_cq(q, db.facts)
        assert plan_answer == frozenset(direct_answer)


def test_fo_plan_passes_structural_checks(setting):
    schema, access, q, views = setting
    assert verify_cross_language_rewriting(ex.fo_plan(), q, views, access, schema, 5, "FO")
    # It is *not* acceptable as a UCQ-language rewriting (it uses difference).
    assert not verify_cross_language_rewriting(ex.fo_plan(), q, views, access, schema, 5, "UCQ")


def test_boolean_views_cannot_feed_fetches(setting):
    """The example's argument that UCQ rewritings cannot fetch: the views are
    Boolean, so no values are available to drive an index access."""
    schema, access, q, views = setting
    for view in views:
        assert view.arity == 0
