"""Tests for update batches and their generators."""

from __future__ import annotations

import pytest

from repro.algebra.schema import schema_from_spec
from repro.core.access import AccessConstraint, AccessSchema
from repro.errors import SchemaError
from repro.storage.instance import Database
from repro.storage.updates import (
    Deletion,
    Insertion,
    UpdateBatch,
    delete_row,
    random_update_batch,
)
from repro.workloads import cdr, graph_search as gs


@pytest.fixture()
def small_db():
    schema = schema_from_spec({"R": ("a", "b"), "S": ("c",)})
    return Database(schema, {"R": {(1, 2), (3, 4), (5, 6)}, "S": {(7,), (8,)}})


def test_insertion_and_deletion_basics():
    insertion = Insertion("R", [1, 2])
    deletion = Deletion("R", (1, 2))
    assert insertion.is_insertion and not deletion.is_insertion
    assert insertion.row == (1, 2) == deletion.row
    assert str(insertion).startswith("+R") and str(deletion).startswith("-R")


def test_batch_grouping_and_counts(small_db):
    batch = UpdateBatch(
        [Insertion("R", (9, 9)), Deletion("R", (1, 2)), Insertion("S", (10,))]
    )
    assert len(batch) == 3
    assert batch.relations == {"R", "S"}
    assert len(batch.insertions) == 2 and len(batch.deletions) == 1
    assert set(batch.per_relation()) == {"R", "S"}


def test_apply_to_is_set_semantics(small_db):
    batch = UpdateBatch(
        [
            Insertion("R", (9, 9)),
            Insertion("R", (9, 9)),     # duplicate: no-op
            Deletion("R", (1, 2)),
            Deletion("R", (100, 100)),  # absent: no-op
        ]
    )
    inserted, deleted = batch.apply_to(small_db)
    assert (inserted, deleted) == (1, 1)
    assert (9, 9) in small_db.relation("R")
    assert (1, 2) not in small_db.relation("R")


def test_validate_rejects_bad_arity(small_db):
    batch = UpdateBatch([Insertion("R", (1, 2, 3))])
    with pytest.raises(SchemaError):
        batch.validate(small_db)


def test_inverted_batch_round_trips(small_db):
    before = {name: set(rows) for name, rows in small_db.facts.items()}
    batch = UpdateBatch([Insertion("R", (9, 9)), Deletion("S", (7,))])
    batch.apply_to(small_db)
    batch.inverted().apply_to(small_db)
    assert {name: set(rows) for name, rows in small_db.facts.items()} == before


def test_delete_row_helper(small_db):
    assert delete_row(small_db, "R", (1, 2))
    assert not delete_row(small_db, "R", (1, 2))


def test_random_batch_is_reproducible():
    instance = gs.generate(num_persons=100, num_movies=60, seed=1)
    first = random_update_batch(instance.database, size=30, seed=5)
    second = random_update_batch(instance.database, size=30, seed=5)
    assert first.updates == second.updates
    assert len(first) == 30


def test_random_batch_deletions_exist_and_insertions_are_new():
    instance = gs.generate(num_persons=100, num_movies=60, seed=1)
    batch = random_update_batch(instance.database, size=40, seed=9)
    for deletion in batch.deletions:
        # Deletions reference rows present at generation time (before earlier
        # deletions of the same batch removed them).
        assert len(deletion.row) == instance.database.schema.relation(deletion.relation).arity
    for insertion in batch.insertions:
        assert len(insertion.row) == instance.database.schema.relation(insertion.relation).arity


def test_random_batch_respects_access_schema():
    instance = cdr.generate(num_customers=60, num_days=3, seed=2)
    access = cdr.access_schema()
    batch = random_update_batch(
        instance.database, size=60, seed=3, access_schema=access
    )
    working = instance.database.copy()
    batch.apply_to(working)
    assert working.satisfies(access)


def test_random_batch_requires_populated_relations():
    schema = schema_from_spec({"R": ("a",)})
    empty = Database(schema)
    with pytest.raises(SchemaError):
        random_update_batch(empty, size=5)
