"""Tests for the unified QueryService: dispatch, planner chain, plan cache,
prepared queries and batch execution."""

import pytest

from repro.algebra.atoms import RelationAtom
from repro.algebra.cq import ConjunctiveQuery
from repro.algebra.fo import atom, conj, eq, exists, neg
from repro.algebra.parser import parse_cq, parse_query, parse_ucq
from repro.algebra.schema import schema_from_spec
from repro.algebra.terms import Constant, Param, Variable
from repro.algebra.ucq import UnionQuery
from repro.core.access import AccessConstraint, AccessSchema
from repro.core.plan_eval import bind_plan, plan_parameters
from repro.engine.service import (
    PlanningResult,
    QueryService,
    canonical_query_key,
    register_planner,
    resolve_planners,
)
from repro.errors import PlanError, QueryError

X, Y, Z = Variable("x"), Variable("y"), Variable("z")

SCHEMA = schema_from_spec({"R": ("a", "b"), "S": ("b", "c")})
ACCESS = AccessSchema(
    (
        AccessConstraint("R", ("a",), ("b",), 2),
        AccessConstraint("S", ("b",), ("c",), 1),
    )
)


@pytest.fixture
def service(rs_database):
    return QueryService(rs_database, ACCESS)


def anchored_chain(constant=1, name="chain"):
    return ConjunctiveQuery(
        head=(Z,),
        atoms=(RelationAtom("R", (Constant(constant), Y)), RelationAtom("S", (Y, Z))),
        name=name,
    )


def open_scan():
    return ConjunctiveQuery(
        head=(Y, Z), atoms=(RelationAtom("S", (Y, Z)),), name="scan_all"
    )


# --------------------------------------------------------------------------- #
# One entry point: CQ / UCQ / FO / string dispatch
# --------------------------------------------------------------------------- #


def test_query_answers_cq_through_heuristic_planner(service):
    answer = service.query(anchored_chain())
    assert answer.used_bounded_plan
    assert answer.planner == "heuristic"
    assert answer.rows == {("x",), ("y",)}
    assert answer.reason  # never silently empty, bounded or not


def test_query_answers_ucq(service):
    union = UnionQuery((anchored_chain(1), anchored_chain(2)), name="u")
    answer = service.query(union)
    assert answer.used_bounded_plan
    assert answer.planner == "heuristic"
    assert answer.rows == {("x",), ("y",), ("z",)}


def test_query_answers_fo_through_topped_planner(service):
    query = conj(
        atom("R", Constant(1), Y), neg(exists([Z], conj(atom("S", Y, Z), eq(Z, "x"))))
    )
    answer = service.query(query, head=(Y,))
    assert answer.used_bounded_plan
    assert answer.planner == "topped"
    assert answer.rows == {(11,)}


def test_query_answers_string_form(service):
    answer = service.query("Q(z) :- R(1, y), S(y, z)")
    assert answer.used_bounded_plan
    assert answer.rows == {("x",), ("y",)}
    union = service.query("Q(z) :- R(1, y), S(y, z) ; Q(z) :- R(2, y), S(y, z)")
    assert union.rows == {("x",), ("y",), ("z",)}


def test_query_rejects_unknown_input_type(service):
    with pytest.raises(QueryError):
        service.query(42)


def test_query_rejects_unknown_relations_loudly(rs_database):
    from repro.algebra.views import View
    from repro.algebra.parser import parse_cq as _parse

    view = View("V1", _parse("V1(b) :- R(1, b)"))
    service = QueryService(rs_database, ACCESS, (view,))
    with pytest.raises(QueryError, match="unknown relations"):
        service.query("Q(x) :- T(x, y)")
    # A view used as a query atom is a silent-empty trap: reject with a hint.
    with pytest.raises(QueryError, match="cannot be queried as atoms"):
        service.query("Q(b) :- V1(b), S(b, c)")


def test_fallback_to_baseline_keeps_reason(service):
    answer = service.query(open_scan())
    assert not answer.used_bounded_plan
    assert answer.planner is None
    assert answer.rows == {(10, "x"), (11, "y"), (20, "z"), (99, "w")}
    assert "heuristic" in answer.reason


def test_forced_fallback_with_empty_chain(service):
    answer = service.query(anchored_chain(), planners=())
    assert not answer.used_bounded_plan
    assert answer.tuples_scanned > 0
    assert "empty" in answer.reason


# --------------------------------------------------------------------------- #
# Planner chain: ordering, registry, pluggability
# --------------------------------------------------------------------------- #


class _RefusingPlanner:
    name = "refuser"

    def can_plan(self, query):
        return True

    def plan(self, query, head, max_size, context):
        return PlanningResult(plan=None, planner=self.name, reason="refuses everything")


def test_fallback_chain_tries_planners_in_order(service):
    answer = service.query(
        anchored_chain(), planners=(_RefusingPlanner(), "heuristic"), use_cache=False
    )
    assert answer.used_bounded_plan
    assert answer.planner == "heuristic"


def test_fallback_chain_collects_all_refusal_reasons(service):
    answer = service.query(
        open_scan(), planners=(_RefusingPlanner(), "heuristic"), use_cache=False
    )
    assert not answer.used_bounded_plan
    assert "refuser: refuses everything" in answer.reason
    assert "heuristic:" in answer.reason


def test_register_planner_makes_name_resolvable(service):
    register_planner("test_refuser", _RefusingPlanner)
    try:
        (planner,) = resolve_planners(["test_refuser"])
        assert planner.name == "refuser"
        answer = service.query(anchored_chain(), planners=("test_refuser",), use_cache=False)
        assert not answer.used_bounded_plan
    finally:
        from repro.engine.service import planners as planners_module

        planners_module._PLANNER_FACTORIES.pop("test_refuser", None)


def test_unknown_planner_name_raises(service):
    with pytest.raises(QueryError):
        service.query(anchored_chain(), planners=("nonexistent",))


def test_exact_planner_finds_plan(service):
    answer = service.query(
        parse_cq("Q(b) :- R(1, b)"), planners=("exact",), use_cache=False
    )
    assert answer.used_bounded_plan
    assert answer.planner == "exact"
    assert answer.rows == {(10,), (11,)}


# --------------------------------------------------------------------------- #
# Plan cache
# --------------------------------------------------------------------------- #


def test_cache_hit_returns_identical_plan_without_replanning(service):
    first = service.query(anchored_chain())
    second = service.query(anchored_chain())
    assert not first.cache_hit
    assert second.cache_hit
    assert second.plan is first.plan  # the very same object: no re-planning
    assert second.rows == first.rows
    assert service.plan_cache.stats.hits == 1
    assert service.stats.cache_hits == 1


def test_cache_hits_across_alpha_equivalent_queries(service):
    service.query(anchored_chain())
    renamed = ConjunctiveQuery(
        head=(Variable("w"),),
        atoms=(
            RelationAtom("R", (Constant(1), Variable("v"))),
            RelationAtom("S", (Variable("v"), Variable("w"))),
        ),
        name="other_name",
    )
    answer = service.query(renamed)
    assert answer.cache_hit


def test_cache_canonical_key_distinguishes_constants():
    assert canonical_query_key(anchored_chain(1)) != canonical_query_key(anchored_chain(2))
    assert canonical_query_key(anchored_chain(1)) == canonical_query_key(
        anchored_chain(1, name="x")
    )


def test_cache_eviction_at_capacity(rs_database):
    service = QueryService(rs_database, ACCESS, plan_cache_size=2)
    q1, q2, q3 = anchored_chain(1), anchored_chain(2), anchored_chain(3)
    service.query(q1)
    service.query(q2)
    service.query(q3)  # evicts q1 (LRU)
    assert service.plan_cache.stats.evictions == 1
    assert len(service.plan_cache) == 2
    assert not service.query(q1).cache_hit  # q1 was evicted: re-planned
    assert service.query(q3).cache_hit


def test_cache_disabled_with_zero_capacity(rs_database):
    service = QueryService(rs_database, ACCESS, plan_cache_size=0)
    service.query(anchored_chain())
    answer = service.query(anchored_chain())
    assert not answer.cache_hit
    assert len(service.plan_cache) == 0


def test_negative_outcomes_are_cached_too(service):
    service.query(open_scan())
    answer = service.query(open_scan())
    assert answer.cache_hit
    assert not answer.used_bounded_plan


def test_cache_distinguishes_planner_configurations(service):
    from repro.engine.service import ExactVBRPPlanner

    query = parse_cq("Q(b) :- R(1, b)")
    tiny = service.query(query, planners=(ExactVBRPPlanner(default_max_size=1),))
    assert not tiny.used_bounded_plan  # M=1 cannot express the fetch
    bigger = service.query(query, planners=(ExactVBRPPlanner(default_max_size=4),))
    assert not bigger.cache_hit  # different configuration: not the M=1 outcome
    assert bigger.used_bounded_plan


def test_exact_planner_budget_exhaustion_falls_back(service):
    from repro.engine.service import ExactVBRPPlanner

    answer = service.query(
        anchored_chain(),
        planners=(ExactVBRPPlanner(default_max_size=8), "heuristic"),
        use_cache=False,
    )
    # The exact planner blows its enumeration budget at M=8; the chain must
    # fall through to the heuristic instead of crashing the request.
    assert answer.used_bounded_plan
    assert answer.planner == "heuristic"


def test_fo_and_cq_do_not_collide_in_cache(service):
    service.query(anchored_chain())
    fo = conj(atom("R", Constant(1), Y), neg(exists([Z], conj(atom("S", Y, Z), eq(Z, "x")))))
    answer = service.query(fo, head=(Y,))
    assert not answer.cache_hit
    assert answer.planner == "topped"


# --------------------------------------------------------------------------- #
# Prepared queries and parameters
# --------------------------------------------------------------------------- #


def test_prepared_query_rebinds_constants_without_replanning(service):
    prepared = service.prepare("Q(z) :- R(:key, y), S(y, z)")
    assert prepared.is_bounded
    assert prepared.parameters == {"key"}
    one = prepared.execute(key=1)
    two = prepared.execute(key=2)
    assert one.rows == {("x",), ("y",)}
    assert two.rows == {("z",)}
    # prepare() planned fresh (a miss); every later execution skips planning.
    assert not one.cache_hit
    assert two.cache_hit
    assert service.plan_cache.stats.misses == 1


def test_prepared_query_missing_and_unknown_params_raise(service):
    prepared = service.prepare("Q(z) :- R(:key, y), S(y, z)")
    with pytest.raises(QueryError):
        prepared.execute()
    with pytest.raises(QueryError):
        prepared.execute(key=1, extra=2)


def test_prepared_query_fallback_path_binds_query(service):
    prepared = service.prepare("Q(b) :- R(a, b), S(b, :c)")  # unanchored: no plan
    assert not prepared.is_bounded
    answer = prepared.execute(c="x")
    assert not answer.used_bounded_plan
    assert answer.rows == {(10,)}


def test_query_with_unbound_parameters_is_rejected(service):
    with pytest.raises(QueryError):
        service.query("Q(z) :- R(:key, y), S(y, z)")
    with pytest.raises(QueryError):
        # baseline() must not silently evaluate Param placeholders to empty
        service.baseline("Q(z) :- R(:key, y), S(y, z)")


def test_query_with_inline_params(service):
    answer = service.query("Q(z) :- R(:key, y), S(y, z)", params={"key": 2})
    assert answer.rows == {("z",)}


def test_query_rejects_unknown_inline_params(service):
    with pytest.raises(QueryError):
        service.query("Q(z) :- R(:key, y), S(y, z)", params={"key": 2, "keyy": 3})


def test_parser_parses_parameters():
    query = parse_cq("Q(y) :- R(:k, y)")
    assert Constant(Param("k")) in query.constants
    assert isinstance(parse_query("Q(y) :- R(:k, y)"), ConjunctiveQuery)
    assert isinstance(parse_ucq("Q(y) :- R(:k, y) ; Q(y) :- S(y, :k)"), UnionQuery)


def test_prepared_params_mapping_avoids_keyword_collision(service):
    # A parameter literally named "backend" collides with execute()'s own
    # keyword; the explicit params= mapping must still reach it.
    prepared = service.prepare("Q(z) :- R(:backend, y), S(y, z)")
    answer = prepared.execute(params={"backend": 1})
    assert answer.rows == {("x",), ("y",)}
    other = service.prepare("Q(z) :- R(:key, y), S(y, z)")
    with pytest.raises(QueryError):
        other.execute(params={"key": 1}, key=2)  # bound twice


def test_unbound_param_in_select_predicate_is_rejected(service):
    # A Param inside a selection predicate must raise, not silently filter
    # every row away.
    from repro.core.plans import (
        AttributeEqualsConstant,
        ConstantScan,
        FetchNode,
        SelectNode,
    )

    fetch = FetchNode(ConstantScan(10, attribute="b"), "S", ("b",), ("c",))
    plan = SelectNode(fetch, (AttributeEqualsConstant("c", Param("wanted")),))
    with pytest.raises(QueryError):
        service.execute_plan(plan)
    bound = service.execute_plan(plan, params={"wanted": "x"})
    assert bound.rows == {(10, "x")}
    assert service.execute_plan(plan, params={"wanted": "nope"}).rows == frozenset()


def test_bind_plan_validates_and_substitutes(service):
    prepared = service.prepare("Q(z) :- R(:key, y), S(y, z)")
    assert plan_parameters(prepared.plan) == {"key"}
    bound = bind_plan(prepared.plan, {"key": 1})
    assert plan_parameters(bound) == frozenset()
    with pytest.raises(PlanError):
        bind_plan(prepared.plan, {})
    with pytest.raises(QueryError):
        service.execute_plan(prepared.plan)  # unbound Param
    with pytest.raises(PlanError):
        # the executor itself also refuses a half-bound plan
        service._backend("memory").execute_plan(prepared.plan)


# --------------------------------------------------------------------------- #
# Batch execution and statistics
# --------------------------------------------------------------------------- #


def test_query_many_preserves_order_and_aggregates_stats(service):
    queries = [anchored_chain(1), anchored_chain(2), anchored_chain(1), open_scan()]
    answers = service.query_many(queries, max_workers=4)
    assert len(answers) == 4
    assert answers[0].rows == answers[2].rows == {("x",), ("y",)}
    assert answers[1].rows == {("z",)}
    assert not answers[3].used_bounded_plan
    snapshot = service.stats.snapshot()
    assert snapshot.queries == 4
    assert snapshot.cache_hits == 1  # the repeated anchored_chain(1)
    assert snapshot.bounded_answers == 3
    assert snapshot.fallback_answers == 1
    assert snapshot.planner_uses == {"heuristic": 3}
    assert snapshot.tuples_fetched > 0 and snapshot.tuples_scanned > 0
    assert snapshot.latency_p95 >= snapshot.latency_p50 >= 0.0


def test_query_many_single_worker(service):
    answers = service.query_many([anchored_chain()], max_workers=1)
    assert len(answers) == 1 and answers[0].used_bounded_plan


def test_stats_reset(service):
    service.query(anchored_chain())
    service.stats.reset()
    assert service.stats.snapshot().queries == 0


# --------------------------------------------------------------------------- #
# Legacy shims
# --------------------------------------------------------------------------- #


def test_view_cache_assignment_propagates_and_mutation_is_rejected(rs_database):
    from repro.algebra.parser import parse_cq as _parse
    from repro.algebra.views import View

    view = View("V1", _parse("V1(b) :- R(1, b)"))
    service = QueryService(rs_database, ACCESS, (view,))

    # In-place mutation would silently miss the build-once backends: rejected.
    with pytest.raises(TypeError):
        service.view_cache["V1"] = frozenset()

    # Whole-mapping assignment routes through refresh_data and reaches the
    # executor: the view-covered query serves the swapped rows (this is the
    # mechanism incremental maintenance relies on).
    bound_query = "Q(b) :- R(1, b)"
    assert service.query(bound_query).rows == {(10,), (11,)}
    service.view_cache = {"V1": frozenset({(999,)})}
    assert service.view_cache["V1"] == frozenset({(999,)})
    assert service.query(bound_query).rows == {(999,)}


def test_bounded_engine_reason_populated_on_bounded_path(rs_database):
    from repro.engine.session import BoundedEngine

    engine = BoundedEngine(rs_database, ACCESS)
    answer = engine.answer(anchored_chain())
    assert answer.used_bounded_plan
    assert answer.reason  # satellite fix: no longer silently empty
    assert "heuristic" in answer.reason


def test_bounded_engine_executor_is_reused(rs_database):
    from repro.engine.session import BoundedEngine

    engine = BoundedEngine(rs_database, ACCESS)
    backend = engine.service._backend("memory")
    executor_before = backend._executor
    engine.answer(anchored_chain())
    engine.answer(anchored_chain(2))
    assert backend._executor is executor_before  # built once, reused


# --------------------------------------------------------------------------- #
# Optimizer v2: estimates in explain, adaptive re-planning, shard identity,
# and warm restart through the persistent plan store
# --------------------------------------------------------------------------- #


def test_explain_reports_estimates_and_actuals(service):
    query = anchored_chain()
    service.query(query)
    explanation = service.explain(query)
    assert explanation.estimated_fetches is not None
    assert explanation.actual_fetches is not None
    assert explanation.operator_estimates  # one line per fetch operator
    text = explanation.render()
    assert "estimated D" in text
    assert "last actual" in text


def _growing_service():
    """Tiny r/s join whose statistics the data then outgrows 200x."""
    from repro.storage.instance import Database

    schema = schema_from_spec({"r": ("a", "b"), "s": ("b", "c")})
    access = AccessSchema(
        (
            AccessConstraint("r", ("a",), ("b",), 5000),
            AccessConstraint("s", ("b",), ("c",), 5000),
        )
    )
    database = Database(schema)
    database.add_many("r", [("k", f"b{i}") for i in range(10)])
    database.add_many("s", [(f"b{i}", f"c{i}") for i in range(10)])
    return QueryService(
        database,
        access,
        planners=("cost", "topped"),
        retain_plans_on_write=True,
        codegen=False,
    )


def test_adaptive_replan_fires_once_and_never_changes_answers():
    from repro.storage.updates import Insertion, UpdateBatch

    service = _growing_service()
    query = "Q(b, c) :- r('k', b), s(b, c)"
    before = service.query(query)
    assert service.stats.snapshot().replans == 0

    # Grow the data 200x while the (now mis-estimated) plan stays cached.
    service.apply(UpdateBatch([Insertion("r", ("k", f"B{i}")) for i in range(2000)]))
    service.apply(
        UpdateBatch([Insertion("s", (f"B{i}", f"C{i}")) for i in range(2000)])
    )

    # The next warm execution observes the >10x Dxi overshoot and swaps in
    # a re-costed plan -- without changing any answer.
    replanned = service.query(query)
    settled = service.query(query)
    assert before.rows <= replanned.rows  # inserts only add rows
    assert replanned.rows == settled.rows
    snapshot = service.stats.snapshot()
    assert snapshot.replans == 1  # the corrected model converges in one swap

    explanation = service.explain(query)
    assert explanation.replans == 1
    assert "re-plan threshold" in explanation.replan_reason
    assert "replanned:" in explanation.render()
    service.close()


@pytest.mark.parametrize(
    "planners", [("heuristic", "topped"), ("cost", "topped")]
)
@pytest.mark.parametrize("codegen", [False, True])
def test_shard_variants_are_meter_identical(rs_database, planners, codegen):
    """shards=None/1/4 answer with bit-identical rows and Dxi accounting,
    whichever planner chose the join order and whichever tier executed."""
    query = anchored_chain()
    baseline = None
    for shards in (None, 1, 4):
        service = QueryService(
            rs_database,
            ACCESS,
            planners=planners,
            shards=shards,
            codegen=codegen,
            codegen_warmup=0,
        )
        answer = service.query(query)
        assert answer.used_bounded_plan
        observed = (
            answer.rows,
            answer.tuples_fetched,
            answer.tuples_scanned,
            answer.view_tuples_scanned,
        )
        if baseline is None:
            baseline = observed
        else:
            assert observed == baseline, (planners, codegen, shards)
        service.close()


def test_plan_store_restart_first_execution_is_compiled(rs_database, tmp_path):
    path = str(tmp_path / "plans.bin")
    query = anchored_chain()
    first = QueryService(
        rs_database,
        ACCESS,
        planners=("cost", "topped"),
        plan_store=path,
        codegen_warmup=0,
    )
    expected = first.query(query)
    assert expected.execution_tier == "compiled"
    first.close()

    second = QueryService(
        rs_database,
        ACCESS,
        planners=("cost", "topped"),
        plan_store=path,
        codegen_warmup=0,
    )
    answer = second.query(query)
    assert answer.rows == expected.rows
    assert answer.cache_hit  # no re-planning after the restart
    assert answer.execution_tier == "compiled"  # no re-warmup either
    assert second.stats.snapshot().plan_store_hits == 1
    second.close()
