"""Unit tests for the FD chase of tableaux (Corollary 4.4 / Proposition 4.5)."""

import pytest

from repro.algebra.atoms import RelationAtom
from repro.algebra.cq import ConjunctiveQuery
from repro.algebra.schema import schema_from_spec
from repro.algebra.terms import Constant, Variable
from repro.core.access import AccessConstraint, AccessSchema
from repro.core.chase import chase_applying_fds, chase_with_fds
from repro.errors import UnsupportedQueryError

SCHEMA = schema_from_spec({"R": ("a", "b"), "S": ("a", "b", "c")})
X, Y, Z = Variable("x"), Variable("y"), Variable("z")

FDS = AccessSchema([AccessConstraint("R", ("a",), ("b",), 1)])


def test_chase_unifies_variables_with_same_key():
    query = ConjunctiveQuery(
        head=(Y, Z),
        atoms=(RelationAtom("R", (X, Y)), RelationAtom("R", (X, Z))),
    )
    chased = chase_with_fds(query, FDS, SCHEMA)
    assert chased is not None
    assert chased.head[0] == chased.head[1]
    assert len(set(chased.atoms)) == 1


def test_chase_propagates_constants():
    query = ConjunctiveQuery(
        head=(Y,),
        atoms=(RelationAtom("R", (X, Constant(5))), RelationAtom("R", (X, Y))),
    )
    chased = chase_with_fds(query, FDS, SCHEMA)
    assert chased is not None
    assert chased.head == (Constant(5),)


def test_chase_detects_a_unsatisfiability():
    query = ConjunctiveQuery(
        head=(),
        atoms=(
            RelationAtom("R", (Constant(1), Constant("u"))),
            RelationAtom("R", (Constant(1), Constant("v"))),
        ),
    )
    assert chase_with_fds(query, FDS, SCHEMA) is None


def test_chase_result_tableau_satisfies_fds():
    query = ConjunctiveQuery(
        head=(Y, Z),
        atoms=(RelationAtom("R", (X, Y)), RelationAtom("R", (X, Z))),
    )
    chased = chase_with_fds(query, FDS, SCHEMA)
    assert chased is not None
    assert FDS.satisfied_by(chased.tableau().facts(), SCHEMA)


def test_chase_with_fds_requires_fd_only_schema():
    mixed = AccessSchema(
        [
            AccessConstraint("R", ("a",), ("b",), 1),
            AccessConstraint("S", ("a",), ("b",), 5),
        ]
    )
    query = ConjunctiveQuery(head=(X,), atoms=(RelationAtom("R", (X, Y)),))
    with pytest.raises(UnsupportedQueryError):
        chase_with_fds(query, mixed, SCHEMA)
    # chase_applying_fds accepts mixed schemas and just uses the FDs.
    assert chase_applying_fds(query, mixed, SCHEMA) is not None


def test_chase_cascades_across_constraints():
    # S((a,b) -> c, 1): two S atoms sharing (a, b) force their c terms equal,
    # which then triggers the R FD.
    schema_a = AccessSchema(
        [
            AccessConstraint("S", ("a", "b"), ("c",), 1),
            AccessConstraint("R", ("a",), ("b",), 1),
        ]
    )
    w = Variable("w")
    query = ConjunctiveQuery(
        head=(Z, w),
        atoms=(
            RelationAtom("S", (Constant(1), Constant(2), X)),
            RelationAtom("S", (Constant(1), Constant(2), Y)),
            RelationAtom("R", (X, Z)),
            RelationAtom("R", (Y, w)),
        ),
    )
    chased = chase_with_fds(query, schema_a, SCHEMA)
    assert chased is not None
    assert chased.head[0] == chased.head[1]


def test_chase_is_idempotent():
    query = ConjunctiveQuery(
        head=(Y, Z),
        atoms=(RelationAtom("R", (X, Y)), RelationAtom("R", (X, Z))),
    )
    once = chase_with_fds(query, FDS, SCHEMA)
    twice = chase_with_fds(once, FDS, SCHEMA)
    assert once.tableau().atoms == twice.tableau().atoms
