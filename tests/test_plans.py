"""Unit tests for query plan trees: structure, size, language, validation."""

import pytest

from repro.algebra.schema import schema_from_spec
from repro.core.access import AccessConstraint, AccessSchema
from repro.core.plans import (
    AttributeEqualsAttribute,
    AttributeEqualsConstant,
    ConstantScan,
    DifferenceNode,
    FetchNode,
    ProductNode,
    ProjectNode,
    RenameNode,
    SelectNode,
    UnionNode,
    ViewScan,
    empty_plan,
    join_on_shared_attributes,
    language_leq,
)
from repro.errors import PlanError
from repro.workloads import graph_search

SCHEMA = schema_from_spec({"R": ("a", "b"), "S": ("b", "c")})
ACCESS = AccessSchema(
    (
        AccessConstraint("R", ("a",), ("b",), 2),
        AccessConstraint("S", (), ("b", "c"), 5),
    )
)


def small_plan():
    scan = ConstantScan(1, attribute="a")
    fetch = FetchNode(scan, "R", ("a",), ("b",))
    return ProjectNode(fetch, ("b",))


def test_plan_size_counts_nodes():
    assert small_plan().size() == 3
    assert ConstantScan(0).size() == 1


def test_attributes_propagate_through_operators():
    plan = small_plan()
    assert plan.attributes == ("b",)
    fetch = plan.children[0]
    assert fetch.attributes == ("a", "b")


def test_fetch_leaf_with_empty_key():
    fetch = FetchNode(None, "S", (), ("b", "c"))
    assert fetch.size() == 1
    assert fetch.attributes == ("b", "c")
    with pytest.raises(PlanError):
        FetchNode(None, "R", ("a",), ("b",))


def test_fetch_child_attributes_must_match_keys():
    scan = ConstantScan(1, attribute="wrong")
    with pytest.raises(PlanError):
        FetchNode(scan, "R", ("a",), ("b",))


def test_project_select_rename_validation():
    scan = ConstantScan(1, attribute="a")
    with pytest.raises(PlanError):
        ProjectNode(scan, ("zzz",))
    with pytest.raises(PlanError):
        SelectNode(scan, ())
    with pytest.raises(PlanError):
        SelectNode(scan, (AttributeEqualsConstant("zzz", 1),))
    with pytest.raises(PlanError):
        RenameNode(scan, {"zzz": "y"})
    renamed = RenameNode(scan, {"a": "key"})
    assert renamed.attributes == ("key",)


def test_binary_node_attribute_discipline():
    left = ConstantScan(1, attribute="a")
    right = ConstantScan(2, attribute="a")
    with pytest.raises(PlanError):
        ProductNode(left, right)
    with pytest.raises(PlanError):
        UnionNode(left, ConstantScan(2, attribute="b"))
    union = UnionNode(left, right)
    assert union.attributes == ("a",)
    difference = DifferenceNode(left, right)
    assert difference.attributes == ("a",)


def test_language_classification_of_plans():
    assert small_plan().language() == "CQ"
    cq_plan = small_plan()
    union_top = UnionNode(cq_plan, small_plan())
    assert union_top.language() == "UCQ"
    # A union *below* a projection is ∃FO+ but not UCQ.
    nested = ProjectNode(union_top, ("b",))
    assert nested.language() == "EFO+"
    diff = DifferenceNode(cq_plan, small_plan())
    assert diff.language() == "FO"
    assert language_leq("CQ", "FO")
    assert not language_leq("FO", "UCQ")


def test_validate_against_schema_views_and_access():
    plan = small_plan()
    plan.validate(SCHEMA, views=None, access_schema=ACCESS)
    bad_fetch = FetchNode(ConstantScan(1, attribute="b"), "R", ("b",), ("a",))
    with pytest.raises(PlanError):
        bad_fetch.validate(SCHEMA, access_schema=ACCESS)


def test_validate_view_scan_against_viewset():
    views = graph_search.views()
    scan = ViewScan("V1", ("mid",))
    scan.validate(graph_search.schema(), views=views)
    with pytest.raises(PlanError):
        ViewScan("V1", ("mid", "extra")).validate(graph_search.schema(), views=views)
    with pytest.raises(PlanError):
        ViewScan("NoSuchView", ("x",)).validate(graph_search.schema(), views=views)


def test_join_helper_builds_product_select_project():
    left = FetchNode(ConstantScan(1, attribute="a"), "R", ("a",), ("b",))
    right = FetchNode(None, "S", (), ("b", "c"))
    joined = join_on_shared_attributes(left, right)
    assert set(joined.attributes) == {"a", "b", "c"}
    # Disjoint attributes degenerate to a plain product.
    disjoint = join_on_shared_attributes(ConstantScan(1, "p"), ConstantScan(2, "q"))
    assert isinstance(disjoint, ProductNode)


def test_fetch_nodes_and_view_names_traversal():
    plan = join_on_shared_attributes(small_plan(), ViewScan("V1", ("b",)))
    assert len(plan.fetch_nodes()) == 1
    assert plan.view_names() == {"V1"}
    assert plan.uses_views()
    assert len(list(plan.iter_nodes())) == plan.size()


def test_empty_plan_shapes():
    boolean = empty_plan()
    assert boolean.attributes == ()
    unary = empty_plan(("mid",))
    assert unary.attributes == ("mid",)
    assert unary.size() >= 2


def test_figure1_plan_structure():
    plan = graph_search.figure1_plan()
    plan.validate(graph_search.schema(), graph_search.views(), graph_search.access_schema())
    assert plan.language() == "CQ"
    assert plan.attributes == ("mid",)
    assert len(plan.fetch_nodes()) == 2
    assert plan.view_names() == {"V1"}
    assert plan.size() <= 13


def test_pretty_rendering_contains_operators():
    text = small_plan().pretty()
    assert "fetch" in text and "π" in text and "const" in text
