"""Unit tests for relation and equality atoms."""

import pytest

from repro.algebra.atoms import (
    EqualityAtom,
    RelationAtom,
    atoms_constants,
    atoms_variables,
    check_equality_terms,
)
from repro.algebra.schema import schema_from_spec
from repro.algebra.terms import Constant, Variable
from repro.errors import QueryError, SchemaError

X, Y = Variable("x"), Variable("y")


def test_relation_atom_wraps_raw_values_as_constants():
    atom = RelationAtom("R", (X, 5, "c"))
    assert atom.terms == (X, Constant(5), Constant("c"))
    assert atom.variables == (X,)
    assert atom.constants == (Constant(5), Constant("c"))
    assert atom.arity == 3


def test_relation_atom_validate_against_schema():
    schema = schema_from_spec({"R": ("a", "b")})
    RelationAtom("R", (X, Y)).validate(schema)
    with pytest.raises(SchemaError):
        RelationAtom("R", (X,)).validate(schema)
    with pytest.raises(SchemaError):
        RelationAtom("T", (X,)).validate(schema)


def test_relation_atom_substitute():
    atom = RelationAtom("R", (X, Y))
    substituted = atom.substitute({X: Constant(1)})
    assert substituted.terms == (Constant(1), Y)
    # The original atom is unchanged (immutability).
    assert atom.terms == (X, Y)


def test_equality_atom_basics():
    equality = EqualityAtom(X, 3)
    assert equality.is_equality
    assert equality.variables == (X,)
    assert equality.holds_for(3, 3)
    assert not equality.holds_for(3, 4)

    inequality = EqualityAtom(X, Y, negated=True)
    assert not inequality.is_equality
    assert inequality.holds_for(1, 2)
    assert not inequality.holds_for(1, 1)


def test_equality_atom_substitute_preserves_negation():
    inequality = EqualityAtom(X, Y, negated=True)
    substituted = inequality.substitute({Y: Constant(0)})
    assert substituted.negated
    assert substituted.right == Constant(0)


def test_atoms_iterators():
    atoms = [RelationAtom("R", (X, 1)), EqualityAtom(Y, "c")]
    assert list(atoms_variables(atoms)) == [X, Y]
    assert set(atoms_constants(atoms)) == {Constant(1), Constant("c")}


def test_check_equality_terms_rejects_contradictory_inequality():
    with pytest.raises(QueryError):
        check_equality_terms(EqualityAtom(Constant(1), Constant(1), negated=True))
    # Equalities between constants are allowed (used by element queries).
    check_equality_terms(EqualityAtom(Constant(1), Constant(1)))
    check_equality_terms(EqualityAtom(Constant(1), Constant(2), negated=True))


def test_atom_string_rendering():
    assert str(RelationAtom("R", (X, 1))) == "R(?x, 1)"
    assert str(EqualityAtom(X, Y, negated=True)) == "?x != ?y"
