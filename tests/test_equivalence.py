"""Unit tests for A-containment and A-equivalence (Lemma 3.2)."""

from repro.algebra.atoms import EqualityAtom, RelationAtom
from repro.algebra.cq import ConjunctiveQuery
from repro.algebra.schema import schema_from_spec
from repro.algebra.terms import Constant, Variable
from repro.algebra.ucq import UnionQuery
from repro.core.access import AccessConstraint, AccessSchema
from repro.core.equivalence import (
    a_contained_in,
    a_equivalent,
    a_equivalent_to_empty,
    is_a_satisfiable,
)

SCHEMA = schema_from_spec({"R": ("a", "b"), "S": ("a", "b")})
X, Y, Z = Variable("x"), Variable("y"), Variable("z")


def test_classical_containment_implies_a_containment():
    specific = ConjunctiveQuery(head=(X,), atoms=(RelationAtom("R", (X, Constant(1))),))
    general = ConjunctiveQuery(head=(X,), atoms=(RelationAtom("R", (X, Y)),))
    access = AccessSchema([AccessConstraint("R", ("a",), ("b",), 3)])
    assert a_contained_in(specific, general, access, SCHEMA)
    assert not a_contained_in(general, specific, access, SCHEMA)


def test_without_constraints_a_equivalence_is_classical():
    q1 = ConjunctiveQuery(head=(X,), atoms=(RelationAtom("R", (X, Y)),))
    q2 = ConjunctiveQuery(head=(Z,), atoms=(RelationAtom("R", (Z, Variable("w"))),))
    assert a_equivalent(q1, q2, AccessSchema(()), SCHEMA)


def test_fd_makes_queries_a_equivalent_but_not_classically():
    """R(x, y) ∧ R(x, z) ≡_A R(x, y) when R(a -> b, 1), but not classically."""
    two_atoms = ConjunctiveQuery(
        head=(X, Y, Z),
        atoms=(RelationAtom("R", (X, Y)), RelationAtom("R", (X, Z))),
    )
    collapsed = ConjunctiveQuery(
        head=(X, Y, Y), atoms=(RelationAtom("R", (X, Y)),)
    )
    fd = AccessSchema([AccessConstraint("R", ("a",), ("b",), 1)])
    from repro.algebra.containment import equivalent

    assert not equivalent(two_atoms, collapsed)
    assert a_equivalent(two_atoms, collapsed, fd, SCHEMA)
    # With a looser bound the equivalence breaks again.
    loose = AccessSchema([AccessConstraint("R", ("a",), ("b",), 2)])
    assert not a_equivalent(two_atoms, collapsed, loose, SCHEMA)


def test_a_containment_via_element_queries_with_cardinality_constraint():
    """R(c, y) ∧ R(c, z) ∧ y ≠-freeness under R(a -> b, 1): y = z forced.

    The left query is A-contained in the right one (which asks for a single
    tuple R(c, y) with its b-value used twice in S), only because the access
    constraint forces y and z to coincide.
    """
    left = ConjunctiveQuery(
        head=(Y, Z),
        atoms=(RelationAtom("R", (Constant("c"), Y)), RelationAtom("R", (Constant("c"), Z))),
    )
    right = ConjunctiveQuery(head=(Y, Y), atoms=(RelationAtom("R", (Constant("c"), Y)),))
    constrained = AccessSchema([AccessConstraint("R", ("a",), ("b",), 1)])
    unconstrained = AccessSchema(())
    assert a_contained_in(left, right, constrained, SCHEMA)
    assert not a_contained_in(left, right, unconstrained, SCHEMA)


def test_a_containment_with_non_fd_bound_via_element_queries():
    """A bound of 2 forces the three b-values of a shared key to collide."""
    y1, y2, y3 = Variable("y1"), Variable("y2"), Variable("y3")
    left = ConjunctiveQuery(
        head=(y1, y2, y3),
        atoms=(
            RelationAtom("R", (Constant("k"), y1)),
            RelationAtom("R", (Constant("k"), y2)),
            RelationAtom("R", (Constant("k"), y3)),
        ),
    )
    # Right query: some two of the key's values coincide — expressed as a UCQ.
    def pair(i, j):
        names = {1: Variable("y1"), 2: Variable("y2"), 3: Variable("y3")}
        return ConjunctiveQuery(
            head=(names[1], names[2], names[3]),
            atoms=(
                RelationAtom("R", (Constant("k"), names[1])),
                RelationAtom("R", (Constant("k"), names[2])),
                RelationAtom("R", (Constant("k"), names[3])),
            ),
            equalities=(EqualityAtom(names[i], names[j]),),
        )

    right = UnionQuery((pair(1, 2), pair(1, 3), pair(2, 3)))
    bound2 = AccessSchema([AccessConstraint("R", ("a",), ("b",), 2)])
    bound3 = AccessSchema([AccessConstraint("R", ("a",), ("b",), 3)])
    assert a_contained_in(left, right, bound2, SCHEMA)
    assert not a_contained_in(left, right, bound3, SCHEMA)


def test_a_satisfiability_and_empty_equivalence():
    impossible = ConjunctiveQuery(
        head=(),
        atoms=(
            RelationAtom("R", (Constant(1), Constant("u"))),
            RelationAtom("R", (Constant(1), Constant("v"))),
        ),
    )
    fd = AccessSchema([AccessConstraint("R", ("a",), ("b",), 1)])
    assert not is_a_satisfiable(impossible, fd, SCHEMA)
    assert a_equivalent_to_empty(impossible, fd, SCHEMA)
    loose = AccessSchema([AccessConstraint("R", ("a",), ("b",), 2)])
    assert is_a_satisfiable(impossible, loose, SCHEMA)
    assert not a_equivalent_to_empty(impossible, loose, SCHEMA)


def test_a_satisfiability_without_constraints_is_plain_satisfiability():
    query = ConjunctiveQuery(
        head=(),
        atoms=(RelationAtom("R", (X, Y)),),
        equalities=(EqualityAtom(X, Constant(1)), EqualityAtom(X, Constant(2))),
    )
    assert not is_a_satisfiable(query, AccessSchema(()), SCHEMA)


def test_a_equivalence_of_ucq_queries():
    q1 = ConjunctiveQuery(head=(X,), atoms=(RelationAtom("R", (X, Constant(1))),))
    q2 = ConjunctiveQuery(head=(X,), atoms=(RelationAtom("R", (X, Constant(2))),))
    union = UnionQuery((q1, q2))
    flipped = UnionQuery((q2, q1))
    access = AccessSchema([AccessConstraint("R", ("a",), ("b",), 2)])
    assert a_equivalent(union, flipped, access, SCHEMA)
    assert not a_equivalent(union, UnionQuery((q1,)), access, SCHEMA)
