"""E6 — Section 6 / Example 6.3: cross-language rewriting VBRP+(L1, L2).

Paper results reproduced in shape (Theorem 6.1, Example 6.3):

* allowing the rewriting to live in a richer language does not make the
  decision cheaper — the CQ-to-UCQ search costs as much as the CQ-to-CQ one;
* it can, however, help individual queries: the Example 6.3 plan
  ``(V3 \\ V1) ∪ V2`` is a 5-node FO rewriting that no UCQ plan of the same
  size can replace; its structural verification (size, language, conformance)
  is what we time here.
"""

from __future__ import annotations

import pytest

from repro.algebra.atoms import RelationAtom
from repro.algebra.cq import ConjunctiveQuery
from repro.algebra.schema import schema_from_spec
from repro.algebra.terms import Constant, Variable
from repro.algebra.views import ViewSet
from repro.core.access import AccessConstraint, AccessSchema
from repro.core.vbrp_plus import decide_vbrp_plus, verify_cross_language_rewriting

SCHEMA = schema_from_spec({"R": ("a", "b"), "S": ("b", "c")})
ACCESS = AccessSchema(
    (
        AccessConstraint("R", ("a",), ("b",), 2),
        AccessConstraint("S", ("b",), ("c",), 1),
    )
)
NO_VIEWS = ViewSet(())
Y, Z = Variable("y"), Variable("z")

QUERY = ConjunctiveQuery(
    head=(Z,),
    atoms=(RelationAtom("R", (Constant(1), Y)), RelationAtom("S", (Y, Z))),
    name="anchored_chain",
)


@pytest.mark.parametrize("target", ["CQ", "UCQ", "EFO+"])
def test_decide_vbrp_plus_across_target_languages(benchmark, target):
    """Relaxing the target language does not change the outcome or the cost shape."""

    def run():
        return decide_vbrp_plus(
            QUERY, NO_VIEWS, ACCESS, SCHEMA, max_size=5,
            source_language="CQ", target_language=target,
        )

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    benchmark.extra_info["target_language"] = target
    benchmark.extra_info["candidates"] = result.inner.candidates
    assert result.has_rewriting


def _example63():
    from repro.workloads import example63 as ex

    return ex.schema(), ex.access_schema(), ex.query_q(), ex.views(), ex.fo_plan()


def test_example_63_fo_plan_verification(benchmark):
    schema, access, query, views, plan = _example63()

    ok = benchmark(
        lambda: verify_cross_language_rewriting(plan, query, views, access, schema, 5, "FO")
    )
    benchmark.extra_info["plan_size"] = plan.size()
    benchmark.extra_info["plan_language"] = plan.language()
    assert ok


def test_example_63_fo_plan_is_not_a_ucq_plan(benchmark):
    schema, access, query, views, plan = _example63()

    ok = benchmark(
        lambda: verify_cross_language_rewriting(plan, query, views, access, schema, 5, "UCQ")
    )
    benchmark.extra_info["plan_language"] = plan.language()
    assert not ok
