"""E9 — bounded incremental view/index maintenance (Section 8 follow-up work).

The paper asks for view maintenance that touches a bounded amount of data per
update.  The benchmark streams an update batch through
:class:`repro.engine.maintenance.MaintainedEngine` and contrasts it with the
baseline that keeps the cache fresh by recomputing the views after every
single update.  ``extra_info`` records the bounded-maintenance quantities:
delta queries per update and view rows changed; index maintenance itself is
O(1) bucket work per update.
"""

from __future__ import annotations

import pytest

from repro.engine.maintenance import IncrementalViewCache, MaintainedEngine
from repro.storage.updates import random_update_batch
from repro.workloads import graph_search as gs


@pytest.fixture(scope="module")
def maintained_setup(gs_small):
    database = gs_small.database.copy()
    engine = MaintainedEngine(database, gs.access_schema(), gs.views())
    batch = random_update_batch(
        database, size=60, seed=71, access_schema=gs.access_schema()
    )
    return engine, batch


def test_incremental_maintenance_per_batch(benchmark, maintained_setup):
    engine, batch = maintained_setup

    def run():
        report = engine.apply(batch)
        engine.apply(batch.inverted())  # restore, so every round sees the same state
        return report

    report = benchmark.pedantic(run, rounds=3, iterations=1)
    benchmark.extra_info["updates"] = len(batch)
    benchmark.extra_info["delta_queries_per_update"] = round(
        report.stats.delta_queries / max(report.applied, 1), 2
    )
    benchmark.extra_info["rows_added"] = report.stats.rows_added
    benchmark.extra_info["rows_removed"] = report.stats.rows_removed
    assert engine.verify_caches()


def test_recompute_after_every_update_baseline(benchmark, maintained_setup):
    engine, batch = maintained_setup
    cache = IncrementalViewCache(gs.views(), engine.database)

    def run():
        # Freshness after every update means one recomputation per update.
        for _update in batch:
            cache.recompute()

    benchmark.pedantic(run, rounds=1, iterations=1)
    benchmark.extra_info["updates"] = len(batch)
    benchmark.extra_info["database_tuples"] = engine.database.size


def test_answers_stay_exact_under_maintenance(benchmark, gs_small):
    database = gs_small.database.copy()
    engine = MaintainedEngine(database, gs.access_schema(), gs.views())
    batch = random_update_batch(
        database, size=30, seed=73, access_schema=gs.access_schema()
    )
    query = gs.query_q0()

    def run():
        engine.apply(batch)
        answer = engine.answer(query)
        engine.apply(batch.inverted())
        return answer

    answer = benchmark.pedantic(run, rounds=2, iterations=1)
    assert answer.used_bounded_plan
    assert answer.rows == engine.baseline(query).rows
