"""E2 — Table I (CQ/UCQ/∃FO+ rows): cost profile of the exact VBRP procedures.

Table I states that VBRP is Σp3-complete for CQ/UCQ/∃FO+ (Cp2k+1-complete with
all parameters fixed) and drops to NP-/coNP-/PTIME only in the restricted
settings of Section 4.  The exact decision procedure therefore enumerates a
candidate-plan space that grows exponentially with the bound M — which is the
measurable shape of the lower bounds on a laptop-scale reproduction.

Measured here: runtime of ``decide_vbrp`` and the number of candidate plans
as M grows from 2 to 4, plus the fixed-QPQ variant of Theorem 3.11 (constant
candidate set, so only the A-equivalence tests remain).
"""

from __future__ import annotations

import pytest

from repro.algebra.atoms import RelationAtom
from repro.algebra.cq import ConjunctiveQuery
from repro.algebra.schema import schema_from_spec
from repro.algebra.terms import Constant, Variable
from repro.algebra.views import ViewSet
from repro.core.access import AccessConstraint, AccessSchema
from repro.core.plans import ConstantScan, FetchNode, ProjectNode
from repro.core.vbrp import PlanSearchSpace, decide_vbrp, enumerate_candidate_plans

SCHEMA = schema_from_spec({"R": ("a", "b"), "S": ("b", "c")})
ACCESS = AccessSchema(
    (
        AccessConstraint("R", ("a",), ("b",), 2),
        AccessConstraint("S", ("b",), ("c",), 1),
    )
)
NO_VIEWS = ViewSet(())
Y, Z = Variable("y"), Variable("z")

QUERY = ConjunctiveQuery(
    head=(Z,),
    atoms=(RelationAtom("R", (Constant(1), Y)), RelationAtom("S", (Y, Z))),
    name="anchored_chain",
)


@pytest.mark.parametrize("max_size", [2, 3, 4])
def test_candidate_plan_enumeration_grows_exponentially(benchmark, max_size):
    space = PlanSearchSpace(constants=(1,))

    plans = benchmark(
        lambda: enumerate_candidate_plans(SCHEMA, NO_VIEWS, ACCESS, max_size, space, "CQ")
    )
    benchmark.extra_info["max_size_M"] = max_size
    benchmark.extra_info["candidate_plans"] = len(plans)


@pytest.mark.parametrize("max_size", [3, 4, 5])
def test_decide_vbrp_exact(benchmark, max_size):
    def run():
        return decide_vbrp(QUERY, NO_VIEWS, ACCESS, SCHEMA, max_size=max_size, language="CQ")

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    benchmark.extra_info["max_size_M"] = max_size
    benchmark.extra_info["has_rewriting"] = result.has_rewriting
    benchmark.extra_info["candidates"] = result.candidates
    benchmark.extra_info["conforming"] = result.conforming
    assert result.has_rewriting == (max_size >= 5)


def test_decide_vbrp_with_fixed_candidate_set(benchmark):
    """Theorem 3.11 setting: R, A, M, V fixed — only equivalence tests remain."""
    good = ProjectNode(
        FetchNode(
            ProjectNode(
                FetchNode(ConstantScan(1, attribute="a"), "R", ("a",), ("b",)), ("b",)
            ),
            "S",
            ("b",),
            ("c",),
        ),
        ("c",),
    )
    decoys = [ConstantScan(1, attribute="c"), ProjectNode(ConstantScan(1, "c"), ())]
    candidates = decoys + [good]

    result = benchmark(
        lambda: decide_vbrp(
            QUERY, NO_VIEWS, ACCESS, SCHEMA, max_size=6, language="CQ",
            candidate_plans=candidates,
        )
    )
    benchmark.extra_info["candidates"] = len(candidates)
    assert result.has_rewriting
