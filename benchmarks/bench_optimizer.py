"""E12 — cost-based optimizer v2: DP join ordering vs the greedy builder.

The skewed social-feed workload (:mod:`repro.workloads.skewed`) is built so
the greedy builder misorders the join: ordering fetches by *average* bucket
size walks into probing ``contacted[user -> agent]`` once per follower of
the hot celebrity, while the histogram-costed subset DP sees the hot key's
skew and fetches ``contacted[agent -> user]`` from the one small team
instead.  Both orders are conforming and answer identically — the cost gap
is pure Dξ.

Measured here:

* **identity** — rows bit-identical between greedy and DP, on both
  backends; every DP plan passes the static verifier;
* **throughput** — warm serving with the cost-based planner (DP + adaptive
  re-planning available) must be ≥ 2x faster end-to-end than the greedy
  planner on this workload (the acceptance bar; ``BENCH_SMOKE=1`` records
  the speedup without gating);
* **warm restart** — a service restarted over the persistent plan store
  reaches the compiled tier on its *first* execution.

``extra_info`` records Dξ per planner, the chosen strategy, replan tallies
and plan-store hits for ``tools/bench_trajectory.py``.
"""

from __future__ import annotations

import os

import pytest

from repro.engine.service import QueryService
from repro.workloads import skewed

#: Mean seconds per round, shared across tests for the speedup accounting.
_TIMINGS: dict[str, float] = {}

ROUNDS = 3
QUERIES_PER_ROUND = 10


@pytest.fixture(scope="module")
def instance():
    return skewed.generate()


def _service(instance, planners, **kwargs) -> QueryService:
    return QueryService(
        instance.database,
        skewed.access_schema(),
        skewed.views(),
        planners=planners,
        **kwargs,
    )


# --------------------------------------------------------------------------- #
# Differential guard: greedy == DP in rows, DP verified, DP cheaper
# --------------------------------------------------------------------------- #


def test_greedy_and_dp_answers_are_identical(instance):
    from repro.analysis import verify_plan

    query = skewed.query_feed()
    greedy = _service(instance, ("heuristic", "topped"), codegen=False)
    cost = _service(instance, ("cost", "topped"), codegen=False, verify_plans=True)
    try:
        for backend in ("memory", "sqlite"):
            greedy_answer = greedy.query(query, backend=backend)
            cost_answer = cost.query(query, backend=backend)
            assert greedy_answer.rows == cost_answer.rows, backend
            assert greedy_answer.used_bounded_plan and cost_answer.used_bounded_plan
        explanation = cost.explain(query)
        assert explanation.order_strategy == "dp"
        report = verify_plan(
            explanation.plan,
            instance.database.schema,
            views=skewed.views(),
            access_schema=skewed.access_schema(),
        )
        assert report.ok, report.errors
        # The whole point: the DP order fetches far less on skewed data.
        greedy_dxi = greedy.query(query).tuples_fetched
        cost_dxi = cost.query(query).tuples_fetched
        assert cost_dxi * 2 <= greedy_dxi, (greedy_dxi, cost_dxi)
    finally:
        greedy.close()
        cost.close()


# --------------------------------------------------------------------------- #
# Throughput: greedy baseline vs cost-based DP ordering
# --------------------------------------------------------------------------- #


def _run_rounds(service, query):
    answers = [service.query(query) for _ in range(QUERIES_PER_ROUND)]
    return answers


def test_optimizer_greedy_baseline(benchmark, instance):
    service = _service(instance, ("heuristic", "topped"))
    query = skewed.query_feed()
    service.query(query)  # plan + warm
    benchmark.pedantic(lambda: _run_rounds(service, query), rounds=ROUNDS, iterations=1)
    mean = benchmark.stats.stats.mean
    _TIMINGS["greedy"] = mean
    benchmark.extra_info["dxi_per_query"] = service.query(query).tuples_fetched
    benchmark.extra_info["queries_per_sec"] = round(QUERIES_PER_ROUND / mean)
    service.close()


def test_optimizer_dp_ordering(benchmark, instance):
    service = _service(instance, ("cost", "topped"))
    query = skewed.query_feed()
    service.query(query)  # plan + warm (adaptive re-planning armed)
    benchmark.pedantic(lambda: _run_rounds(service, query), rounds=ROUNDS, iterations=1)
    mean = benchmark.stats.stats.mean
    _TIMINGS["dp"] = mean
    snapshot = service.stats.snapshot()
    benchmark.extra_info["dxi_per_query"] = service.query(query).tuples_fetched
    benchmark.extra_info["queries_per_sec"] = round(QUERIES_PER_ROUND / mean)
    benchmark.extra_info["order_strategy"] = service.explain(query).order_strategy
    benchmark.extra_info["replans"] = snapshot.replans
    greedy = _TIMINGS.get("greedy")
    if greedy:
        speedup = greedy / mean
        benchmark.extra_info["dp_speedup"] = round(speedup, 1)
        # The acceptance bar for optimizer v2 (locally ~3-5x: the DP order
        # fetches a fraction of the greedy order's Dξ on this skew).  CI
        # smoke runs (BENCH_SMOKE=1) record the speedup without gating.
        if os.environ.get("BENCH_SMOKE") != "1":
            assert speedup >= 2.0, (
                f"cost-based ordering only {speedup:.1f}x faster than the "
                "greedy builder on the skewed workload (acceptance bar 2.0x)"
            )
    service.close()


# --------------------------------------------------------------------------- #
# Warm restart through the persistent plan store
# --------------------------------------------------------------------------- #


def test_plan_store_warm_restart_first_execution_is_compiled(
    benchmark, instance, tmp_path
):
    path = str(tmp_path / "plans.bin")
    query = skewed.query_feed()
    first = _service(instance, ("cost", "topped"), plan_store=path, codegen_warmup=1)
    expected = first.query(query).rows
    first.query(query)
    assert first.query(query).execution_tier == "compiled"
    first.close()

    def restart_and_query():
        service = _service(
            instance, ("cost", "topped"), plan_store=path, codegen_warmup=1
        )
        answer = service.query(query)
        service.close()
        return answer

    answer = benchmark.pedantic(restart_and_query, rounds=ROUNDS, iterations=1)
    assert answer.rows == expected
    assert answer.cache_hit
    # The whole point of persistence: no re-planning, no re-warmup — the
    # first post-restart execution already runs the compiled closure.
    assert answer.execution_tier == "compiled"
    benchmark.extra_info["restart_tier"] = answer.execution_tier
