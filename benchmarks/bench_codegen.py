"""E-codegen — interpreted operator tree vs. compiled closures, same ``Dξ``.

The codegen tier's contract is asymmetric: accounting must be *exactly* the
interpreter's (rows and every IOMeter field — asserted unconditionally, on
every run), while wall-clock must be several times better (asserted only on
non-smoke runs: ``BENCH_SMOKE=1`` records the speedup without gating, since
one-round timings on shared CI runners are noisy).

Measured here on the Graph Search workload: (a) the Figure 1 plan and the
planner's Q0 plan through ``PlanExecutor`` vs. ``CompiledPlan.execute``,
(b) a warmed service answering Q0 on each tier, and (c) prepared
parameterised execution, where the compiled tier also skips ``bind_plan``.
"""

from __future__ import annotations

import os

import pytest

from repro.algebra.parser import parse_query
from repro.core.plan_eval import FetchStats, PlanExecutor
from repro.engine.service import QueryService
from repro.exec.codegen import compile_plan_closure
from repro.workloads import graph_search as gs

# Local acceptance bars for the tier switch (see README "Compiled
# execution" for measured numbers: fig1 ~8x, planner Q0 ~5x).
FIG1_MIN_SPEEDUP = 4.0
Q0_MIN_SPEEDUP = 2.5
# Whole-service Q0 (planning cache + stats + tier dispatch on top of the
# closure): the allocation-light warm-hit path keeps it near the plan-level
# speedup instead of the ~3.3x it measured before.
SERVICE_Q0_MIN_SPEEDUP = 3.0

_TIMINGS: dict[str, float] = {}


def _gate(name: str, minimum: float, benchmark) -> None:
    """Record the interpreted/compiled ratio; assert it off smoke runs."""
    interpreted = _TIMINGS.get(f"{name}_interpreted")
    compiled = _TIMINGS.get(f"{name}_compiled")
    if not interpreted or not compiled:
        return
    speedup = interpreted / compiled
    benchmark.extra_info["codegen_speedup"] = round(speedup, 1)
    if os.environ.get("BENCH_SMOKE") != "1":
        assert speedup >= minimum, (
            f"codegen tier only {speedup:.1f}x faster on {name} "
            f"(acceptance bar {minimum}x)"
        )


@pytest.fixture(scope="module")
def setup(gs_small):
    service = QueryService(
        gs_small.database,
        gs.access_schema(n0=gs_small.n0),
        gs.views(),
        codegen=False,
    )
    executor = PlanExecutor(
        gs_small.database.schema,
        gs.access_schema(n0=gs_small.n0),
        service.indexes,
        service.view_cache,
    )
    entry, _ = service.plan(gs.query_q0())
    assert entry.plan is not None
    return service, executor, entry.plan


@pytest.mark.parametrize("plan_name", ["fig1", "q0"])
@pytest.mark.parametrize("tier", ["interpreted", "compiled"])
def test_plan_execution_tiers(benchmark, setup, plan_name, tier):
    service, executor, q0_plan = setup
    plan = gs.figure1_plan() if plan_name == "fig1" else q0_plan
    reference = executor.execute(plan)
    compiled = compile_plan_closure(plan, executor.access_schema)

    if tier == "interpreted":
        run = lambda: executor.execute(plan).rows  # noqa: E731
    else:
        provider, views = executor.provider, executor.view_cache

        def run():
            return compiled.execute(provider, views, FetchStats())

    rows = benchmark(run)
    # The non-negotiable half of the contract: identical rows and Dξ.
    meter = FetchStats()
    assert compiled.execute(executor.provider, executor.view_cache, meter) == reference.rows
    assert meter.tuples_fetched == reference.stats.tuples_fetched
    assert meter.fetch_calls == reference.stats.fetch_calls
    assert meter.per_relation == reference.stats.per_relation
    assert meter.view_tuples_scanned == reference.stats.view_tuples_scanned
    assert rows == reference.rows
    benchmark.extra_info["rows"] = len(rows)
    benchmark.extra_info["tuples_fetched"] = reference.stats.tuples_fetched
    _TIMINGS[f"{plan_name}_{tier}"] = benchmark.stats.stats.mean
    minimum = FIG1_MIN_SPEEDUP if plan_name == "fig1" else Q0_MIN_SPEEDUP
    _gate(plan_name, minimum, benchmark)


@pytest.mark.parametrize("tier", ["interpreted", "compiled"])
def test_service_q0_tiers(benchmark, gs_small, tier):
    service = QueryService(
        gs_small.database,
        gs.access_schema(n0=gs_small.n0),
        gs.views(),
        codegen=(tier == "compiled"),
        codegen_warmup=0,
    )
    q0 = gs.query_q0()
    warm = service.query(q0)  # plan once; compile when codegen is on
    assert warm.execution_tier == tier

    def run():
        return service.query(q0)

    answer = benchmark(run)
    assert answer.execution_tier == tier
    assert answer.rows == warm.rows
    benchmark.extra_info["rows"] = len(answer.rows)
    benchmark.extra_info["tuples_fetched"] = answer.tuples_fetched
    _TIMINGS[f"service_q0_{tier}"] = benchmark.stats.stats.mean
    if tier == "compiled":
        _gate("service_q0", SERVICE_Q0_MIN_SPEEDUP, benchmark)


@pytest.mark.parametrize("tier", ["interpreted", "compiled"])
def test_prepared_parameterised_tiers(benchmark, gs_small, tier):
    service = QueryService(
        gs_small.database,
        gs.access_schema(n0=gs_small.n0),
        gs.views(),
        codegen=(tier == "compiled"),
        codegen_warmup=0,
    )
    prepared = service.prepare(
        parse_query('Q(m, k) :- movie(m, mn, :studio, "2014"), rating(m, k)')
    )
    studios = sorted(
        {row[2] for row in gs_small.database.relation("movie").tuples}
    )[:8]
    warm = [prepared.execute(studio=s) for s in studios]
    assert {a.execution_tier for a in warm} == {tier}

    def run():
        return [prepared.execute(studio=s).rows for s in studios]

    rows = benchmark(run)
    assert rows == [a.rows for a in warm]
    benchmark.extra_info["bindings_per_round"] = len(studios)
    _TIMINGS[f"prepared_{tier}"] = benchmark.stats.stats.mean
    if tier == "compiled":
        interpreted = _TIMINGS.get("prepared_interpreted")
        if interpreted:
            benchmark.extra_info["codegen_speedup"] = round(
                interpreted / benchmark.stats.stats.mean, 1
            )
