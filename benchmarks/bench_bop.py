"""E3 — Theorem 3.4: the bounded output problem (coNP) and its PTIME fragments.

Paper results reproduced in shape:

* BOP is coNP-complete for CQ — the exact procedure sweeps element queries,
  whose number grows super-exponentially with the number of query variables;
  the 3SAT gadget of the hardness proof is the worst case (its answer tracks
  unsatisfiability);
* the sufficient ``cov``-based check (⇐ direction of Lemma 3.6) and the
  FD-chase path stay polynomial; they decide the favourable instances
  instantly, which is what makes the conformance checks of Section 2 usable.

Measured here: runtime of ``has_bounded_output`` on the 3SAT gadget for
formulas of growing size, versus the PTIME covered-variable computation on
anchored chain queries of growing length.
"""

from __future__ import annotations

import pytest

from repro.algebra.atoms import RelationAtom
from repro.algebra.cq import ConjunctiveQuery
from repro.algebra.schema import schema_from_spec
from repro.algebra.terms import Constant, Variable
from repro.core.access import AccessConstraint, AccessSchema
from repro.core.bounded_output import covered_variables, has_bounded_output
from repro.core.element_queries import ElementQueryBudget, element_queries
from repro.workloads import reductions as red

CHAIN_SCHEMA = schema_from_spec({"R": ("a", "b")})
CHAIN_ACCESS = AccessSchema((AccessConstraint("R", ("a",), ("b",), 2),))


def chain_query(length: int) -> ConjunctiveQuery:
    variables = [Variable(f"v{i}") for i in range(length + 1)]
    atoms = [RelationAtom("R", (variables[i], variables[i + 1])) for i in range(length)]
    anchored = [RelationAtom("R", (Constant(0), variables[0]))] + atoms
    return ConjunctiveQuery(head=(variables[-1],), atoms=tuple(anchored), name=f"chain{length}")


@pytest.mark.parametrize("length", [2, 4, 8, 16])
def test_cov_fixpoint_is_polynomial(benchmark, length):
    query = chain_query(length)
    covered = benchmark(lambda: covered_variables(query, CHAIN_ACCESS, CHAIN_SCHEMA))
    benchmark.extra_info["chain_length"] = length
    benchmark.extra_info["covered_variables"] = len(covered)
    assert len(covered) == length + 1


@pytest.mark.parametrize("length", [2, 4, 8, 16])
def test_quick_bounded_output_check_is_polynomial(benchmark, length):
    query = chain_query(length)
    bounded = benchmark(lambda: has_bounded_output(query, CHAIN_ACCESS, CHAIN_SCHEMA))
    benchmark.extra_info["chain_length"] = length
    assert bounded


@pytest.mark.parametrize(
    "label, phi",
    [
        ("1var_1clause", red.formula(1, [[(0, False)]])),
        ("1var_2clauses_unsat", red.unsatisfiable_example()),
        ("2var_2clauses_sat", red.satisfiable_example()),
    ],
)
def test_bop_gadget_exact_decision(benchmark, label, phi):
    """The coNP gadget: cost explodes with the number of gadget variables."""
    instance = red.bop_reduction(phi)
    budget = ElementQueryBudget(max_partitions=5_000_000, max_element_queries=1_000_000)

    def run():
        return has_bounded_output(instance.query, instance.access_schema, instance.schema, budget)

    bounded = benchmark.pedantic(run, rounds=1, iterations=1)
    benchmark.extra_info["formula"] = label
    benchmark.extra_info["query_variables"] = len(instance.query.variables)
    benchmark.extra_info["bounded"] = bounded
    assert bounded == instance.expected_bounded


@pytest.mark.parametrize("variables", [2, 3, 4])
def test_element_query_enumeration_blowup(benchmark, variables):
    """The raw source of the exponential cost: the number of element queries."""
    vs = [Variable(f"v{i}") for i in range(variables)]
    atoms = tuple(RelationAtom("R", (vs[i], vs[(i + 1) % variables])) for i in range(variables))
    query = ConjunctiveQuery(head=(vs[0],), atoms=atoms, name=f"cycle{variables}")
    budget = ElementQueryBudget(max_partitions=2_000_000, max_element_queries=500_000)

    result = benchmark(lambda: element_queries(query, CHAIN_ACCESS, CHAIN_SCHEMA, budget))
    benchmark.extra_info["query_variables"] = variables
    benchmark.extra_info["element_queries"] = len(result)
