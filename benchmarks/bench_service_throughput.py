"""E-service — repeated-query throughput of the unified QueryService.

The serving-layer claim behind the API redesign: for the repeated-query
traffic a production deployment sees, planning (homomorphism search,
equivalence and conformance checks) dominates per-call latency, so the LRU
plan cache — which serves alpha-equivalent repeats without re-planning —
should yield a large speed-up; and the in-memory executor should beat the
SQLite backend on small bounded plans (per-statement overhead) while both
return identical rows.

Measured here on the Graph Search workload: (a) a repeated-query mix with
the plan cache on vs. off, (b) the same bounded query on the in-memory vs.
the SQLite backend, and (c) batch execution through ``query_many``.
"""

from __future__ import annotations

import pytest

from repro.engine.service import QueryService
from repro.workloads import graph_search as gs


def _service(instance, **kwargs) -> QueryService:
    return QueryService(
        instance.database, gs.access_schema(n0=instance.n0), gs.views(), **kwargs
    )


def _query_mix() -> list:
    # Three distinct queries, asked round-robin: every round after the first
    # is pure cache hits when the cache is enabled.
    q0 = gs.query_q0()
    by_studio = (
        "Q(mid) :- movie(mid, t, 'Universal', '2014'), rating(mid, 5)"
    )
    by_year = "Q(mid) :- movie(mid, t, 'Universal', '2013'), rating(mid, 4)"
    return [q0, by_studio, by_year] * 4


@pytest.fixture(scope="module")
def gs_instance_small(gs_small):
    return gs_small


@pytest.mark.parametrize("cache", ["cache_on", "cache_off"])
def test_repeated_queries_plan_cache(benchmark, gs_instance_small, cache):
    service = _service(
        gs_instance_small, plan_cache_size=128 if cache == "cache_on" else 0
    )
    mix = _query_mix()
    service.query_many(mix, max_workers=1)  # warm the cache (when enabled)

    def run():
        return service.query_many(mix, max_workers=1)

    answers = benchmark(run)
    snapshot = service.stats.snapshot()
    benchmark.extra_info["queries_per_round"] = len(mix)
    benchmark.extra_info["cache_hit_rate"] = round(snapshot.cache_hit_rate, 3)
    benchmark.extra_info["bounded_rate"] = round(snapshot.bounded_rate, 3)
    assert all(a.used_bounded_plan for a in answers)
    if cache == "cache_on":
        assert all(a.cache_hit for a in answers)
    else:
        assert not any(a.cache_hit for a in answers)


@pytest.mark.parametrize("backend", ["memory", "sqlite"])
def test_bounded_query_backend(benchmark, gs_instance_small, backend):
    service = _service(gs_instance_small)
    q0 = gs.query_q0()
    reference = service.query(q0, backend="memory").rows
    service.query(q0, backend=backend)  # plan + (for sqlite) load once

    def run():
        return service.query(q0, backend=backend)

    answer = benchmark(run)
    benchmark.extra_info["rows"] = len(answer.rows)
    benchmark.extra_info["tuples_fetched"] = answer.tuples_fetched
    assert answer.rows == reference


def test_query_many_thread_pool(benchmark, gs_instance_small):
    service = _service(gs_instance_small)
    mix = _query_mix()
    service.query_many(mix, max_workers=1)

    def run():
        return service.query_many(mix, max_workers=4)

    answers = benchmark(run)
    benchmark.extra_info["latency_p50_ms"] = round(
        service.stats.snapshot().latency_p50 * 1e3, 3
    )
    assert len(answers) == len(mix)
