"""E4 — Section 4: acyclic CQ, FD-only constraints and the tractability frontier.

Paper results reproduced in shape (Theorems 4.1/4.2, Corollary 4.4,
Proposition 4.5):

* with FD-only access schemas, A-containment of ACQ reduces to a chase plus a
  single containment test — polynomial, and visibly flat as queries grow;
* with general cardinality constraints the exact procedures fall back to the
  element-query sweep — visibly exponential in the number of variables;
* the Proposition 4.5 gadget (VBRP with FD-only A, M = 1) is decided exactly
  and its cost is driven by a single NP containment test.
"""

from __future__ import annotations

import pytest

from repro.algebra.atoms import RelationAtom
from repro.algebra.cq import ConjunctiveQuery
from repro.algebra.schema import schema_from_spec
from repro.algebra.terms import Constant, Variable
from repro.core.access import AccessConstraint, AccessSchema
from repro.core.chase import chase_with_fds
from repro.core.equivalence import a_contained_in
from repro.core.vbrp import decide_vbrp
from repro.workloads import reductions as red

SCHEMA = schema_from_spec({"R": ("a", "b")})
FDS = AccessSchema((AccessConstraint("R", ("a",), ("b",), 1),))
CARD2 = AccessSchema((AccessConstraint("R", ("a",), ("b",), 2),))


def star_query(branches: int) -> ConjunctiveQuery:
    """R(c, y1), ..., R(c, yk): an ACQ whose FD-chase collapses all branches."""
    variables = [Variable(f"y{i}") for i in range(branches)]
    atoms = tuple(RelationAtom("R", (Constant("c"), v)) for v in variables)
    return ConjunctiveQuery(head=tuple(variables), atoms=atoms, name=f"star{branches}")


def collapsed_query(branches: int) -> ConjunctiveQuery:
    y = Variable("y0")
    return ConjunctiveQuery(
        head=tuple(y for _ in range(branches)),
        atoms=(RelationAtom("R", (Constant("c"), y)),),
        name=f"collapsed{branches}",
    )


@pytest.mark.parametrize("branches", [2, 4, 8, 12])
def test_fd_chase_is_polynomial(benchmark, branches):
    query = star_query(branches)
    chased = benchmark(lambda: chase_with_fds(query, FDS, SCHEMA))
    benchmark.extra_info["branches"] = branches
    assert chased is not None and len(chased.normalize().atoms) == 1


@pytest.mark.parametrize("branches", [2, 4, 8])
def test_a_containment_fd_only_fast_path(benchmark, branches):
    """Corollary 4.4: ACQ containment under FDs via the chase (PTIME)."""
    left, right = star_query(branches), collapsed_query(branches)
    holds = benchmark(lambda: a_contained_in(left, right, FDS, SCHEMA))
    benchmark.extra_info["branches"] = branches
    benchmark.extra_info["access_schema"] = "FD-only"
    assert holds


@pytest.mark.parametrize("branches", [2, 3, 4, 5])
def test_a_containment_general_constraints_element_sweep(benchmark, branches):
    """The same question under a non-FD bound needs the exponential sweep."""
    left, right = star_query(branches), collapsed_query(branches)

    holds = benchmark.pedantic(
        lambda: a_contained_in(left, right, CARD2, SCHEMA), rounds=1, iterations=1
    )
    benchmark.extra_info["branches"] = branches
    benchmark.extra_info["access_schema"] = "R(a->b,2)"
    # With bound 2 the branches need not all collapse, so containment fails
    # as soon as there are two branches.
    assert holds == (branches < 2)


@pytest.mark.parametrize(
    "label, phi",
    [("sat", red.satisfiable_example()), ("unsat", red.unsatisfiable_example())],
)
def test_prop45_gadget_decision(benchmark, label, phi):
    """Proposition 4.5: VBRP(CQ), FD-only A, fixed M = 1 — NP-complete."""
    instance = red.prop45_reduction(phi)

    def run():
        return decide_vbrp(
            instance.query, instance.views, instance.access_schema, instance.schema,
            max_size=1, language="CQ",
        )

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    benchmark.extra_info["formula"] = label
    benchmark.extra_info["query_atoms"] = len(instance.query.atoms)
    assert result.has_rewriting == instance.expected_rewriting
