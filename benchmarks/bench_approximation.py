"""E10 — approximate answering under a resource ratio α (Section 8 extension).

The sweep reproduces the expected shape of data-driven approximation: the
accessed fragment never exceeds ``α·|D|``, precision stays at 1 (monotone
queries over a sub-instance), and recall grows with α — quickly for queries
the access constraints can anchor, slowly for scan-bound analytics.
"""

from __future__ import annotations

import pytest

from repro.algebra.evaluation import evaluate_cq
from repro.core.approximation import (
    answer_coverage,
    answer_precision,
    approximate_answer,
)
from repro.workloads import cdr, graph_search as gs

ALPHAS = (0.02, 0.1, 0.5, 1.0)


@pytest.mark.parametrize("alpha", ALPHAS)
def test_graph_search_q0_accuracy_vs_alpha(benchmark, gs_small, alpha):
    query = gs.query_q0()
    exact = evaluate_cq(query, gs_small.database.facts)

    answer = benchmark(
        lambda: approximate_answer(query, gs_small.database, gs.access_schema(), alpha)
    )
    benchmark.extra_info["alpha"] = alpha
    benchmark.extra_info["budget"] = answer.budget
    benchmark.extra_info["tuples_accessed"] = answer.tuples_accessed
    benchmark.extra_info["coverage"] = round(answer_coverage(answer.rows, exact), 2)
    assert answer.tuples_accessed <= answer.budget
    assert answer_precision(answer.rows, exact) == 1.0
    if alpha == 1.0:
        assert answer.rows == exact


@pytest.mark.parametrize("alpha", [0.1, 0.5])
def test_cdr_analytics_query_accuracy_vs_alpha(benchmark, cdr_instance, alpha):
    """An unanchored analytics query: approximation stays sound but recall is low."""
    query = cdr.workload(cdr_instance, count=18, seed=31)[-1]
    exact = evaluate_cq(query, cdr_instance.database.facts)

    answer = benchmark.pedantic(
        lambda: approximate_answer(query, cdr_instance.database, cdr.access_schema(), alpha),
        rounds=1,
        iterations=1,
    )
    benchmark.extra_info["alpha"] = alpha
    benchmark.extra_info["coverage"] = round(answer_coverage(answer.rows, exact), 2)
    benchmark.extra_info["exact_answers"] = len(exact)
    assert answer.tuples_accessed <= answer.budget
    assert answer_precision(answer.rows, exact) == 1.0
