"""E7 — the CDR case study: ">90% of the queries improved by 25x to 5 orders
of magnitude".

The proprietary call-detail-record data is replaced by the synthetic CDR
workload (see DESIGN.md, substitutions table).  The benchmark answers the
18-query workload twice — through the bounded-rewriting engine and through
the full-scan baseline — and records the fraction of queries that were served
by a bounded plan together with the distribution of access ratios, which is
the quantity behind the paper's reported speed-ups.
"""

from __future__ import annotations

import statistics

import pytest

from repro.engine.session import BoundedEngine
from repro.workloads import cdr


@pytest.fixture(scope="module")
def engine(cdr_instance):
    return BoundedEngine(cdr_instance.database, cdr.access_schema(), cdr.views())


@pytest.fixture(scope="module")
def workload(cdr_instance):
    return cdr.workload(cdr_instance, count=18, seed=31)


def test_workload_through_bounded_engine(benchmark, engine, workload, cdr_instance):
    def run():
        return [engine.answer(query) for query in workload]

    answers = benchmark.pedantic(run, rounds=1, iterations=1)
    improved = [a for a in answers if a.used_bounded_plan]
    ratios = []
    for query, answer in zip(workload, answers):
        if answer.used_bounded_plan:
            scanned = engine.baseline(query).tuples_scanned
            ratios.append(scanned / max(answer.tuples_fetched, 1))
    benchmark.extra_info["database_tuples"] = cdr_instance.database.size
    benchmark.extra_info["queries"] = len(workload)
    benchmark.extra_info["improved_fraction"] = round(len(improved) / len(workload), 2)
    if ratios:
        benchmark.extra_info["access_ratio_min"] = round(min(ratios), 1)
        benchmark.extra_info["access_ratio_median"] = round(statistics.median(ratios), 1)
        benchmark.extra_info["access_ratio_max"] = round(max(ratios), 1)
    # The paper reports > 90% of the workload improved; the synthetic workload
    # is designed with the same bounded/unbounded mix (16 of 18 templates).
    assert len(improved) / len(workload) >= 0.8


def test_workload_through_full_scans(benchmark, engine, workload):
    def run():
        return [engine.baseline(query) for query in workload]

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    benchmark.extra_info["total_tuples_scanned"] = sum(r.tuples_scanned for r in results)


def test_single_bounded_lookup_latency(benchmark, engine, workload):
    """Per-query latency of a representative bounded query (plan + execute)."""
    bounded_queries = [q for q in workload if engine.answer(q).used_bounded_plan]
    query = bounded_queries[0]
    answer = benchmark(lambda: engine.answer(query))
    benchmark.extra_info["query"] = query.name
    benchmark.extra_info["tuples_fetched"] = answer.tuples_fetched
    assert answer.used_bounded_plan
