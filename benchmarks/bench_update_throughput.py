"""E10 — update throughput of the first-class write path (tuples/sec).

Mixed insert/delete batches stream through ``QueryService.apply`` — the
compiled-delta maintenance kernel (one delta plan per view body atom, counting
multisets where sound, DRed fallback otherwise, all riding one netted
:class:`~repro.storage.deltas.DeltaStream` per batch) — and are contrasted
with the two alternatives it replaced:

* the **per-tuple DRed** path (re-derive an anchored delta query through the
  generic CQ evaluator for every single update — the pre-refactor
  ``IncrementalViewCache`` algorithm, re-implemented below as the baseline);
* **full recomputation** of every view after the batch (what a cache without
  maintenance has to do before serving the next query).

Measured on the graph-search and CDR workloads; ``extra_info`` records
updates/sec and the speedup of the compiled path, which the acceptance
criterion pins at ≥ 3x over per-tuple DRed on 1000-update graph-search
batches.  Run as any other benchmark module (same pytest-benchmark JSON shape
as ``bench_service_throughput.py``).
"""

from __future__ import annotations

import os

import pytest

from repro.algebra.atoms import EqualityAtom
from repro.algebra.evaluation import evaluate_cq, evaluate_ucq
from repro.algebra.terms import Constant
from repro.engine.service import QueryService, ViewMaintainer
from repro.storage.updates import Insertion, random_update_batch
from repro.workloads import cdr, graph_search as gs

#: Mean seconds per batch, shared across tests for the speedup accounting.
_TIMINGS: dict[str, float] = {}

GS_BATCH = 1_000
CDR_BATCH = 400


# --------------------------------------------------------------------------- #
# The pre-refactor baseline: one anchored delta query per tuple, per view atom
# --------------------------------------------------------------------------- #


def _bind_atom_to_tuple(disjunct, atom_index, row):
    atom = disjunct.atoms[atom_index]
    if len(atom.terms) != len(row):
        return None
    equalities = []
    for term, value in zip(atom.terms, row):
        if isinstance(term, Constant):
            if term.value != value:
                return None
        else:
            equalities.append(EqualityAtom(term, Constant(value)))
    return disjunct.with_extra_equalities(equalities, name=f"{disjunct.name}_delta")


def _bind_head_to_row(disjunct, row):
    if len(disjunct.head) != len(row):
        return None
    equalities = []
    for term, value in zip(disjunct.head, row):
        if isinstance(term, Constant):
            if term.value != value:
                return None
        else:
            equalities.append(EqualityAtom(term, Constant(value)))
    return disjunct.with_extra_equalities(equalities, name=f"{disjunct.name}_support")


class PerTupleDRedCache:
    """The historical per-tuple maintenance algorithm, kept for comparison.

    Every update re-derives a specialised delta CQ through the generic
    evaluator (per view, per matching body atom); deletions additionally
    head-match the cached rows and re-derive survivors.  This is what
    ``repro.engine.maintenance.IncrementalViewCache`` did before the
    compiled-delta kernel replaced it.
    """

    def __init__(self, views, database):
        self.database = database
        self.views = list(views)
        self._definitions = {
            view.name: tuple(d.normalize() for d in view.as_ucq().disjuncts)
            for view in self.views
        }
        self._rows = {
            view.name: set(evaluate_ucq(view.as_ucq(), database))
            for view in self.views
        }

    def apply_batch(self, batch) -> None:
        for update in batch:
            relation = self.database.relation(update.relation)
            if isinstance(update, Insertion):
                if update.row in relation:
                    continue
                relation.add(update.row)
                self._apply_insertion(update)
            else:
                if not relation.discard(update.row):
                    continue
                self._apply_deletion(update)

    def _apply_insertion(self, update) -> None:
        for view in self.views:
            current = self._rows[view.name]
            for disjunct in self._definitions[view.name]:
                for index, atom in enumerate(disjunct.atoms):
                    if atom.relation != update.relation:
                        continue
                    specialized = _bind_atom_to_tuple(disjunct, index, update.row)
                    if specialized is None:
                        continue
                    current.update(evaluate_cq(specialized, self.database))

    def _apply_deletion(self, update) -> None:
        for view in self.views:
            current = self._rows[view.name]
            affected = set()
            for disjunct in self._definitions[view.name]:
                for index, atom in enumerate(disjunct.atoms):
                    if atom.relation != update.relation:
                        continue
                    specialized = _bind_atom_to_tuple(disjunct, index, update.row)
                    if specialized is None or not specialized.is_satisfiable():
                        continue
                    head = specialized.normalize().head
                    for row in current:
                        if all(
                            not isinstance(t, Constant) or t.value == v
                            for t, v in zip(head, row)
                        ):
                            affected.add(row)
            removed = set()
            for row in affected:
                if not self._has_support(view.name, row):
                    removed.add(row)
            current.difference_update(removed)

    def _has_support(self, view_name, row) -> bool:
        for disjunct in self._definitions[view_name]:
            support = _bind_head_to_row(disjunct, row)
            if support is not None and evaluate_cq(support, self.database):
                return True
        return False

    def verify(self) -> bool:
        return all(
            frozenset(self._rows[view.name])
            == frozenset(evaluate_ucq(view.as_ucq(), self.database))
            for view in self.views
        )


# --------------------------------------------------------------------------- #
# Graph search: compiled deltas vs per-tuple DRed vs full recomputation
# --------------------------------------------------------------------------- #


@pytest.fixture(scope="module")
def gs_write_setup(gs_small):
    database = gs_small.database.copy()
    batch = random_update_batch(
        database, size=GS_BATCH, seed=83, access_schema=gs.access_schema()
    )
    return database, batch


def test_gs_compiled_delta_batch(benchmark, gs_write_setup):
    database, batch = gs_write_setup
    working = database.copy()
    service = QueryService(working, gs.access_schema(), gs.views())
    inverse = batch.inverted()
    service.apply(batch)  # warm-up: compiles the delta programs once
    service.apply(inverse)

    def run():
        report = service.apply(batch)
        service.apply(inverse)  # restore, so every round sees the same state
        return report

    report = benchmark.pedantic(run, rounds=3, iterations=1)
    mean = benchmark.stats.stats.mean
    _TIMINGS["gs_compiled"] = mean
    benchmark.extra_info["updates_per_batch"] = len(batch)
    benchmark.extra_info["updates_per_second"] = round(2 * len(batch) / mean)
    benchmark.extra_info["delta_queries"] = report.stats.delta_queries
    benchmark.extra_info["support_checks"] = report.stats.support_checks
    benchmark.extra_info["maintenance_tiers"] = dict(report.stats.tier_runs)
    assert service.maintainer.verify()


def test_gs_per_tuple_dred_baseline(benchmark, gs_write_setup):
    database, batch = gs_write_setup
    working = database.copy()
    cache = PerTupleDRedCache(gs.views(), working)
    inverse = batch.inverted()

    def run():
        cache.apply_batch(batch)
        cache.apply_batch(inverse)

    benchmark.pedantic(run, rounds=1, iterations=1)
    mean = benchmark.stats.stats.mean
    benchmark.extra_info["updates_per_batch"] = len(batch)
    benchmark.extra_info["updates_per_second"] = round(2 * len(batch) / mean)
    assert cache.verify()
    compiled = _TIMINGS.get("gs_compiled")
    if compiled:
        speedup = mean / compiled
        benchmark.extra_info["compiled_delta_speedup"] = round(speedup, 1)
        # The acceptance bar for the write-path refactor (locally ~7-8x).
        # One-round pedantic timings on loaded shared CI runners are noisy,
        # so smoke runs (BENCH_SMOKE=1) record the speedup without failing.
        if os.environ.get("BENCH_SMOKE") != "1":
            assert speedup >= 3.0, f"compiled delta path only {speedup:.1f}x faster"


def test_gs_maintenance_tier_speedup(benchmark, gs_write_setup):
    """Generated kernels vs interpreted delta rules, maintenance time only.

    Whole-batch ``service.apply`` timings dilute the comparison — the storage
    apply dominates — so both maintainers observe the *same* committed
    streams and only their ``apply_stream`` calls are timed.  The compiled
    tier must be ≥ 2x faster on the 1000-update graph-search batches.
    """
    import time as _time

    database, batch = gs_write_setup
    working = database.copy()
    interpreted = ViewMaintainer(gs.views(), working, codegen=False)
    compiled = ViewMaintainer(gs.views(), working, codegen=True, codegen_warmup=0)
    inverse = batch.inverted()
    timings = {"interpreted": 0.0, "compiled": 0.0}

    def round_trip() -> None:
        for updates in (batch, inverse):
            stream = working.apply(updates)
            for name, maintainer in (
                ("interpreted", interpreted),
                ("compiled", compiled),
            ):
                start = _time.perf_counter()
                maintainer.apply_stream(stream)
                timings[name] += _time.perf_counter() - start

    round_trip()  # warm-up: compiles the kernels (warmup=0) outside the timing
    timings["interpreted"] = timings["compiled"] = 0.0

    benchmark.pedantic(round_trip, rounds=5, iterations=1)
    assert interpreted.verify() and compiled.verify()
    for view in gs.views():
        assert compiled.explain(view.name).tier == "compiled"
        assert compiled.rows(view.name) == interpreted.rows(view.name)
    speedup = timings["interpreted"] / timings["compiled"]
    per_round_updates = 2 * len(batch)
    benchmark.extra_info["updates_per_batch"] = len(batch)
    benchmark.extra_info["interpreted_updates_per_second"] = round(
        5 * per_round_updates / timings["interpreted"]
    )
    benchmark.extra_info["compiled_updates_per_second"] = round(
        5 * per_round_updates / timings["compiled"]
    )
    benchmark.extra_info["maintenance_tier_speedup"] = round(speedup, 1)
    # Smoke runs on loaded CI runners record the speedup without failing.
    if os.environ.get("BENCH_SMOKE") != "1":
        assert speedup >= 2.0, f"compiled maintenance only {speedup:.1f}x faster"


def test_gs_full_recompute_baseline(benchmark, gs_write_setup):
    database, batch = gs_write_setup
    working = database.copy()
    # Deliberately NOT subscribed: this baseline pays no incremental cost,
    # only the apply plus a from-scratch re-evaluation of every view.
    maintainer = ViewMaintainer(gs.views(), working)
    inverse = batch.inverted()

    def run():
        # A cache without maintenance: apply the data change, then recompute
        # every view before the next query can be served.
        working.apply(batch.updates)
        maintainer.recompute()
        working.apply(inverse.updates)
        maintainer.recompute()

    benchmark.pedantic(run, rounds=1, iterations=1)
    mean = benchmark.stats.stats.mean
    benchmark.extra_info["updates_per_second"] = round(2 * len(batch) / mean)
    benchmark.extra_info["database_tuples"] = working.size


# --------------------------------------------------------------------------- #
# CDR: compiled deltas on the key/cap-constrained workload
# --------------------------------------------------------------------------- #


def test_cdr_compiled_delta_batch(benchmark, cdr_instance):
    working = cdr_instance.database.copy()
    service = QueryService(working, cdr.access_schema(), cdr.views())
    batch = random_update_batch(
        working, size=CDR_BATCH, seed=89, access_schema=cdr.access_schema()
    )
    inverse = batch.inverted()
    service.apply(batch)
    service.apply(inverse)

    def run():
        report = service.apply(batch)
        service.apply(inverse)
        return report

    report = benchmark.pedantic(run, rounds=3, iterations=1)
    mean = benchmark.stats.stats.mean
    benchmark.extra_info["updates_per_batch"] = len(batch)
    benchmark.extra_info["updates_per_second"] = round(2 * len(batch) / mean)
    benchmark.extra_info["view_modes"] = dict(service.maintainer.modes)
    benchmark.extra_info["delta_queries"] = report.stats.delta_queries
    benchmark.extra_info["maintenance_tiers"] = dict(report.stats.tier_runs)
    assert service.maintainer.verify()


def test_cdr_full_recompute_baseline(benchmark, cdr_instance):
    working = cdr_instance.database.copy()
    maintainer = ViewMaintainer(cdr.views(), working)  # not subscribed
    batch = random_update_batch(
        working, size=CDR_BATCH, seed=89, access_schema=cdr.access_schema()
    )
    inverse = batch.inverted()

    def run():
        working.apply(batch.updates)
        maintainer.recompute()
        working.apply(inverse.updates)
        maintainer.recompute()

    benchmark.pedantic(run, rounds=1, iterations=1)
    mean = benchmark.stats.stats.mean
    benchmark.extra_info["updates_per_second"] = round(2 * len(batch) / mean)
