"""E5 — Section 5 / Figure 3: the effective syntax is checkable in PTIME.

Paper results reproduced in shape (Theorems 5.1 and 5.2):

* checking whether an FO query is topped by (R, V, A, M) — and generating its
  bounded plan — takes time polynomial in the query size; the benchmark scales
  the query (chains of value-propagating conjuncts, unions, negations) and the
  runtime grows smoothly, in stark contrast with the exact VBRP procedures of
  E2;
* checking the size-bounded syntax is linear-time pattern matching.

The coverage fraction recorded in ``extra_info`` plays the role of the
paper's observation that topped queries capture the practically relevant
FO queries with a bounded rewriting.
"""

from __future__ import annotations

import pytest

from repro.algebra.fo import FOQuery, atom, conj, disj, eq, exists, neg
from repro.algebra.schema import schema_from_spec
from repro.algebra.terms import Constant, Variable
from repro.algebra.views import ViewSet
from repro.core.access import AccessConstraint, AccessSchema
from repro.core.size_bounded import is_size_bounded, make_size_bounded
from repro.core.topped import analyze_topped, is_topped, topped_plan

SCHEMA = schema_from_spec({"R": ("a", "b"), "T": ("b", "c")})
ACCESS = AccessSchema(
    (
        AccessConstraint("R", ("a",), ("b",), 5),
        AccessConstraint("T", ("b",), ("c",), 5),
    )
)
NO_VIEWS = ViewSet(())


def chain_fo_query(length: int) -> tuple[FOQuery, tuple[Variable, ...]]:
    """R(1, y1) ∧ T(y1, y2) ∧ R(y2, y3) ∧ ... — value propagation of depth `length`."""
    variables = [Variable(f"y{i}") for i in range(length + 1)]
    conjuncts: list[FOQuery] = [atom("R", Constant(1), variables[0])]
    for index in range(length):
        relation = "T" if index % 2 == 0 else "R"
        conjuncts.append(atom(relation, variables[index], variables[index + 1]))
    return conj(*conjuncts), (variables[-1],)


@pytest.mark.parametrize("length", [2, 4, 8, 12])
def test_is_topped_scales_polynomially(benchmark, length):
    query, _head = chain_fo_query(length)
    covered = benchmark(lambda: is_topped(query, SCHEMA, NO_VIEWS, ACCESS, max_size=10_000))
    benchmark.extra_info["query_atoms"] = query.size()
    assert covered


@pytest.mark.parametrize("length", [2, 4, 8])
def test_topped_plan_generation(benchmark, length):
    query, head = chain_fo_query(length)
    plan = benchmark(lambda: topped_plan(query, head, SCHEMA, NO_VIEWS, ACCESS))
    benchmark.extra_info["query_atoms"] = query.size()
    benchmark.extra_info["plan_size"] = plan.size()
    assert plan is not None


def test_topped_coverage_of_a_mixed_fo_workload(benchmark):
    """Fraction of a mixed FO workload accepted by the effective syntax."""
    y, z = Variable("y"), Variable("z")
    workload: list[tuple[FOQuery, bool]] = [
        (atom("R", Constant(1), y), True),
        (conj(atom("R", Constant(1), y), atom("T", y, z)), True),
        (conj(atom("R", Constant(1), y), neg(atom("T", y, Constant(5)))), True),
        (disj(atom("R", Constant(1), y), atom("R", Constant(2), y)), True),
        (exists([z], conj(atom("R", Constant(3), y), atom("T", y, z))), True),
        (atom("R", Variable("x"), y), False),          # unanchored
        (neg(atom("R", Constant(1), y)), False),        # bare negation
    ]

    def run():
        return [is_topped(q, SCHEMA, NO_VIEWS, ACCESS, max_size=100) for q, _ in workload]

    results = benchmark(run)
    expected = [e for _, e in workload]
    accepted = sum(results)
    benchmark.extra_info["workload_size"] = len(workload)
    benchmark.extra_info["accepted"] = accepted
    benchmark.extra_info["coverage"] = round(accepted / len(workload), 2)
    assert results == expected


@pytest.mark.parametrize("bound", [1, 2, 4, 8])
def test_size_bounded_recognition_is_fast(benchmark, bound):
    x, y = Variable("x"), Variable("y")
    query = make_size_bounded(exists([y], atom("R", x, y)), head=(x,), bound=bound)
    recognised = benchmark(lambda: is_size_bounded(query, head=(x,)))
    benchmark.extra_info["bound_K"] = bound
    benchmark.extra_info["query_atoms"] = query.size()
    assert recognised


def test_analysis_size_estimate_matches_figure3_scale(benchmark):
    """The Example 5.3 query: analysis succeeds and the size estimate is small."""
    from repro.algebra import ConjunctiveQuery, RelationAtom, View

    x, y, z, w = Variable("x"), Variable("y"), Variable("z"), Variable("w")
    schema = schema_from_spec({"R": ("A", "B"), "T": ("C", "E")})
    access = AccessSchema(
        (AccessConstraint("R", ("A",), ("B",), 5), AccessConstraint("T", ("C",), ("E",), 5))
    )
    v3 = View(
        "V3",
        ConjunctiveQuery(
            head=(x, y), atoms=(RelationAtom("R", (y, y)), RelationAtom("T", (x, y))), name="V3"
        ),
    )
    q4 = exists([x, y], conj(atom("V3", x, y), eq(x, 1), atom("R", y, z)))
    q3 = conj(q4, neg(exists([w], atom("R", z, w))))

    analysis = benchmark(lambda: analyze_topped(q3, schema, ViewSet((v3,)), access))
    benchmark.extra_info["covq"] = analysis.covered
    benchmark.extra_info["size_estimate"] = analysis.size
    assert analysis.covered
    assert analysis.size <= 20  # the paper's counting gives 13
