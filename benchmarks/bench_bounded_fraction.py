"""E8 — "77% of randomly generated conjunctive queries are boundedly evaluable
under a couple of hundred access constraints".

The introduction quotes experiments where a large fraction of random CQs
admit bounded evaluation/rewriting once enough access constraints are
available, and the fraction grows with the constraint set.  This benchmark
mines access constraints from a synthetic CDR database at two granularities
(few vs. many constraints), generates a random CQ workload and measures which
fraction of it the plan builder can serve with a bounded plan.
"""

from __future__ import annotations

import pytest

from repro.engine.optimizer import build_bounded_plan
from repro.errors import UnsupportedQueryError
from repro.storage.statistics import discover_access_constraints
from repro.workloads import cdr
from repro.workloads.random_cq import RandomCQConfig, random_workload


@pytest.fixture(scope="module")
def database(cdr_instance):
    return cdr_instance.database


@pytest.fixture(scope="module")
def workload(database):
    config = RandomCQConfig(min_atoms=1, max_atoms=3, constant_probability=0.45, seed=77)
    return random_workload(cdr.schema(), database, 40, config)


@pytest.mark.parametrize(
    "label, max_x, max_bound",
    [("few_constraints", 1, 5), ("many_constraints", 2, 60)],
)
def test_bounded_fraction_of_random_cqs(benchmark, database, workload, label, max_x, max_bound):
    access = discover_access_constraints(database, max_x_size=max_x, max_bound=max_bound)
    views = cdr.views()
    schema = cdr.schema()

    def run():
        bounded = 0
        attempted = 0
        for query in workload:
            try:
                outcome = build_bounded_plan(query, views, access, schema)
            except UnsupportedQueryError:
                continue
            attempted += 1
            if outcome.found:
                bounded += 1
        return bounded, attempted

    bounded, attempted = benchmark.pedantic(run, rounds=1, iterations=1)
    benchmark.extra_info["setting"] = label
    benchmark.extra_info["access_constraints"] = len(access)
    benchmark.extra_info["queries"] = attempted
    benchmark.extra_info["bounded_fraction"] = round(bounded / max(attempted, 1), 2)
    assert attempted > 0


def test_fraction_grows_with_more_constraints(database, workload):
    """Non-benchmark sanity check of the trend the paper reports."""
    schema, views = cdr.schema(), cdr.views()

    def fraction(access):
        bounded = attempted = 0
        for query in workload:
            try:
                outcome = build_bounded_plan(query, views, access, schema)
            except UnsupportedQueryError:
                continue
            attempted += 1
            bounded += outcome.found
        return bounded / max(attempted, 1)

    few = discover_access_constraints(database, max_x_size=1, max_bound=5)
    many = discover_access_constraints(database, max_x_size=2, max_bound=60)
    assert len(many) > len(few)
    assert fraction(many) >= fraction(few)
