"""E1 — Figure 1 / Examples 1.1, 2.2, 2.3: scale independence of plan ξ0.

Paper claim: Q0 can be answered by accessing the cached view V1 plus at most
2·N0 tuples of D, no matter how big D grows, while a conventional engine
reads the person/like/movie/rating relations in full (the Facebook-sized
numbers quoted in the introduction: 470,000 tuples vs. billions).

Measured here: execution time and tuples fetched of the bounded plan versus
the full-scan baseline, on a small and a 10x larger Graph Search instance.
The fetched count must stay flat; the scanned count must grow with |D|.
"""

from __future__ import annotations

import pytest

from repro.engine.session import BoundedEngine
from repro.workloads import graph_search as gs


def _engine(instance):
    return BoundedEngine(instance.database, gs.access_schema(), gs.views())


@pytest.fixture(scope="module")
def engines(gs_small, gs_large):
    return {"small": (_engine(gs_small), gs_small), "large": (_engine(gs_large), gs_large)}


@pytest.mark.parametrize("scale", ["small", "large"])
def test_bounded_plan_execution(benchmark, engines, scale):
    engine, instance = engines[scale]
    plan = gs.figure1_plan()

    def run():
        return engine.execute_plan(plan)

    rows, stats = benchmark(run)
    benchmark.extra_info["database_tuples"] = instance.database.size
    benchmark.extra_info["tuples_fetched"] = stats.tuples_fetched
    benchmark.extra_info["fetch_bound_2N0"] = 2 * instance.n0
    benchmark.extra_info["answers"] = len(rows)
    assert stats.tuples_fetched <= 2 * instance.n0


@pytest.mark.parametrize("scale", ["small", "large"])
def test_full_scan_baseline(benchmark, engines, scale):
    engine, instance = engines[scale]
    q0 = gs.query_q0()

    def run():
        return engine.baseline(q0)

    result = benchmark(run)
    benchmark.extra_info["database_tuples"] = instance.database.size
    benchmark.extra_info["tuples_scanned"] = result.tuples_scanned
    assert result.tuples_scanned >= instance.database.size


@pytest.mark.parametrize("scale", ["small", "large"])
def test_engine_answer_q0_end_to_end(benchmark, engines, scale):
    """Plan construction + execution, the full user-facing path."""
    engine, instance = engines[scale]
    q0 = gs.query_q0()

    answer = benchmark(lambda: engine.answer(q0))
    benchmark.extra_info["used_bounded_plan"] = answer.used_bounded_plan
    benchmark.extra_info["tuples_fetched"] = answer.tuples_fetched
    benchmark.extra_info["access_ratio_vs_scan"] = round(
        engine.baseline(q0).tuples_scanned / max(answer.tuples_fetched, 1), 1
    )
    assert answer.used_bounded_plan
