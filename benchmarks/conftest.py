"""Shared fixtures for the benchmark harness.

Each ``bench_*.py`` module regenerates one table/figure-level artefact of the
paper (see DESIGN.md, "Experiment index", and EXPERIMENTS.md for the mapping
and the measured outcomes).  Benchmarks are sized to finish in seconds while
still exhibiting the asymptotic shapes the paper's results predict; the
`extra_info` attached to every benchmark records the quantities of interest
(tuples fetched vs. scanned, candidate-plan counts, coverage fractions, ...).
"""

from __future__ import annotations

import pytest

from repro.workloads import cdr, graph_search


@pytest.fixture(scope="session")
def gs_small():
    return graph_search.generate(num_persons=1_000, num_movies=500, seed=11)


@pytest.fixture(scope="session")
def gs_large():
    return graph_search.generate(num_persons=8_000, num_movies=2_000, seed=11)


@pytest.fixture(scope="session")
def cdr_instance():
    return cdr.generate(num_customers=400, num_days=5, seed=13)
