"""E11 — concurrent serving: snapshot-isolated sharded service vs one database.

A mixed read/write workload drives ``query_many`` rounds (24 queries across a
4-worker pool) interleaved with insert/delete batches, in three serving
configurations:

* **sharded, shard-pruned** — ``shards=4`` with
  ``retain_plans_on_write=True``: every query is single-shard routable, reads
  run against pinned MVCC snapshots, the writer thread applies batches
  *concurrently* with the readers, and cached plans survive the writes;
* **sharded, full fan-out** — the same service answering union queries whose
  disjunct keys hash to every partition, so execution must fan out and merge
  per-shard ``IOMeter`` readings;
* **unsharded baseline** — ``shards=None``: the pre-snapshot single-database
  service.  It serves from live indices, so writes must be serialised with
  the reads, and the default dependency eviction replans every distinct
  query after every batch.

The speedup of the shard-pruned configuration over the baseline is the
acceptance criterion for the concurrent-serving work (≥ 2x); rows and ``Dξ``
must be bit-identical between the sharded and unsharded services on the
settled states.  ``BENCH_SMOKE=1`` records the speedup without gating on it
(CI runners are noisy); the identity assertions always run.
"""

from __future__ import annotations

import os
import threading

import pytest

from repro.algebra.parser import parse_query
from repro.algebra.ucq import UnionQuery
from repro.engine.service import QueryService
from repro.storage.snapshots import shard_of
from repro.storage.updates import Insertion, UpdateBatch
from repro.workloads import graph_search as gs

#: Mean seconds per round, shared across tests for the speedup accounting.
_TIMINGS: dict[str, float] = {}

WORKERS = 4
SHARDS = 4
#: Two ``query_many`` bursts per round.
QUERIES_PER_ROUND = 24


@pytest.fixture(scope="module")
def instance():
    return gs.generate(num_persons=300, num_movies=200, seed=11)


def _service(instance, **kwargs) -> QueryService:
    return QueryService(
        instance.database.copy(),
        gs.access_schema(n0=instance.n0),
        gs.views(),
        **kwargs,
    )


def _pruned_mix(database) -> list:
    """Twelve distinct single-shard-routable queries (q0 + keyed lookups).

    Distinct queries make the eviction cost visible: after every write the
    baseline service replans all twelve, while the retaining sharded service
    replans none.
    """
    pairs = sorted({(row[2], row[3]) for row in database.relation("movie")})
    queries: list = [gs.query_q0()]
    for index, (studio, release) in enumerate(pairs[:11]):
        queries.append(
            parse_query(
                f"Qp{index}(mid) :- movie(mid, t, '{studio}', '{release}'), "
                "rating(mid, 5)"
            )
        )
    return queries


def _fanout_mix(database) -> list:
    """A union query with one disjunct per partition: guaranteed full fan-out."""
    pairs = sorted({(row[2], row[3]) for row in database.relation("movie")})
    by_shard: dict[int, tuple] = {}
    for pair in pairs:
        by_shard.setdefault(shard_of(pair, SHARDS), pair)
    disjuncts = tuple(
        parse_query(
            f"Qfan(mid) :- movie(mid, t, '{studio}', '{release}'), rating(mid, 5)"
        )
        for studio, release in (by_shard[s] for s in sorted(by_shard))
    )
    assert len(disjuncts) >= 2, "instance too small to cover multiple shards"
    return [UnionQuery(disjuncts, name="Qfan")] * 12


def _write_batch(count: int = 6) -> tuple[UpdateBatch, UpdateBatch]:
    """A batch of q0-relevant inserts and its inverse (state-neutral per round)."""
    updates = []
    for i in range(count):
        updates.append(Insertion("movie", (f"m_cc_{i}", f"cc{i}", "Universal", "2014")))
        updates.append(Insertion("rating", (f"m_cc_{i}", 5)))
    batch = UpdateBatch(updates)
    return batch, batch.inverted()


def _assert_bit_identical(sharded_answers, expected_answers, label: str) -> None:
    assert [a.rows for a in sharded_answers] == [
        a.rows for a in expected_answers
    ], label
    assert [a.tuples_fetched for a in sharded_answers] == [
        a.tuples_fetched for a in expected_answers
    ], label


# --------------------------------------------------------------------------- #
# Differential guard: sharded == unsharded on every settled state
# --------------------------------------------------------------------------- #


def test_sharded_answers_are_bit_identical_to_unsharded(instance):
    unsharded = _service(instance, shards=None)
    sharded = _service(instance, shards=SHARDS)
    mix = _pruned_mix(instance.database) + _fanout_mix(instance.database)[:1]
    batch, inverse = _write_batch()
    _assert_bit_identical(
        [sharded.query(q) for q in mix],
        [unsharded.query(q) for q in mix],
        "pristine state",
    )
    for service in (unsharded, sharded):
        service.apply(batch)
    _assert_bit_identical(
        [sharded.query(q) for q in mix],
        [unsharded.query(q) for q in mix],
        "post-batch state",
    )
    for service in (unsharded, sharded):
        service.apply(inverse)
    _assert_bit_identical(
        [sharded.query(q) for q in mix],
        [unsharded.query(q) for q in mix],
        "restored state",
    )
    unsharded.close()
    sharded.close()


# --------------------------------------------------------------------------- #
# Throughput: shard-pruned vs full fan-out vs unsharded
# --------------------------------------------------------------------------- #


def test_concurrent_mix_sharded_pruned(benchmark, instance):
    service = _service(instance, shards=SHARDS, retain_plans_on_write=True)
    mix = _pruned_mix(instance.database)
    batch, inverse = _write_batch()
    expected = [service.query(q) for q in mix]  # also warms the plan cache
    errors: list[BaseException] = []

    def write() -> None:
        try:
            service.apply(batch)
            service.apply(inverse)
        except BaseException as exc:  # pragma: no cover - surfaced below
            errors.append(exc)

    def run():
        # Snapshot isolation makes this safe: the writer advances versions
        # copy-on-write while both query_many bursts read pinned snapshots.
        writer = threading.Thread(target=write)
        writer.start()
        try:
            service.query_many(mix, max_workers=WORKERS)
            answers = service.query_many(mix, max_workers=WORKERS)
        finally:
            writer.join()
        return answers

    run()  # warm-up round
    benchmark.pedantic(run, rounds=3, iterations=1)
    assert not errors, errors
    mean = benchmark.stats.stats.mean
    _TIMINGS["sharded_pruned"] = mean
    # The writes are state-neutral, so the settled answers must still match
    # the pre-run ones bit for bit (rows and Dξ).
    _assert_bit_identical(
        [service.query(q) for q in mix], expected, "settled after concurrent writes"
    )
    snapshot = service.stats.snapshot()
    assert snapshot.single_shard_queries > 0
    benchmark.extra_info["queries_per_round"] = QUERIES_PER_ROUND
    benchmark.extra_info["queries_per_sec"] = round(QUERIES_PER_ROUND / mean)
    benchmark.extra_info["single_shard_queries"] = snapshot.single_shard_queries
    benchmark.extra_info["shards_pruned"] = snapshot.shards_pruned
    service.close()


def test_concurrent_mix_sharded_fanout(benchmark, instance):
    service = _service(instance, shards=SHARDS, retain_plans_on_write=True)
    mix = _fanout_mix(instance.database)
    batch, inverse = _write_batch()
    [service.query(q) for q in mix]
    errors: list[BaseException] = []

    def write() -> None:
        try:
            service.apply(batch)
            service.apply(inverse)
        except BaseException as exc:  # pragma: no cover - surfaced below
            errors.append(exc)

    def run():
        writer = threading.Thread(target=write)
        writer.start()
        try:
            service.query_many(mix, max_workers=WORKERS)
            answers = service.query_many(mix, max_workers=WORKERS)
        finally:
            writer.join()
        return answers

    run()
    benchmark.pedantic(run, rounds=3, iterations=1)
    assert not errors, errors
    mean = benchmark.stats.stats.mean
    snapshot = service.stats.snapshot()
    assert snapshot.fanout_queries > 0  # the mix really fans out
    benchmark.extra_info["queries_per_round"] = QUERIES_PER_ROUND
    benchmark.extra_info["queries_per_sec"] = round(QUERIES_PER_ROUND / mean)
    benchmark.extra_info["fanout_queries"] = snapshot.fanout_queries
    service.close()


def test_concurrent_mix_unsharded_baseline(benchmark, instance):
    service = _service(instance, shards=None)
    mix = _pruned_mix(instance.database)
    batch, inverse = _write_batch()
    [service.query(q) for q in mix]

    def run():
        # The single-database service reads live indices, so writes must be
        # serialised with the query bursts; each batch also evicts every
        # cached plan that depends on the touched relations.
        service.apply(batch)
        service.query_many(mix, max_workers=WORKERS)
        service.apply(inverse)
        return service.query_many(mix, max_workers=WORKERS)

    run()
    benchmark.pedantic(run, rounds=3, iterations=1)
    mean = benchmark.stats.stats.mean
    benchmark.extra_info["queries_per_round"] = QUERIES_PER_ROUND
    benchmark.extra_info["queries_per_sec"] = round(QUERIES_PER_ROUND / mean)
    sharded = _TIMINGS.get("sharded_pruned")
    if sharded:
        speedup = mean / sharded
        benchmark.extra_info["sharded_speedup"] = round(speedup, 1)
        # The acceptance bar for the concurrent-serving work (locally ~2-4x:
        # retained plans and snapshot pinning eliminate the replan storm).
        # CI smoke runs (BENCH_SMOKE=1) record the speedup without gating.
        if os.environ.get("BENCH_SMOKE") != "1":
            assert speedup >= 2.0, (
                f"sharded concurrent serving only {speedup:.1f}x faster than "
                "the single-database baseline (acceptance bar 2.0x)"
            )
    service.close()
