"""E11 — ablation of the effective syntax's K cut-off (Section 5.2, case 4c).

The ``covq``/``size`` induction restricts the inner conjunct expansions to
sub-queries of size at most K, "to bound the number of expansions of Qs when
computing covq and ensure that it is in PTIME"; the paper notes K = 1 already
preserves expressive power up to equivalence.  The ablation measures how the
cut-off affects (a) the cost of the analysis and (b) whether queries written
*without* the equivalent reshaping are still accepted as topped — the
practical trade-off a deployment has to pick.
"""

from __future__ import annotations

import pytest

from repro.algebra.fo import atom, conj, exists, neg
from repro.algebra.schema import schema_from_spec
from repro.algebra.terms import Constant, Variable
from repro.algebra.views import ViewSet
from repro.core.access import AccessConstraint, AccessSchema
from repro.core.topped import analyze_topped, topped_plan

SCHEMA = schema_from_spec({"R": ("a", "b"), "T": ("b", "c"), "S": ("c", "d")})
ACCESS = AccessSchema(
    (
        AccessConstraint("R", ("a",), ("b",), 4),
        AccessConstraint("T", ("b",), ("c",), 4),
        AccessConstraint("S", ("c",), ("d",), 4),
    )
)
NO_VIEWS = ViewSet(())


def propagation_query(width: int):
    """A query whose inner conjunct has ``width`` atoms, so it needs K >= ~width.

    Shape: R(1, y) ∧ (T(y, z1) ∧ S(z1, w1) ∧ ... ) — the trailing conjunct only
    becomes bounded when the analysis may propagate y into it as a whole.
    """
    y = Variable("y")
    inner = []
    previous = y
    for index in range(width):
        z = Variable(f"z{index}")
        relation = "T" if index % 2 == 0 else "S"
        inner.append(atom(relation, previous, z))
        previous = z
    query = conj(atom("R", Constant(1), y), conj(*inner) if len(inner) > 1 else inner[0])
    return query, (previous,)


@pytest.mark.parametrize("cutoff", [1, 2, 4, 8])
def test_analysis_cost_vs_cutoff(benchmark, cutoff):
    query, _head = propagation_query(width=4)
    analysis = benchmark(
        lambda: analyze_topped(query, SCHEMA, NO_VIEWS, ACCESS, inner_size_cutoff=cutoff)
    )
    benchmark.extra_info["inner_size_cutoff"] = cutoff
    benchmark.extra_info["covered"] = analysis.covered
    benchmark.extra_info["size_estimate"] = analysis.size


@pytest.mark.parametrize("cutoff", [1, 4])
@pytest.mark.parametrize("width", [2, 4, 6])
def test_acceptance_vs_cutoff_and_width(benchmark, cutoff, width):
    """Larger cut-offs accept more queries as written; cost grows moderately."""
    query, head = propagation_query(width=width)
    plan = benchmark.pedantic(
        lambda: topped_plan(query, head, SCHEMA, NO_VIEWS, ACCESS, inner_size_cutoff=cutoff),
        rounds=1,
        iterations=1,
    )
    benchmark.extra_info["inner_size_cutoff"] = cutoff
    benchmark.extra_info["width"] = width
    benchmark.extra_info["accepted"] = plan is not None
    if plan is not None:
        benchmark.extra_info["plan_size"] = plan.size()


def test_negation_needs_propagation(benchmark):
    """The Example 5.3 pattern: Q ∧ ¬R(z, w) is topped thanks to value propagation."""
    z, w = Variable("z"), Variable("w")
    base = conj(atom("R", Constant(1), z))
    query = conj(base, neg(exists([w], atom("T", z, w))))
    plan = benchmark(
        lambda: topped_plan(query, (z,), SCHEMA, NO_VIEWS, ACCESS, inner_size_cutoff=2)
    )
    benchmark.extra_info["accepted"] = plan is not None
    assert plan is not None
