"""The bounded rewriting problem VBRP(L) — decision procedures.

``VBRP(L)``: given a database schema ``R``, a bound ``M``, an access schema
``A``, a query ``Q ∈ L`` and a set ``V`` of L-definable views, decide whether
``Q`` has an ``M``-bounded rewriting in L using ``V`` under ``A``
(Section 3).  The problem is Σp3-complete for CQ/UCQ/∃FO+ and undecidable for
FO (Theorem 3.1); with all of ``R, A, M, V`` fixed it drops to the Boolean
NP-hierarchy (Theorem 3.11) and to coNP / PTIME for acyclic CQs (Theorems
4.1/4.2, Corollary 4.4).

This module implements the *exact* procedures:

* :func:`enumerate_candidate_plans` — the candidate plan space ``QP_Q`` of
  plans of size at most ``M`` built from the views, the access constraints
  and the constants of ``Q`` (the paper's nondeterministic "guess a plan"
  made deterministic; exponential in ``M`` by necessity);
* :func:`decide_vbrp` — filter conforming candidates and test A-equivalence
  with ``Q`` (the Σp3 upper-bound algorithm of Theorem 3.1);
* :func:`maximum_plans` / :func:`alg_mp` / :func:`alg_acq` — the
  characterisation via unique maximum plans (Lemma 3.12) and the PTIME
  algorithm for ACQ with fixed parameters (Theorem 4.2).

The *practical*, sound-but-incomplete plan builder used by the engine lives
in :mod:`repro.engine.optimizer`.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Iterable, Sequence

from ..algebra.acyclicity import is_acyclic
from ..algebra.cq import ConjunctiveQuery
from ..algebra.schema import DatabaseSchema
from ..algebra.ucq import QueryLike, UnionQuery, as_union
from ..algebra.views import ViewSet
from ..errors import BudgetExceededError, UnsupportedQueryError
from .access import AccessSchema
from .conformance import conforms_to
from .element_queries import ElementQueryBudget
from .equivalence import a_contained_in, a_equivalent
from .plans import (
    AttributeEqualsAttribute,
    AttributeEqualsConstant,
    CQ,
    EFO_PLUS,
    FO,
    UCQ,
    ConstantScan,
    DifferenceNode,
    FetchNode,
    PlanNode,
    ProductNode,
    ProjectNode,
    RenameNode,
    SelectNode,
    UnionNode,
    ViewScan,
    language_leq,
)
from .rewriting import plan_to_ucq


# --------------------------------------------------------------------------- #
# Candidate plan enumeration
# --------------------------------------------------------------------------- #


@dataclass
class PlanSearchSpace:
    """Vocabulary and budgets for candidate-plan enumeration.

    ``constants`` is the pool of constants plans may mention (the paper
    requires "all constants in Q' are taken from Q").  The remaining knobs
    trade completeness of the enumeration against its (inherently
    exponential) size; the defaults are complete for the plan shapes used in
    the paper's examples and reductions with small ``M``.
    """

    constants: tuple[object, ...] = ()
    allow_renames: bool = True
    max_select_attributes: int = 3
    max_project_attributes: int = 6
    max_plans: int = 200_000

    def guard(self, count: int) -> None:
        if count > self.max_plans:
            raise BudgetExceededError(
                f"candidate-plan enumeration exceeded {self.max_plans} plans; "
                "lower M, restrict the search space, or use the heuristic engine"
            )


def _plan_key(node: PlanNode) -> tuple:
    """A structural key for deduplication of enumerated plans."""
    if isinstance(node, ConstantScan):
        return ("const", node.value, node.attribute)
    if isinstance(node, ViewScan):
        return ("view", node.view_name, node.view_attributes)
    if isinstance(node, FetchNode):
        child = _plan_key(node.child) if node.child is not None else None
        return ("fetch", node.relation, node.x_attrs, node.y_attrs, child)
    if isinstance(node, ProjectNode):
        return ("project", node.kept, _plan_key(node.child))
    if isinstance(node, SelectNode):
        return ("select", node.predicates, _plan_key(node.child))
    if isinstance(node, RenameNode):
        return ("rename", node.mapping, _plan_key(node.child))
    if isinstance(node, ProductNode):
        return ("product", _plan_key(node.left), _plan_key(node.right))
    if isinstance(node, UnionNode):
        return ("union", frozenset({_plan_key(node.left), _plan_key(node.right)}))
    if isinstance(node, DifferenceNode):
        return ("difference", _plan_key(node.left), _plan_key(node.right))
    raise UnsupportedQueryError(f"unknown plan node {type(node).__name__}")


def enumerate_candidate_plans(
    schema: DatabaseSchema,
    views: ViewSet,
    access_schema: AccessSchema,
    max_size: int,
    space: PlanSearchSpace | None = None,
    language: str = FO,
) -> list[PlanNode]:
    """Enumerate (deduplicated) candidate plans of size at most ``max_size``.

    The enumeration is exhaustive over the following vocabulary: constant
    scans over the supplied constant pool (attribute names taken from the
    access constraints' key attributes), view scans, fetches through the
    access constraints, projections, constant/attribute selections, renamings
    towards fetch keys, products, unions and differences — restricted to the
    operators allowed by ``language``.
    """
    space = space or PlanSearchSpace()
    plans_by_size: dict[int, list[PlanNode]] = {s: [] for s in range(1, max_size + 1)}
    seen: set[tuple] = set()
    total = 0

    def emit(plan: PlanNode, size: int) -> None:
        nonlocal total
        key = _plan_key(plan)
        if key in seen:
            return
        seen.add(key)
        plans_by_size[size].append(plan)
        total += 1
        space.guard(total)

    if max_size < 1:
        return []

    # ---- size 1: leaves -------------------------------------------------- #
    constant_attributes: set[str] = {"c"}
    for constraint in access_schema:
        if len(constraint.x) == 1:
            constant_attributes.add(constraint.x[0])
    for value in space.constants:
        for attribute in sorted(constant_attributes):
            emit(ConstantScan(value, attribute=attribute), 1)
    for view in views:
        emit(ViewScan(view.name, view.attributes), 1)
    for constraint in access_schema:
        if not constraint.x:
            emit(FetchNode(None, constraint.relation, (), constraint.y), 1)

    # ---- larger sizes ----------------------------------------------------- #
    allow_union = language_leq(UCQ, language) or language in (UCQ, EFO_PLUS, FO)
    allow_union = language in (UCQ, EFO_PLUS, FO)
    allow_difference = language == FO

    for size in range(2, max_size + 1):
        # Unary operators over plans of size-1 smaller.
        for child in plans_by_size[size - 1]:
            _emit_unary(child, size, emit, schema, access_schema, space)
        # Binary operators.
        for left_size in range(1, size - 1):
            right_size = size - 1 - left_size
            if right_size < 1:
                continue
            for left in plans_by_size[left_size]:
                for right in plans_by_size[right_size]:
                    if not set(left.attributes) & set(right.attributes):
                        emit(ProductNode(left, right), size)
                    if left.attributes == right.attributes:
                        if allow_union:
                            emit(UnionNode(left, right), size)
                        if allow_difference:
                            emit(DifferenceNode(left, right), size)

    candidates = [plan for plans in plans_by_size.values() for plan in plans]
    return [plan for plan in candidates if language_leq(plan.language(), language)]


def _emit_unary(
    child: PlanNode,
    size: int,
    emit,
    schema: DatabaseSchema,
    access_schema: AccessSchema,
    space: PlanSearchSpace,
) -> None:
    attributes = child.attributes

    # Projections (proper subsets, including the empty projection).
    if len(attributes) <= space.max_project_attributes:
        for keep_size in range(0, len(attributes)):
            for kept in itertools.combinations(attributes, keep_size):
                emit(ProjectNode(child, kept), size)

    # Attribute-equality selections.
    for left, right in itertools.combinations(attributes, 2):
        emit(SelectNode(child, (AttributeEqualsAttribute(left, right),)), size)

    # Constant selections over small attribute subsets.
    if space.constants:
        limit = min(len(attributes), space.max_select_attributes)
        for subset_size in range(1, limit + 1):
            for subset in itertools.combinations(attributes, subset_size):
                for assignment in itertools.product(space.constants, repeat=subset_size):
                    predicates = tuple(
                        AttributeEqualsConstant(attribute, value)
                        for attribute, value in zip(subset, assignment)
                    )
                    emit(SelectNode(child, predicates), size)

    # Fetches whose key attributes match the child's output attributes.
    for constraint in access_schema:
        if constraint.x and set(constraint.x) == set(attributes):
            emit(
                FetchNode(child, constraint.relation, constraint.x, constraint.y), size
            )

    # Renamings towards the key attributes of some constraint.
    if space.allow_renames:
        for constraint in access_schema:
            if (
                constraint.x
                and len(constraint.x) == len(attributes)
                and set(constraint.x) != set(attributes)
            ):
                mapping = dict(zip(attributes, constraint.x))
                emit(RenameNode(child, mapping), size)


# --------------------------------------------------------------------------- #
# VBRP decision
# --------------------------------------------------------------------------- #


@dataclass
class VBRPResult:
    """Outcome of a VBRP decision.

    ``has_rewriting`` is the answer; when positive, ``plan`` is an
    ``M``-bounded plan witnessing it.  ``candidates`` / ``conforming`` report
    how many plans were enumerated and how many passed conformance — the
    quantities whose growth the Table I benchmarks measure.
    """

    has_rewriting: bool
    plan: PlanNode | None = None
    candidates: int = 0
    conforming: int = 0
    reason: str = ""


def _query_as_ucq(query: QueryLike) -> UnionQuery:
    union = as_union(query)
    return union


def decide_vbrp(
    query: QueryLike,
    views: ViewSet,
    access_schema: AccessSchema,
    schema: DatabaseSchema,
    max_size: int,
    language: str = CQ,
    space: PlanSearchSpace | None = None,
    budget: ElementQueryBudget | None = None,
    candidate_plans: Sequence[PlanNode] | None = None,
) -> VBRPResult:
    """Decide whether ``query`` has an ``M``-bounded rewriting in ``language``.

    ``query`` is a CQ or UCQ over the base schema.  ``language`` is one of
    ``"CQ"``, ``"UCQ"``, ``"EFO+"`` — for these the procedure is sound and
    complete relative to the enumerated candidate vocabulary (see
    :func:`enumerate_candidate_plans`).  ``"FO"`` is rejected: VBRP(FO) is
    undecidable (Theorem 3.1(2)); use
    :func:`verify_rewriting_on_instances` to validate hand-written FO plans.

    ``candidate_plans`` fixes the candidate set ``QP_Q`` explicitly — the
    setting of Theorem 3.11 where ``R, A, M, V`` are all fixed.
    """
    if language == FO and candidate_plans is None:
        raise UnsupportedQueryError(
            "VBRP(FO) is undecidable (Theorem 3.1); supply candidate_plans explicitly "
            "or verify a hand-written plan with verify_rewriting_on_instances"
        )
    target = _query_as_ucq(query)
    if space is None:
        constants = tuple(sorted({c.value for c in target.constants}, key=repr))
        space = PlanSearchSpace(constants=constants)

    if candidate_plans is None:
        candidates = enumerate_candidate_plans(
            schema, views, access_schema, max_size, space, language
        )
    else:
        candidates = [
            plan
            for plan in candidate_plans
            if plan.size() <= max_size and language_leq(plan.language(), language)
        ]

    head_arity = target.head_arity
    conforming = 0
    candidates_checked = 0
    # Smaller plans first: the witness returned is then a minimum-size one.
    for plan in sorted(candidates, key=lambda p: p.size()):
        if len(plan.attributes) != head_arity:
            continue
        candidates_checked += 1
        report = conforms_to(plan, access_schema, schema, views, budget)
        if not report.conforms:
            continue
        conforming += 1
        try:
            expressed = plan_to_ucq(plan, schema, views, unfold_views=True)
        except UnsupportedQueryError:
            # FO-only plan: cannot be compared exactly; skip (sound).
            continue
        if a_equivalent(expressed, target, access_schema, schema, budget):
            return VBRPResult(
                has_rewriting=True,
                plan=plan,
                candidates=len(candidates),
                conforming=conforming,
            )
    return VBRPResult(
        has_rewriting=False,
        plan=None,
        candidates=len(candidates),
        conforming=conforming,
        reason="no conforming candidate plan is A-equivalent to the query",
    )


def is_bounded_rewriting(
    plan: PlanNode,
    query: QueryLike,
    views: ViewSet,
    access_schema: AccessSchema,
    schema: DatabaseSchema,
    max_size: int | None = None,
    budget: ElementQueryBudget | None = None,
) -> bool:
    """Check that a given plan is an ``M``-bounded rewriting of ``query``.

    Verifies the three requirements of Section 2: size bound (when given),
    conformance to the access schema, and A-equivalence with the query.
    Plans that cannot be expressed in UCQ (set difference) are rejected here;
    validate those against sample instances with
    :func:`verify_rewriting_on_instances`.
    """
    if max_size is not None and plan.size() > max_size:
        return False
    if not conforms_to(plan, access_schema, schema, views, budget).conforms:
        return False
    expressed = plan_to_ucq(plan, schema, views, unfold_views=True)
    return a_equivalent(expressed, as_union(query), access_schema, schema, budget)


# --------------------------------------------------------------------------- #
# Maximum plans (Lemma 3.12), AlgMP and AlgACQ (Theorem 4.2)
# --------------------------------------------------------------------------- #


@dataclass
class MaximumPlanResult:
    """Result of the AlgMP computation."""

    maximum: PlanNode | None
    kept: list[PlanNode] = field(default_factory=list)
    reason: str = ""


def alg_mp(
    query: QueryLike,
    candidate_plans: Sequence[PlanNode],
    views: ViewSet,
    access_schema: AccessSchema,
    schema: DatabaseSchema,
    require_acyclic: bool = False,
    budget: ElementQueryBudget | None = None,
) -> MaximumPlanResult:
    """Compute the unique maximum plan of ``QP_Q`` up to A-equivalence (AlgMP).

    Steps (Theorem 4.2): drop candidates that are not in the right fragment
    (optionally: whose expressed query is not acyclic), drop candidates that
    do not conform to ``A`` or are not A-contained in ``Q``, drop
    non-maximal candidates, and finally check that the remaining plans are
    pairwise A-equivalent.
    """
    target = as_union(query)
    expressed: dict[int, UnionQuery] = {}
    kept: list[PlanNode] = []
    for index, plan in enumerate(candidate_plans):
        try:
            plan_query = plan_to_ucq(plan, schema, views, unfold_views=True)
        except UnsupportedQueryError:
            continue
        if len(plan.attributes) != target.head_arity:
            continue
        if require_acyclic and not all(is_acyclic(d) for d in plan_query.disjuncts):
            continue
        if not conforms_to(plan, access_schema, schema, views, budget).conforms:
            continue
        if not a_contained_in(plan_query, target, access_schema, schema, budget):
            continue
        expressed[len(kept)] = plan_query
        kept.append(plan)

    if not kept:
        return MaximumPlanResult(maximum=None, reason="no conforming A-contained candidate")

    # Drop plans strictly A-contained in another kept plan.
    maximal: list[int] = []
    for i in range(len(kept)):
        dominated = False
        for j in range(len(kept)):
            if i == j:
                continue
            i_in_j = a_contained_in(expressed[i], expressed[j], access_schema, schema, budget)
            j_in_i = a_contained_in(expressed[j], expressed[i], access_schema, schema, budget)
            if i_in_j and not j_in_i:
                dominated = True
                break
        if not dominated:
            maximal.append(i)

    # All maximal plans must be A-equivalent for the maximum to be unique.
    for i in maximal[1:]:
        if not (
            a_contained_in(expressed[maximal[0]], expressed[i], access_schema, schema, budget)
            and a_contained_in(expressed[i], expressed[maximal[0]], access_schema, schema, budget)
        ):
            return MaximumPlanResult(
                maximum=None,
                kept=[kept[m] for m in maximal],
                reason="no unique maximum plan (two incomparable maximal candidates)",
            )
    return MaximumPlanResult(maximum=kept[maximal[0]], kept=[kept[m] for m in maximal])


def alg_acq(
    query: ConjunctiveQuery,
    views: ViewSet,
    access_schema: AccessSchema,
    schema: DatabaseSchema,
    max_size: int,
    space: PlanSearchSpace | None = None,
    budget: ElementQueryBudget | None = None,
    candidate_plans: Sequence[PlanNode] | None = None,
) -> VBRPResult:
    """AlgACQ: VBRP for acyclic CQ under fixed parameters (Theorem 4.2).

    Computes the unique maximum plan with :func:`alg_mp` and then checks
    ``Q ⊑_A ξ``; by Lemma 3.12 the query has an ``M``-bounded rewriting iff
    this succeeds.
    """
    if not is_acyclic(query):
        raise UnsupportedQueryError(f"query {query.name!r} is not acyclic; AlgACQ requires ACQ")
    if candidate_plans is None:
        if space is None:
            constants = tuple(sorted({c.value for c in query.constants}, key=repr))
            space = PlanSearchSpace(constants=constants)
        candidate_plans = enumerate_candidate_plans(
            schema, views, access_schema, max_size, space, language=CQ
        )
    else:
        candidate_plans = [p for p in candidate_plans if p.size() <= max_size]

    result = alg_mp(
        query,
        candidate_plans,
        views,
        access_schema,
        schema,
        require_acyclic=True,
        budget=budget,
    )
    if result.maximum is None:
        return VBRPResult(
            has_rewriting=False,
            candidates=len(candidate_plans),
            reason=result.reason or "no maximum plan",
        )
    expressed = plan_to_ucq(result.maximum, schema, views, unfold_views=True)
    if a_contained_in(as_union(query), expressed, access_schema, schema, budget):
        return VBRPResult(
            has_rewriting=True, plan=result.maximum, candidates=len(candidate_plans)
        )
    return VBRPResult(
        has_rewriting=False,
        candidates=len(candidate_plans),
        reason="the maximum plan is not A-equivalent to the query",
    )


# --------------------------------------------------------------------------- #
# Validation of hand-written (possibly FO) rewritings on sample instances
# --------------------------------------------------------------------------- #


def verify_rewriting_on_instances(
    plan: PlanNode,
    expected_answers: Iterable[frozenset[tuple] | set[tuple]],
    executed_answers: Iterable[frozenset[tuple] | set[tuple]],
) -> bool:
    """Compare executed plan answers with expected answers on sample instances.

    A helper for FO rewritings (whose A-equivalence is undecidable in
    general): the caller evaluates the original query and executes the plan
    on a collection of instances satisfying ``A`` and passes both answer
    sequences here.  Returns ``True`` when they agree everywhere — a sound
    refutation test, not a proof of equivalence.
    """
    for expected, executed in zip(expected_answers, executed_answers):
        if frozenset(expected) != frozenset(executed):
            return False
    del plan
    return True
