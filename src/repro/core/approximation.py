"""Approximate query answering with a bounded resource ratio α.

The paper's concluding section sketches two relaxations of bounded
evaluation that this module implements:

* instead of requiring the accessed fragment ``D_Q`` to have *constant* size,
  allow it to be an **α-fraction** of the data: ``|D_Q| ≤ α·|D|`` for a
  "resource ratio" ``α ∈ [0, 1]`` chosen from the available budget;
* compute **approximate answers** ``Q(D_Q)`` together with a deterministic
  accuracy measure relating them to the exact answers ``Q(D)``.

For monotone queries (CQ/UCQ) every answer computed over a sub-instance is an
exact answer (``Q(D_Q) ⊆ Q(D)``), so approximation only loses *recall*, never
precision; the accuracy measures below quantify exactly that, plus the
distance-based ``η`` bound of the paper's formulation ("for any t ∈ Q(D)
there exists s ∈ Q(D_Q) within distance η, and conversely").

The fragment ``D_Q`` is built *data-driven*, in the spirit of [Cao & Fan
2017]: fetches anchored at the query's constants go first (they are the
cheapest and the most informative), values retrieved this way anchor further
fetches (the same propagation the bounded plans use), and any remaining
budget is spent on a deterministic sample of the relations the query still
needs.  All access is counted, so ``|D_Q| ≤ α·|D|`` holds by construction.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Callable, Iterable, Mapping, Sequence

from ..algebra.cq import ConjunctiveQuery
from ..algebra.evaluation import evaluate_ucq
from ..algebra.schema import DatabaseSchema
from ..algebra.terms import Constant, Variable
from ..algebra.ucq import QueryLike, as_union
from ..errors import EvaluationError
from ..storage.generators import rng
from ..storage.instance import Database
from .access import AccessSchema


# --------------------------------------------------------------------------- #
# Resource budgets
# --------------------------------------------------------------------------- #


@dataclass(frozen=True)
class ResourceRatio:
    """A resource ratio ``α ∈ [0, 1]``: the fraction of ``|D|`` we may access."""

    alpha: float

    def __post_init__(self) -> None:
        if not 0.0 <= self.alpha <= 1.0:
            raise EvaluationError(f"resource ratio must lie in [0, 1], got {self.alpha}")

    def budget_for(self, database: Database) -> int:
        """The tuple budget ``⌈α·|D|⌉`` for a concrete database."""
        return math.ceil(self.alpha * database.size)


# --------------------------------------------------------------------------- #
# Approximate answers
# --------------------------------------------------------------------------- #


@dataclass
class ApproximateAnswer:
    """Result of :func:`approximate_answer`.

    ``rows`` are the answers computed over the accessed fragment; for CQ/UCQ
    they are guaranteed to be exact answers (``precision = 1``).
    ``tuples_accessed`` is ``|D_Q|``; ``budget`` the cap it respected;
    ``fragment_sizes`` breaks the fragment down by relation.
    """

    rows: frozenset[tuple]
    tuples_accessed: int
    budget: int
    alpha: float
    fragment_sizes: dict[str, int] = field(default_factory=dict)

    def __len__(self) -> int:
        return len(self.rows)


class _FragmentBuilder:
    """Accumulates the accessed fragment ``D_Q`` under a tuple budget."""

    def __init__(self, database: Database, budget: int) -> None:
        self.database = database
        self.budget = budget
        self.fragment: dict[str, set[tuple]] = {name: set() for name in database.schema.names}
        self.accessed = 0

    @property
    def exhausted(self) -> bool:
        return self.accessed >= self.budget

    def add(self, relation: str, rows: Iterable[tuple]) -> None:
        for row in rows:
            if self.exhausted:
                return
            if row not in self.fragment[relation]:
                self.fragment[relation].add(row)
                self.accessed += 1

    def facts(self) -> dict[str, set[tuple]]:
        return self.fragment

    def sizes(self) -> dict[str, int]:
        return {name: len(rows) for name, rows in self.fragment.items() if rows}


def _anchored_fetches(
    disjunct: ConjunctiveQuery,
    database: Database,
    access_schema: AccessSchema,
    schema: DatabaseSchema,
    builder: _FragmentBuilder,
) -> dict[Variable, set[object]]:
    """Fetch tuples for atoms whose constraint keys are grounded, propagating values.

    Returns the bindings collected for covered variables, which later rounds
    use as anchors.  Every tuple added to the fragment goes through an access
    constraint's index semantics (group the relation by the key attributes),
    so the fetch sizes are governed by the constraint bounds.
    """
    bindings: dict[Variable, set[object]] = {}
    changed = True
    while changed and not builder.exhausted:
        changed = False
        for atom in disjunct.atoms:
            relation = schema.relation(atom.relation)
            for constraint in access_schema.for_relation(atom.relation):
                x_positions = relation.positions(constraint.x)
                key_terms = [atom.terms[p] for p in x_positions]
                key_values: list[set[object]] = []
                grounded = True
                for term in key_terms:
                    if isinstance(term, Constant):
                        key_values.append({term.value})
                    elif term in bindings:
                        key_values.append(bindings[term])
                    else:
                        grounded = False
                        break
                if not grounded:
                    continue
                matches = _index_lookup(database, atom.relation, x_positions, key_values)
                before = builder.accessed
                builder.add(atom.relation, matches)
                if builder.accessed == before:
                    continue
                changed = True
                for row in matches:
                    for position, term in enumerate(atom.terms):
                        if isinstance(term, Variable):
                            bindings.setdefault(term, set()).add(row[position])
                if builder.exhausted:
                    return bindings
    return bindings


def _index_lookup(
    database: Database,
    relation: str,
    x_positions: Sequence[int],
    key_values: Sequence[set[object]],
) -> list[tuple]:
    """All tuples of ``relation`` whose key attributes take one of the given values."""
    matches = []
    for row in database.relation(relation):
        if all(row[p] in allowed for p, allowed in zip(x_positions, key_values)):
            matches.append(row)
    return matches


def approximate_answer(
    query: QueryLike,
    database: Database,
    access_schema: AccessSchema,
    alpha: float,
    seed: int = 0,
) -> ApproximateAnswer:
    """Answer ``query`` by accessing at most ``⌈α·|D|⌉`` tuples of ``database``.

    The fragment is built in three phases — constant-anchored fetches, value
    propagation, and a deterministic sample of the still-needed relations —
    and the query is then evaluated over the fragment only.  With ``α = 1``
    the answer is exact; smaller ``α`` trades recall for access.
    """
    ratio = ResourceRatio(alpha)
    budget = ratio.budget_for(database)
    schema = database.schema
    union = as_union(query)
    builder = _FragmentBuilder(database, budget)
    generator = rng(seed)

    # Phases 1 + 2: anchored fetches with value propagation, per disjunct.
    for disjunct in union.satisfiable_disjuncts():
        if builder.exhausted:
            break
        _anchored_fetches(disjunct.normalize(), database, access_schema, schema, builder)

    # Phase 3: spend any remaining budget on the relations the query touches.
    if not builder.exhausted:
        needed = sorted(union.relation_names)
        for relation in needed:
            if builder.exhausted:
                break
            rows = sorted(database.relation(relation).tuples, key=repr)
            generator.shuffle(rows)
            builder.add(relation, rows)

    rows = evaluate_ucq(union, builder.facts())
    return ApproximateAnswer(
        rows=frozenset(rows),
        tuples_accessed=builder.accessed,
        budget=budget,
        alpha=alpha,
        fragment_sizes=builder.sizes(),
    )


# --------------------------------------------------------------------------- #
# Accuracy measures
# --------------------------------------------------------------------------- #


def answer_coverage(approximate: Iterable[tuple], exact: Iterable[tuple]) -> float:
    """Recall of the approximate answers: ``|approx ∩ exact| / |exact|``.

    Returns 1.0 when the exact answer set is empty (nothing was missed).
    """
    exact_set = set(map(tuple, exact))
    if not exact_set:
        return 1.0
    approx_set = set(map(tuple, approximate))
    return len(approx_set & exact_set) / len(exact_set)


def answer_precision(approximate: Iterable[tuple], exact: Iterable[tuple]) -> float:
    """Precision of the approximate answers (1.0 for monotone queries)."""
    approx_set = set(map(tuple, approximate))
    if not approx_set:
        return 1.0
    exact_set = set(map(tuple, exact))
    return len(approx_set & exact_set) / len(approx_set)


def normalized_hamming(left: Sequence[object], right: Sequence[object]) -> float:
    """Fraction of positions on which two equal-arity tuples disagree."""
    if len(left) != len(right):
        raise EvaluationError("distance requires tuples of equal arity")
    if not left:
        return 0.0
    return sum(1 for a, b in zip(left, right) if a != b) / len(left)


Distance = Callable[[Sequence[object], Sequence[object]], float]


def distance_bound(
    approximate: Iterable[tuple],
    exact: Iterable[tuple],
    distance: Distance = normalized_hamming,
) -> float | None:
    """The deterministic accuracy bound ``η`` of the paper's formulation.

    ``η`` is the symmetric Hausdorff-style bound: every exact answer has an
    approximate answer within ``η`` and vice versa.  Returns ``0.0`` when both
    sets are empty and ``None`` when exactly one of them is (no finite bound
    exists).
    """
    approx_list = [tuple(row) for row in approximate]
    exact_list = [tuple(row) for row in exact]
    if not approx_list and not exact_list:
        return 0.0
    if not approx_list or not exact_list:
        return None
    forward = max(min(distance(t, s) for s in approx_list) for t in exact_list)
    backward = max(min(distance(s, t) for t in exact_list) for s in approx_list)
    return max(forward, backward)


@dataclass
class AccuracyPoint:
    """One point of an accuracy sweep: resource ratio vs. answer quality."""

    alpha: float
    budget: int
    tuples_accessed: int
    coverage: float
    precision: float
    eta: float | None
    answers: int
    exact_answers: int


def accuracy_sweep(
    query: QueryLike,
    database: Database,
    access_schema: AccessSchema,
    alphas: Sequence[float],
    seed: int = 0,
    distance: Distance = normalized_hamming,
) -> list[AccuracyPoint]:
    """Evaluate the recall/accuracy of approximate answering across ratios.

    This is the harness behind ``benchmarks/bench_approximation.py``: as
    ``α`` grows the coverage should rise monotonically towards 1 (reaching 1
    at ``α = 1``) while the accessed fraction stays at or below ``α``.
    """
    exact = evaluate_ucq(as_union(query), database.facts)
    points = []
    for alpha in alphas:
        answer = approximate_answer(query, database, access_schema, alpha, seed)
        points.append(
            AccuracyPoint(
                alpha=alpha,
                budget=answer.budget,
                tuples_accessed=answer.tuples_accessed,
                coverage=answer_coverage(answer.rows, exact),
                precision=answer_precision(answer.rows, exact),
                eta=distance_bound(answer.rows, exact, distance),
                answers=len(answer.rows),
                exact_answers=len(exact),
            )
        )
    return points
