"""A-containment and A-equivalence of queries (Lemma 3.2).

Under an access schema ``A``, ``Q1 ⊑_A Q2`` holds when ``Q1(D) ⊆ Q2(D)`` for
all instances ``D |= A`` — a weaker requirement than classical containment.
The paper shows the problem is Πp2-complete for CQ/UCQ/∃FO+; the decision
procedure implemented here is the one underlying the upper bound:

    ``Q1 ⊑_A Q2``  iff  every (satisfiable) element query of every disjunct of
    ``Q1`` is *classically* contained in ``Q2``.

Two sound shortcuts keep the common cases cheap:

* classical containment implies A-containment (checked first);
* when ``A`` consists of FDs only, chasing ``Q1`` with the FDs gives a single
  query ``Q1_A`` with ``Q1 ⊑_A Q2  iff  Q1_A ⊆ Q2`` (Corollary 4.4), avoiding
  the exponential element-query sweep.
"""

from __future__ import annotations

from ..algebra.containment import contained_in, cq_contained_in_ucq
from ..algebra.cq import ConjunctiveQuery
from ..algebra.schema import DatabaseSchema
from ..algebra.ucq import QueryLike, UnionQuery, as_union
from .access import AccessSchema
from .chase import chase_with_fds
from .element_queries import ElementQueryBudget, iter_element_queries


def a_contained_in(
    query: QueryLike,
    container: QueryLike,
    access_schema: AccessSchema,
    schema: DatabaseSchema,
    budget: ElementQueryBudget | None = None,
) -> bool:
    """Decide ``query ⊑_A container`` for CQ/UCQ queries."""
    left = as_union(query)
    right = as_union(container)

    # Without constraints, A-containment *is* classical containment.
    if not access_schema:
        return contained_in(left, right)

    # Sound fast path: classical containment implies A-containment.
    if contained_in(left, right):
        return True

    # Complete fast path for FD-only access schemas (Corollary 4.4).
    if access_schema.is_fd_only:
        for disjunct in left.disjuncts:
            chased = chase_with_fds(disjunct, access_schema, schema)
            if chased is None:
                continue  # Disjunct is A-unsatisfiable: contained in anything.
            if not cq_contained_in_ucq(chased, right):
                return False
        return True

    # General case: sweep the element queries of every disjunct.
    for disjunct in left.disjuncts:
        for element_query in iter_element_queries(
            disjunct, access_schema, schema, budget
        ):
            if not cq_contained_in_ucq(element_query, right):
                return False
    return True


def a_equivalent(
    query: QueryLike,
    other: QueryLike,
    access_schema: AccessSchema,
    schema: DatabaseSchema,
    budget: ElementQueryBudget | None = None,
) -> bool:
    """Decide ``query ≡_A other`` (mutual A-containment)."""
    return a_contained_in(query, other, access_schema, schema, budget) and a_contained_in(
        other, query, access_schema, schema, budget
    )


def is_a_satisfiable(
    query: QueryLike,
    access_schema: AccessSchema,
    schema: DatabaseSchema,
    budget: ElementQueryBudget | None = None,
) -> bool:
    """Is there an instance ``D |= A`` on which the query returns an answer?

    Equivalently, the query is *not* A-equivalent to the empty query.  A CQ is
    A-satisfiable iff it has at least one element query (its tableau, possibly
    after equating some terms, satisfies ``A``).
    """
    union = as_union(query)
    if not access_schema:
        return any(d.is_satisfiable() for d in union.disjuncts)
    for disjunct in union.disjuncts:
        if not disjunct.is_satisfiable():
            continue
        if access_schema.is_fd_only:
            if chase_with_fds(disjunct, access_schema, schema) is not None:
                return True
            continue
        for _ in iter_element_queries(disjunct, access_schema, schema, budget):
            return True
    return False


def a_equivalent_to_empty(
    query: QueryLike,
    access_schema: AccessSchema,
    schema: DatabaseSchema,
    budget: ElementQueryBudget | None = None,
) -> bool:
    """``Q ≡_A ∅`` — the query returns no answer on any instance satisfying A."""
    return not is_a_satisfiable(query, access_schema, schema, budget)
