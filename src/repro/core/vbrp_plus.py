"""Cross-language bounded rewriting: VBRP+(L1, L2) (Section 6).

``VBRP+(L1, L2)`` asks whether a query ``Q ∈ L1`` has an ``M``-bounded
rewriting whose plan lies in a *richer* language ``L2 ⊇ L1``.  Theorem 6.1
shows that the relaxation does not lower the Σp3 lower bound, and Example 6.3
exhibits a CQ that has a 5-bounded rewriting in FO but none in UCQ — so the
relaxation can genuinely help for individual queries, it just does not make
the decision problem easier.

The decision procedure reuses :func:`repro.core.vbrp.decide_vbrp` with the
plan language set to ``L2``.  Because A-equivalence is undecidable for FO,
plans that genuinely need set difference are compared with the query on
caller-supplied witness instances (sound refutation, not a proof); the result
records whether the answer is exact or only a lower approximation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

from ..algebra.schema import DatabaseSchema
from ..algebra.ucq import QueryLike, as_union
from ..algebra.views import ViewSet
from ..errors import UnsupportedQueryError
from .access import AccessSchema
from .conformance import conforms_to
from .element_queries import ElementQueryBudget
from .equivalence import a_equivalent
from .plans import CQ, EFO_PLUS, FO, UCQ, PlanNode, language_leq
from .rewriting import plan_to_ucq
from .vbrp import PlanSearchSpace, VBRPResult, decide_vbrp


@dataclass
class VBRPPlusResult:
    """Outcome of a VBRP+ decision.

    ``exact`` is ``False`` when the search had to skip candidate plans whose
    A-equivalence with the query could not be decided (FO plans with set
    difference and no witness instances); in that case a negative
    ``has_rewriting`` only means "no rewriting was found".
    """

    has_rewriting: bool
    plan: PlanNode | None
    source_language: str
    target_language: str
    exact: bool
    inner: VBRPResult


def decide_vbrp_plus(
    query: QueryLike,
    views: ViewSet,
    access_schema: AccessSchema,
    schema: DatabaseSchema,
    max_size: int,
    source_language: str = CQ,
    target_language: str = UCQ,
    space: PlanSearchSpace | None = None,
    budget: ElementQueryBudget | None = None,
    candidate_plans: Sequence[PlanNode] | None = None,
) -> VBRPPlusResult:
    """Decide L1-to-L2 bounded rewriting for a CQ/UCQ query.

    ``source_language`` documents the language of ``query`` (checked to be at
    most UCQ here, since the exact procedures operate on CQ/UCQ queries);
    ``target_language`` is the language the plan may use.
    """
    if not language_leq(source_language, target_language):
        raise UnsupportedQueryError(
            f"VBRP+ requires L1 ⊆ L2, got L1={source_language!r}, L2={target_language!r}"
        )
    if source_language not in (CQ, UCQ):
        raise UnsupportedQueryError(
            "the exact VBRP+ procedure accepts CQ or UCQ input queries; "
            "use the effective syntax (topped queries) for ∃FO+/FO inputs"
        )

    effective_target = target_language
    exact = True
    if target_language == FO and candidate_plans is None:
        # Plans that genuinely require difference cannot be verified exactly;
        # search the ∃FO+ fragment (sound) and report the answer as inexact.
        effective_target = EFO_PLUS
        exact = False

    inner = decide_vbrp(
        query,
        views,
        access_schema,
        schema,
        max_size,
        language=effective_target,
        space=space,
        budget=budget,
        candidate_plans=candidate_plans,
    )
    return VBRPPlusResult(
        has_rewriting=inner.has_rewriting,
        plan=inner.plan,
        source_language=source_language,
        target_language=target_language,
        exact=exact or inner.has_rewriting,
        inner=inner,
    )


def verify_cross_language_rewriting(
    plan: PlanNode,
    query: QueryLike,
    views: ViewSet,
    access_schema: AccessSchema,
    schema: DatabaseSchema,
    max_size: int,
    target_language: str,
    budget: ElementQueryBudget | None = None,
) -> bool:
    """Check that a hand-written plan is an M-bounded L2 rewriting of ``query``.

    Used for instance to validate the FO rewriting ``(V3 \\ V1) ∪ V2`` of
    Example 6.3 once its A-equivalence has been established separately (the
    equivalence argument is exact only for plans expressible in UCQ).
    """
    if plan.size() > max_size:
        return False
    if not language_leq(plan.language(), target_language):
        return False
    if not conforms_to(plan, access_schema, schema, views, budget).conforms:
        return False
    try:
        expressed = plan_to_ucq(plan, schema, views, unfold_views=True)
    except UnsupportedQueryError:
        # FO plan: conformance and size hold; equivalence must be argued
        # separately (undecidable in general).
        return True
    return a_equivalent(expressed, as_union(query), access_schema, schema, budget)
