"""Conversions between query plans and queries.

Section 2 of the paper observes that every plan ``ξ`` in a language L
expresses a unique (up to equivalence) query ``Q_ξ`` in L whose size is
linear in the size of ``ξ``.  The decision procedures need this conversion in
both flavours:

* :func:`plan_to_ucq` — for plans without set difference and without negated
  selection predicates, producing a UCQ (a single-disjunct UCQ for CQ plans);
* :func:`plan_to_fo` — for arbitrary plans, producing an FO formula together
  with the tuple of output terms.

Both functions can *unfold* view scans by substituting the view definitions,
which is what conformance checking and A-equivalence need ("rewrite ξ into a
query Q' by substituting the view definition for each view used in ξ").

:func:`unfold_view_atoms` performs the analogous unfolding for queries written
over view relations (e.g. the rewriting ``Q_ξ(mid) = movie(...) ∧ V1(mid) ∧
rating(mid, 5)`` of Example 2.3).
"""

from __future__ import annotations

from typing import Sequence

from ..algebra.atoms import EqualityAtom, RelationAtom
from ..algebra.cq import ConjunctiveQuery
from ..algebra.fo import (
    FOAtom,
    FOEquality,
    FOQuery,
    FOTrue,
    conj,
    disj,
    exists,
    neg,
    rectify,
)
from ..algebra.schema import DatabaseSchema
from ..algebra.terms import Constant, FreshVariableFactory, Term, Variable
from ..algebra.ucq import QueryLike, UnionQuery, as_union
from ..algebra.views import ViewSet
from ..errors import PlanError, UnsupportedQueryError
from .plans import (
    AttributeEqualsAttribute,
    AttributeEqualsConstant,
    ConstantScan,
    DifferenceNode,
    FetchNode,
    PlanNode,
    ProductNode,
    ProjectNode,
    RenameNode,
    SelectNode,
    UnionNode,
    ViewScan,
)


# --------------------------------------------------------------------------- #
# Plan -> UCQ
# --------------------------------------------------------------------------- #


def plan_to_ucq(
    plan: PlanNode,
    schema: DatabaseSchema,
    views: ViewSet | None = None,
    unfold_views: bool = True,
    name: str = "Q_xi",
) -> UnionQuery:
    """The UCQ ``Q_ξ`` expressed by a plan without difference.

    The head of every disjunct corresponds positionally to
    ``plan.attributes``.  Raises :class:`UnsupportedQueryError` for plans that
    use set difference or negated selection predicates (use
    :func:`plan_to_fo` for those).
    """
    factory = FreshVariableFactory(prefix="p")
    branches = _node_branches(plan, schema, views, unfold_views, factory)
    disjuncts = tuple(
        ConjunctiveQuery(
            head=branch.head,
            atoms=branch.atoms,
            equalities=branch.equalities,
            name=f"{name}_{index}",
        )
        for index, branch in enumerate(branches)
    )
    return UnionQuery(disjuncts, name=name)


def plan_to_cq(
    plan: PlanNode,
    schema: DatabaseSchema,
    views: ViewSet | None = None,
    unfold_views: bool = True,
    name: str = "Q_xi",
) -> ConjunctiveQuery:
    """The CQ expressed by a CQ plan (a plan whose UCQ form has one disjunct)."""
    union = plan_to_ucq(plan, schema, views, unfold_views, name)
    if len(union.disjuncts) != 1:
        raise UnsupportedQueryError(
            f"plan expresses a union of {len(union.disjuncts)} CQs, not a single CQ"
        )
    return union.disjuncts[0]


def _node_branches(
    node: PlanNode,
    schema: DatabaseSchema,
    views: ViewSet | None,
    unfold_views: bool,
    factory: FreshVariableFactory,
) -> list[ConjunctiveQuery]:
    """Return the node's output as a list of CQ branches (positional heads)."""
    if isinstance(node, ConstantScan):
        return [ConjunctiveQuery(head=(Constant(node.value),), atoms=())]

    if isinstance(node, ViewScan):
        if unfold_views:
            if views is None or node.view_name not in views:
                raise PlanError(
                    f"cannot unfold unknown view {node.view_name!r}; pass the ViewSet"
                )
            view = views.view(node.view_name)
            branches = []
            for disjunct in view.as_ucq().disjuncts:
                renamed, _ = disjunct.rename_apart(factory)
                branches.append(renamed)
            return branches
        head = factory.fresh_many(len(node.view_attributes), hint="v")
        return [
            ConjunctiveQuery(
                head=head, atoms=(RelationAtom(node.view_name, head),)
            )
        ]

    if isinstance(node, FetchNode):
        if node.child is None:
            child_branches = [ConjunctiveQuery(head=(), atoms=())]
            child_attributes: tuple[str, ...] = ()
        else:
            child_branches = _node_branches(node.child, schema, views, unfold_views, factory)
            child_attributes = node.child.attributes
        relation = schema.relation(node.relation)
        branches = []
        for child in child_branches:
            terms: list[Term] = []
            y_terms: dict[str, Term] = {}
            for attribute in relation.attributes:
                if attribute in node.x_attrs:
                    position = child_attributes.index(attribute)
                    terms.append(child.head[position])
                elif attribute in node.y_attrs:
                    fresh = factory.fresh(attribute)
                    y_terms[attribute] = fresh
                    terms.append(fresh)
                else:
                    terms.append(factory.fresh(attribute))
            head: list[Term] = []
            for attribute in node.attributes:
                if attribute in node.x_attrs:
                    position = child_attributes.index(attribute)
                    head.append(child.head[position])
                else:
                    head.append(y_terms[attribute])
            branches.append(
                ConjunctiveQuery(
                    head=tuple(head),
                    atoms=child.atoms + (RelationAtom(node.relation, terms),),
                    equalities=child.equalities,
                )
            )
        return branches

    if isinstance(node, ProjectNode):
        child_branches = _node_branches(node.child, schema, views, unfold_views, factory)
        positions = [node.child.attributes.index(a) for a in node.kept]
        return [branch.project_head(positions) for branch in child_branches]

    if isinstance(node, SelectNode):
        if node.has_negated_predicate:
            raise UnsupportedQueryError(
                "negated selection predicates cannot be expressed in UCQ; use plan_to_fo"
            )
        child_branches = _node_branches(node.child, schema, views, unfold_views, factory)
        result = []
        for branch in child_branches:
            equalities = list(branch.equalities)
            for predicate in node.predicates:
                if isinstance(predicate, AttributeEqualsConstant):
                    position = node.child.attributes.index(predicate.attribute)
                    equalities.append(
                        EqualityAtom(branch.head[position], Constant(predicate.value))
                    )
                else:
                    left = branch.head[node.child.attributes.index(predicate.left)]
                    right = branch.head[node.child.attributes.index(predicate.right)]
                    equalities.append(EqualityAtom(left, right))
            result.append(
                ConjunctiveQuery(
                    head=branch.head, atoms=branch.atoms, equalities=tuple(equalities)
                )
            )
        return result

    if isinstance(node, RenameNode):
        return _node_branches(node.child, schema, views, unfold_views, factory)

    if isinstance(node, ProductNode):
        left_branches = _node_branches(node.left, schema, views, unfold_views, factory)
        right_branches = _node_branches(node.right, schema, views, unfold_views, factory)
        return [
            ConjunctiveQuery(
                head=left.head + right.head,
                atoms=left.atoms + right.atoms,
                equalities=left.equalities + right.equalities,
            )
            for left in left_branches
            for right in right_branches
        ]

    if isinstance(node, UnionNode):
        return _node_branches(node.left, schema, views, unfold_views, factory) + _node_branches(
            node.right, schema, views, unfold_views, factory
        )

    if isinstance(node, DifferenceNode):
        raise UnsupportedQueryError(
            "plans with set difference express FO queries; use plan_to_fo"
        )

    raise PlanError(f"unknown plan node type {type(node).__name__}")


# --------------------------------------------------------------------------- #
# Plan -> FO
# --------------------------------------------------------------------------- #


def plan_to_fo(
    plan: PlanNode,
    schema: DatabaseSchema,
    views: ViewSet | None = None,
    unfold_views: bool = True,
) -> tuple[FOQuery, tuple[Term, ...]]:
    """The FO query expressed by an arbitrary plan.

    Returns ``(formula, output_terms)`` where ``output_terms`` corresponds
    positionally to ``plan.attributes``; the free variables of ``formula`` are
    exactly the variables among ``output_terms``.
    """
    factory = FreshVariableFactory(prefix="f")
    return _node_fo(plan, schema, views, unfold_views, factory)


def _align_to(
    formula: FOQuery,
    head_terms: Sequence[Term],
    targets: Sequence[Variable],
) -> FOQuery:
    """Re-express ``formula`` so its output variables are exactly ``targets``."""
    equalities = [FOEquality(target, term) for target, term in zip(targets, head_terms)]
    old_variables = sorted(
        {t for t in head_terms if isinstance(t, Variable) and t not in set(targets)},
        key=lambda v: v.name,
    )
    return exists(old_variables, conj(formula, *equalities))


def _node_fo(
    node: PlanNode,
    schema: DatabaseSchema,
    views: ViewSet | None,
    unfold_views: bool,
    factory: FreshVariableFactory,
) -> tuple[FOQuery, tuple[Term, ...]]:
    if isinstance(node, ConstantScan):
        return FOTrue(), (Constant(node.value),)

    if isinstance(node, ViewScan):
        head = factory.fresh_many(len(node.view_attributes), hint="v")
        if not unfold_views:
            return FOAtom(node.view_name, head), tuple(head)
        if views is None or node.view_name not in views:
            raise PlanError(
                f"cannot unfold unknown view {node.view_name!r}; pass the ViewSet"
            )
        view = views.view(node.view_name)
        # Rectify first so the view's bound variables are registered with the
        # factory and can never clash with variables introduced elsewhere.
        definition = rectify(view.as_fo(), factory)
        # Rename the view's head variables onto the fresh output variables and
        # close off the remaining free variables.
        substitution: dict[Term, Term] = {}
        residual_equalities: list[FOQuery] = []
        for target, term in zip(head, view.head):
            if isinstance(term, Variable) and term not in substitution:
                substitution[term] = target
            else:
                residual_equalities.append(FOEquality(target, substitution.get(term, term)))
        formula = definition.substitute(substitution)
        leftovers = sorted(
            formula.free_variables - set(head), key=lambda v: v.name
        )
        return exists(leftovers, conj(formula, *residual_equalities)), tuple(head)

    if isinstance(node, FetchNode):
        if node.child is None:
            child_formula: FOQuery = FOTrue()
            child_head: tuple[Term, ...] = ()
            child_attributes: tuple[str, ...] = ()
        else:
            child_formula, child_head = _node_fo(
                node.child, schema, views, unfold_views, factory
            )
            child_attributes = node.child.attributes
        relation = schema.relation(node.relation)
        terms: list[Term] = []
        y_terms: dict[str, Term] = {}
        hidden: list[Variable] = []
        for attribute in relation.attributes:
            if attribute in node.x_attrs:
                position = child_attributes.index(attribute)
                terms.append(child_head[position])
            elif attribute in node.y_attrs:
                fresh = factory.fresh(attribute)
                y_terms[attribute] = fresh
                terms.append(fresh)
            else:
                fresh = factory.fresh(attribute)
                hidden.append(fresh)
                terms.append(fresh)
        head: list[Term] = []
        for attribute in node.attributes:
            if attribute in node.x_attrs:
                position = child_attributes.index(attribute)
                head.append(child_head[position])
            else:
                head.append(y_terms[attribute])
        formula = conj(child_formula, FOAtom(node.relation, terms))
        return exists(hidden, formula), tuple(head)

    if isinstance(node, ProjectNode):
        child_formula, child_head = _node_fo(node.child, schema, views, unfold_views, factory)
        kept_positions = [node.child.attributes.index(a) for a in node.kept]
        kept_terms = tuple(child_head[p] for p in kept_positions)
        kept_variables = {t for t in kept_terms if isinstance(t, Variable)}
        dropped = sorted(
            {
                t
                for t in child_head
                if isinstance(t, Variable) and t not in kept_variables
            },
            key=lambda v: v.name,
        )
        return exists(dropped, child_formula), kept_terms

    if isinstance(node, SelectNode):
        child_formula, child_head = _node_fo(node.child, schema, views, unfold_views, factory)
        conditions: list[FOQuery] = []
        for predicate in node.predicates:
            if isinstance(predicate, AttributeEqualsConstant):
                position = node.child.attributes.index(predicate.attribute)
                conditions.append(
                    FOEquality(child_head[position], Constant(predicate.value), predicate.negated)
                )
            else:
                left = child_head[node.child.attributes.index(predicate.left)]
                right = child_head[node.child.attributes.index(predicate.right)]
                conditions.append(FOEquality(left, right, predicate.negated))
        return conj(child_formula, *conditions), child_head

    if isinstance(node, RenameNode):
        return _node_fo(node.child, schema, views, unfold_views, factory)

    if isinstance(node, ProductNode):
        left_formula, left_head = _node_fo(node.left, schema, views, unfold_views, factory)
        right_formula, right_head = _node_fo(node.right, schema, views, unfold_views, factory)
        return conj(left_formula, right_formula), left_head + right_head

    if isinstance(node, (UnionNode, DifferenceNode)):
        left_formula, left_head = _node_fo(node.left, schema, views, unfold_views, factory)
        right_formula, right_head = _node_fo(node.right, schema, views, unfold_views, factory)
        targets = factory.fresh_many(len(node.attributes), hint="u")
        aligned_left = _align_to(left_formula, left_head, targets)
        aligned_right = _align_to(right_formula, right_head, targets)
        if isinstance(node, UnionNode):
            return disj(aligned_left, aligned_right), tuple(targets)
        return conj(aligned_left, neg(aligned_right)), tuple(targets)

    raise PlanError(f"unknown plan node type {type(node).__name__}")


# --------------------------------------------------------------------------- #
# View unfolding inside queries
# --------------------------------------------------------------------------- #


def unfold_view_atoms(query: QueryLike, views: ViewSet, name: str | None = None) -> UnionQuery:
    """Replace atoms over view relations by the view definitions.

    The input is a CQ/UCQ whose atoms may reference view names (the virtual
    relations of ``views.extended_schema``); the output is a UCQ over base
    relations only.  FO-defined views cannot be unfolded into a UCQ and raise
    :class:`UnsupportedQueryError`.
    """
    union = as_union(query)
    factory = FreshVariableFactory(
        used=[v.name for v in union.variables], prefix="u"
    )
    result: list[ConjunctiveQuery] = []
    for disjunct in union.disjuncts:
        expansions = [
            ConjunctiveQuery(head=disjunct.head, atoms=(), equalities=disjunct.equalities)
        ]
        for atom in disjunct.atoms:
            if atom.relation in views:
                view = views.view(atom.relation)
                view_disjuncts = view.as_ucq().disjuncts
                new_expansions = []
                for partial in expansions:
                    for view_disjunct in view_disjuncts:
                        renamed, _ = view_disjunct.rename_apart(factory)
                        alignment = tuple(
                            EqualityAtom(atom_term, view_term)
                            for atom_term, view_term in zip(atom.terms, renamed.head)
                        )
                        new_expansions.append(
                            ConjunctiveQuery(
                                head=partial.head,
                                atoms=partial.atoms + renamed.atoms,
                                equalities=partial.equalities
                                + renamed.equalities
                                + alignment,
                            )
                        )
                expansions = new_expansions
            else:
                expansions = [
                    ConjunctiveQuery(
                        head=partial.head,
                        atoms=partial.atoms + (atom,),
                        equalities=partial.equalities,
                    )
                    for partial in expansions
                ]
        result.extend(expansions)
    return UnionQuery(
        tuple(
            ConjunctiveQuery(
                head=branch.head,
                atoms=branch.atoms,
                equalities=branch.equalities,
                name=f"{query.name}_unfolded_{index}",
            )
            for index, branch in enumerate(result)
        ),
        name=name if name is not None else f"{query.name}_unfolded",
    )
