"""Execution of query plans with I/O accounting.

The executor realises the operational semantics of Section 2: intermediate
relations are computed bottom-up; ``fetch`` nodes retrieve data from the
underlying database *only* through the index of a covering access constraint,
and the executor records the bag ``Dξ`` of tuples so fetched.  Scanning cached
views is free — that is precisely the point of bounded rewriting using views.

The executor is deliberately decoupled from the storage layer: any *fetch
provider* exposing ``fetch(constraint, key) -> frozenset[tuple]`` works
(:class:`repro.storage.indexes.IndexSet` is the standard one).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Collection, Mapping, Protocol, Sequence

from ..algebra.schema import DatabaseSchema
from ..algebra.terms import Param
from ..errors import PlanError
from .access import AccessConstraint, AccessSchema
from .plans import (
    AttributeEqualsAttribute,
    AttributeEqualsConstant,
    ConstantScan,
    DifferenceNode,
    FetchNode,
    PlanNode,
    ProductNode,
    ProjectNode,
    RenameNode,
    SelectNode,
    UnionNode,
    ViewScan,
)


class FetchProvider(Protocol):
    """Anything able to serve index lookups for access constraints."""

    def fetch(self, constraint: AccessConstraint, key: Sequence[object]) -> frozenset[tuple]:
        """Return ``D_{R:XY}(X = key)`` for the constraint's relation."""
        ...


@dataclass
class FetchStats:
    """Accounting of the data fetched from the underlying database (``Dξ``).

    ``tuples_fetched`` counts every tuple returned by every index lookup (bag
    semantics, as in the paper's definition of ``Dξ``); ``fetch_calls`` counts
    the index lookups themselves; ``per_relation`` breaks the tuple count down
    by base relation.  View scans contribute ``view_tuples_scanned`` but no
    I/O.
    """

    fetch_calls: int = 0
    tuples_fetched: int = 0
    per_relation: dict[str, int] = field(default_factory=dict)
    view_tuples_scanned: int = 0

    def record_fetch(self, relation: str, count: int) -> None:
        self.fetch_calls += 1
        self.tuples_fetched += count
        self.per_relation[relation] = self.per_relation.get(relation, 0) + count

    def record_view_scan(self, count: int) -> None:
        self.view_tuples_scanned += count

    def merged_with(self, other: "FetchStats") -> "FetchStats":
        merged = FetchStats(
            fetch_calls=self.fetch_calls + other.fetch_calls,
            tuples_fetched=self.tuples_fetched + other.tuples_fetched,
            per_relation=dict(self.per_relation),
            view_tuples_scanned=self.view_tuples_scanned + other.view_tuples_scanned,
        )
        for relation, count in other.per_relation.items():
            merged.per_relation[relation] = merged.per_relation.get(relation, 0) + count
        return merged


@dataclass
class ExecutionResult:
    """Result of executing a plan: output rows plus I/O statistics."""

    attributes: tuple[str, ...]
    rows: frozenset[tuple]
    stats: FetchStats

    def __len__(self) -> int:
        return len(self.rows)


class PlanExecutor:
    """Executes plans against a fetch provider and a cache of view results."""

    def __init__(
        self,
        schema: DatabaseSchema,
        access_schema: AccessSchema,
        provider: FetchProvider,
        view_cache: Mapping[str, Collection[tuple]] | None = None,
    ) -> None:
        self.schema = schema
        self.access_schema = access_schema
        self.provider = provider
        self.view_cache = {
            name: rows if isinstance(rows, frozenset) else frozenset(map(tuple, rows))
            for name, rows in (view_cache or {}).items()
        }

    # ------------------------------------------------------------------ #

    def execute(self, plan: PlanNode) -> ExecutionResult:
        """Execute ``plan`` bottom-up, recording the fetched bag ``Dξ``.

        Plans containing unbound :class:`~repro.algebra.terms.Param`
        placeholders are rejected at the node that carries them (no eager
        whole-tree walk on the hot path); bind them with :func:`bind_plan`
        or execute through a ``PreparedQuery``.
        """
        stats = FetchStats()
        rows = self._evaluate(plan, stats)
        return ExecutionResult(attributes=plan.attributes, rows=frozenset(rows), stats=stats)

    # ------------------------------------------------------------------ #

    def _evaluate(self, node: PlanNode, stats: FetchStats) -> set[tuple]:
        if isinstance(node, ConstantScan):
            if isinstance(node.value, Param):  # defense for direct _evaluate users
                raise PlanError(f"plan contains the unbound parameter {node.value}")
            return {(node.value,)}

        if isinstance(node, ViewScan):
            if node.view_name not in self.view_cache:
                raise PlanError(
                    f"view {node.view_name!r} is not materialised in the view cache"
                )
            rows = set(self.view_cache[node.view_name])
            stats.record_view_scan(len(rows))
            return rows

        if isinstance(node, FetchNode):
            return self._evaluate_fetch(node, stats)

        if isinstance(node, ProjectNode):
            child_rows = self._evaluate(node.child, stats)
            positions = [node.child.attributes.index(a) for a in node.kept]
            return {tuple(row[p] for p in positions) for row in child_rows}

        if isinstance(node, SelectNode):
            self._guard_predicates(node.predicates)
            if isinstance(node.child, ProductNode):
                return self._evaluate_join(node, stats)
            child_rows = self._evaluate(node.child, stats)
            attributes = node.child.attributes
            return {row for row in child_rows if self._passes(row, attributes, node)}

        if isinstance(node, RenameNode):
            return self._evaluate(node.child, stats)

        if isinstance(node, ProductNode):
            left_rows = self._evaluate(node.left, stats)
            right_rows = self._evaluate(node.right, stats)
            return {left + right for left in left_rows for right in right_rows}

        if isinstance(node, UnionNode):
            return self._evaluate(node.left, stats) | self._evaluate(node.right, stats)

        if isinstance(node, DifferenceNode):
            return self._evaluate(node.left, stats) - self._evaluate(node.right, stats)

        raise PlanError(f"unknown plan node type {type(node).__name__}")

    def _evaluate_join(self, node: SelectNode, stats: FetchStats) -> set[tuple]:
        """Selection over a product, evaluated as a hash join when possible.

        Plans built by :func:`repro.core.plans.join_on_shared_attributes` have
        the shape ``σ[l = r](left × right)``; materialising the full product
        first is quadratic where a hash join is linear.  Predicates that do
        not equate a left attribute with a right attribute (and the negated
        ones) are applied as a residual filter, so the result is identical to
        the naive evaluation.
        """
        product = node.child
        assert isinstance(product, ProductNode)
        left_attrs = product.left.attributes
        right_attrs = product.right.attributes
        join_pairs: list[tuple[int, int]] = []
        residual: list = []
        for predicate in node.predicates:
            if isinstance(predicate, AttributeEqualsAttribute) and not predicate.negated:
                if predicate.left in left_attrs and predicate.right in right_attrs:
                    join_pairs.append(
                        (left_attrs.index(predicate.left), right_attrs.index(predicate.right))
                    )
                    continue
                if predicate.right in left_attrs and predicate.left in right_attrs:
                    join_pairs.append(
                        (left_attrs.index(predicate.right), right_attrs.index(predicate.left))
                    )
                    continue
            residual.append(predicate)

        left_rows = self._evaluate(product.left, stats)
        right_rows = self._evaluate(product.right, stats)
        if not join_pairs:
            joined = (l + r for l in left_rows for r in right_rows)
        else:
            left_positions = [p for p, _ in join_pairs]
            right_positions = [p for _, p in join_pairs]
            buckets: dict[tuple, list[tuple]] = {}
            for row in right_rows:
                buckets.setdefault(tuple(row[p] for p in right_positions), []).append(row)
            joined = (
                l + r
                for l in left_rows
                for r in buckets.get(tuple(l[p] for p in left_positions), ())
            )
        if not residual:
            return set(joined)
        attributes = product.attributes
        filtered = SelectNode(product, tuple(residual))
        return {row for row in joined if self._passes(row, attributes, filtered)}

    def _evaluate_fetch(self, node: FetchNode, stats: FetchStats) -> set[tuple]:
        constraint = node.covering_constraint(self.access_schema)
        if constraint is None:
            raise PlanError(
                f"fetch on {node.relation!r} has no covering access constraint; "
                "the plan does not conform to the access schema"
            )
        if node.child is None:
            keys: set[tuple] = {()}
        else:
            child_rows = self._evaluate(node.child, stats)
            child_attributes = node.child.attributes
            # Distinct X-values drive the index lookups (S_j has set semantics).
            key_positions = [child_attributes.index(a) for a in constraint.x]
            keys = {tuple(row[p] for p in key_positions) for row in child_rows}

        # Returned tuples are over constraint.x + constraint-only-y attributes;
        # project them onto the fetch node's output attributes.
        provider_attributes = constraint.output_attributes
        output_positions = [provider_attributes.index(a) for a in node.attributes]

        result: set[tuple] = set()
        for key in keys:
            fetched = self.provider.fetch(constraint, key)
            stats.record_fetch(node.relation, len(fetched))
            for row in fetched:
                result.add(tuple(row[p] for p in output_positions))
        return result

    @staticmethod
    def _guard_predicates(predicates) -> None:
        """Reject unbound parameters once per node, not once per row."""
        for predicate in predicates:
            if isinstance(predicate, AttributeEqualsConstant) and isinstance(
                predicate.value, Param
            ):
                raise PlanError(f"plan contains the unbound parameter {predicate.value}")

    @staticmethod
    def _passes(row: tuple, attributes: tuple[str, ...], node: SelectNode) -> bool:
        for predicate in node.predicates:
            if isinstance(predicate, AttributeEqualsConstant):
                value = row[attributes.index(predicate.attribute)]
                if (value == predicate.value) == predicate.negated:
                    return False
            elif isinstance(predicate, AttributeEqualsAttribute):
                left = row[attributes.index(predicate.left)]
                right = row[attributes.index(predicate.right)]
                if (left == right) == predicate.negated:
                    return False
            else:  # pragma: no cover - defensive
                raise PlanError(f"unknown predicate type {type(predicate).__name__}")
        return True


def execute_plan(
    plan: PlanNode,
    schema: DatabaseSchema,
    access_schema: AccessSchema,
    provider: FetchProvider,
    view_cache: Mapping[str, Collection[tuple]] | None = None,
) -> ExecutionResult:
    """One-shot convenience wrapper around :class:`PlanExecutor`."""
    executor = PlanExecutor(schema, access_schema, provider, view_cache)
    return executor.execute(plan)


# --------------------------------------------------------------------------- #
# Prepared-query support: named parameters inside plans
# --------------------------------------------------------------------------- #


def plan_parameters(plan: PlanNode) -> frozenset[str]:
    """The names of all :class:`~repro.algebra.terms.Param` placeholders in a plan.

    Parameters can only occur where the plan carries constant values: in
    :class:`ConstantScan` leaves and in ``attribute = constant`` selection
    predicates.
    """
    names: set[str] = set()
    for node in plan.iter_nodes():
        if isinstance(node, ConstantScan) and isinstance(node.value, Param):
            names.add(node.value.name)
        elif isinstance(node, SelectNode):
            for predicate in node.predicates:
                if isinstance(predicate, AttributeEqualsConstant) and isinstance(
                    predicate.value, Param
                ):
                    names.add(predicate.value.name)
    return frozenset(names)


def bind_plan(plan: PlanNode, params: Mapping[str, object]) -> PlanNode:
    """Substitute concrete values for the named parameters of a plan.

    Returns a structurally identical plan with every
    :class:`~repro.algebra.terms.Param` occurrence replaced by
    ``params[name]``; nodes without parameters are reused as-is.  Raises
    :class:`~repro.errors.PlanError` when a parameter is missing from
    ``params`` — executing a half-bound plan would silently return no rows.
    """
    missing = sorted(plan_parameters(plan) - set(params))
    if missing:
        raise PlanError(f"plan parameters {missing} are unbound")

    def value_of(value: object) -> object:
        return params[value.name] if isinstance(value, Param) else value

    def rebuild(node: PlanNode) -> PlanNode:
        if isinstance(node, ConstantScan):
            if isinstance(node.value, Param):
                return ConstantScan(value_of(node.value), attribute=node.attribute)
            return node
        if isinstance(node, ViewScan):
            return node
        if isinstance(node, FetchNode):
            if node.child is None:
                return node
            child = rebuild(node.child)
            if child is node.child:
                return node
            return FetchNode(child, node.relation, node.x_attrs, node.y_attrs)
        if isinstance(node, SelectNode):
            child = rebuild(node.child)
            predicates = tuple(
                AttributeEqualsConstant(p.attribute, value_of(p.value), p.negated)
                if isinstance(p, AttributeEqualsConstant) and isinstance(p.value, Param)
                else p
                for p in node.predicates
            )
            if child is node.child and predicates == node.predicates:
                return node
            return SelectNode(child, predicates)
        if isinstance(node, ProjectNode):
            child = rebuild(node.child)
            return node if child is node.child else ProjectNode(child, node.kept)
        if isinstance(node, RenameNode):
            child = rebuild(node.child)
            return node if child is node.child else RenameNode(child, dict(node.mapping))
        if isinstance(node, (ProductNode, UnionNode, DifferenceNode)):
            left, right = rebuild(node.left), rebuild(node.right)
            if left is node.left and right is node.right:
                return node
            return type(node)(left, right)
        raise PlanError(f"unknown plan node type {type(node).__name__}")

    return rebuild(plan)
