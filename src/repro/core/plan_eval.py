"""Execution of query plans with I/O accounting.

The executor realises the operational semantics of Section 2: ``fetch`` nodes
retrieve data from the underlying database *only* through the index of a
covering access constraint, and the execution records the bag ``Dξ`` of
tuples so fetched.  Scanning cached views is free — that is precisely the
point of bounded rewriting using views.

Since the kernel refactor, :class:`PlanExecutor` is a thin *compiler*: a plan
tree is translated (:mod:`repro.exec.plan_compiler`) into a tree of
iterator-based physical operators (:mod:`repro.exec.operators`) — the same
kernel the CQ evaluators and the in-memory service backend run on — and the
operator tree is drained into the result set.  The ``Dξ`` accounting is
bit-identical to the historical bottom-up evaluator's: index lookups are
keyed on distinct ``X``-values and charged per returned tuple, view scans
are counted once per plan occurrence.

The executor is deliberately decoupled from the storage layer: any *fetch
provider* exposing ``fetch(constraint, key) -> frozenset[tuple]`` works
(:class:`repro.storage.indexes.IndexSet` is the standard one).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Collection, Mapping, Protocol, Sequence

from ..algebra.schema import DatabaseSchema
from ..algebra.terms import Param
from ..errors import PlanError
from ..exec.iometer import IOMeter
from ..exec.operators import Operator
from ..exec.plan_compiler import compile_plan
from .access import AccessConstraint, AccessSchema
from .plans import (
    AttributeEqualsConstant,
    ConstantScan,
    DifferenceNode,
    FetchNode,
    PlanNode,
    ProductNode,
    ProjectNode,
    RenameNode,
    SelectNode,
    UnionNode,
    ViewScan,
)


class FetchProvider(Protocol):
    """Anything able to serve index lookups for access constraints."""

    def fetch(self, constraint: AccessConstraint, key: Sequence[object]) -> frozenset[tuple]:
        """Return ``D_{R:XY}(X = key)`` for the constraint's relation."""
        ...


#: The plan executor's historical accounting class is the kernel's meter.
FetchStats = IOMeter


@dataclass
class ExecutionResult:
    """Result of executing a plan: output rows plus I/O statistics."""

    attributes: tuple[str, ...]
    rows: frozenset[tuple]
    stats: FetchStats

    def __len__(self) -> int:
        return len(self.rows)


class PlanExecutor:
    """Executes plans against a fetch provider and a cache of view results."""

    def __init__(
        self,
        schema: DatabaseSchema,
        access_schema: AccessSchema,
        provider: FetchProvider,
        view_cache: Mapping[str, Collection[tuple]] | None = None,
    ) -> None:
        self.schema = schema
        self.access_schema = access_schema
        self.provider = provider
        self.view_cache = {
            name: rows if isinstance(rows, frozenset) else frozenset(map(tuple, rows))
            for name, rows in (view_cache or {}).items()
        }

    # ------------------------------------------------------------------ #

    def compile(self, plan: PlanNode, meter: FetchStats | None = None) -> Operator:
        """Compile ``plan`` into a physical operator tree charging ``meter``.

        Exposed for tooling and tests; :meth:`execute` is compile-and-drain.
        Providers exposing ``bound_to(meter)`` (snapshot readers) are bound
        to the execution's meter first, so per-execution accounting beyond
        the fetch protocol — shard touches — lands on the same meter.
        """
        meter = meter if meter is not None else FetchStats()
        provider = self.provider
        bind = getattr(provider, "bound_to", None)
        if bind is not None:
            provider = bind(meter)
        return compile_plan(
            plan,
            self.access_schema,
            provider,
            self.view_cache,
            meter,
        )

    def execute(self, plan: PlanNode) -> ExecutionResult:
        """Compile ``plan`` to operators and drain them, recording ``Dξ``.

        Plans containing unbound :class:`~repro.algebra.terms.Param`
        placeholders are rejected at compile time, before any data is
        touched; bind them with :func:`bind_plan` or execute through a
        ``PreparedQuery``.
        """
        stats = FetchStats()
        operator = self.compile(plan, stats)
        rows = frozenset(operator.rows())
        return ExecutionResult(attributes=plan.attributes, rows=rows, stats=stats)


def execute_plan(
    plan: PlanNode,
    schema: DatabaseSchema,
    access_schema: AccessSchema,
    provider: FetchProvider,
    view_cache: Mapping[str, Collection[tuple]] | None = None,
) -> ExecutionResult:
    """One-shot convenience wrapper around :class:`PlanExecutor`."""
    executor = PlanExecutor(schema, access_schema, provider, view_cache)
    return executor.execute(plan)


# --------------------------------------------------------------------------- #
# Prepared-query support: named parameters inside plans
# --------------------------------------------------------------------------- #


def plan_parameters(plan: PlanNode) -> frozenset[str]:
    """The names of all :class:`~repro.algebra.terms.Param` placeholders in a plan.

    Parameters can only occur where the plan carries constant values: in
    :class:`ConstantScan` leaves and in ``attribute = constant`` selection
    predicates.
    """
    names: set[str] = set()
    for node in plan.iter_nodes():
        if isinstance(node, ConstantScan) and isinstance(node.value, Param):
            names.add(node.value.name)
        elif isinstance(node, SelectNode):
            for predicate in node.predicates:
                if isinstance(predicate, AttributeEqualsConstant) and isinstance(
                    predicate.value, Param
                ):
                    names.add(predicate.value.name)
    return frozenset(names)


def bind_plan(plan: PlanNode, params: Mapping[str, object]) -> PlanNode:
    """Substitute concrete values for the named parameters of a plan.

    Returns a structurally identical plan with every
    :class:`~repro.algebra.terms.Param` occurrence replaced by
    ``params[name]``; nodes without parameters are reused as-is.  Raises
    :class:`~repro.errors.PlanError` when a parameter is missing from
    ``params`` — executing a half-bound plan would silently return no rows.
    """
    missing = sorted(plan_parameters(plan) - set(params))
    if missing:
        raise PlanError(f"plan parameters {missing} are unbound")

    def value_of(value: object) -> object:
        return params[value.name] if isinstance(value, Param) else value

    def rebuild(node: PlanNode) -> PlanNode:
        if isinstance(node, ConstantScan):
            if isinstance(node.value, Param):
                return ConstantScan(value_of(node.value), attribute=node.attribute)
            return node
        if isinstance(node, ViewScan):
            return node
        if isinstance(node, FetchNode):
            if node.child is None:
                return node
            child = rebuild(node.child)
            if child is node.child:
                return node
            return FetchNode(child, node.relation, node.x_attrs, node.y_attrs)
        if isinstance(node, SelectNode):
            child = rebuild(node.child)
            predicates = tuple(
                AttributeEqualsConstant(p.attribute, value_of(p.value), p.negated)
                if isinstance(p, AttributeEqualsConstant) and isinstance(p.value, Param)
                else p
                for p in node.predicates
            )
            if child is node.child and predicates == node.predicates:
                return node
            return SelectNode(child, predicates)
        if isinstance(node, ProjectNode):
            child = rebuild(node.child)
            return node if child is node.child else ProjectNode(child, node.kept)
        if isinstance(node, RenameNode):
            child = rebuild(node.child)
            return node if child is node.child else RenameNode(child, dict(node.mapping))
        if isinstance(node, (ProductNode, UnionNode, DifferenceNode)):
            left, right = rebuild(node.left), rebuild(node.right)
            if left is node.left and right is node.right:
                return node
            return type(node)(left, right)
        raise PlanError(f"unknown plan node type {type(node).__name__}")

    return rebuild(plan)
