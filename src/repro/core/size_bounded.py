"""Size-bounded queries: an effective syntax for FO queries with bounded output.

The bounded output problem is undecidable for FO (Theorem 3.4).  Section 5.3
therefore introduces *size-bounded queries*: FO queries of the shape

    Q(x̄) = Q'(x̄) ∧ ∀x̄1, ..., x̄_{K+1} ( Q'(x̄1) ∧ ... ∧ Q'(x̄_{K+1})
                                           → ∨_{i≠j} x̄i = x̄j )

for some natural number ``K`` and FO query ``Q'``.  Theorem 5.2: every FO
query with bounded output under ``A`` is A-equivalent to a size-bounded
query; every size-bounded query has bounded output (by at most ``K``); and
membership in the class is checkable in PTIME — it is purely syntactic.

This module provides the constructor :func:`make_size_bounded`, the
recogniser :func:`is_size_bounded` / :func:`size_bound_of` (which also
returns the bound ``K``), and the guard builder used by both.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from ..algebra.fo import (
    FOAnd,
    FOEquality,
    FOExists,
    FOForAll,
    FONot,
    FOOr,
    FOQuery,
    conj,
    disj,
)
from ..algebra.terms import Variable
from ..errors import QueryError


def _tuple_equality(left: Sequence[Variable], right: Sequence[Variable]) -> FOQuery:
    """``x̄_i = x̄_j`` component-wise (a conjunction, or a single equality)."""
    equalities = [FOEquality(a, b) for a, b in zip(left, right)]
    return conj(*equalities)


def _copies(head: Sequence[Variable], count: int, prefix: str) -> list[tuple[Variable, ...]]:
    return [
        tuple(Variable(f"{prefix}{index}_{variable.name}") for variable in head)
        for index in range(count)
    ]


def size_bounded_guard(inner: FOQuery, head: Sequence[Variable], bound: int) -> FOQuery:
    """The universally quantified guard asserting ``|Q'| <= bound``.

    ``∀x̄1..x̄_{K+1} ( ∧_i Q'(x̄i) → ∨_{i<j} x̄i = x̄j )`` with the implication
    written as ``¬(∧_i Q'(x̄i)) ∨ ∨_{i<j} x̄i = x̄j``.
    """
    head = tuple(head)
    if bound < 0:
        raise QueryError("size bound must be a natural number")
    copies = _copies(head, bound + 1, prefix="_sb")
    premise_conjuncts = []
    for copy in copies:
        substitution = dict(zip(head, copy))
        premise_conjuncts.append(inner.substitute(substitution))
    premise = conj(*premise_conjuncts)
    equality_disjuncts = [
        _tuple_equality(copies[i], copies[j])
        for i in range(len(copies))
        for j in range(i + 1, len(copies))
    ]
    body = disj(FONot(premise), *equality_disjuncts)
    all_copy_variables = [variable for copy in copies for variable in copy]
    return FOForAll(tuple(all_copy_variables), body)


def make_size_bounded(inner: FOQuery, head: Sequence[Variable], bound: int) -> FOQuery:
    """Construct the size-bounded query for ``inner`` with output bound ``bound``.

    When ``inner`` has at most ``bound`` answers on an instance, the guard is
    true and the result coincides with ``inner``; otherwise the result is
    empty — so the result always has at most ``bound`` answers.
    """
    head = tuple(head)
    if not inner.free_variables <= set(head):
        missing = inner.free_variables - set(head)
        raise QueryError(f"head does not cover free variables: {sorted(str(v) for v in missing)}")
    return FOAnd((inner, size_bounded_guard(inner, head, bound)))


@dataclass(frozen=True)
class SizeBoundedMatch:
    """Successful recognition of the size-bounded shape."""

    inner: FOQuery
    bound: int


def match_size_bounded(query: FOQuery, head: Sequence[Variable]) -> SizeBoundedMatch | None:
    """Recognise the canonical size-bounded shape (PTIME, purely syntactic).

    The recogniser accepts exactly the queries produced by
    :func:`make_size_bounded` (conjunct order as constructed); it returns the
    inner query and the bound ``K`` on success, ``None`` otherwise.
    """
    head = tuple(head)
    if not isinstance(query, FOAnd) or len(query.children) != 2:
        return None
    inner, guard = query.children
    if not isinstance(guard, FOForAll):
        return None
    if head and len(guard.variables) % len(head) != 0:
        return None
    copies_count = len(guard.variables) // len(head) if head else 0
    if head:
        if copies_count < 1:
            return None
        bound = copies_count - 1
    else:
        # Boolean inner query: output size is at most 1 by definition; accept
        # a guard over zero variables with bound 0 only if it matches.
        bound = 0
    expected = size_bounded_guard(inner, head, bound)
    if expected != guard:
        return None
    return SizeBoundedMatch(inner=inner, bound=bound)


def is_size_bounded(query: FOQuery, head: Sequence[Variable]) -> bool:
    """Is ``query`` a size-bounded query (Theorem 5.2(c))?"""
    return match_size_bounded(query, head) is not None


def size_bound_of(query: FOQuery, head: Sequence[Variable]) -> int | None:
    """The output bound ``K`` of a size-bounded query, or ``None``."""
    match = match_size_bounded(query, head)
    return match.bound if match is not None else None
