"""Conformance of query plans to an access schema (Section 2, Lemma 3.8).

A plan ``ξ`` *conforms to* ``A`` when

(a) every ``fetch(X ∈ S, R, Y)`` node is covered by some access constraint
    ``R(X -> Y', N)`` with ``Y ⊆ X ∪ Y'``; and
(b) there is a constant ``N_ξ`` bounding the bag ``Dξ`` of fetched tuples over
    *all* instances ``D |= A`` — equivalently, the input ``S`` of every fetch
    has bounded output under ``A``.

Condition (b) is the interesting one: the sub-plan feeding a fetch is unfolded
into a query (views substituted by their definitions) and checked with the
bounded-output procedure of Theorem 3.4.  For CQ/UCQ/∃FO+ sub-plans this is
exact (coNP in general, PTIME for constant-size plans, PTIME under FD-only
schemas — Lemmas 4.3(a) and 4.6); sub-plans that genuinely need FO (set
difference below a fetch) are rejected conservatively because FO bounded
output is undecidable.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..algebra.schema import DatabaseSchema
from ..algebra.views import ViewSet
from ..errors import BudgetExceededError, PlanError, UnsupportedQueryError
from .access import AccessSchema
from .bounded_output import has_bounded_output, output_bound_estimate
from .element_queries import ElementQueryBudget
from .plans import FetchNode, PlanNode
from .rewriting import plan_to_ucq


@dataclass
class ConformanceReport:
    """Outcome of a conformance check.

    ``conforms`` is the decision; ``reasons`` explains every failed fetch
    node; ``fetch_bound`` is an upper bound on ``|Dξ|`` over all instances
    satisfying the access schema (``None`` when it could not be computed,
    e.g. because only the decision was requested).
    """

    conforms: bool
    reasons: list[str] = field(default_factory=list)
    fetch_bound: int | None = None


def conforms_to(
    plan: PlanNode,
    access_schema: AccessSchema,
    schema: DatabaseSchema,
    views: ViewSet | None = None,
    budget: ElementQueryBudget | None = None,
    compute_bound: bool = False,
) -> ConformanceReport:
    """Check whether ``plan`` conforms to ``access_schema``.

    ``views`` is needed to unfold view scans occurring below fetch nodes; when
    the plan scans views that are not provided, those fetches are reported as
    unverifiable.
    """
    reasons: list[str] = []
    total_bound: int | None = 0 if compute_bound else None

    for fetch in plan.fetch_nodes():
        constraint = fetch.covering_constraint(access_schema)
        if constraint is None:
            reasons.append(
                f"no access constraint covers fetch({fetch.x_attrs} ∈ _, "
                f"{fetch.relation}, {fetch.y_attrs})"
            )
            continue
        if not fetch.x_attrs:
            # fetch(∅, R, Y): a single index lookup returning at most N tuples.
            if total_bound is not None:
                total_bound += constraint.bound
            continue
        bound_ok, reason, input_bound = _input_has_bounded_output(
            fetch, access_schema, schema, views, budget, compute_bound
        )
        if not bound_ok:
            reasons.append(reason)
        elif total_bound is not None:
            if input_bound is None:
                total_bound = None
            else:
                total_bound += input_bound * constraint.bound

    report_bound = total_bound if (compute_bound and not reasons) else None
    return ConformanceReport(conforms=not reasons, reasons=reasons, fetch_bound=report_bound)


def _input_has_bounded_output(
    fetch: FetchNode,
    access_schema: AccessSchema,
    schema: DatabaseSchema,
    views: ViewSet | None,
    budget: ElementQueryBudget | None,
    compute_bound: bool,
) -> tuple[bool, str, int | None]:
    """Does the sub-plan feeding ``fetch`` have bounded output under ``A``?"""
    try:
        input_query = plan_to_ucq(fetch.child, schema, views, unfold_views=True)
    except (UnsupportedQueryError, PlanError) as exc:
        return (
            False,
            f"cannot verify bounded output of the input of fetch on {fetch.relation!r}: {exc}",
            None,
        )
    try:
        if compute_bound:
            bound = output_bound_estimate(input_query, access_schema, schema, budget)
            if bound is None:
                return (
                    False,
                    f"input of fetch on {fetch.relation!r} does not have bounded output under A",
                    None,
                )
            return True, "", bound
        if not has_bounded_output(input_query, access_schema, schema, budget):
            return (
                False,
                f"input of fetch on {fetch.relation!r} does not have bounded output under A",
                None,
            )
        return True, "", None
    except BudgetExceededError as exc:
        return (
            False,
            f"bounded-output check of the input of fetch on {fetch.relation!r} "
            f"exceeded its budget: {exc}",
            None,
        )
