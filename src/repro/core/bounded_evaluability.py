"""Bounded evaluability — answering a query without views (Fan et al. 2015).

Bounded rewriting using views generalises *bounded evaluability*: a query
``Q`` is boundedly evaluable under an access schema ``A`` when ``Q(D)`` can
be computed, for every ``D |= A``, from a fragment ``D_Q`` fetched through
the indices of ``A`` alone — no cached views.  The paper uses the notion
throughout its motivation ("under A0, query Q0 is *not* boundedly evaluable"
in Example 1.1) and its reductions; this module exposes it directly:

* :func:`is_boundedly_evaluable` — the exact decision, realised as VBRP with
  an empty view set (sound and complete relative to the enumerated plan
  vocabulary, exponential in ``M`` by necessity);
* :func:`is_effectively_bounded` — the PTIME *sufficient* check in the spirit
  of the "effectively bounded" syntactic class of [Cao et al. 2014]: every
  query variable must be reachable through the access constraints starting
  from the query's constants, and every atom must be coverable by a fetch
  whose key attributes are all reachable.  Queries passing this check are
  boundedly evaluable and the heuristic plan builder will find a plan for
  them (with ``V = ∅``).
* :func:`bounded_evaluability_report` — a diagnostic narrowing down *why* a
  query fails the syntactic check (which variables / atoms are the problem),
  which is what a practitioner needs in order to select views that repair it
  — the very workflow bounded rewriting using views is about.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..algebra.cq import ConjunctiveQuery
from ..algebra.schema import DatabaseSchema
from ..algebra.terms import Constant, Variable
from ..algebra.ucq import QueryLike, as_union
from ..algebra.views import ViewSet
from ..errors import UnsupportedQueryError
from .access import AccessSchema
from .bounded_output import covered_variables
from .element_queries import ElementQueryBudget
from .plans import CQ, PlanNode
from .vbrp import PlanSearchSpace, VBRPResult, decide_vbrp


# --------------------------------------------------------------------------- #
# Exact decision (via VBRP with V = ∅)
# --------------------------------------------------------------------------- #


def is_boundedly_evaluable(
    query: QueryLike,
    access_schema: AccessSchema,
    schema: DatabaseSchema,
    max_size: int,
    language: str = CQ,
    space: PlanSearchSpace | None = None,
    budget: ElementQueryBudget | None = None,
) -> VBRPResult:
    """Decide whether ``query`` has an ``M``-bounded plan using no views.

    Equivalent to ``decide_vbrp`` with an empty view set: bounded evaluability
    is the special case ``V = ∅`` of bounded rewriting.  The returned
    :class:`~repro.core.vbrp.VBRPResult` carries the witnessing plan when the
    answer is positive.
    """
    return decide_vbrp(
        query,
        ViewSet(),
        access_schema,
        schema,
        max_size=max_size,
        language=language,
        space=space,
        budget=budget,
    )


# --------------------------------------------------------------------------- #
# PTIME sufficient syntactic check
# --------------------------------------------------------------------------- #


@dataclass
class BoundedEvaluabilityReport:
    """Outcome of the syntactic bounded-evaluability check.

    ``effectively_bounded`` is the (sufficient, not necessary) decision.
    When negative, ``unreachable_variables`` lists variables no chain of
    access constraints can bound starting from the query's constants, and
    ``uncoverable_atoms`` lists atom indices for which no access constraint
    provides a usable fetch.  Both are the natural targets for view selection.
    """

    effectively_bounded: bool
    unreachable_variables: frozenset[Variable] = frozenset()
    uncoverable_atoms: tuple[int, ...] = ()
    reasons: list[str] = field(default_factory=list)


def _atom_coverable(
    atom_index: int,
    query: ConjunctiveQuery,
    access_schema: AccessSchema,
    schema: DatabaseSchema,
    reachable: frozenset[Variable],
) -> bool:
    """Is there a constraint whose key attributes are constants/reachable vars?"""
    atom = query.atoms[atom_index]
    relation = schema.relation(atom.relation)
    for constraint in access_schema.for_relation(atom.relation):
        x_positions = relation.positions(constraint.x)
        key_terms = [atom.terms[p] for p in x_positions]
        if all(isinstance(t, Constant) or t in reachable for t in key_terms):
            return True
    return False


def is_effectively_bounded(
    query: QueryLike,
    access_schema: AccessSchema,
    schema: DatabaseSchema,
) -> bool:
    """PTIME sufficient test for bounded evaluability (no views).

    Returns ``True`` only when every disjunct passes the check of
    :func:`bounded_evaluability_report`; a ``False`` answer is inconclusive
    (the exact procedure may still find a plan).
    """
    return bounded_evaluability_report(query, access_schema, schema).effectively_bounded


def bounded_evaluability_report(
    query: QueryLike,
    access_schema: AccessSchema,
    schema: DatabaseSchema,
) -> BoundedEvaluabilityReport:
    """Diagnostic version of :func:`is_effectively_bounded`.

    For each disjunct the check requires that (a) every variable of the query
    is covered (reachable through the constraints from the constants of the
    query, in the sense of ``cov(Q, A)``), and (b) every atom admits a fetch
    whose key attributes are constants or covered variables.  Together these
    guarantee a bounded plan: fetch the atoms in (any) coverage order and join.
    """
    union = as_union(query)
    unreachable: set[Variable] = set()
    uncoverable: list[int] = []
    reasons: list[str] = []
    for disjunct in union.disjuncts:
        if not disjunct.is_satisfiable():
            continue
        normalized = disjunct.normalize()
        reachable = covered_variables(normalized, access_schema, schema)
        missing = normalized.variables - reachable
        if missing:
            unreachable.update(missing)
            reasons.append(
                f"disjunct {disjunct.name!r}: variables "
                f"{sorted(v.name for v in missing)} are not covered by the access schema"
            )
        for index in range(len(normalized.atoms)):
            if not _atom_coverable(index, normalized, access_schema, schema, reachable):
                uncoverable.append(index)
                reasons.append(
                    f"disjunct {disjunct.name!r}: atom {normalized.atoms[index]} has no "
                    "access constraint with bound key attributes"
                )
    return BoundedEvaluabilityReport(
        effectively_bounded=not unreachable and not uncoverable,
        unreachable_variables=frozenset(unreachable),
        uncoverable_atoms=tuple(uncoverable),
        reasons=reasons,
    )


# --------------------------------------------------------------------------- #
# View suggestion: which variables a view must bind to repair boundedness
# --------------------------------------------------------------------------- #


def suggest_view_targets(
    query: QueryLike,
    access_schema: AccessSchema,
    schema: DatabaseSchema,
) -> frozenset[Variable]:
    """Variables a view should bind/cache to make the query boundedly rewritable.

    These are exactly the variables the syntactic check reports as
    unreachable; a view whose head contains them (and whose output is either
    cached or bounded) removes the corresponding obstruction — the workflow of
    Example 1.1, where caching ``V1(mid)`` repairs ``Q0``.
    """
    report = bounded_evaluability_report(query, access_schema, schema)
    return report.unreachable_variables


def certify_plan_needs_no_views(plan: PlanNode) -> None:
    """Raise when a plan claimed to witness bounded *evaluability* uses views."""
    if plan.uses_views():
        raise UnsupportedQueryError(
            "the plan scans cached views; it witnesses bounded rewriting using views, "
            "not bounded evaluability"
        )
