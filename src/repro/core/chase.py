"""Chasing tableaux with FD-shaped access constraints.

When every constraint of the access schema has bound ``N = 1`` (functional
dependencies with an index), the tableau of a CQ can be *chased*: whenever two
atoms of the same relation agree on the ``X`` attributes of a constraint
``R(X -> Y, 1)`` but disagree on ``Y``, the ``Y`` terms are unified.  The
chase terminates, the result ``Q_A`` is A-equivalent to ``Q`` and its tableau
satisfies ``A`` (Corollary 4.4 and Proposition 4.5 build on this), which makes
A-containment checkable by a single classical containment test instead of an
exponential element-query sweep.
"""

from __future__ import annotations

from ..algebra.cq import ConjunctiveQuery
from ..algebra.schema import DatabaseSchema
from ..algebra.terms import Constant, Term, Variable
from ..errors import UnsupportedQueryError
from .access import AccessSchema


class ChaseFailure(Exception):
    """Internal signal: the chase tried to equate two distinct constants.

    In that case no instance satisfying ``A`` embeds the query's tableau, i.e.
    the query is A-unsatisfiable (``Q ≡_A ∅``).
    """


def _unify(left: Term, right: Term) -> dict[Term, Term]:
    """Substitution unifying two terms (constants win over variables)."""
    if left == right:
        return {}
    if isinstance(left, Constant) and isinstance(right, Constant):
        raise ChaseFailure()
    if isinstance(left, Constant):
        return {right: left}
    if isinstance(right, Constant):
        return {left: right}
    # Both variables: pick a deterministic representative.
    if left.name <= right.name:  # type: ignore[union-attr]
        return {right: left}
    return {left: right}


def chase_with_fds(
    query: ConjunctiveQuery,
    access_schema: AccessSchema,
    schema: DatabaseSchema,
) -> ConjunctiveQuery | None:
    """Chase the query's tableau with the FD-shaped constraints of ``A``.

    Only constraints with ``bound == 1`` participate (constraints with larger
    bounds impose no equalities).  Returns the chased, normalised query, or
    ``None`` when the chase fails — i.e. the query is A-unsatisfiable.

    Raises :class:`UnsupportedQueryError` when called with an access schema
    that is not FD-only, to avoid silently producing a query that is *not*
    A-equivalent to the input.
    """
    if not access_schema.is_fd_only:
        raise UnsupportedQueryError(
            "chase_with_fds requires an FD-only access schema; use the "
            "element-query based procedures for general access schemas"
        )
    return chase_applying_fds(query, access_schema, schema)


def chase_applying_fds(
    query: ConjunctiveQuery,
    access_schema: AccessSchema,
    schema: DatabaseSchema,
) -> ConjunctiveQuery | None:
    """Apply the FD-shaped constraints (``bound == 1``) of any access schema.

    Unlike :func:`chase_with_fds` this does not require the schema to be
    FD-only; it simply ignores the non-FD constraints.  The result is always
    A-contained in the original query and A-equivalent to it (the equalities
    applied are forced by ``A``), but its tableau is only guaranteed to
    satisfy ``A`` when the schema is FD-only.
    """
    current = query.normalize()
    changed = True
    try:
        while changed:
            changed = False
            for constraint in access_schema:
                if constraint.bound != 1:
                    continue
                relation = schema.relation(constraint.relation)
                x_positions = relation.positions(constraint.x)
                y_positions = relation.positions(constraint.y)
                atoms = [a for a in current.atoms if a.relation == constraint.relation]
                substitution: dict[Term, Term] = {}
                for i, first in enumerate(atoms):
                    for second in atoms[i + 1 :]:
                        first_key = tuple(first.terms[p] for p in x_positions)
                        second_key = tuple(second.terms[p] for p in x_positions)
                        if first_key != second_key:
                            continue
                        for position in y_positions:
                            substitution.update(
                                _unify(first.terms[position], second.terms[position])
                            )
                        if substitution:
                            break
                    if substitution:
                        break
                if substitution:
                    current = current.substitute(substitution).normalize()
                    changed = True
                    break
    except ChaseFailure:
        return None
    # The chase operates on the tableau, which is a *set* of atoms: unifying
    # terms can make two atoms identical, so duplicates are dropped here
    # (keeping the first occurrence order).
    deduplicated: list = []
    seen: set = set()
    for atom in current.atoms:
        if atom not in seen:
            seen.add(atom)
            deduplicated.append(atom)
    return ConjunctiveQuery(
        head=current.head,
        atoms=tuple(deduplicated),
        equalities=(),
        name=f"{query.name}_chased",
    )
