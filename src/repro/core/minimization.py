"""Minimisation of conjunctive queries (cores) and of UCQs.

A conjunctive query is *minimal* when no proper subset of its atoms yields an
equivalent query; the minimal equivalent query (the *core*) is unique up to
isomorphism [Chandra & Merlin 1977].  Minimisation matters for bounded
rewriting in two ways:

* smaller queries have exponentially fewer element queries, so the exact
  decision procedures (:mod:`repro.core.vbrp`, :mod:`repro.core.bounded_output`)
  become markedly cheaper after minimisation;
* the heuristic plan builder fetches one fragment per atom, so redundant atoms
  directly inflate plan sizes and the fetched bag ``Dξ``.

Minimising a CQ is NP-hard in general (it embeds containment), but the
queries handled here are small; the implementation is the textbook
fold-an-atom-away loop driven by the Chandra–Merlin test.
"""

from __future__ import annotations

from ..algebra.containment import cq_contained_in
from ..algebra.cq import ConjunctiveQuery
from ..algebra.schema import DatabaseSchema
from ..algebra.ucq import QueryLike, UnionQuery, as_union
from ..errors import QueryError
from .access import AccessSchema
from .chase import chase_applying_fds


def _without_atom(query: ConjunctiveQuery, index: int) -> ConjunctiveQuery:
    atoms = query.atoms[:index] + query.atoms[index + 1 :]
    return ConjunctiveQuery(
        head=query.head, atoms=atoms, equalities=query.equalities, name=query.name
    )


def _head_variables_safe(query: ConjunctiveQuery) -> bool:
    """All head variables still occur in the body (dropping an atom may break this)."""
    body_variables = set()
    for atom in query.atoms:
        body_variables.update(atom.variables)
    for equality in query.equalities:
        body_variables.update(equality.variables)
    return all(v in body_variables for v in query.head_variables)


def minimize_cq(query: ConjunctiveQuery) -> ConjunctiveQuery:
    """Return an equivalent query with a minimal set of atoms (the core).

    The result is classically equivalent to the input; atoms are removed one
    at a time as long as the reduced query still contains the original
    (containment the other way is automatic because removing atoms only
    relaxes the query).

    >>> from repro.algebra.parser import parse_cq
    >>> q = parse_cq("Q(x) :- R(x, y), R(x, z)")
    >>> len(minimize_cq(q).atoms)
    1
    """
    if not query.is_satisfiable():
        return query
    current = query.normalize()
    changed = True
    while changed:
        changed = False
        for index in range(len(current.atoms)):
            candidate = _without_atom(current, index)
            if not _head_variables_safe(candidate):
                continue
            # Removing atoms relaxes the query, so candidate ⊇ current always;
            # the candidate is equivalent exactly when candidate ⊆ current.
            if cq_contained_in(candidate, current):
                current = candidate
                changed = True
                break
    return ConjunctiveQuery(
        head=current.head,
        atoms=current.atoms,
        equalities=current.equalities,
        name=query.name,
    )


def is_minimal(query: ConjunctiveQuery) -> bool:
    """Is the query its own core (no atom can be dropped)?"""
    normalized = query.normalize()
    return len(minimize_cq(normalized).atoms) == len(normalized.atoms)


def minimize_ucq(query: QueryLike) -> UnionQuery:
    """Minimise a UCQ: minimise each disjunct, then drop subsumed disjuncts.

    A disjunct is dropped when it is classically contained in another kept
    disjunct (Sagiv–Yannakakis); among mutually equivalent disjuncts the first
    one is kept.
    """
    union = as_union(query)
    minimized = [minimize_cq(d) for d in union.satisfiable_disjuncts()]
    if not minimized:
        return union
    kept: list[ConjunctiveQuery] = []
    for index, disjunct in enumerate(minimized):
        redundant = False
        for other_index, other in enumerate(minimized):
            if other_index == index:
                continue
            if cq_contained_in(disjunct, other):
                mutually = cq_contained_in(other, disjunct)
                if not mutually or other_index < index:
                    redundant = True
                    break
        if not redundant:
            kept.append(disjunct)
    if not kept:
        kept.append(minimized[0])
    return UnionQuery(tuple(kept), name=union.name)


def minimize_under_fds(
    query: ConjunctiveQuery,
    access_schema: AccessSchema,
    schema: DatabaseSchema,
) -> ConjunctiveQuery:
    """Chase with the FD-shaped constraints of ``A``, then minimise.

    The result is A-equivalent to the input (the chase only applies equalities
    forced by ``A``; minimisation preserves classical — hence A — equivalence).
    This is the preprocessing the ACQ fast paths of Section 4 rely on.
    """
    chased = chase_applying_fds(query, access_schema, schema)
    if chased is None:
        raise QueryError(
            f"query {query.name!r} is A-unsatisfiable (the chase equated two constants)"
        )
    return minimize_cq(chased)
