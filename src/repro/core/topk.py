"""Top-k (diversified) answers over bounded query results.

The paper's concluding section proposes studying "top-k (diversified) query
rewriting using views, which is to find top-k answers that differ
sufficiently from each other, by accessing cached views and a bounded amount
of underlying data".  This module supplies the answer-selection half of that
programme: given the rows produced by a bounded plan (or by any evaluation),
pick ``k`` of them that balance *relevance* (a user-supplied scoring
function) against *diversity* (pairwise distance), following the standard
max-sum diversification objective

    F(S) = (1 - λ) · Σ_{s ∈ S} score(s)  +  λ · Σ_{s ≠ t ∈ S} distance(s, t)

Exact maximisation is NP-hard, so :func:`top_k_diversified` uses the usual
greedy 2-approximation (pick the best-scoring row, then repeatedly add the
row with the largest marginal gain).  The companion
:func:`diversified_answer` wires the selection to a
:class:`repro.engine.session.BoundedEngine`, so the data access stays bounded
and only the (small) answer set is post-processed.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterable, Sequence

from ..algebra.ucq import QueryLike
from ..errors import EvaluationError
from .approximation import normalized_hamming

Score = Callable[[tuple], float]
Distance = Callable[[tuple, tuple], float]


def constant_score(_row: tuple) -> float:
    """The trivial scoring function (all answers equally relevant)."""
    return 1.0


@dataclass
class RankedAnswer:
    """One selected answer with its score and its marginal diversity gain."""

    row: tuple
    score: float
    marginal_gain: float


@dataclass
class TopKResult:
    """Outcome of a diversified top-k selection."""

    selected: list[RankedAnswer]
    objective: float
    candidates: int

    @property
    def rows(self) -> list[tuple]:
        return [answer.row for answer in self.selected]

    def __len__(self) -> int:
        return len(self.selected)


def diversity_objective(
    rows: Sequence[tuple],
    score: Score,
    distance: Distance,
    diversity_weight: float,
) -> float:
    """The max-sum diversification objective of a concrete answer set."""
    relevance = sum(score(row) for row in rows)
    pairwise = 0.0
    for index, left in enumerate(rows):
        for right in rows[index + 1 :]:
            pairwise += distance(left, right)
    return (1.0 - diversity_weight) * relevance + diversity_weight * pairwise


def top_k_diversified(
    rows: Iterable[tuple],
    k: int,
    score: Score = constant_score,
    distance: Distance = normalized_hamming,
    diversity_weight: float = 0.5,
) -> TopKResult:
    """Greedy max-sum diversified top-k selection.

    ``diversity_weight`` is the λ of the objective: 0 ranks purely by score,
    1 purely by pairwise distance.  Ties are broken deterministically by the
    row representation, so results are reproducible.
    """
    if k < 0:
        raise EvaluationError(f"k must be non-negative, got {k}")
    if not 0.0 <= diversity_weight <= 1.0:
        raise EvaluationError(f"diversity weight must lie in [0, 1], got {diversity_weight}")
    candidates = sorted({tuple(row) for row in rows}, key=repr)
    if k == 0 or not candidates:
        return TopKResult(selected=[], objective=0.0, candidates=len(candidates))

    remaining = list(candidates)
    # Seed with the best-scoring candidate.
    first = max(remaining, key=lambda row: (score(row), repr(row)))
    selected = [RankedAnswer(row=first, score=score(first), marginal_gain=score(first))]
    remaining.remove(first)

    while remaining and len(selected) < k:
        def marginal(row: tuple) -> float:
            relevance = (1.0 - diversity_weight) * score(row)
            spread = diversity_weight * sum(
                distance(row, chosen.row) for chosen in selected
            )
            return relevance + spread

        best = max(remaining, key=lambda row: (marginal(row), repr(row)))
        selected.append(
            RankedAnswer(row=best, score=score(best), marginal_gain=marginal(best))
        )
        remaining.remove(best)

    objective = diversity_objective(
        [answer.row for answer in selected], score, distance, diversity_weight
    )
    return TopKResult(selected=selected, objective=objective, candidates=len(candidates))


@dataclass
class DiversifiedAnswer:
    """A diversified top-k answer computed through a bounded plan."""

    result: TopKResult
    used_bounded_plan: bool
    tuples_fetched: int
    tuples_scanned: int

    @property
    def rows(self) -> list[tuple]:
        return self.result.rows

    def __len__(self) -> int:
        return len(self.result)


def diversified_answer(
    engine,
    query: QueryLike,
    k: int,
    score: Score = constant_score,
    distance: Distance = normalized_hamming,
    diversity_weight: float = 0.5,
    max_size: int | None = None,
) -> DiversifiedAnswer:
    """Answer ``query`` through ``engine`` and return diversified top-k rows.

    ``engine`` is anything with the :class:`repro.engine.session.BoundedEngine`
    ``answer`` interface; the underlying data access is whatever the engine
    does (a bounded plan whenever one exists), and the diversification runs
    over the returned answer set only.
    """
    answer = engine.answer(query, max_size)
    result = top_k_diversified(answer.rows, k, score, distance, diversity_weight)
    return DiversifiedAnswer(
        result=result,
        used_bounded_plan=answer.used_bounded_plan,
        tuples_fetched=answer.tuples_fetched,
        tuples_scanned=answer.tuples_scanned,
    )
