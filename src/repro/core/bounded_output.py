"""The bounded output problem (BOP) and covered variables.

A query ``V`` has *bounded output* under an access schema ``A`` when there is
a constant ``N`` with ``|V(D)| <= N`` for every instance ``D |= A``
(Section 3.1).  Deciding BOP is coNP-complete for CQ/UCQ/∃FO+ and undecidable
for FO (Theorem 3.4); the decision procedure implemented here follows the
paper's characterisation:

* ``cov(Q, A)`` — the *covered variables* of a CQ whose tableau satisfies
  ``A`` — is computed by the PTIME fixpoint of Section 3.1;
* Lemma 3.6: a CQ satisfying ``A`` has bounded output iff all non-constant
  head variables are covered;
* Lemma 3.7: a CQ/UCQ/∃FO+ query has bounded output iff *every* element query
  of every disjunct has all its head variables covered.

The module also computes a concrete numeric bound on the output size (the
product of the constraint bounds along the cov derivation), used by the
examples to reproduce statements such as "Q0 can be answered by fetching at
most 2·N0 tuples".
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping

from ..algebra.cq import ConjunctiveQuery
from ..algebra.schema import DatabaseSchema
from ..algebra.terms import Constant, Variable
from ..algebra.ucq import QueryLike, as_union
from ..errors import UnsupportedQueryError
from .access import AccessSchema
from .element_queries import ElementQueryBudget, iter_element_queries


def covered_variables(
    query: ConjunctiveQuery,
    access_schema: AccessSchema,
    schema: DatabaseSchema,
) -> frozenset[Variable]:
    """The set ``cov(Q, A)`` of covered (non-constant) variables of ``query``.

    Fixpoint computation: a variable in the ``Y``-positions of an atom
    ``R(x̄, ȳ, z̄)`` becomes covered as soon as all non-constant variables in
    the ``X``-positions are covered, for some constraint ``R(X -> Y, N)``.
    """
    normalized = query.normalize()
    covered: set[Variable] = set()
    changed = True
    while changed:
        changed = False
        for atom in normalized.atoms:
            relation = schema.relation(atom.relation)
            for constraint in access_schema.for_relation(atom.relation):
                x_positions = relation.positions(constraint.x)
                y_positions = relation.positions(constraint.y)
                x_terms = [atom.terms[p] for p in x_positions]
                if all(
                    isinstance(t, Constant) or t in covered for t in x_terms
                ):
                    for position in y_positions:
                        term = atom.terms[position]
                        if isinstance(term, Variable) and term not in covered:
                            covered.add(term)
                            changed = True
    return frozenset(covered)


def coverage_bounds(
    query: ConjunctiveQuery,
    access_schema: AccessSchema,
    schema: DatabaseSchema,
) -> dict[Variable, int]:
    """For each covered variable, an upper bound on its number of valuations.

    The bound of a variable added through constraint ``R(X -> Y, N)`` is
    ``N * prod(bounds of the X-variables)``; constants count as 1.  This is
    the quantity the paper uses informally ("at most N1·N0 + 2·N0 tuples").
    The bounds are upper bounds, not tight counts.
    """
    normalized = query.normalize()
    bounds: dict[Variable, int] = {}
    changed = True
    while changed:
        changed = False
        for atom in normalized.atoms:
            relation = schema.relation(atom.relation)
            for constraint in access_schema.for_relation(atom.relation):
                x_positions = relation.positions(constraint.x)
                y_positions = relation.positions(constraint.y)
                x_terms = [atom.terms[p] for p in x_positions]
                if not all(isinstance(t, Constant) or t in bounds for t in x_terms):
                    continue
                key_bound = 1
                for term in x_terms:
                    if isinstance(term, Variable):
                        key_bound *= bounds[term]
                candidate = key_bound * constraint.bound
                for position in y_positions:
                    term = atom.terms[position]
                    if isinstance(term, Variable):
                        if term not in bounds or candidate < bounds[term]:
                            bounds[term] = candidate
                            changed = True
    return bounds


@dataclass(frozen=True)
class BoundedOutputWitness:
    """Outcome of a bounded-output check.

    ``bounded`` is the decision; when the answer is negative,
    ``counterexample`` is an element query with an uncovered head variable
    (the NP witness of the complement problem in Theorem 3.4);
    ``output_bound`` is a numeric upper bound on the output size when the
    answer is positive (``None`` when only the decision was requested).
    """

    bounded: bool
    counterexample: ConjunctiveQuery | None = None
    uncovered: frozenset[Variable] = frozenset()
    output_bound: int | None = None


def cq_bounded_output(
    query: ConjunctiveQuery,
    access_schema: AccessSchema,
    schema: DatabaseSchema,
    budget: ElementQueryBudget | None = None,
    compute_bound: bool = True,
) -> BoundedOutputWitness:
    """Lemma 3.7 specialised to a single CQ.

    A fast *sufficient* check runs first: if every head variable of the query
    itself (after applying the FD-shaped constraints) is covered, the query
    has bounded output — the ⇐ direction of Lemma 3.6 does not need the
    tableau to satisfy ``A``.  Only when that check fails does the exact (and
    exponential) element-query sweep of Lemma 3.7 run.
    """
    if not query.is_satisfiable():
        return BoundedOutputWitness(bounded=True, output_bound=0)

    quick = _quick_bounded_check(query, access_schema, schema, compute_bound)
    if quick is not None:
        return quick

    overall_bound = 0
    found_element_query = False
    for element_query in iter_element_queries(query, access_schema, schema, budget):
        found_element_query = True
        covered = covered_variables(element_query, access_schema, schema)
        head_variables = {
            term for term in element_query.tableau().summary if isinstance(term, Variable)
        }
        uncovered = frozenset(head_variables - covered)
        if uncovered:
            return BoundedOutputWitness(
                bounded=False, counterexample=element_query, uncovered=uncovered
            )
        if compute_bound:
            bounds = coverage_bounds(element_query, access_schema, schema)
            element_bound = 1
            for term in element_query.tableau().summary:
                if isinstance(term, Variable):
                    element_bound *= bounds.get(term, 1)
            overall_bound += element_bound
    if not found_element_query:
        # No element query: Q is A-unsatisfiable, hence empty on all D |= A.
        return BoundedOutputWitness(bounded=True, output_bound=0)
    return BoundedOutputWitness(
        bounded=True, output_bound=overall_bound if compute_bound else None
    )


def _quick_bounded_check(
    query: ConjunctiveQuery,
    access_schema: AccessSchema,
    schema: DatabaseSchema,
    compute_bound: bool,
) -> BoundedOutputWitness | None:
    """Sufficient PTIME test: head variables covered in the query itself.

    Returns a positive witness when the test succeeds and ``None`` when it is
    inconclusive (the query may still be bounded thanks to equalities forced
    by ``A`` on its element queries).  The FD-shaped constraints are chased in
    first, which both tightens the tableau and can turn head variables into
    constants.
    """
    from .chase import chase_applying_fds  # local import to avoid a cycle at module load

    candidate = query
    if any(c.bound == 1 for c in access_schema):
        chased = chase_applying_fds(query, access_schema, schema)
        if chased is None:
            # The chase equated two distinct constants: the query is
            # A-unsatisfiable, hence empty (and trivially bounded) on D |= A.
            return BoundedOutputWitness(bounded=True, output_bound=0)
        candidate = chased
    covered = covered_variables(candidate, access_schema, schema)
    head_variables = {
        term for term in candidate.normalize().head if isinstance(term, Variable)
    }
    if not head_variables <= covered:
        return None
    if not compute_bound:
        return BoundedOutputWitness(bounded=True)
    bounds = coverage_bounds(candidate, access_schema, schema)
    bound = 1
    for term in candidate.normalize().head:
        if isinstance(term, Variable):
            bound *= bounds.get(term, 1)
    return BoundedOutputWitness(bounded=True, output_bound=bound)


def has_bounded_output(
    query: QueryLike,
    access_schema: AccessSchema,
    schema: DatabaseSchema,
    budget: ElementQueryBudget | None = None,
) -> bool:
    """Decide BOP for a CQ or UCQ (Theorem 3.4 decision procedure).

    ∃FO+ queries should first be converted to UCQ with
    :func:`repro.algebra.fo.to_ucq`; full FO is undecidable — use the
    size-bounded effective syntax (:mod:`repro.core.size_bounded`) instead.
    """
    union = as_union(query)
    return all(
        cq_bounded_output(
            disjunct, access_schema, schema, budget, compute_bound=False
        ).bounded
        for disjunct in union.disjuncts
    )


def bounded_output_witness(
    query: QueryLike,
    access_schema: AccessSchema,
    schema: DatabaseSchema,
    budget: ElementQueryBudget | None = None,
) -> BoundedOutputWitness:
    """Like :func:`has_bounded_output` but returns the full witness object."""
    union = as_union(query)
    total_bound = 0
    for disjunct in union.disjuncts:
        witness = cq_bounded_output(disjunct, access_schema, schema, budget)
        if not witness.bounded:
            return witness
        total_bound += witness.output_bound or 0
    return BoundedOutputWitness(bounded=True, output_bound=total_bound)


def output_bound_estimate(
    query: QueryLike,
    access_schema: AccessSchema,
    schema: DatabaseSchema,
    budget: ElementQueryBudget | None = None,
) -> int | None:
    """Numeric upper bound on ``|Q(D)|`` over all ``D |= A`` (``None`` if unbounded)."""
    witness = bounded_output_witness(query, access_schema, schema, budget)
    return witness.output_bound if witness.bounded else None
