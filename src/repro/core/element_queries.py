"""Element queries of a conjunctive query under an access schema.

Section 3.1 of the paper regards a CQ ``Q`` posed on instances satisfying an
access schema ``A`` as a union of special CQs ``Qe = Q ∧ ψ``, its *element
queries*: ``ψ`` is a conjunction of equalities among the variables and
constants of ``Q`` such that the tableau of ``Qe`` — viewed as an instance in
which the remaining variables are pairwise-distinct constants — satisfies
``A``.  Key facts used throughout the library:

* every element query is (classically) contained in ``Q``;
* ``Q`` is A-equivalent to the union of its (satisfiable) element queries;
* a CQ has at most exponentially many element queries, which is the source of
  the coNP/Σp3 lower bounds of Theorems 3.4 and 3.1.

Enumeration is therefore exponential in the number of terms of ``Q``; a
:class:`ElementQueryBudget` keeps it predictable and raises
:class:`repro.errors.BudgetExceededError` when exceeded.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Sequence

from ..algebra.cq import ConjunctiveQuery
from ..algebra.schema import DatabaseSchema
from ..algebra.terms import Constant, Term, Variable
from ..errors import BudgetExceededError
from .access import AccessSchema


@dataclass
class ElementQueryBudget:
    """Budget for element-query enumeration.

    ``max_partitions`` bounds the number of candidate equality patterns
    examined; ``max_element_queries`` bounds the number of element queries
    produced (both per top-level call).
    """

    max_partitions: int = 500_000
    max_element_queries: int = 100_000

    def partitions_guard(self, count: int) -> None:
        if count > self.max_partitions:
            raise BudgetExceededError(
                f"element-query enumeration examined more than {self.max_partitions} "
                "equality patterns; raise the ElementQueryBudget or use the "
                "effective-syntax path"
            )

    def results_guard(self, count: int) -> None:
        if count > self.max_element_queries:
            raise BudgetExceededError(
                f"more than {self.max_element_queries} element queries produced; "
                "raise the ElementQueryBudget or use the effective-syntax path"
            )


DEFAULT_BUDGET = ElementQueryBudget()


def _iter_partitions(
    variables: Sequence[Variable],
    constants: Sequence[Constant],
    budget: ElementQueryBudget,
) -> Iterator[list[list[Term]]]:
    """Enumerate partitions of the query's terms into equality classes.

    Each distinct constant seeds its own block (two constants can never be
    equated — such element queries are unsatisfiable and skipped outright);
    variables are then placed either into an existing block or into a new one,
    in restricted-growth order so every partition is produced exactly once.
    """
    seed_blocks: list[list[Term]] = [[constant] for constant in constants]
    examined = 0

    def place(index: int, blocks: list[list[Term]], new_blocks: int) -> Iterator[list[list[Term]]]:
        nonlocal examined
        if index == len(variables):
            examined += 1
            budget.partitions_guard(examined)
            yield [list(block) for block in blocks]
            return
        variable = variables[index]
        # Join any existing block.
        for block in blocks:
            block.append(variable)
            yield from place(index + 1, blocks, new_blocks)
            block.pop()
        # Open a new block (restricted growth: new blocks are appended in order).
        blocks.append([variable])
        yield from place(index + 1, blocks, new_blocks + 1)
        blocks.pop()

    yield from place(0, seed_blocks, 0)


def _partition_substitution(blocks: list[list[Term]]) -> dict[Term, Term]:
    """Map every term of each block to the block's representative.

    The representative is the block's constant when present, otherwise the
    variable with the smallest name (for deterministic output).
    """
    mapping: dict[Term, Term] = {}
    for block in blocks:
        constants = [t for t in block if isinstance(t, Constant)]
        if constants:
            representative: Term = constants[0]
        else:
            representative = min(
                (t for t in block if isinstance(t, Variable)), key=lambda v: v.name
            )
        for term in block:
            if term != representative:
                mapping[term] = representative
    return mapping


def iter_element_queries(
    query: ConjunctiveQuery,
    access_schema: AccessSchema,
    schema: DatabaseSchema,
    budget: ElementQueryBudget | None = None,
) -> Iterator[ConjunctiveQuery]:
    """Yield the (satisfiable, deduplicated) element queries of ``query``.

    Element queries are yielded in their normalised form: the equalities of
    ``ψ`` are already folded into the atoms, so ``Qe.tableau()`` is the
    tableau the paper reasons about.  Deduplication is by tableau, since
    different equality patterns can induce the same tableau.
    """
    budget = budget or DEFAULT_BUDGET
    if not query.is_satisfiable():
        return
    normalized = query.normalize()
    variables = sorted(normalized.variables, key=lambda v: v.name)
    constants = sorted(normalized.constants, key=lambda c: repr(c.value))

    seen: set[tuple[frozenset, tuple]] = set()
    produced = 0
    for blocks in _iter_partitions(variables, constants, budget):
        mapping = _partition_substitution(blocks)
        candidate = normalized.substitute(mapping).normalize()
        tableau = candidate.tableau()
        key = (tableau.atoms, tableau.summary)
        if key in seen:
            continue
        if not access_schema.satisfied_by(tableau.facts(), schema):
            continue
        seen.add(key)
        produced += 1
        budget.results_guard(produced)
        yield ConjunctiveQuery(
            head=candidate.head,
            atoms=candidate.atoms,
            equalities=(),
            name=f"{query.name}_e{produced}",
        )


def element_queries(
    query: ConjunctiveQuery,
    access_schema: AccessSchema,
    schema: DatabaseSchema,
    budget: ElementQueryBudget | None = None,
) -> list[ConjunctiveQuery]:
    """Materialise all element queries (see :func:`iter_element_queries`)."""
    return list(iter_element_queries(query, access_schema, schema, budget))


def has_element_query(
    query: ConjunctiveQuery,
    access_schema: AccessSchema,
    schema: DatabaseSchema,
    budget: ElementQueryBudget | None = None,
) -> bool:
    """A CQ is A-satisfiable iff it has at least one element query.

    (``Q ≡_A ∅`` — the empty query — exactly when no equality pattern makes
    its tableau satisfy ``A``.)
    """
    for _ in iter_element_queries(query, access_schema, schema, budget):
        return True
    return False
