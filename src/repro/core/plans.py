"""Query plans using views and fetch operations (Section 2 of the paper).

A query plan ``ξ(V, R)`` is a tree whose nodes compute intermediate relations:

* leaves are constants ``{c}`` or cached views ``V``;
* ``fetch(X ∈ S, R, Y)`` retrieves, for every ``X``-value in its child ``S``,
  the ``XY``-projections of ``R`` through the index of an access constraint;
* inner nodes apply projection π, selection σ, renaming ρ, product ×,
  union ∪ and set difference \\.

The *size* of a plan is its number of nodes; ``M``-bounded plans have at most
``M`` nodes.  A plan is *in language L* when it only uses the operators
allowed for L (CQ: fetch/π/σ/×/ρ; UCQ additionally allows ∪ at the top level;
∃FO+ allows ∪ anywhere; FO allows everything).

This module defines the plan node classes, structural validation, size and
language classification, and pretty printing.  Converting plans to queries
(the ``Q_ξ`` expressed by a plan) lives in :mod:`repro.core.rewriting`;
executing plans lives in :mod:`repro.core.plan_eval`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator, Mapping, Sequence

from ..algebra.schema import DatabaseSchema
from ..algebra.views import ViewSet
from ..errors import PlanError
from .access import AccessConstraint, AccessSchema

# Language constants (ordered by expressiveness).
CQ = "CQ"
UCQ = "UCQ"
EFO_PLUS = "EFO+"
FO = "FO"
LANGUAGE_ORDER = {CQ: 0, UCQ: 1, EFO_PLUS: 2, FO: 3}


def language_leq(lang1: str, lang2: str) -> bool:
    """Is ``lang1`` at most as expressive as ``lang2`` (CQ ⊆ UCQ ⊆ ∃FO+ ⊆ FO)?"""
    try:
        return LANGUAGE_ORDER[lang1] <= LANGUAGE_ORDER[lang2]
    except KeyError as exc:
        raise PlanError(f"unknown language in {lang1!r} <= {lang2!r}") from exc


# --------------------------------------------------------------------------- #
# Selection predicates
# --------------------------------------------------------------------------- #


@dataclass(frozen=True)
class AttributeEqualsConstant:
    """Selection predicate ``attribute = value`` (or ``!=`` when negated)."""

    attribute: str
    value: object
    negated: bool = False

    def __str__(self) -> str:
        op = "!=" if self.negated else "="
        return f"{self.attribute} {op} {self.value!r}"


@dataclass(frozen=True)
class AttributeEqualsAttribute:
    """Selection predicate ``left = right`` between two attributes."""

    left: str
    right: str
    negated: bool = False

    def __str__(self) -> str:
        op = "!=" if self.negated else "="
        return f"{self.left} {op} {self.right}"


Predicate = AttributeEqualsConstant | AttributeEqualsAttribute


# --------------------------------------------------------------------------- #
# Plan nodes
# --------------------------------------------------------------------------- #


class PlanNode:
    """Base class of query plan nodes."""

    @property
    def attributes(self) -> tuple[str, ...]:
        """Output attribute names of the node, in order."""
        raise NotImplementedError

    @property
    def children(self) -> tuple["PlanNode", ...]:
        raise NotImplementedError

    def label(self) -> str:
        """Short human-readable operator label."""
        raise NotImplementedError

    # ------------------------------------------------------------------ #

    def size(self) -> int:
        """Number of nodes of the plan tree (the paper's plan size)."""
        return 1 + sum(child.size() for child in self.children)

    def iter_nodes(self) -> Iterator["PlanNode"]:
        """Yield all nodes of the tree (pre-order)."""
        yield self
        for child in self.children:
            yield from child.iter_nodes()

    def fetch_nodes(self) -> list["FetchNode"]:
        return [node for node in self.iter_nodes() if isinstance(node, FetchNode)]

    def view_names(self) -> frozenset[str]:
        return frozenset(
            node.view_name for node in self.iter_nodes() if isinstance(node, ViewScan)
        )

    def uses_views(self) -> bool:
        return bool(self.view_names())

    def pretty(self, indent: int = 0) -> str:
        """Indented textual rendering of the plan tree (like Figure 1)."""
        pad = "  " * indent
        lines = [f"{pad}{self.label()}  -> ({', '.join(self.attributes)})"]
        for child in self.children:
            lines.append(child.pretty(indent + 1))
        return "\n".join(lines)

    def __str__(self) -> str:
        return self.pretty()

    # ------------------------------------------------------------------ #
    # Language classification
    # ------------------------------------------------------------------ #

    def language(self) -> str:
        """The least language of {CQ, UCQ, ∃FO+, FO} this plan belongs to.

        A plan is a UCQ plan when union occurs only "at the top": every
        ancestor of a ∪ node is itself a ∪ node (Section 2).
        """
        has_union = False
        has_difference = False
        union_below_non_union = False

        def visit(node: PlanNode, seen_non_union_above: bool) -> None:
            nonlocal has_union, has_difference, union_below_non_union
            if isinstance(node, UnionNode):
                has_union = True
                if seen_non_union_above:
                    union_below_non_union = True
                below = False
            else:
                below = True
            if isinstance(node, DifferenceNode):
                has_difference = True
            for child in node.children:
                visit(child, seen_non_union_above or below)

        visit(self, False)
        if has_difference:
            return FO
        if not has_union:
            return CQ
        if union_below_non_union:
            return EFO_PLUS
        return UCQ

    # ------------------------------------------------------------------ #
    # Validation
    # ------------------------------------------------------------------ #

    def validate(
        self,
        schema: DatabaseSchema,
        views: ViewSet | None = None,
        access_schema: AccessSchema | None = None,
    ) -> None:
        """Structural validation of the plan tree.

        Checks attribute bookkeeping, view arities and — when an access
        schema is provided — that every fetch names attributes served by some
        constraint.  This is purely syntactic; semantic conformance (bounded
        input of every fetch) is checked by :mod:`repro.core.conformance`.
        """
        for node in self.iter_nodes():
            node._validate_node(schema, views, access_schema)

    def _validate_node(
        self,
        schema: DatabaseSchema,
        views: ViewSet | None,
        access_schema: AccessSchema | None,
    ) -> None:
        """Node-local validation; overridden by subclasses."""
        # Default: nothing to check beyond what the constructor enforced.
        return None


@dataclass(frozen=True)
class ConstantScan(PlanNode):
    """Leaf producing the single-tuple unary relation ``{(value,)}``."""

    value: object
    attribute: str = "c"

    @property
    def attributes(self) -> tuple[str, ...]:
        return (self.attribute,)

    @property
    def children(self) -> tuple[PlanNode, ...]:
        return ()

    def label(self) -> str:
        return f"const {self.value!r}"


@dataclass(frozen=True)
class ViewScan(PlanNode):
    """Leaf scanning a cached view ``V(D)``."""

    view_name: str
    view_attributes: tuple[str, ...]

    def __init__(self, view_name: str, view_attributes: Sequence[str]) -> None:
        object.__setattr__(self, "view_name", view_name)
        object.__setattr__(self, "view_attributes", tuple(view_attributes))

    @property
    def attributes(self) -> tuple[str, ...]:
        return self.view_attributes

    @property
    def children(self) -> tuple[PlanNode, ...]:
        return ()

    def label(self) -> str:
        return f"view {self.view_name}"

    def _validate_node(
        self,
        schema: DatabaseSchema,
        views: ViewSet | None,
        access_schema: AccessSchema | None,
    ) -> None:
        if views is not None:
            if self.view_name not in views:
                raise PlanError(f"plan references unknown view {self.view_name!r}")
            view = views.view(self.view_name)
            if view.arity != len(self.view_attributes):
                raise PlanError(
                    f"view scan of {self.view_name!r} declares {len(self.view_attributes)} "
                    f"attributes but the view has arity {view.arity}"
                )


@dataclass(frozen=True)
class FetchNode(PlanNode):
    """``fetch(X ∈ child, relation, Y)`` — controlled access to a base relation.

    For every ``X``-value produced by the child, the index of a covering
    access constraint returns the matching ``X ∪ Y`` projections of the
    relation.  ``x_attrs``/``y_attrs`` use the relation's attribute names; the
    child's output attributes must be exactly ``x_attrs``.  When ``X`` is
    empty the child may be omitted entirely — ``fetch(∅, R, Y)`` is then a
    leaf of size 1, matching the paper's counting ("the only possible query
    plan of size 1 that does not use V").
    """

    child: PlanNode | None
    relation: str
    x_attrs: tuple[str, ...]
    y_attrs: tuple[str, ...]

    def __init__(
        self,
        child: PlanNode | None,
        relation: str,
        x_attrs: Sequence[str],
        y_attrs: Sequence[str],
    ) -> None:
        x_tuple = tuple(x_attrs)
        y_tuple = tuple(y_attrs)
        if child is None:
            if x_tuple:
                raise PlanError(
                    f"fetch on {relation!r} with non-empty X={x_tuple} requires a child plan"
                )
        elif set(child.attributes) != set(x_tuple):
            raise PlanError(
                f"fetch on {relation!r} expects child attributes {x_tuple}, "
                f"got {child.attributes}"
            )
        object.__setattr__(self, "child", child)
        object.__setattr__(self, "relation", relation)
        object.__setattr__(self, "x_attrs", x_tuple)
        object.__setattr__(self, "y_attrs", y_tuple)

    @property
    def attributes(self) -> tuple[str, ...]:
        return self.x_attrs + tuple(a for a in self.y_attrs if a not in self.x_attrs)

    @property
    def children(self) -> tuple[PlanNode, ...]:
        return (self.child,) if self.child is not None else ()

    def label(self) -> str:
        x = ", ".join(self.x_attrs) if self.x_attrs else "∅"
        y = ", ".join(self.y_attrs)
        return f"fetch({x} ∈ child, {self.relation}, {y})"

    def covering_constraint(self, access_schema: AccessSchema) -> AccessConstraint | None:
        """The access constraint able to serve this fetch, if any."""
        return access_schema.find_covering(self.relation, self.x_attrs, self.y_attrs)

    def _validate_node(
        self,
        schema: DatabaseSchema,
        views: ViewSet | None,
        access_schema: AccessSchema | None,
    ) -> None:
        relation = schema.relation(self.relation)
        for attribute in self.x_attrs + self.y_attrs:
            if attribute not in relation.attributes:
                raise PlanError(
                    f"fetch on {self.relation!r} names unknown attribute {attribute!r}"
                )
        if access_schema is not None and self.covering_constraint(access_schema) is None:
            raise PlanError(
                f"no access constraint covers fetch({self.x_attrs} ∈ _, "
                f"{self.relation}, {self.y_attrs})"
            )


@dataclass(frozen=True)
class ProjectNode(PlanNode):
    """Projection ``π_attrs(child)``."""

    child: PlanNode
    kept: tuple[str, ...]

    def __init__(self, child: PlanNode, kept: Sequence[str]) -> None:
        kept_tuple = tuple(kept)
        missing = [a for a in kept_tuple if a not in child.attributes]
        if missing:
            raise PlanError(
                f"projection keeps unknown attributes {missing}; child has {child.attributes}"
            )
        object.__setattr__(self, "child", child)
        object.__setattr__(self, "kept", kept_tuple)

    @property
    def attributes(self) -> tuple[str, ...]:
        return self.kept

    @property
    def children(self) -> tuple[PlanNode, ...]:
        return (self.child,)

    def label(self) -> str:
        return f"π[{', '.join(self.kept) if self.kept else '∅'}]"


@dataclass(frozen=True)
class SelectNode(PlanNode):
    """Selection ``σ_C(child)`` for a conjunction of predicates ``C``."""

    child: PlanNode
    predicates: tuple[Predicate, ...]

    def __init__(self, child: PlanNode, predicates: Sequence[Predicate]) -> None:
        predicates_tuple = tuple(predicates)
        if not predicates_tuple:
            raise PlanError("selection requires at least one predicate")
        for predicate in predicates_tuple:
            referenced = (
                (predicate.attribute,)
                if isinstance(predicate, AttributeEqualsConstant)
                else (predicate.left, predicate.right)
            )
            for attribute in referenced:
                if attribute not in child.attributes:
                    raise PlanError(
                        f"selection references unknown attribute {attribute!r}; "
                        f"child has {child.attributes}"
                    )
        object.__setattr__(self, "child", child)
        object.__setattr__(self, "predicates", predicates_tuple)

    @property
    def attributes(self) -> tuple[str, ...]:
        return self.child.attributes

    @property
    def children(self) -> tuple[PlanNode, ...]:
        return (self.child,)

    def label(self) -> str:
        return "σ[" + " ∧ ".join(str(p) for p in self.predicates) + "]"

    @property
    def has_negated_predicate(self) -> bool:
        return any(p.negated for p in self.predicates)


@dataclass(frozen=True)
class RenameNode(PlanNode):
    """Renaming ``ρ(child)`` given as an old-name -> new-name mapping."""

    child: PlanNode
    mapping: tuple[tuple[str, str], ...]

    def __init__(self, child: PlanNode, mapping: Mapping[str, str]) -> None:
        pairs = tuple(sorted(mapping.items()))
        unknown = [old for old, _ in pairs if old not in child.attributes]
        if unknown:
            raise PlanError(
                f"rename refers to unknown attributes {unknown}; child has {child.attributes}"
            )
        renamed = [dict(pairs).get(a, a) for a in child.attributes]
        if len(set(renamed)) != len(renamed):
            raise PlanError(f"rename produces duplicate attribute names: {renamed}")
        object.__setattr__(self, "child", child)
        object.__setattr__(self, "mapping", pairs)

    @property
    def attributes(self) -> tuple[str, ...]:
        as_dict = dict(self.mapping)
        return tuple(as_dict.get(a, a) for a in self.child.attributes)

    @property
    def children(self) -> tuple[PlanNode, ...]:
        return (self.child,)

    def label(self) -> str:
        renames = ", ".join(f"{old}→{new}" for old, new in self.mapping)
        return f"ρ[{renames}]"


class _BinaryNode(PlanNode):
    """Shared implementation of binary plan nodes."""

    def __init__(self, left: PlanNode, right: PlanNode) -> None:
        self._left = left
        self._right = right

    @property
    def left(self) -> PlanNode:
        return self._left

    @property
    def right(self) -> PlanNode:
        return self._right

    @property
    def children(self) -> tuple[PlanNode, ...]:
        return (self._left, self._right)

    def __eq__(self, other: object) -> bool:
        if type(other) is not type(self):
            return NotImplemented
        return self.children == other.children  # type: ignore[attr-defined]

    def __hash__(self) -> int:
        return hash((type(self).__name__, self.children))


class ProductNode(_BinaryNode):
    """Cartesian product ``left × right`` (attribute sets must be disjoint)."""

    def __init__(self, left: PlanNode, right: PlanNode) -> None:
        overlap = set(left.attributes) & set(right.attributes)
        if overlap:
            raise PlanError(
                f"product requires disjoint attributes; both sides have {sorted(overlap)} "
                "(insert a rename node)"
            )
        super().__init__(left, right)

    @property
    def attributes(self) -> tuple[str, ...]:
        return self.left.attributes + self.right.attributes

    def label(self) -> str:
        return "×"


class UnionNode(_BinaryNode):
    """Set union ``left ∪ right`` (attribute tuples must coincide)."""

    def __init__(self, left: PlanNode, right: PlanNode) -> None:
        if left.attributes != right.attributes:
            raise PlanError(
                f"union requires identical attributes, got {left.attributes} "
                f"and {right.attributes}"
            )
        super().__init__(left, right)

    @property
    def attributes(self) -> tuple[str, ...]:
        return self.left.attributes

    def label(self) -> str:
        return "∪"


class DifferenceNode(_BinaryNode):
    """Set difference ``left \\ right`` (attribute tuples must coincide)."""

    def __init__(self, left: PlanNode, right: PlanNode) -> None:
        if left.attributes != right.attributes:
            raise PlanError(
                f"difference requires identical attributes, got {left.attributes} "
                f"and {right.attributes}"
            )
        super().__init__(left, right)

    @property
    def attributes(self) -> tuple[str, ...]:
        return self.left.attributes

    def label(self) -> str:
        return "\\"


# --------------------------------------------------------------------------- #
# Composite builders
# --------------------------------------------------------------------------- #


def join_on_shared_attributes(left: PlanNode, right: PlanNode) -> PlanNode:
    """Natural join expressed with the primitive operators.

    When the two inputs share attributes ``S``, the join is
    ``π(σ_{S = S'}(left × ρ_{S→S'}(right)))`` — rename, product, selection and
    projection, exactly the 4-operation expansion the paper charges in case
    (4b) of the ``size`` function.  Without shared attributes it degenerates
    to a plain product (1 operation).
    """
    shared = [a for a in left.attributes if a in right.attributes]
    if not shared:
        return ProductNode(left, right)
    rename_map = {a: f"{a}__r" for a in shared}
    renamed_right = RenameNode(right, rename_map)
    product = ProductNode(left, renamed_right)
    predicates: list[Predicate] = [
        AttributeEqualsAttribute(a, rename_map[a]) for a in shared
    ]
    selected = SelectNode(product, tuple(predicates))
    kept = left.attributes + tuple(
        a for a in right.attributes if a not in shared
    )
    return ProjectNode(selected, kept)


def constant_selection(child: PlanNode, assignments: Mapping[str, object]) -> PlanNode:
    """``σ_{a1=c1 ∧ ...}(child)`` as a single selection node."""
    predicates = tuple(
        AttributeEqualsConstant(attribute, value) for attribute, value in assignments.items()
    )
    return SelectNode(child, predicates)


def empty_plan(attributes: Sequence[str] = ()) -> PlanNode:
    """The canonical *empty* plan ``Q_∅`` returning no tuples on any database.

    Realised by selecting ``attr = 1`` over a constant scan producing ``0`` —
    a contradiction — so the plan is empty on every database.  It is the plan
    the paper repeatedly refers to as "the constant query Q∅ which returns ∅
    on all databases".
    """
    attrs = tuple(attributes)
    if not attrs:
        base = ConstantScan(0, attribute="c")
        contradiction = SelectNode(base, (AttributeEqualsConstant("c", 1),))
        return ProjectNode(contradiction, ())
    plan: PlanNode | None = None
    for attribute in attrs:
        scan: PlanNode = ConstantScan(0, attribute=attribute)
        plan = scan if plan is None else ProductNode(plan, scan)
    assert plan is not None
    return SelectNode(plan, (AttributeEqualsConstant(attrs[0], 1),))
