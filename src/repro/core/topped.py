"""Topped queries: an effective syntax for FO queries with a bounded rewriting.

VBRP is undecidable for FO and robustly intractable for CQ, so Section 5
introduces *queries topped by (R, V, A, M)*: a syntactic class, checkable in
PTIME, such that (Theorem 5.1)

(a) every FO query with an ``M``-bounded rewriting using ``V`` under ``A`` is
    A-equivalent to a topped query;
(b) every topped query *has* an ``M``-bounded rewriting, and a witnessing
    plan can be generated in PTIME; and
(c) membership is decided by two inductively defined functions
    ``covq(Qs, Q)`` (can values be propagated from the context ``Qs`` into
    ``Q`` so that ``Qs ∧ Q`` keeps a bounded plan?) and ``size(Qs, Q)`` (an
    upper bound on the size of that plan), with a bounded-output oracle for
    the sub-queries used to drive ``fetch`` operations.

This module implements the seven cases of the ``covq``/``size`` induction,
the bounded-output oracle (exact for ∃FO+ contexts via Theorem 3.4, the
size-bounded effective syntax of Theorem 5.2 for FO views), and — alongside
the analysis — a *plan builder* that assembles the witnessing bounded plan,
mirroring Figure 3.

A note on plan sizes: the paper's ``size`` function counts the idealised
minimum plan; the builder in this module favours clarity (it inserts explicit
renames/selections when aligning attribute names), so the constructed plan
can be moderately larger than the ``size`` estimate.  ``is_topped`` uses the
paper's estimate; ``ToppedAnalysis.plan_size`` reports the constructed size.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Callable, Sequence

from ..algebra.fo import (
    FOAnd,
    FOAtom,
    FOEquality,
    FOExists,
    FOForAll,
    FONot,
    FOOr,
    FOQuery,
    FOTrue,
    conj,
    is_positive_existential,
    rectify,
    to_ucq,
)
from ..algebra.schema import DatabaseSchema
from ..algebra.terms import Constant, Term, Variable
from ..algebra.views import View, ViewSet
from ..errors import BudgetExceededError, QueryError, UnsupportedQueryError
from .access import AccessConstraint, AccessSchema
from .bounded_output import has_bounded_output
from .element_queries import ElementQueryBudget
from .plans import (
    AttributeEqualsAttribute,
    AttributeEqualsConstant,
    ConstantScan,
    DifferenceNode,
    FetchNode,
    PlanNode,
    ProjectNode,
    RenameNode,
    SelectNode,
    UnionNode,
    ViewScan,
    join_on_shared_attributes,
)
from .rewriting import unfold_view_atoms
from .size_bounded import size_bound_of

INFINITY = math.inf

PlanBuilder = Callable[[], PlanNode]


# --------------------------------------------------------------------------- #
# Parameters and context (the Qs of the induction)
# --------------------------------------------------------------------------- #


@dataclass
class ToppedParameters:
    """The (R, V, A) part of "topped by (R, V, A, M)" plus the K cut-off.

    ``inner_size_cutoff`` is the constant ``K`` bounding the size of the inner
    conjunct in cases (4c) and (6b); the paper notes ``K = 1`` already
    preserves expressive completeness.
    """

    schema: DatabaseSchema
    views: ViewSet
    access_schema: AccessSchema
    inner_size_cutoff: int = 1
    budget: ElementQueryBudget | None = None

    def __post_init__(self) -> None:
        self.extended_schema = self.views.extended_schema(self.schema)
        self._cq_views = ViewSet(
            view for view in self.views if view.language in ("CQ", "UCQ")
        )
        virtual_constraints = []
        for view in self.views:
            if view.language not in ("CQ", "UCQ"):
                bound = size_bound_of(view.as_fo(), view.head_variables)
                if bound is not None:
                    virtual_constraints.append(
                        AccessConstraint(view.name, (), view.attributes, max(bound, 1))
                    )
        self.extended_access = self.access_schema.extended_with(virtual_constraints)

    # -- bounded output oracle ------------------------------------------- #

    def formula_has_bounded_output(self, formula: FOQuery) -> bool:
        """Bounded-output oracle used by cases (4a) and (7b).

        Exact (Theorem 3.4) when the formula is positive-existential after
        unfolding CQ/UCQ views; FO views are kept as virtual relations whose
        output bound — when they match the size-bounded syntax of
        Theorem 5.2 — becomes a virtual access constraint.  Anything else is
        conservatively reported as unbounded.
        """
        if isinstance(formula, FOTrue):
            return True
        if not is_positive_existential(formula):
            return False
        head = sorted(formula.free_variables, key=lambda v: v.name)
        try:
            as_union = to_ucq(formula, head)
            unfolded = unfold_view_atoms(as_union, self._cq_views)
            return has_bounded_output(
                unfolded, self.extended_access, self.extended_schema, self.budget
            )
        except (UnsupportedQueryError, BudgetExceededError):
            return False

    def view_for(self, name: str) -> View | None:
        return self.views.view(name) if name in self.views else None

    def is_base_relation(self, name: str) -> bool:
        return name in self.schema and name not in self.views


@dataclass
class _Context:
    """The context ``Qs``: conjuncts already known to have a bounded plan."""

    params: ToppedParameters
    conjuncts: tuple[FOQuery, ...] = ()
    builder: PlanBuilder | None = None
    size: float = 0.0

    @property
    def is_empty(self) -> bool:
        return not self.conjuncts

    @property
    def free_variables(self) -> frozenset[Variable]:
        if not self.conjuncts:
            return frozenset()
        return frozenset().union(*(c.free_variables for c in self.conjuncts))

    def formula(self) -> FOQuery:
        return conj(*self.conjuncts) if self.conjuncts else FOTrue()

    def has_bounded_output(self) -> bool:
        return self.params.formula_has_bounded_output(self.formula())

    def bounded_output_with(self, extra: FOQuery) -> bool:
        return self.params.formula_has_bounded_output(conj(self.formula(), extra))

    def extended(self, extra: FOQuery, builder: PlanBuilder, size: float) -> "_Context":
        """Context for ``Qs ∧ extra`` whose plan is produced by ``builder``."""
        return _Context(
            params=self.params,
            conjuncts=self.conjuncts + (extra,),
            builder=builder,
            size=size,
        )

    def build(self) -> PlanNode | None:
        return self.builder() if self.builder is not None else None


# --------------------------------------------------------------------------- #
# Result of the analysis
# --------------------------------------------------------------------------- #


@dataclass
class ToppedAnalysis:
    """Result of ``covq``/``size`` for a (Qs, Q) pair.

    ``covered`` is ``covq(Qs, Q)``; ``size`` is the paper's ``size(Qs, Q)``
    estimate (``inf`` when not covered); ``builder`` produces a plan for
    ``Qs ∧ Q`` whose output attributes are the names of the free variables of
    ``Qs ∧ Q``.
    """

    covered: bool
    size: float
    builder: PlanBuilder | None = None

    @classmethod
    def failure(cls) -> "ToppedAnalysis":
        return cls(covered=False, size=INFINITY, builder=None)


# --------------------------------------------------------------------------- #
# Plan-construction helpers
# --------------------------------------------------------------------------- #


def _join(left: PlanNode | None, right: PlanNode) -> PlanNode:
    if left is None:
        return right
    return join_on_shared_attributes(left, right)


def _align(plan: PlanNode, attributes: Sequence[str]) -> PlanNode:
    """Project/reorder ``plan`` onto ``attributes`` (all must be present)."""
    if plan.attributes == tuple(attributes):
        return plan
    return ProjectNode(plan, tuple(attributes))


def _atom_scan_plan(
    relation_name: str,
    terms: Sequence[Term],
    attributes: Sequence[str],
    source: PlanNode,
    keep_variables: frozenset[Variable],
) -> PlanNode:
    """Turn a raw scan/fetch of an atom into a plan over variable-named attributes.

    ``source`` produces rows over ``attributes`` (a subset of the relation's
    attributes, positionally aligned with the corresponding ``terms``).  The
    helper applies constant selections, equality selections for repeated
    variables, renames attributes to variable names and projects onto the
    variables in ``keep_variables``.
    """
    attr_list = list(attributes)
    term_by_attr = dict(zip(attr_list, terms))
    plan: PlanNode = source

    # Constant positions -> constant selections.
    constant_predicates = [
        AttributeEqualsConstant(attr, term.value)
        for attr, term in term_by_attr.items()
        if isinstance(term, Constant)
    ]
    if constant_predicates:
        plan = SelectNode(plan, tuple(constant_predicates))

    # Repeated variables -> equality selections between their attribute copies.
    positions_of: dict[Variable, list[str]] = {}
    for attr in attr_list:
        term = term_by_attr[attr]
        if isinstance(term, Variable):
            positions_of.setdefault(term, []).append(attr)
    repeat_predicates = []
    for variable, attrs in positions_of.items():
        for extra in attrs[1:]:
            repeat_predicates.append(AttributeEqualsAttribute(attrs[0], extra))
    if repeat_predicates:
        plan = SelectNode(plan, tuple(repeat_predicates))

    # Keep one attribute per kept variable, then rename it to the variable name
    # (projecting first avoids rename collisions with attributes being dropped).
    primary: list[tuple[str, Variable]] = [
        (attrs[0], variable)
        for variable, attrs in positions_of.items()
        if variable in keep_variables
    ]
    plan = ProjectNode(plan, tuple(attr for attr, _ in primary))
    rename_map = {attr: variable.name for attr, variable in primary if attr != variable.name}
    if rename_map:
        plan = RenameNode(plan, rename_map)
    kept_names = tuple(sorted(variable.name for _, variable in primary))
    return ProjectNode(plan, kept_names)


def _view_plan(
    view: View, terms: Sequence[Term], keep_variables: frozenset[Variable]
) -> PlanNode:
    """Plan scanning a cached view atom ``V(terms)``."""
    scan = ViewScan(view.name, view.attributes)
    return _atom_scan_plan(view.name, terms, view.attributes, scan, keep_variables)


# --------------------------------------------------------------------------- #
# Shape detection helpers
# --------------------------------------------------------------------------- #


def _is_condition(query: FOQuery) -> bool:
    return isinstance(query, FOEquality)


@dataclass(frozen=True)
class _ProjectedAtom:
    """An atom possibly under existential quantifiers: ``∃w̄ R(terms)``."""

    relation: str
    terms: tuple[Term, ...]
    quantified: frozenset[Variable]

    @property
    def free_variables(self) -> frozenset[Variable]:
        return frozenset(
            t for t in self.terms if isinstance(t, Variable) and t not in self.quantified
        )


def _as_projected_atom(query: FOQuery) -> _ProjectedAtom | None:
    quantified: set[Variable] = set()
    current = query
    while isinstance(current, FOExists):
        quantified.update(current.variables)
        current = current.child
    if isinstance(current, FOAtom):
        return _ProjectedAtom(
            relation=current.relation,
            terms=current.terms,
            quantified=frozenset(quantified),
        )
    return None


def _split_negation(query: FOAnd) -> tuple[FOQuery, FOQuery] | None:
    """Split ``Q1 ∧ ¬Q2`` out of a conjunction, if a negated conjunct exists."""
    negated = [c for c in query.children if isinstance(c, FONot)]
    if not negated:
        return None
    last_negated = negated[-1]
    positives = [c for c in query.children if c is not last_negated]
    left = conj(*positives) if positives else FOTrue()
    return left, last_negated.child


# --------------------------------------------------------------------------- #
# Fetch-based construction shared by cases (4a), (7a) and (7b)
# --------------------------------------------------------------------------- #


def _try_fetch_atom(
    atom: _ProjectedAtom,
    key_variables: frozenset[Variable],
    key_plan_builder: PlanBuilder | None,
    key_bounded: Callable[[], bool],
    params: ToppedParameters,
) -> PlanBuilder | None:
    """Builder fetching ``atom`` through an access constraint, or ``None``.

    ``key_variables`` are the variables whose values can be propagated into
    the fetch (free variables of the surrounding context); ``key_plan_builder``
    builds the plan producing them (``None`` for the empty context, usable
    only with constraints whose ``X`` is empty); ``key_bounded`` lazily checks
    that the context has bounded output (condition of cases 4a / 7b).
    """
    if not params.is_base_relation(atom.relation):
        return None
    relation = params.schema.relation(atom.relation)
    needed_positions = _needed_positions(atom)

    for constraint in params.access_schema.for_relation(atom.relation):
        x_positions = set(relation.positions(constraint.x))
        y_positions = set(relation.positions(constraint.y))
        usable = True
        needs_key_plan = False
        seen_key_variables: set[Variable] = set()
        for position in x_positions:
            term = atom.terms[position]
            if isinstance(term, Constant):
                continue
            if (
                isinstance(term, Variable)
                and term in key_variables
                and term not in atom.quantified
                and term not in seen_key_variables
            ):
                seen_key_variables.add(term)
                needs_key_plan = True
                continue
            usable = False
            break
        if not usable:
            continue
        if not needed_positions <= (x_positions | y_positions):
            continue
        if needs_key_plan:
            # Values are propagated from the context, which therefore must
            # have bounded output (conditions of cases 4a and 7b).
            if key_plan_builder is None or not key_bounded():
                continue
        builder = _fetch_builder(
            atom, constraint, relation.attributes, key_plan_builder, params
        )
        return builder
    return None


def _needed_positions(atom: _ProjectedAtom) -> set[int]:
    """Positions whose values the plan must actually observe."""
    needed: set[int] = set()
    occurrences: dict[Variable, list[int]] = {}
    for position, term in enumerate(atom.terms):
        if isinstance(term, Constant):
            needed.add(position)
        elif isinstance(term, Variable):
            occurrences.setdefault(term, []).append(position)
            if term not in atom.quantified:
                needed.add(position)
    for variable, positions in occurrences.items():
        if len(positions) > 1:
            needed.update(positions)
    return needed


def _fetch_builder(
    atom: _ProjectedAtom,
    constraint: AccessConstraint,
    relation_attributes: tuple[str, ...],
    key_plan_builder: PlanBuilder | None,
    params: ToppedParameters,
) -> PlanBuilder:
    """Assemble the fetch plan for ``atom`` through ``constraint``."""

    def build() -> PlanNode:
        x_attrs = constraint.x
        # Key sub-plan with attributes named exactly like the constraint's X.
        key_plan: PlanNode | None = None
        if x_attrs:
            variable_keys: list[tuple[str, Variable]] = []
            constant_keys: list[tuple[str, Constant]] = []
            for attr in x_attrs:
                position = relation_attributes.index(attr)
                term = atom.terms[position]
                if isinstance(term, Variable):
                    variable_keys.append((attr, term))
                else:
                    constant_keys.append((attr, term))
            if variable_keys:
                assert key_plan_builder is not None
                source = key_plan_builder()
                projected = ProjectNode(
                    source, tuple(sorted({v.name for _, v in variable_keys}))
                )
                rename_map = {
                    variable.name: attr
                    for attr, variable in variable_keys
                    if variable.name != attr
                }
                key_plan = RenameNode(projected, rename_map) if rename_map else projected
            for attr, constant in constant_keys:
                scan = ConstantScan(constant.value, attribute=attr)
                key_plan = scan if key_plan is None else join_on_shared_attributes(key_plan, scan)

        # Attributes fetched besides the key: everything needed that is not in X.
        needed = _needed_positions(atom)
        y_attrs = tuple(
            relation_attributes[p]
            for p in sorted(needed)
            if relation_attributes[p] not in x_attrs
        )
        fetch = FetchNode(key_plan, atom.relation, x_attrs, y_attrs)

        keep = atom.free_variables
        fetched_positions = [relation_attributes.index(a) for a in fetch.attributes]
        fetched_terms = [atom.terms[p] for p in fetched_positions]
        atom_plan = _atom_scan_plan(
            atom.relation, fetched_terms, fetch.attributes, fetch, keep
        )
        if key_plan_builder is None:
            return atom_plan
        return _join(key_plan_builder(), atom_plan)

    return build


# --------------------------------------------------------------------------- #
# The covq / size induction
# --------------------------------------------------------------------------- #


def _analyze(ctx: _Context, query: FOQuery, params: ToppedParameters) -> ToppedAnalysis:
    """Compute ``covq(Qs, Q)``, ``size(Qs, Q)`` and the plan builder."""

    # Qε — the tautology query.
    if isinstance(query, FOTrue):
        builder = ctx.builder if ctx.builder is not None else None
        return ToppedAnalysis(covered=True, size=0, builder=builder or (lambda: ProjectNode(ConstantScan(0), ())))

    # Case (1): Q is (z = c) — also accept constant/variable equalities directly.
    if isinstance(query, FOEquality) and not query.negated:
        return _analyze_condition_leaf(ctx, query)

    # Case (2): Q is a view atom V(z̄).
    if isinstance(query, FOAtom) and query.relation in params.views:
        return _analyze_view_atom(ctx, query, params)

    # Case (7): Q is ∃w̄ Q' — including a bare base-relation atom (w̄ empty).
    if isinstance(query, FOExists) or (
        isinstance(query, FOAtom) and params.is_base_relation(query.relation)
    ):
        return _analyze_exists(ctx, query, params)

    # Conjunctions: cases (3), (4) and (6).
    if isinstance(query, FOAnd):
        return _analyze_conjunction(ctx, query, params)

    # Case (5): disjunction.
    if isinstance(query, FOOr):
        return _analyze_disjunction(ctx, query, params)

    # Anything else (bare negation, universal quantification, ...) is not topped.
    return ToppedAnalysis.failure()


def _analyze_condition_leaf(ctx: _Context, query: FOEquality) -> ToppedAnalysis:
    """Case (1): ``z = c`` (and the degenerate ``z = z'`` between context variables)."""
    left, right = query.left, query.right

    def build() -> PlanNode:
        ctx_plan = ctx.build()
        if isinstance(left, Variable) and isinstance(right, Constant):
            return _join(ctx_plan, ConstantScan(right.value, attribute=left.name))
        if isinstance(right, Variable) and isinstance(left, Constant):
            return _join(ctx_plan, ConstantScan(left.value, attribute=right.name))
        if isinstance(left, Variable) and isinstance(right, Variable):
            if ctx_plan is None:
                raise QueryError(
                    f"equality {query} between variables needs a context providing them"
                )
            return SelectNode(ctx_plan, (AttributeEqualsAttribute(left.name, right.name),))
        # Constant = constant: either a tautology or a contradiction.
        base = ctx_plan if ctx_plan is not None else ProjectNode(ConstantScan(0), ())
        if left == right:
            return base
        return SelectNode(ConstantScan(0, "c"), (AttributeEqualsConstant("c", 1),))

    variables = query.free_variables
    if len(variables) == 2 and not variables <= ctx.free_variables:
        return ToppedAnalysis.failure()
    return ToppedAnalysis(covered=True, size=1, builder=build)


def _analyze_view_atom(
    ctx: _Context, query: FOAtom, params: ToppedParameters
) -> ToppedAnalysis:
    """Case (2): a cached view can always be scanned."""
    view = params.views.view(query.relation)

    def build() -> PlanNode:
        atom_plan = _view_plan(view, query.terms, query.free_variables)
        return _join(ctx.build(), atom_plan)

    return ToppedAnalysis(covered=True, size=1, builder=build)


def _analyze_exists(
    ctx: _Context, query: FOQuery, params: ToppedParameters
) -> ToppedAnalysis:
    """Case (7): ``∃w̄ Q'`` (with the bare-atom sub-cases 7a and 7b)."""
    atom = _as_projected_atom(query)
    if atom is not None and params.is_base_relation(atom.relation):
        # (7a): constraint with empty X — a single index scan suffices.
        fetch_builder = _try_fetch_atom(
            atom,
            key_variables=frozenset(),
            key_plan_builder=None,
            key_bounded=lambda: True,
            params=params,
        )
        if fetch_builder is not None:
            def build_7a() -> PlanNode:
                return _join(ctx.build(), fetch_builder())

            return ToppedAnalysis(covered=True, size=1, builder=build_7a)

        # (7b): key values propagated from Qs, which must have bounded output.
        fetch_builder = _try_fetch_atom(
            atom,
            key_variables=ctx.free_variables,
            key_plan_builder=ctx.builder,
            key_bounded=ctx.has_bounded_output,
            params=params,
        )
        if fetch_builder is not None:
            inner_size = 1.0
            return ToppedAnalysis(covered=True, size=inner_size + 1, builder=fetch_builder)

    if atom is not None and atom.relation in params.views:
        # A projected view atom: scan the view, then project.
        view = params.views.view(atom.relation)

        def build_view() -> PlanNode:
            atom_plan = _view_plan(view, atom.terms, atom.free_variables)
            return _join(ctx.build(), atom_plan)

        return ToppedAnalysis(covered=True, size=2, builder=build_view)

    # (7c): recurse into the body and project the quantified variables away.
    if isinstance(query, FOExists):
        inner = _analyze(ctx, query.child, params)
        if not inner.covered:
            return ToppedAnalysis.failure()
        quantified_names = {v.name for v in query.variables}

        def build_project() -> PlanNode:
            assert inner.builder is not None
            plan = inner.builder()
            kept = tuple(a for a in plan.attributes if a not in quantified_names)
            return ProjectNode(plan, kept)

        return ToppedAnalysis(covered=True, size=inner.size + 1, builder=build_project)

    return ToppedAnalysis.failure()


def _analyze_conjunction(
    ctx: _Context, query: FOAnd, params: ToppedParameters
) -> ToppedAnalysis:
    """Cases (3), (4) and (6) for conjunctions.

    Two groupings of the conjuncts are attempted and the smaller covered one
    wins: (a) peel a trailing (in)equality condition (case 3) and (b) split
    off the last non-condition conjunct as ``Q2`` and keep everything else —
    including the conditions — in ``Q1`` (case 4).  Grouping (b) is what lets
    a condition such as ``x = 1`` anchor the bounded-output check of ``Qs ∧
    Q1`` in case (4a), as in Example 5.4.
    """
    split = _split_negation(query)
    if split is not None:
        return _analyze_negation(ctx, split[0], split[1], params)

    children = list(query.children)
    if len(children) == 1:
        return _analyze(ctx, children[0], params)

    candidates: list[ToppedAnalysis] = []
    conditions = [c for c in children if _is_condition(c)]
    non_conditions = [c for c in children if not _is_condition(c)]

    # Grouping (a) — case (3): Q = Q' ∧ C for the last condition C.
    if conditions:
        candidates.append(_analyze_trailing_condition(ctx, children, conditions[-1], params))

    # Grouping (b) — case (4): Q = Q1 ∧ Q2 with Q2 the last non-condition conjunct.
    if non_conditions:
        q2 = non_conditions[-1]
        rest = [c for c in children if c is not q2]
        if rest:
            q1 = conj(*rest)
            candidates.append(_analyze_binary_conjunction(ctx, q1, q2, params))
        else:
            candidates.append(_analyze(ctx, q2, params))

    covered = [c for c in candidates if c.covered]
    if not covered:
        return ToppedAnalysis.failure()
    return min(covered, key=lambda c: c.size)


def _analyze_trailing_condition(
    ctx: _Context,
    children: list[FOQuery],
    condition: FOEquality,
    params: ToppedParameters,
) -> ToppedAnalysis:
    """Case (3): ``Q'(z̄) ∧ C`` for an (in)equality condition ``C``."""
    rest = [c for c in children if c is not condition]
    rest_query = conj(*rest) if rest else FOTrue()
    available = ctx.free_variables | rest_query.free_variables
    missing = condition.free_variables - available
    if missing and (condition.negated or len(condition.free_variables) != 1):
        # A condition over a variable the rest of the query never binds is
        # only admissible when it *defines* the variable (z = c).
        return ToppedAnalysis.failure()
    inner = _analyze(ctx, rest_query, params)
    if not inner.covered:
        return ToppedAnalysis.failure()

    def build_condition() -> PlanNode:
        assert inner.builder is not None
        plan = inner.builder()
        condition_vars = {v.name for v in condition.free_variables}
        if condition_vars <= set(plan.attributes):
            predicate = _condition_predicate(condition, plan)
            return SelectNode(plan, (predicate,))
        # The condition introduces a new variable via z = c: realise it as
        # a constant scan joined in (it cannot be negated here).
        variable = next(iter(condition.free_variables))
        constant = (
            condition.right if isinstance(condition.left, Variable) else condition.left
        )
        assert isinstance(constant, Constant)
        return _join(plan, ConstantScan(constant.value, attribute=variable.name))

    return ToppedAnalysis(covered=True, size=inner.size + 1, builder=build_condition)


def _condition_predicate(condition: FOEquality, plan: PlanNode):
    left, right = condition.left, condition.right
    if isinstance(left, Variable) and isinstance(right, Constant):
        return AttributeEqualsConstant(left.name, right.value, condition.negated)
    if isinstance(right, Variable) and isinstance(left, Constant):
        return AttributeEqualsConstant(right.name, left.value, condition.negated)
    if isinstance(left, Variable) and isinstance(right, Variable):
        return AttributeEqualsAttribute(left.name, right.name, condition.negated)
    raise QueryError(f"condition {condition} relates two constants")


def _analyze_binary_conjunction(
    ctx: _Context, q1: FOQuery, q2: FOQuery, params: ToppedParameters
) -> ToppedAnalysis:
    analysis_q1 = _analyze(ctx, q1, params)

    # Case (4a): Q2 is (a projection of) a relation atom reachable by a fetch
    # keyed by the free variables of Qs ∧ Q1, which must have bounded output.
    if analysis_q1.covered:
        atom = _as_projected_atom(q2)
        if atom is not None and params.is_base_relation(atom.relation):
            key_variables = ctx.free_variables | q1.free_variables
            fetch_builder = _try_fetch_atom(
                atom,
                key_variables=key_variables,
                key_plan_builder=analysis_q1.builder,
                key_bounded=lambda: ctx.bounded_output_with(q1),
                params=params,
            )
            if fetch_builder is not None:
                return ToppedAnalysis(
                    covered=True, size=analysis_q1.size + 1, builder=fetch_builder
                )

    # Case (4b): both conjuncts are covered with respect to Qs.
    analysis_q2 = _analyze(ctx, q2, params)
    if analysis_q1.covered and analysis_q2.covered:
        shared = q1.free_variables & q2.free_variables
        join_cost = 4 if shared else 1
        size = 2 * ctx.size + analysis_q1.size + analysis_q2.size + join_cost

        def build_join() -> PlanNode:
            assert analysis_q1.builder is not None and analysis_q2.builder is not None
            return join_on_shared_attributes(analysis_q1.builder(), analysis_q2.builder())

        return ToppedAnalysis(covered=True, size=size, builder=build_join)

    # Case (4c): extend Qs with Q1 and retry Q2 (bounded inner conjunct only).
    if analysis_q1.covered and q2.size() <= params.inner_size_cutoff:
        extended = ctx.extended(
            q1, analysis_q1.builder, size=ctx.size + analysis_q1.size
        )
        analysis_q2_extended = _analyze(extended, q2, params)
        if analysis_q2_extended.covered:
            return ToppedAnalysis(
                covered=True,
                size=analysis_q1.size + analysis_q2_extended.size,
                builder=analysis_q2_extended.builder,
            )

    return ToppedAnalysis.failure()


def _analyze_disjunction(
    ctx: _Context, query: FOOr, params: ToppedParameters
) -> ToppedAnalysis:
    """Case (5): disjuncts must share the same free variables (safe range)."""
    children = query.children
    free = children[0].free_variables
    if any(child.free_variables != free for child in children[1:]):
        return ToppedAnalysis.failure()
    analyses = [_analyze(ctx, child, params) for child in children]
    if not all(a.covered for a in analyses):
        return ToppedAnalysis.failure()
    size = sum(a.size for a in analyses) + (len(children) - 1)

    def build_union() -> PlanNode:
        plans = [a.builder() for a in analyses]  # type: ignore[misc]
        attributes = tuple(sorted(set(plans[0].attributes)))
        aligned = [_align(p, attributes) for p in plans]
        result = aligned[0]
        for plan in aligned[1:]:
            result = UnionNode(result, plan)
        return result

    return ToppedAnalysis(covered=True, size=size, builder=build_union)


def _analyze_negation(
    ctx: _Context, q1: FOQuery, q2: FOQuery, params: ToppedParameters
) -> ToppedAnalysis:
    """Case (6): ``Q1 ∧ ¬Q2`` with matching free variables."""
    if q1.free_variables != q2.free_variables:
        return ToppedAnalysis.failure()
    analysis_q1 = _analyze(ctx, q1, params)
    if not analysis_q1.covered:
        return ToppedAnalysis.failure()

    analysis_q2 = _analyze(ctx, q2, params)
    if analysis_q2.covered:
        size = analysis_q1.size + analysis_q2.size + 1

        def build_difference() -> PlanNode:
            assert analysis_q1.builder is not None and analysis_q2.builder is not None
            left = analysis_q1.builder()
            right = analysis_q2.builder()
            attributes = tuple(sorted(set(left.attributes) & set(right.attributes)))
            return DifferenceNode(_align(left, attributes), _align(right, attributes))

        return ToppedAnalysis(covered=True, size=size, builder=build_difference)

    # Case (6b): Q1 ∧ ¬Q2 = Q1 ∧ ¬(Q1 ∧ Q2), useful when Q1 ∧ Q2 is covered
    # (e.g. by propagating Q1's values into Q2).  Restricted to inner
    # conjuncts of size at most K, as in the paper.
    if q2.size() <= params.inner_size_cutoff:
        analysis_q12 = _analyze(ctx, conj(q1, q2), params)
        if analysis_q12.covered:
            size = analysis_q1.size + analysis_q12.size + 1

            def build_difference_12() -> PlanNode:
                assert analysis_q1.builder is not None and analysis_q12.builder is not None
                left = analysis_q1.builder()
                right = analysis_q12.builder()
                attributes = tuple(sorted(set(left.attributes)))
                return DifferenceNode(_align(left, attributes), _align(right, attributes))

            return ToppedAnalysis(covered=True, size=size, builder=build_difference_12)

    return ToppedAnalysis.failure()


# --------------------------------------------------------------------------- #
# Public API
# --------------------------------------------------------------------------- #


def analyze_topped(
    query: FOQuery,
    schema: DatabaseSchema,
    views: ViewSet,
    access_schema: AccessSchema,
    inner_size_cutoff: int = 1,
    budget: ElementQueryBudget | None = None,
) -> ToppedAnalysis:
    """Run the ``covq``/``size`` analysis of ``query`` against ``(R, V, A)``."""
    params = ToppedParameters(
        schema=schema,
        views=views,
        access_schema=access_schema,
        inner_size_cutoff=inner_size_cutoff,
        budget=budget,
    )
    rectified = rectify(query)
    return _analyze(_Context(params=params), rectified, params)


def is_topped(
    query: FOQuery,
    schema: DatabaseSchema,
    views: ViewSet,
    access_schema: AccessSchema,
    max_size: int,
    inner_size_cutoff: int = 1,
    budget: ElementQueryBudget | None = None,
) -> bool:
    """Is ``query`` topped by ``(R, V, A, M)``?  (Theorem 5.1(c), PTIME.)"""
    analysis = analyze_topped(
        query, schema, views, access_schema, inner_size_cutoff, budget
    )
    return analysis.covered and analysis.size <= max_size


def topped_plan(
    query: FOQuery,
    head: Sequence[Variable],
    schema: DatabaseSchema,
    views: ViewSet,
    access_schema: AccessSchema,
    inner_size_cutoff: int = 1,
    budget: ElementQueryBudget | None = None,
) -> PlanNode | None:
    """Generate the bounded plan of a topped query (Theorem 5.1(b)).

    Returns ``None`` when the query is not topped.  The plan's output
    attributes follow ``head`` (the query's free variables in output order).
    """
    analysis = analyze_topped(
        query, schema, views, access_schema, inner_size_cutoff, budget
    )
    if not analysis.covered or analysis.builder is None:
        return None
    plan = analysis.builder()
    wanted = tuple(variable.name for variable in head)
    missing = [name for name in wanted if name not in plan.attributes]
    if missing:
        raise QueryError(
            f"generated plan does not expose head attributes {missing}; "
            f"plan attributes are {plan.attributes}"
        )
    if plan.attributes != wanted:
        plan = ProjectNode(plan, wanted)
    return plan
