"""Access schemas: cardinality constraints with associated indices.

An *access constraint* ``R(X -> Y, N)`` (paper, Section 2) states that

* for every ``X``-value ``ā`` occurring in an instance ``D`` of ``R``, there
  are at most ``N`` distinct ``Y``-projections among the tuples with
  ``t[X] = ā``; and
* an index exists that, given ``ā``, returns all ``XY``-projections
  ``D_{R:XY}(X = ā)`` in ``O(N)`` time.

Functional dependencies with an index are the special case ``N = 1``.  An
*access schema* ``A`` is a finite set of access constraints; an instance
satisfies ``A`` when it satisfies every constraint.

The satisfaction test here works over plain *fact sets* (mappings from
relation names to collections of value tuples) so it applies uniformly to
materialised databases (:class:`repro.storage.instance.Database`) and to
query tableaux (where the remaining variables act as distinct labelled
nulls) — the latter is exactly what the element-query machinery of
Section 3.1 needs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Collection, Iterable, Iterator, Mapping, Sequence

from ..algebra.schema import DatabaseSchema, RelationSchema
from ..errors import AccessConstraintError

FactSet = Mapping[str, Collection[tuple]]


@dataclass(frozen=True)
class AccessConstraint:
    """An access constraint ``relation(x -> y, bound)``.

    >>> phi1 = AccessConstraint("movie", ("studio", "release"), ("mid",), 100)
    >>> phi1.is_functional_dependency
    False
    """

    relation: str
    x: tuple[str, ...]
    y: tuple[str, ...]
    bound: int

    def __init__(
        self,
        relation: str,
        x: Iterable[str],
        y: Iterable[str],
        bound: int,
    ) -> None:
        x_attrs = tuple(x)
        y_attrs = tuple(y)
        if bound < 1:
            raise AccessConstraintError(
                f"access constraint on {relation!r} must have bound >= 1, got {bound}"
            )
        if len(set(x_attrs)) != len(x_attrs) or len(set(y_attrs)) != len(y_attrs):
            raise AccessConstraintError(
                f"access constraint on {relation!r} repeats attributes: X={x_attrs}, Y={y_attrs}"
            )
        object.__setattr__(self, "relation", relation)
        object.__setattr__(self, "x", x_attrs)
        object.__setattr__(self, "y", y_attrs)
        object.__setattr__(self, "bound", int(bound))

    # ------------------------------------------------------------------ #

    @property
    def is_functional_dependency(self) -> bool:
        """True when the constraint is an FD with index, i.e. ``N = 1``."""
        return self.bound == 1

    @property
    def output_attributes(self) -> tuple[str, ...]:
        """Attributes returned by a fetch through this constraint: ``X ∪ Y``."""
        return self.x + tuple(a for a in self.y if a not in self.x)

    def validate(self, schema: DatabaseSchema) -> None:
        relation = schema.relation(self.relation)
        for attribute in self.x + self.y:
            if attribute not in relation.attributes:
                raise AccessConstraintError(
                    f"constraint {self} refers to unknown attribute {attribute!r} "
                    f"of relation {self.relation!r}"
                )

    def positions(self, schema: DatabaseSchema) -> tuple[tuple[int, ...], tuple[int, ...]]:
        """Return the (X positions, Y positions) within the relation schema."""
        relation = schema.relation(self.relation)
        return relation.positions(self.x), relation.positions(self.y)

    def covers_fetch(self, x_attrs: Sequence[str], y_attrs: Sequence[str]) -> bool:
        """Can a ``fetch(X ∈ S, R, Y)`` operation be served by this constraint?

        Following Section 2, a fetch with input attributes ``x_attrs`` and
        output attributes ``y_attrs`` conforms to the constraint when the
        fetch keys coincide with the constraint's ``X`` and the requested
        attributes are contained in ``X ∪ Y``.
        """
        return set(x_attrs) == set(self.x) and set(y_attrs) <= set(self.x) | set(self.y)

    def satisfied_by(self, facts: FactSet, schema: DatabaseSchema) -> bool:
        """Check the cardinality part of the constraint over a fact set."""
        return not any(True for _ in self.violations(facts, schema))

    def violations(self, facts: FactSet, schema: DatabaseSchema) -> Iterator[str]:
        """Yield human-readable descriptions of the violated groups."""
        x_positions, y_positions = self.positions(schema)
        groups: dict[tuple, set[tuple]] = {}
        for row in facts.get(self.relation, ()):
            key = tuple(row[p] for p in x_positions)
            value = tuple(row[p] for p in y_positions)
            groups.setdefault(key, set()).add(value)
        for key, values in groups.items():
            if len(values) > self.bound:
                yield (
                    f"{self.relation}: X={key} has {len(values)} distinct Y-values, "
                    f"bound is {self.bound}"
                )

    def __str__(self) -> str:
        x = ", ".join(self.x) if self.x else "∅"
        y = ", ".join(self.y)
        return f"{self.relation}(({x}) -> ({y}), {self.bound})"


class AccessSchema:
    """A set of access constraints over a database schema."""

    def __init__(self, constraints: Iterable[AccessConstraint] = ()) -> None:
        self._constraints: tuple[AccessConstraint, ...] = tuple(constraints)

    @property
    def constraints(self) -> tuple[AccessConstraint, ...]:
        return self._constraints

    def __iter__(self) -> Iterator[AccessConstraint]:
        return iter(self._constraints)

    def __len__(self) -> int:
        return len(self._constraints)

    def __bool__(self) -> bool:
        return bool(self._constraints)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, AccessSchema):
            return NotImplemented
        return set(self._constraints) == set(other._constraints)

    def __hash__(self) -> int:
        return hash(frozenset(self._constraints))

    def for_relation(self, relation: str) -> tuple[AccessConstraint, ...]:
        return tuple(c for c in self._constraints if c.relation == relation)

    @property
    def relations(self) -> frozenset[str]:
        return frozenset(c.relation for c in self._constraints)

    @property
    def is_fd_only(self) -> bool:
        """True when every constraint is an FD (``N = 1``), cf. Corollary 4.4."""
        return all(c.is_functional_dependency for c in self._constraints)

    @property
    def max_bound(self) -> int:
        """The largest N among the constraints (0 for an empty schema)."""
        return max((c.bound for c in self._constraints), default=0)

    def validate(self, schema: DatabaseSchema) -> None:
        for constraint in self._constraints:
            constraint.validate(schema)

    def satisfied_by(self, facts: FactSet, schema: DatabaseSchema) -> bool:
        """True when the fact set satisfies every constraint (``D |= A``)."""
        return all(c.satisfied_by(facts, schema) for c in self._constraints)

    def violations(self, facts: FactSet, schema: DatabaseSchema) -> list[str]:
        messages: list[str] = []
        for constraint in self._constraints:
            messages.extend(constraint.violations(facts, schema))
        return messages

    def find_covering(
        self, relation: str, x_attrs: Sequence[str], y_attrs: Sequence[str]
    ) -> AccessConstraint | None:
        """Return a constraint that can serve ``fetch(x_attrs ∈ _, relation, y_attrs)``."""
        for constraint in self.for_relation(relation):
            if constraint.covers_fetch(x_attrs, y_attrs):
                return constraint
        return None

    def extended_with(self, constraints: Iterable[AccessConstraint]) -> "AccessSchema":
        return AccessSchema(self._constraints + tuple(constraints))

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return "AccessSchema(" + "; ".join(str(c) for c in self._constraints) + ")"


def access_constraint(
    relation: str,
    x: Iterable[str] | str,
    y: Iterable[str] | str,
    bound: int,
) -> AccessConstraint:
    """Convenience constructor accepting whitespace-separated attribute strings.

    >>> str(access_constraint("rating", "mid", "rank", 1))
    'rating((mid) -> (rank), 1)'
    """
    if isinstance(x, str):
        x = x.split()
    if isinstance(y, str):
        y = y.split()
    return AccessConstraint(relation, tuple(x), tuple(y), bound)


def tableau_satisfies(tableau_facts: FactSet, access_schema: AccessSchema, schema: DatabaseSchema) -> bool:
    """Satisfaction of an access schema by a tableau's fact set.

    Variables inside the facts are treated as pairwise distinct constants,
    which is exactly the convention used when defining element queries
    ("we view T_Qe as an instance of R, by treating variables as constants").
    """
    return access_schema.satisfied_by(tableau_facts, schema)
