"""Translating bounded query plans (and CQs) into SQL.

Section 5.1 of the paper describes how bounded rewriting is deployed on top
of a commercial DBMS: "this can be carried out by translating ξ into an
equivalent SQL query Q_ξ, which is passed to the underlying DBMS.  By
implementing fetch operations in terms of index joins and using join hints
or virtual views to enforce the join orders, we can enforce the DBMS to
evaluate Q_ξ by exactly following ξ."

This module performs that translation:

* :func:`plan_to_sql` — a query plan becomes a single SQL statement built
  from one common-table expression (CTE) per plan node, mirroring the plan
  tree one-to-one so the join order is syntactically pinned down; every
  ``fetch`` node is rendered as an index join and annotated with the access
  constraint that serves it;
* :func:`cq_to_sql` / :func:`ucq_to_sql` — direct SQL for CQ/UCQ queries
  (the full-scan baseline);
* :func:`create_table_statements`, :func:`create_index_statements`,
  :func:`insert_statements`, :func:`materialize_view_statements` — DDL/DML
  helpers that load a :class:`repro.storage.instance.Database`, the indices
  of an access schema and the materialised views into any SQL database.

The generated SQL sticks to the common core (CTEs, ``UNION``/``EXCEPT``,
``SELECT DISTINCT``) and is executable on SQLite out of the box, which is
what the test suite uses to cross-validate the translation against the plan
executor.  Set semantics is enforced with ``SELECT DISTINCT`` throughout,
matching the library's semantics.

Boolean (zero-attribute) plan nodes cannot become zero-column SQL relations;
they are rendered with a single marker column whose name is reported in
:class:`SQLTranslation.marker_column` (a non-empty result means *true*).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping, Sequence

from ..algebra.cq import ConjunctiveQuery
from ..algebra.schema import DatabaseSchema
from ..algebra.terms import Constant, Variable
from ..algebra.ucq import QueryLike, as_union
from ..algebra.views import ViewSet
from ..core.access import AccessSchema
from ..core.plans import (
    AttributeEqualsAttribute,
    AttributeEqualsConstant,
    ConstantScan,
    DifferenceNode,
    FetchNode,
    PlanNode,
    ProductNode,
    ProjectNode,
    RenameNode,
    SelectNode,
    UnionNode,
    ViewScan,
)
from ..errors import PlanError, UnsupportedQueryError
from ..storage.instance import Database


# --------------------------------------------------------------------------- #
# SQL lexical helpers
# --------------------------------------------------------------------------- #


def quote_identifier(name: str) -> str:
    """Quote an identifier for SQL (double quotes, doubling embedded quotes)."""
    return '"' + name.replace('"', '""') + '"'


def quote_literal(value: object) -> str:
    """Render a Python value as a SQL literal."""
    if value is None:
        return "NULL"
    if isinstance(value, bool):
        return "1" if value else "0"
    if isinstance(value, (int, float)):
        return repr(value)
    return "'" + str(value).replace("'", "''") + "'"


def view_table_name(view_name: str) -> str:
    """The table name under which a materialised view is stored."""
    return f"mv_{view_name}"


# --------------------------------------------------------------------------- #
# Plan -> SQL
# --------------------------------------------------------------------------- #


@dataclass
class SQLTranslation:
    """A SQL rendering of a plan together with its bookkeeping.

    ``text`` is the complete statement (CTEs plus final ``SELECT``);
    ``columns`` are the output column names in order (empty for Boolean
    plans); ``marker_column`` is the name of the synthetic column emitted for
    Boolean plans (``None`` otherwise); ``fetch_comments`` lists, per fetch
    node, the access constraint annotation embedded in the SQL.
    """

    text: str
    columns: tuple[str, ...]
    marker_column: str | None = None
    fetch_comments: tuple[str, ...] = ()

    def __str__(self) -> str:
        return self.text


@dataclass
class _RenderedNode:
    """Internal: one CTE produced for a plan node."""

    cte_name: str
    columns: tuple[str, ...]
    marker: str | None


class _PlanRenderer:
    """Renders a plan tree as a ``WITH`` chain, one CTE per node."""

    def __init__(
        self,
        schema: DatabaseSchema,
        views: ViewSet | None,
        access_schema: AccessSchema | None,
    ) -> None:
        self.schema = schema
        self.views = views
        self.access_schema = access_schema
        self.ctes: list[tuple[str, str]] = []
        self.fetch_comments: list[str] = []
        self._counter = 0

    # ------------------------------------------------------------------ #

    def render(self, plan: PlanNode) -> SQLTranslation:
        rendered = self._render_node(plan)
        with_clause = ",\n".join(
            f"{name} AS (\n{body}\n)" for name, body in self.ctes
        )
        select_columns = (
            ", ".join(quote_identifier(c) for c in rendered.columns)
            if rendered.columns
            else quote_identifier(rendered.marker or "__exists")
        )
        text = f"WITH {with_clause}\nSELECT DISTINCT {select_columns} FROM {rendered.cte_name}"
        return SQLTranslation(
            text=text,
            columns=rendered.columns,
            marker_column=rendered.marker if not rendered.columns else None,
            fetch_comments=tuple(self.fetch_comments),
        )

    # ------------------------------------------------------------------ #

    def _fresh_cte(self) -> str:
        self._counter += 1
        return f"s{self._counter}"

    def _emit(self, body: str, columns: Sequence[str], marker: str | None) -> _RenderedNode:
        name = self._fresh_cte()
        self.ctes.append((name, body))
        return _RenderedNode(cte_name=name, columns=tuple(columns), marker=marker)

    def _marker_name(self) -> str:
        return f"__exists_{self._counter + 1}"

    @staticmethod
    def _column_list(rendered: _RenderedNode, alias: str | None = None) -> str:
        prefix = f"{alias}." if alias else ""
        names = rendered.columns if rendered.columns else (rendered.marker,)
        return ", ".join(f"{prefix}{quote_identifier(str(n))}" for n in names)

    # ------------------------------------------------------------------ #

    def _render_node(self, node: PlanNode) -> _RenderedNode:
        if isinstance(node, ConstantScan):
            column = node.attribute
            body = f"  SELECT {quote_literal(node.value)} AS {quote_identifier(column)}"
            return self._emit(body, (column,), None)

        if isinstance(node, ViewScan):
            table = view_table_name(node.view_name)
            columns = node.view_attributes
            if columns:
                select_list = ", ".join(quote_identifier(c) for c in columns)
                body = f"  SELECT DISTINCT {select_list} FROM {quote_identifier(table)}"
                return self._emit(body, columns, None)
            marker = self._marker_name()
            body = (
                f"  SELECT DISTINCT 1 AS {quote_identifier(marker)} "
                f"FROM {quote_identifier(table)}"
            )
            return self._emit(body, (), marker)

        if isinstance(node, FetchNode):
            return self._render_fetch(node)

        if isinstance(node, ProjectNode):
            child = self._render_node(node.child)
            if node.kept:
                select_list = ", ".join(quote_identifier(c) for c in node.kept)
                body = f"  SELECT DISTINCT {select_list} FROM {child.cte_name}"
                return self._emit(body, node.kept, None)
            marker = self._marker_name()
            body = f"  SELECT DISTINCT 1 AS {quote_identifier(marker)} FROM {child.cte_name}"
            return self._emit(body, (), marker)

        if isinstance(node, SelectNode):
            child = self._render_node(node.child)
            conditions = " AND ".join(self._predicate_sql(p) for p in node.predicates)
            body = (
                f"  SELECT DISTINCT {self._column_list(child)} FROM {child.cte_name}"
                f" WHERE {conditions}"
            )
            return self._emit(body, child.columns, child.marker)

        if isinstance(node, RenameNode):
            child = self._render_node(node.child)
            if not child.columns:
                body = f"  SELECT DISTINCT {self._column_list(child)} FROM {child.cte_name}"
                return self._emit(body, (), child.marker)
            mapping = dict(node.mapping)
            select_parts = []
            for old in child.columns:
                new = mapping.get(old, old)
                if new == old:
                    select_parts.append(quote_identifier(old))
                else:
                    select_parts.append(f"{quote_identifier(old)} AS {quote_identifier(new)}")
            body = f"  SELECT DISTINCT {', '.join(select_parts)} FROM {child.cte_name}"
            return self._emit(body, node.attributes, child.marker)

        if isinstance(node, ProductNode):
            left = self._render_node(node.left)
            right = self._render_node(node.right)
            parts = []
            if left.columns:
                parts.append(self._column_list(left, "l"))
            if right.columns:
                parts.append(self._column_list(right, "r"))
            columns = left.columns + right.columns
            marker = None
            if not parts:
                marker = self._marker_name()
                parts.append(f"1 AS {quote_identifier(marker)}")
            body = (
                f"  SELECT DISTINCT {', '.join(parts)} "
                f"FROM {left.cte_name} AS l, {right.cte_name} AS r"
            )
            return self._emit(body, columns, marker)

        if isinstance(node, (UnionNode, DifferenceNode)):
            left = self._render_node(node.left)
            right = self._render_node(node.right)
            keyword = "UNION" if isinstance(node, UnionNode) else "EXCEPT"
            body = (
                f"  SELECT DISTINCT {self._column_list(left)} FROM {left.cte_name}\n"
                f"  {keyword}\n"
                f"  SELECT DISTINCT {self._column_list(right)} FROM {right.cte_name}"
            )
            return self._emit(body, left.columns, left.marker)

        raise PlanError(f"unknown plan node type {type(node).__name__}")

    # ------------------------------------------------------------------ #

    def _render_fetch(self, node: FetchNode) -> _RenderedNode:
        relation = self.schema.relation(node.relation)
        comment = ""
        if self.access_schema is not None:
            constraint = node.covering_constraint(self.access_schema)
            if constraint is not None:
                comment = f" /* index join via {constraint} */"
                self.fetch_comments.append(str(constraint))
        output_columns = node.attributes
        select_parts = []
        for attribute in output_columns:
            select_parts.append(f"r.{quote_identifier(attribute)}")
        if node.child is None:
            body = (
                f"  SELECT DISTINCT {', '.join(select_parts)}"
                f" FROM {quote_identifier(node.relation)} AS r{comment}"
            )
            return self._emit(body, output_columns, None)
        child = self._render_node(node.child)
        join_conditions = " AND ".join(
            f"r.{quote_identifier(attr)} = c.{quote_identifier(attr)}"
            for attr in node.x_attrs
        )
        body = (
            f"  SELECT DISTINCT {', '.join(select_parts)}"
            f" FROM {child.cte_name} AS c JOIN {quote_identifier(node.relation)} AS r"
            f" ON {join_conditions}{comment}"
        )
        del relation
        return self._emit(body, output_columns, None)

    @staticmethod
    def _predicate_sql(predicate) -> str:
        if isinstance(predicate, AttributeEqualsConstant):
            operator = "<>" if predicate.negated else "="
            return f"{quote_identifier(predicate.attribute)} {operator} {quote_literal(predicate.value)}"
        if isinstance(predicate, AttributeEqualsAttribute):
            operator = "<>" if predicate.negated else "="
            return f"{quote_identifier(predicate.left)} {operator} {quote_identifier(predicate.right)}"
        raise PlanError(f"unknown predicate type {type(predicate).__name__}")


def plan_to_sql(
    plan: PlanNode,
    schema: DatabaseSchema,
    views: ViewSet | None = None,
    access_schema: AccessSchema | None = None,
) -> SQLTranslation:
    """Translate a query plan into a single SQL statement (one CTE per node).

    ``views`` is only used for validation of view arities (the SQL references
    the materialised view tables, see :func:`materialize_view_statements`);
    ``access_schema`` adds an index-join annotation to every fetch.
    """
    if views is not None:
        plan.validate(schema, views, None)
    return _PlanRenderer(schema, views, access_schema).render(plan)


# --------------------------------------------------------------------------- #
# CQ / UCQ -> SQL (the full-scan baseline)
# --------------------------------------------------------------------------- #


def cq_to_sql(query: ConjunctiveQuery, schema: DatabaseSchema) -> str:
    """Translate a CQ into a ``SELECT DISTINCT`` over joined relation aliases.

    Boolean queries produce ``SELECT DISTINCT 1 AS "__exists" ...``; the query
    is true on a database iff the statement returns a (single) row.
    """
    if not query.is_satisfiable():
        raise UnsupportedQueryError(f"query {query.name!r} is unsatisfiable")
    normalized = query.normalize()
    aliases: list[str] = []
    from_parts: list[str] = []
    where_parts: list[str] = []
    binding: dict[Variable, str] = {}

    for index, atom in enumerate(normalized.atoms):
        alias = f"t{index}"
        aliases.append(alias)
        from_parts.append(f"{quote_identifier(atom.relation)} AS {alias}")
        relation = schema.relation(atom.relation)
        for position, term in enumerate(atom.terms):
            column = f"{alias}.{quote_identifier(relation.attributes[position])}"
            if isinstance(term, Constant):
                where_parts.append(f"{column} = {quote_literal(term.value)}")
            else:
                if term in binding:
                    where_parts.append(f"{column} = {binding[term]}")
                else:
                    binding[term] = column

    select_parts: list[str] = []
    for position, term in enumerate(normalized.head):
        alias = f"a{position}"
        if isinstance(term, Constant):
            select_parts.append(f"{quote_literal(term.value)} AS {quote_identifier(alias)}")
        else:
            if term not in binding:
                raise UnsupportedQueryError(
                    f"head variable {term} of {query.name!r} does not occur in the body"
                )
            select_parts.append(f"{binding[term]} AS {quote_identifier(alias)}")
    if not select_parts:
        select_parts.append(f"1 AS {quote_identifier('__exists')}")

    text = "SELECT DISTINCT " + ", ".join(select_parts)
    if from_parts:
        text += " FROM " + ", ".join(from_parts)
    if where_parts:
        text += " WHERE " + " AND ".join(where_parts)
    return text


def ucq_to_sql(query: QueryLike, schema: DatabaseSchema) -> str:
    """Translate a CQ/UCQ into SQL (disjuncts combined with ``UNION``)."""
    union = as_union(query)
    parts = [cq_to_sql(d, schema) for d in union.satisfiable_disjuncts()]
    if not parts:
        raise UnsupportedQueryError(f"query {union.name!r} has no satisfiable disjunct")
    return "\nUNION\n".join(parts)


# --------------------------------------------------------------------------- #
# DDL / DML helpers
# --------------------------------------------------------------------------- #


def create_table_statements(schema: DatabaseSchema) -> list[str]:
    """``CREATE TABLE`` statements for every relation of the schema."""
    statements = []
    for relation in schema:
        columns = ", ".join(quote_identifier(a) for a in relation.attributes)
        statements.append(
            f"CREATE TABLE {quote_identifier(relation.name)} ({columns})"
        )
    return statements


def create_index_statements(access_schema: AccessSchema, schema: DatabaseSchema) -> list[str]:
    """``CREATE INDEX`` statements realising the indices of the access schema.

    One composite index per constraint, on the constraint's ``X`` attributes
    (constraints with empty ``X`` need no index: they are single lookups).
    """
    access_schema.validate(schema)
    statements = []
    for number, constraint in enumerate(access_schema):
        if not constraint.x:
            continue
        columns = ", ".join(quote_identifier(a) for a in constraint.x)
        statements.append(
            f"CREATE INDEX {quote_identifier(f'idx_{constraint.relation}_{number}')} "
            f"ON {quote_identifier(constraint.relation)} ({columns})"
        )
    return statements


def insert_statements(database: Database) -> list[tuple[str, list[tuple]]]:
    """Parameterised ``INSERT`` statements (statement, rows) for a database.

    Returned as ``executemany``-ready pairs so loading stays fast and safe
    from quoting issues.
    """
    statements: list[tuple[str, list[tuple]]] = []
    for name, rows in database.facts.items():
        if not rows:
            continue
        relation = database.schema.relation(name)
        placeholders = ", ".join("?" for _ in relation.attributes)
        statements.append(
            (
                f"INSERT INTO {quote_identifier(name)} VALUES ({placeholders})",
                [tuple(row) for row in rows],
            )
        )
    return statements


def materialize_view_statements(
    views: ViewSet, view_cache: Mapping[str, Sequence[tuple]]
) -> list[tuple[str, str, list[tuple]]]:
    """DDL + DML for materialised views: (create statement, insert statement, rows).

    ``view_cache`` maps view names to their computed rows (e.g. the
    ``view_cache`` of :class:`repro.engine.session.BoundedEngine`).
    """
    statements: list[tuple[str, str, list[tuple]]] = []
    for view in views:
        table = view_table_name(view.name)
        attributes = view.attributes if view.arity else ("__exists",)
        columns = ", ".join(quote_identifier(a) for a in attributes)
        create = f"CREATE TABLE {quote_identifier(table)} ({columns})"
        placeholders = ", ".join("?" for _ in attributes)
        insert = f"INSERT INTO {quote_identifier(table)} VALUES ({placeholders})"
        rows = [tuple(row) if row else (1,) for row in view_cache.get(view.name, ())]
        statements.append((create, insert, rows))
    return statements
