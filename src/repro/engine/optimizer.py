"""Heuristic bounded-plan generation for CQ/UCQ queries (the practical path).

The exact VBRP procedures (:mod:`repro.core.vbrp`) enumerate all candidate
plans and are exponential by necessity.  Real systems instead *construct*
plans directly from the query, as outlined in Section 5.1 of the paper
("more practical algorithms for bounded rewriting using views can be
developed along the same lines as the bounded plan generation algorithm of
[Cao and Fan 2016]").  This module implements such a constructive builder:

1. cached views whose bodies map homomorphically into the query are added as
   free *filter/binder* fragments (scanning ``V(D)`` costs no I/O);
2. uncovered query atoms are then fetched greedily through access constraints
   whose key attributes are already bound by constants, views or earlier
   fetches;
3. the resulting plan is validated with the exact conformance checker, so
   every plan returned is sound — the builder is simply not complete.

Since optimizer v2, a second constructive builder lives here as well:
:func:`build_bounded_plan_cost` replaces the greedy fetch order with a
Selinger-style subset dynamic program over (atom, access-constraint) steps,
costed with the per-column equi-depth histograms of
:mod:`repro.storage.histograms` — the greedy orderer ranks access paths by
the whole-column *average* bucket, which a single hot key can be off from by
orders of magnitude.  The DP explores bushy orders up to ``max_dp_atoms``
atoms and falls back to the greedy loop above that (or whenever the winning
abstract order fails materialisation); the winning order is materialised
through the *same* ``_atom_fetch`` / ``join_on_shared_attributes`` machinery
as the greedy builder, so DP-emitted plans have the exact fragment shape the
PR 6 verifier certifies.  :func:`estimate_plan_fetches` is the shared
cardinality model: it walks any constructed plan and predicts its Dξ, which
the service records against the IOMeter's actuals to drive adaptive
re-planning.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Iterable, Mapping, Sequence

from ..algebra.containment import equivalent
from ..algebra.cq import ConjunctiveQuery
from ..algebra.homomorphism import iter_homomorphisms
from ..algebra.schema import DatabaseSchema
from ..algebra.terms import Constant, FreshVariableFactory, Term, Variable
from ..algebra.ucq import QueryLike, UnionQuery, as_union
from ..algebra.views import View, ViewSet
from ..core.access import AccessConstraint, AccessSchema
from ..core.conformance import conforms_to
from ..core.element_queries import ElementQueryBudget
from ..core.plans import (
    AttributeEqualsAttribute,
    AttributeEqualsConstant,
    ConstantScan,
    DifferenceNode,
    FetchNode,
    PlanNode,
    ProductNode,
    ProjectNode,
    RenameNode,
    SelectNode,
    UnionNode,
    ViewScan,
    join_on_shared_attributes,
)
from ..errors import UnsupportedQueryError

if TYPE_CHECKING:
    from ..storage.statistics import RelationStatistics


@dataclass
class _Fragment:
    """A plan fragment binding a set of query variables (attribute = var name).

    ``covers`` lists the indices of query atoms the fragment *accounts for*:
    atoms covered by a view usage whose expansion stays equivalent to the
    query do not need to be fetched at all (this is what makes Example 1.1's
    Q0 boundedly rewritable using V1).
    """

    plan: PlanNode
    bound: frozenset[Variable]
    covers: frozenset[int] = frozenset()


@dataclass(frozen=True)
class OrderCandidate:
    """One join order the cost-based orderer considered, with its model cost."""

    description: str
    cost: float
    chosen: bool = False


@dataclass(frozen=True)
class JoinOrderReport:
    """Why the cost-based builder picked the order it picked.

    ``strategy`` is ``"dp"`` when the subset DP chose the order, or a
    ``"greedy-fallback: <why>"`` string when the builder fell back to the
    greedy loop.  ``considered`` lists the chosen order first, then the best
    rejected completions (including the simulated greedy order, for
    comparison), each with its abstract cost (expected probe calls + tuples
    fetched).  Plain strings and floats only — the report rides along in the
    plan cache and the persistent plan store.
    """

    strategy: str
    considered: tuple[OrderCandidate, ...] = ()


@dataclass(frozen=True)
class FetchEstimate:
    """Predicted cost of one fetch operator of a constructed plan."""

    relation: str
    access: str
    keys: float
    per_key: float
    fetched: float


@dataclass(frozen=True)
class PlanEstimate:
    """Predicted cardinalities of a whole plan (see :func:`estimate_plan_fetches`)."""

    rows: float
    total_fetched: float
    fetches: tuple[FetchEstimate, ...]


@dataclass
class PlanSearchOutcome:
    """Result of the heuristic plan construction."""

    plan: PlanNode | None
    reason: str = ""
    fragments_used: int = 0
    order_report: JoinOrderReport | None = None

    @property
    def found(self) -> bool:
        return self.plan is not None


def _view_usages(
    view: View, query: ConjunctiveQuery, max_homomorphisms: int = 8
) -> list[tuple[dict, frozenset[int]]]:
    """Ways of mapping the view body into the query (homomorphism + image atoms).

    Soundness of using such a view in a plan: when a homomorphism ``h`` from
    the view body into the query's tableau exists, every valuation satisfying
    the query also satisfies the view body (composed with ``h``), hence the
    corresponding head tuple is in ``V(D)`` — joining with the cached view
    never loses answers.  Whether the usage may additionally *replace* the
    atoms in its image is decided separately by an equivalence check of the
    expansion (see :func:`build_bounded_plan`).
    """
    if view.language not in ("CQ", "UCQ"):
        return []
    union = view.as_ucq()
    if len(union.disjuncts) != 1:
        return []
    definition = union.disjuncts[0].normalize()
    tableau = query.tableau()
    tableau_atoms = list(query.normalize().atoms)
    usages: list[tuple[dict, frozenset[int]]] = []
    seen: set[tuple] = set()
    for assignment in iter_homomorphisms(definition, tableau.facts()):
        key = tuple(sorted((v.name, repr(value)) for v, value in assignment.items()))
        if key in seen:
            continue
        seen.add(key)
        covered: set[int] = set()
        for body_atom in definition.atoms:
            image_terms = []
            for term in body_atom.terms:
                if isinstance(term, Constant):
                    image_terms.append(term)
                else:
                    value = assignment[term]
                    image_terms.append(value if isinstance(value, Variable) else Constant(value))
            for index, query_atom in enumerate(tableau_atoms):
                if (
                    query_atom.relation == body_atom.relation
                    and tuple(query_atom.terms) == tuple(image_terms)
                ):
                    covered.add(index)
        usages.append((assignment, frozenset(covered)))
        if len(usages) >= max_homomorphisms:
            break
    return usages


def _view_fragment(
    view: View,
    query: ConjunctiveQuery,
    assignment: dict,
    covers: frozenset[int],
) -> _Fragment | None:
    """Build the plan fragment for one view usage."""
    definition = view.as_ucq().disjuncts[0].normalize()
    images: list[object] = []
    for term in definition.head:
        if isinstance(term, Constant):
            images.append(term.value)
        else:
            images.append(assignment.get(term))
    scan: PlanNode = ViewScan(view.name, view.attributes)

    predicates = []
    keep: dict[Variable, str] = {}
    for attribute, image in zip(view.attributes, images):
        if isinstance(image, Variable):
            if image in keep:
                predicates.append(AttributeEqualsAttribute(keep[image], attribute))
            else:
                keep[image] = attribute
        else:
            predicates.append(AttributeEqualsConstant(attribute, image))
    if predicates:
        scan = SelectNode(scan, tuple(predicates))
    if not keep:
        # Boolean filter: nothing to bind; only useful when it also covers atoms.
        if not covers:
            return None
        scan = ProjectNode(scan, ())
        return _Fragment(plan=scan, bound=frozenset(), covers=covers)
    scan = ProjectNode(scan, tuple(attr for attr in keep.values()))
    rename = {attr: var.name for var, attr in keep.items() if attr != var.name}
    if rename:
        scan = RenameNode(scan, rename)
    return _Fragment(plan=scan, bound=frozenset(keep), covers=covers)


def _usage_body_atoms(
    view: View,
    assignment: dict,
    factory: FreshVariableFactory,
) -> tuple[tuple, tuple]:
    """The view body under the usage, renamed apart.

    Only the view's *head* variables are replaced by their homomorphic images
    — the plan can observe nothing but the view's output, so the existential
    variables of the definition must stay fresh.  This is the expansion used
    to decide whether the usage may replace the atoms in its image.
    """
    definition = view.as_ucq().disjuncts[0].normalize()
    renamed, mapping = definition.rename_apart(factory)
    head_variables = {t for t in definition.head if isinstance(t, Variable)}
    substitution: dict[Term, Term] = {}
    for original, value in assignment.items():
        if original not in head_variables:
            continue
        renamed_variable = mapping.get(original, original)
        substitution[renamed_variable] = (
            value if isinstance(value, Variable) else Constant(value)
        )
    substituted = renamed.substitute(substitution)
    return substituted.atoms, substituted.equalities


def _full_expansion(
    query: ConjunctiveQuery,
    usages: Sequence[tuple[View, dict, frozenset[int]]],
) -> ConjunctiveQuery:
    """Expansion of "query with all usage-covered atoms replaced by view bodies".

    Classical equivalence of this expansion with the original query certifies
    that dropping the covered atoms from the fetch obligations is lossless.
    """
    normalized = query.normalize()
    factory = FreshVariableFactory(
        used=[v.name for v in normalized.variables], prefix="vw"
    )
    removed: set[int] = set()
    extra_atoms: list = []
    extra_equalities: list = []
    for view, assignment, covered in usages:
        removed.update(covered)
        atoms, equalities = _usage_body_atoms(view, assignment, factory)
        extra_atoms.extend(atoms)
        extra_equalities.extend(equalities)
    kept_atoms = tuple(
        atom for index, atom in enumerate(normalized.atoms) if index not in removed
    )
    return ConjunctiveQuery(
        head=normalized.head,
        atoms=kept_atoms + tuple(extra_atoms),
        equalities=tuple(extra_equalities),
        name=f"{query.name}_expansion",
    )


def _atom_fetch(
    atom_index: int,
    query: ConjunctiveQuery,
    constraint: AccessConstraint,
    schema: DatabaseSchema,
    bound: frozenset[Variable],
    current: PlanNode | None,
) -> _Fragment | None:
    """Fetch fragment covering ``query.atoms[atom_index]`` via ``constraint``."""
    atom = query.atoms[atom_index]
    if atom.relation != constraint.relation:
        return None
    relation = schema.relation(atom.relation)
    x_positions = relation.positions(constraint.x)
    y_positions = relation.positions(constraint.y)

    # Every X term must be a constant or an already-bound variable, and no
    # variable may occupy two key positions (duplicating a column is not
    # expressible with a single rename).
    seen_key_variables: set[Variable] = set()
    for position in x_positions:
        term = atom.terms[position]
        if isinstance(term, Constant):
            continue
        if isinstance(term, Variable) and term in bound and term not in seen_key_variables:
            seen_key_variables.add(term)
            continue
        return None

    # Positions the plan must observe: constants, head variables, variables
    # shared with other atoms, repeated variables within this atom.
    needed = _needed_positions(query, atom_index)
    if not needed <= set(x_positions) | set(y_positions):
        return None
    if set(x_positions) and current is None and not _x_is_constant(atom, x_positions):
        return None

    # Build the key plan over the constraint's X attribute names.
    key_plan: PlanNode | None = None
    if constraint.x:
        variable_keys = []
        constant_keys = []
        for attr, position in zip(constraint.x, x_positions):
            term = atom.terms[position]
            if isinstance(term, Variable):
                variable_keys.append((attr, term))
            else:
                constant_keys.append((attr, term))
        if variable_keys:
            assert current is not None
            names = tuple(sorted({v.name for _, v in variable_keys}))
            key_plan = ProjectNode(current, names)
            rename = {v.name: attr for attr, v in variable_keys if v.name != attr}
            if rename:
                key_plan = RenameNode(key_plan, rename)
        for attr, term in constant_keys:
            scan = ConstantScan(term.value, attribute=attr)
            key_plan = scan if key_plan is None else join_on_shared_attributes(key_plan, scan)

    y_needed = tuple(
        relation.attributes[p]
        for p in sorted(needed)
        if relation.attributes[p] not in constraint.x
    )
    fetch: PlanNode = FetchNode(key_plan, atom.relation, constraint.x, y_needed)

    # Constant checks, repeated-variable checks, renaming to variable names.
    fetched_attrs = fetch.attributes
    term_of = {attr: atom.terms[relation.position(attr)] for attr in fetched_attrs}
    predicates = [
        AttributeEqualsConstant(attr, term.value)
        for attr, term in term_of.items()
        if isinstance(term, Constant)
    ]
    occurrences: dict[Variable, list[str]] = {}
    for attr in fetched_attrs:
        term = term_of[attr]
        if isinstance(term, Variable):
            occurrences.setdefault(term, []).append(attr)
    for variable, attrs in occurrences.items():
        for extra in attrs[1:]:
            predicates.append(AttributeEqualsAttribute(attrs[0], extra))
    if predicates:
        fetch = SelectNode(fetch, tuple(predicates))
    primary = [(attrs[0], variable) for variable, attrs in occurrences.items()]
    fetch = ProjectNode(fetch, tuple(attr for attr, _ in primary))
    rename = {attr: variable.name for attr, variable in primary if attr != variable.name}
    if rename:
        fetch = RenameNode(fetch, rename)
    return _Fragment(plan=fetch, bound=frozenset(v for _, v in primary))


def _x_is_constant(atom, x_positions: Sequence[int]) -> bool:
    return all(isinstance(atom.terms[p], Constant) for p in x_positions)


def _ordered_constraints(
    candidates: Sequence[AccessConstraint],
    relation_name: str,
    schema: DatabaseSchema,
    statistics: "Mapping[str, RelationStatistics] | None",
) -> Sequence[AccessConstraint]:
    """Order candidate access paths by measured cost, cheapest first.

    The per-key cost of fetching through ``R(X -> Y, N)`` is the expected
    bucket size — cardinality scaled by the distinct counts of the key
    columns.  Without statistics the schema order is kept unchanged (the
    historical behaviour); the sort is stable, so equally priced constraints
    also keep it.
    """
    stats = statistics.get(relation_name) if statistics is not None else None
    if stats is None or len(candidates) <= 1:
        return candidates
    relation = schema.relation(relation_name)

    def cost(constraint: AccessConstraint) -> float:
        return stats.estimated_matches(relation.positions(constraint.x))

    return sorted(candidates, key=cost)


def _needed_positions(query: ConjunctiveQuery, atom_index: int) -> set[int]:
    atom = query.atoms[atom_index]
    other_variables: set[Variable] = set(query.head_variables)
    for index, other in enumerate(query.atoms):
        if index != atom_index:
            other_variables.update(other.variables)
    needed: set[int] = set()
    occurrences: dict[Variable, list[int]] = {}
    for position, term in enumerate(atom.terms):
        if isinstance(term, Constant):
            needed.add(position)
        else:
            occurrences.setdefault(term, []).append(position)
            if term in other_variables:
                needed.add(position)
    for positions in occurrences.values():
        if len(positions) > 1:
            needed.update(positions)
    return needed


def _view_cover(
    normalized: ConjunctiveQuery, views: ViewSet
) -> tuple[list[_Fragment], set[int]]:
    """Step 1 of plan construction: view fragments (free, cached).

    A usage whose expansion remains classically equivalent to the query may
    *cover* the atoms in its image, removing them from the fetch
    obligations; other usages act as filters and binders only.
    """
    fragments: list[_Fragment] = []
    accepted_usages: list[tuple[View, dict, frozenset[int]]] = []
    covered_by_views: set[int] = set()
    for view in views:
        best: tuple[dict, frozenset[int]] | None = None
        for assignment, covered in _view_usages(view, normalized):
            if best is None or len(covered) > len(best[1]):
                best = (assignment, covered)
        if best is None:
            continue
        assignment, covered = best
        usable_coverage: frozenset[int] = frozenset()
        if covered - covered_by_views:
            # Largest subset of the image whose replacement keeps the
            # expansion equivalent to the query (image sets are tiny, so the
            # subset sweep is cheap).
            candidates = sorted(
                (frozenset(subset)
                 for size in range(len(covered), 0, -1)
                 for subset in itertools.combinations(sorted(covered), size)),
                key=len,
                reverse=True,
            )
            for subset in candidates:
                candidate_usages = accepted_usages + [(view, assignment, subset)]
                if equivalent(_full_expansion(normalized, candidate_usages), normalized):
                    usable_coverage = subset
                    accepted_usages.append((view, assignment, subset))
                    break
        fragment = _view_fragment(view, normalized, assignment, usable_coverage)
        if fragment is None:
            continue
        fragments.append(fragment)
        covered_by_views |= set(usable_coverage)
    return fragments, covered_by_views


def _join_fragments(
    fragments: Sequence[_Fragment],
) -> tuple[PlanNode | None, frozenset[Variable]]:
    current: PlanNode | None = None
    bound: frozenset[Variable] = frozenset()
    for fragment in fragments:
        current = fragment.plan if current is None else join_on_shared_attributes(
            current, fragment.plan
        )
        bound |= fragment.bound
    return current, bound


def _greedy_fetch_loop(
    normalized: ConjunctiveQuery,
    uncovered: set[int],
    current: PlanNode | None,
    bound: frozenset[Variable],
    views: ViewSet,
    access_schema: AccessSchema,
    schema: DatabaseSchema,
    budget: ElementQueryBudget | None,
    verify_conformance: bool,
    statistics: "Mapping[str, RelationStatistics] | None",
) -> tuple[PlanNode | None, frozenset[Variable], set[int]]:
    """Step 2 of the greedy builder: fetch uncovered atoms cheapest-path first.

    A candidate fetch whose key depends on previously bound variables is
    only accepted when its input provably has bounded output under A
    (checked through the conformance procedure on the fragment); otherwise
    the next covering constraint is tried — e.g. a constraint keyed on the
    atom's constants instead of on an unbounded view.
    """
    uncovered = set(uncovered)
    progress = True
    while uncovered and progress:
        progress = False
        for atom_index in sorted(uncovered):
            relation_name = normalized.atoms[atom_index].relation
            for constraint in _ordered_constraints(
                access_schema.for_relation(relation_name),
                relation_name,
                schema,
                statistics,
            ):
                fragment = _atom_fetch(
                    atom_index, normalized, constraint, schema, bound, current
                )
                if fragment is None:
                    continue
                if verify_conformance and not conforms_to(
                    fragment.plan, access_schema, schema, views, budget
                ).conforms:
                    continue
                current = (
                    fragment.plan
                    if current is None
                    else join_on_shared_attributes(current, fragment.plan)
                )
                bound |= fragment.bound
                uncovered.discard(atom_index)
                progress = True
                break
            if progress:
                break
    return current, bound, uncovered


def _finish_plan(
    normalized: ConjunctiveQuery,
    head_variables: Sequence[Variable],
    current: PlanNode | None,
    fragments_used: int,
    uncovered: set[int],
    max_size: int | None,
    verify_conformance: bool,
    access_schema: AccessSchema,
    schema: DatabaseSchema,
    views: ViewSet,
    budget: ElementQueryBudget | None,
) -> PlanSearchOutcome:
    """Head projection, size cap and final conformance check (shared tail)."""
    if uncovered:
        return PlanSearchOutcome(
            plan=None,
            reason=f"{len(uncovered)} atoms cannot be fetched under the access schema",
            fragments_used=fragments_used,
        )
    if current is None:
        return PlanSearchOutcome(plan=None, reason="query has no atoms to plan for")

    missing_heads = [v for v in head_variables if v.name not in current.attributes]
    if missing_heads:
        return PlanSearchOutcome(
            plan=None,
            reason=f"head variables {missing_heads} are not produced by any fragment",
        )

    plan: PlanNode = current
    head_names = []
    for term in normalized.head:
        if isinstance(term, Variable):
            head_names.append(term.name)
        else:
            scan = ConstantScan(term.value, attribute=f"_const_{len(head_names)}")
            plan = join_on_shared_attributes(plan, scan)
            head_names.append(f"_const_{len(head_names)}")
    plan = ProjectNode(plan, tuple(head_names))

    if max_size is not None and plan.size() > max_size:
        return PlanSearchOutcome(
            plan=None, reason=f"constructed plan has {plan.size()} nodes > M={max_size}"
        )
    if verify_conformance:
        report = conforms_to(plan, access_schema, schema, views, budget)
        if not report.conforms:
            return PlanSearchOutcome(
                plan=None,
                reason="constructed plan does not conform to the access schema: "
                + "; ".join(report.reasons),
                fragments_used=fragments_used,
            )
    return PlanSearchOutcome(plan=plan, fragments_used=fragments_used)


def build_bounded_plan(
    query: ConjunctiveQuery,
    views: ViewSet,
    access_schema: AccessSchema,
    schema: DatabaseSchema,
    max_size: int | None = None,
    budget: ElementQueryBudget | None = None,
    verify_conformance: bool = True,
    statistics: "Mapping[str, RelationStatistics] | None" = None,
) -> PlanSearchOutcome:
    """Construct a bounded plan for a CQ, or report why none was found.

    The returned plan (when found) is equivalent to the query by construction
    — every atom is enforced by a fetch, views only add implied filters — and
    is checked for conformance to the access schema unless
    ``verify_conformance`` is disabled.  ``statistics`` (per-relation
    cardinality/distinct counts from the storage layer) lets the greedy
    fetch step try the cheapest covering access path first.
    """
    normalized = query.normalize()
    head_variables = [t for t in normalized.head if isinstance(t, Variable)]
    if len(set(head_variables)) != len(head_variables):
        raise UnsupportedQueryError(
            "the heuristic plan builder requires distinct head variables"
        )
    fragments, covered_by_views = _view_cover(normalized, views)
    current, bound = _join_fragments(fragments)
    uncovered = set(range(len(normalized.atoms))) - covered_by_views
    current, bound, uncovered = _greedy_fetch_loop(
        normalized, uncovered, current, bound, views, access_schema, schema,
        budget, verify_conformance, statistics,
    )
    return _finish_plan(
        normalized, head_variables, current, len(fragments), uncovered,
        max_size, verify_conformance, access_schema, schema, views, budget,
    )


def _union_aligned(sub_plans: Sequence[PlanNode]) -> PlanNode:
    """Union the per-disjunct plans, renaming attributes to the first's."""
    plan = sub_plans[0]
    target_attrs = plan.attributes
    for sub_plan in sub_plans[1:]:
        aligned = sub_plan
        if aligned.attributes != target_attrs:
            rename = {
                old: new
                for old, new in zip(aligned.attributes, target_attrs)
                if old != new
            }
            aligned = RenameNode(aligned, rename) if rename else aligned
        plan = UnionNode(plan, aligned)
    return plan


def build_bounded_plan_ucq(
    query: QueryLike,
    views: ViewSet,
    access_schema: AccessSchema,
    schema: DatabaseSchema,
    max_size: int | None = None,
    budget: ElementQueryBudget | None = None,
    statistics: "Mapping[str, RelationStatistics] | None" = None,
) -> PlanSearchOutcome:
    """Construct a bounded plan for a UCQ (one sub-plan per disjunct, unioned)."""
    union = as_union(query)
    sub_plans: list[PlanNode] = []
    for disjunct in union.disjuncts:
        outcome = build_bounded_plan(
            disjunct, views, access_schema, schema, max_size, budget,
            statistics=statistics,
        )
        if not outcome.found:
            return PlanSearchOutcome(
                plan=None,
                reason=f"disjunct {disjunct.name!r}: {outcome.reason}",
            )
        sub_plans.append(outcome.plan)  # type: ignore[arg-type]
    plan = _union_aligned(sub_plans)
    if max_size is not None and plan.size() > max_size:
        return PlanSearchOutcome(
            plan=None, reason=f"constructed plan has {plan.size()} nodes > M={max_size}"
        )
    return PlanSearchOutcome(plan=plan)


# --------------------------------------------------------------------------- #
# Cost-based join ordering (optimizer v2)
# --------------------------------------------------------------------------- #

#: Distinct-count stand-in for variables with no statistics at all.
_UNKNOWN_DISTINCT = 1.0e12

#: Atom count above which the subset DP falls back to the greedy orderer.
DEFAULT_MAX_DP_ATOMS = 10


def _fetch_feasible(
    query: ConjunctiveQuery,
    atom_index: int,
    constraint: AccessConstraint,
    schema: DatabaseSchema,
    bound: frozenset[Variable] | set[Variable],
    have_plan: bool,
    needed: set[int],
) -> bool:
    """Cheap mirror of :func:`_atom_fetch`'s rejection conditions.

    The DP explores abstract orders with this predicate; materialisation
    re-runs ``_atom_fetch`` itself, which stays authoritative.
    """
    atom = query.atoms[atom_index]
    if atom.relation != constraint.relation:
        return False
    relation = schema.relation(atom.relation)
    x_positions = relation.positions(constraint.x)
    y_positions = relation.positions(constraint.y)
    seen_key_variables: set[Variable] = set()
    for position in x_positions:
        term = atom.terms[position]
        if isinstance(term, Constant):
            continue
        if isinstance(term, Variable) and term in bound and term not in seen_key_variables:
            seen_key_variables.add(term)
            continue
        return False
    if not needed <= set(x_positions) | set(y_positions):
        return False
    if set(x_positions) and not have_plan and not _x_is_constant(atom, x_positions):
        return False
    return True


def _global_distincts(
    query: ConjunctiveQuery,
    schema: DatabaseSchema,
    statistics: "Mapping[str, RelationStatistics] | None",
) -> dict[Variable, float]:
    """Per-variable distinct-count upper bound: min over all its columns."""
    distincts: dict[Variable, float] = {}
    for atom in query.atoms:
        stats = statistics.get(atom.relation) if statistics is not None else None
        if stats is None:
            continue
        for position, term in enumerate(atom.terms):
            if isinstance(term, Variable) and position < len(stats.distinct):
                count = float(max(1, stats.distinct[position]))
                distincts[term] = min(distincts.get(term, _UNKNOWN_DISTINCT), count)
    return distincts


def _apply_step(
    query: ConjunctiveQuery,
    atom_index: int,
    constraint: AccessConstraint,
    schema: DatabaseSchema,
    statistics: "Mapping[str, RelationStatistics] | None",
    corrections: Mapping[str, float] | None,
    rows: float,
    var_dist: dict[Variable, float],
    have_plan: bool,
    needed: set[int],
    gdist: Mapping[Variable, float],
) -> tuple[float, float, dict[Variable, float]] | None:
    """Cost one (atom, constraint) fetch step of an abstract join order.

    Returns ``(step_cost, new_rows, new_var_dist)`` or ``None`` when the
    step is infeasible in the current state.  The cost charges what the
    IOMeter will charge: one probe call per distinct key plus the tuples
    those probes return.  Histograms make ``per_key`` skew-aware — a
    constant key is priced by ``estimate_eq`` (the hot-key signal the
    whole-column average hides), a variable key by the average bucket —
    and ``corrections`` scales per-relation estimates by the observed
    actual/estimated ratio during adaptive re-planning.
    """
    if not _fetch_feasible(
        query, atom_index, constraint, schema, set(var_dist), have_plan, needed
    ):
        return None
    atom = query.atoms[atom_index]
    relation = schema.relation(atom.relation)
    stats = statistics.get(atom.relation) if statistics is not None else None
    x_positions = relation.positions(constraint.x)
    constants: dict[int, object] = {}
    key_variables: set[Variable] = set()
    for position in x_positions:
        term = atom.terms[position]
        if isinstance(term, Constant):
            constants[position] = term.value
        else:
            key_variables.add(term)

    if stats is None:
        per_key = float(constraint.bound)
    else:
        per_key = max(0.0, stats.estimated_matches_with(x_positions, constants))
        if x_positions:
            per_key = min(per_key, float(constraint.bound))
    if corrections:
        per_key *= corrections.get(atom.relation, 1.0)

    if key_variables:
        keys = 1.0
        for variable in key_variables:
            keys *= max(1.0, var_dist.get(variable, gdist.get(variable, _UNKNOWN_DISTINCT)))
        keys = min(max(rows, 1.0), keys)
    else:
        keys = 1.0
    fetched = keys * per_key
    step_cost = keys + fetched

    # Result size: each prefix row meets its bucket, then equalities with
    # already-bound non-key variables filter further.
    new_rows = (max(rows, 1.0) if have_plan else 1.0) * per_key
    output_positions = set(x_positions) | needed
    for position in sorted(output_positions - set(x_positions)):
        term = atom.terms[position]
        if isinstance(term, Variable) and term in var_dist:
            new_rows /= max(1.0, var_dist[term])
    new_rows = max(new_rows, 1e-3)

    new_var_dist = dict(var_dist)
    for position in sorted(output_positions):
        term = atom.terms[position]
        if isinstance(term, Variable) and term not in new_var_dist:
            cap = gdist.get(term, _UNKNOWN_DISTINCT)
            new_var_dist[term] = max(1.0, min(cap, fetched, new_rows))
    return step_cost, new_rows, new_var_dist


def _cost_of_order(
    query: ConjunctiveQuery,
    order: Sequence[tuple[int, AccessConstraint]],
    schema: DatabaseSchema,
    statistics: "Mapping[str, RelationStatistics] | None",
    corrections: Mapping[str, float] | None,
    bound0: frozenset[Variable],
    have_plan0: bool,
    needed_positions: Mapping[int, set[int]],
    gdist: Mapping[Variable, float],
) -> float:
    """Replay one abstract order through the cost model (inf if infeasible)."""
    var_dist: dict[Variable, float] = {
        v: gdist.get(v, _UNKNOWN_DISTINCT) for v in bound0
    }
    rows = 1.0 if have_plan0 else 0.0
    have_plan = have_plan0
    total = 0.0
    for atom_index, constraint in order:
        step = _apply_step(
            query, atom_index, constraint, schema, statistics, corrections,
            rows, var_dist, have_plan, needed_positions[atom_index], gdist,
        )
        if step is None:
            return float("inf")
        step_cost, rows, var_dist = step
        total += step_cost
        have_plan = True
    return total


def _greedy_order_simulation(
    query: ConjunctiveQuery,
    uncovered: Iterable[int],
    schema: DatabaseSchema,
    access_schema: AccessSchema,
    statistics: "Mapping[str, RelationStatistics] | None",
    bound0: frozenset[Variable],
    have_plan0: bool,
    needed_positions: Mapping[int, set[int]],
) -> tuple[tuple[int, AccessConstraint], ...] | None:
    """The order the greedy loop would pick, without building any plans.

    Conformance filtering is skipped (the simulation only feeds the
    chosen-vs-rejected comparison in the order report), so this can differ
    from the real greedy plan in the rare case a fragment fails conformance.
    """
    order: list[tuple[int, AccessConstraint]] = []
    bound = set(bound0)
    have_plan = have_plan0
    remaining = set(uncovered)
    progress = True
    while remaining and progress:
        progress = False
        for atom_index in sorted(remaining):
            relation_name = query.atoms[atom_index].relation
            for constraint in _ordered_constraints(
                access_schema.for_relation(relation_name),
                relation_name,
                schema,
                statistics,
            ):
                if not _fetch_feasible(
                    query, atom_index, constraint, schema, bound, have_plan,
                    needed_positions[atom_index],
                ):
                    continue
                order.append((atom_index, constraint))
                relation = schema.relation(relation_name)
                positions = set(relation.positions(constraint.x))
                positions |= needed_positions[atom_index]
                for position in positions:
                    term = query.atoms[atom_index].terms[position]
                    if isinstance(term, Variable):
                        bound.add(term)
                have_plan = True
                remaining.discard(atom_index)
                progress = True
                break
            if progress:
                break
    return tuple(order) if not remaining else None


def _order_description(
    query: ConjunctiveQuery, order: Sequence[tuple[int, AccessConstraint]]
) -> str:
    steps = []
    for atom_index, constraint in order:
        key = ",".join(constraint.x) if constraint.x else "∅"
        steps.append(f"{query.atoms[atom_index].relation}[{key}→]")
    return " ⋈ ".join(steps)


def _dp_order(
    query: ConjunctiveQuery,
    uncovered: Iterable[int],
    schema: DatabaseSchema,
    access_schema: AccessSchema,
    statistics: "Mapping[str, RelationStatistics] | None",
    corrections: Mapping[str, float] | None,
    bound0: frozenset[Variable],
    have_plan0: bool,
    needed_positions: Mapping[int, set[int]],
    gdist: Mapping[Variable, float],
) -> tuple[
    tuple[tuple[int, AccessConstraint], ...],
    float,
    list[tuple[float, tuple[tuple[int, AccessConstraint], ...]]],
] | None:
    """Selinger-style subset DP over (atom, access-constraint) fetch steps.

    One state per covered-atom subset keeps the cheapest way of reaching it
    (cost, estimated rows, per-variable distinct estimates, order); ties
    break on the lexicographically smallest step sequence so the chosen
    order is deterministic.  Returns the winning order, its cost and every
    completion that reached the full set (for the chosen-vs-rejected
    report), or ``None`` when no feasible complete order exists.
    """
    atom_indices = tuple(sorted(set(uncovered)))
    full = frozenset(atom_indices)
    if not atom_indices:
        return (), 0.0, []
    initial_var_dist = {v: gdist.get(v, _UNKNOWN_DISTINCT) for v in bound0}
    # state: covered-subset -> (cost, tiebreak, rows, var_dist, order)
    states: dict[frozenset[int], tuple] = {
        frozenset(): (0.0, (), 1.0 if have_plan0 else 0.0, initial_var_dist, ())
    }
    completions: list[tuple[float, tuple[tuple[int, AccessConstraint], ...]]] = []
    by_size: list[list[frozenset[int]]] = [[] for _ in range(len(atom_indices) + 1)]
    by_size[0].append(frozenset())
    for size in range(len(atom_indices)):
        for covered in by_size[size]:
            cost, tiebreak, rows, var_dist, order = states[covered]
            have_plan = have_plan0 or bool(covered)
            for atom_index in atom_indices:
                if atom_index in covered:
                    continue
                relation_name = query.atoms[atom_index].relation
                for c_index, constraint in enumerate(
                    access_schema.for_relation(relation_name)
                ):
                    step = _apply_step(
                        query, atom_index, constraint, schema, statistics,
                        corrections, rows, var_dist, have_plan,
                        needed_positions[atom_index], gdist,
                    )
                    if step is None:
                        continue
                    step_cost, new_rows, new_var_dist = step
                    new_covered = covered | {atom_index}
                    new_cost = cost + step_cost
                    new_tiebreak = tiebreak + ((atom_index, c_index),)
                    new_order = order + ((atom_index, constraint),)
                    existing = states.get(new_covered)
                    if existing is None:
                        by_size[len(new_covered)].append(new_covered)
                    if existing is None or (new_cost, new_tiebreak) < (
                        existing[0],
                        existing[1],
                    ):
                        states[new_covered] = (
                            new_cost, new_tiebreak, new_rows, new_var_dist, new_order
                        )
                    if new_covered == full:
                        completions.append((new_cost, new_order))
    winner = states.get(full)
    if winner is None:
        return None
    return winner[4], winner[0], completions


def build_bounded_plan_cost(
    query: ConjunctiveQuery,
    views: ViewSet,
    access_schema: AccessSchema,
    schema: DatabaseSchema,
    max_size: int | None = None,
    budget: ElementQueryBudget | None = None,
    verify_conformance: bool = True,
    statistics: "Mapping[str, RelationStatistics] | None" = None,
    corrections: Mapping[str, float] | None = None,
    max_dp_atoms: int = DEFAULT_MAX_DP_ATOMS,
    report_candidates: int = 4,
) -> PlanSearchOutcome:
    """Cost-based variant of :func:`build_bounded_plan` (DP join ordering).

    View coverage, fragment construction and the finishing conformance check
    are shared with the greedy builder — only the *order* in which uncovered
    atoms are fetched differs, chosen by :func:`_dp_order` over the
    histogram-backed cost model.  Plans therefore stay equivalent to the
    query by construction and pass the same verifier; only their Dξ differs.
    Falls back to the greedy loop above ``max_dp_atoms`` atoms or when the
    winning abstract order fails materialisation, recording why in the
    outcome's :class:`JoinOrderReport`.
    """
    normalized = query.normalize()
    head_variables = [t for t in normalized.head if isinstance(t, Variable)]
    if len(set(head_variables)) != len(head_variables):
        raise UnsupportedQueryError(
            "the heuristic plan builder requires distinct head variables"
        )
    fragments, covered_by_views = _view_cover(normalized, views)
    current, bound = _join_fragments(fragments)
    uncovered = set(range(len(normalized.atoms))) - covered_by_views

    def greedy_fallback(why: str) -> PlanSearchOutcome:
        g_current, g_bound, g_left = _greedy_fetch_loop(
            normalized, uncovered, current, bound, views, access_schema,
            schema, budget, verify_conformance, statistics,
        )
        outcome = _finish_plan(
            normalized, head_variables, g_current, len(fragments), g_left,
            max_size, verify_conformance, access_schema, schema, views, budget,
        )
        outcome.order_report = JoinOrderReport(strategy=f"greedy-fallback: {why}")
        return outcome

    if len(uncovered) > max_dp_atoms:
        return greedy_fallback(
            f"{len(uncovered)} atoms exceed the DP limit of {max_dp_atoms}"
        )

    needed_positions = {
        atom_index: _needed_positions(normalized, atom_index)
        for atom_index in uncovered
    }
    gdist = _global_distincts(normalized, schema, statistics)
    have_plan0 = current is not None
    dp = _dp_order(
        normalized, uncovered, schema, access_schema, statistics, corrections,
        bound, have_plan0, needed_positions, gdist,
    )
    if dp is None:
        return greedy_fallback("no feasible complete DP order")
    order, chosen_cost, completions = dp

    # Materialise the winning order through the greedy builder's own
    # fragment machinery (single-sourced plan shape => verifier-identical).
    m_current, m_bound = current, bound
    materialized = True
    for atom_index, constraint in order:
        fragment = _atom_fetch(
            atom_index, normalized, constraint, schema, m_bound, m_current
        )
        if fragment is None or (
            verify_conformance
            and not conforms_to(
                fragment.plan, access_schema, schema, views, budget
            ).conforms
        ):
            materialized = False
            break
        m_current = (
            fragment.plan
            if m_current is None
            else join_on_shared_attributes(m_current, fragment.plan)
        )
        m_bound |= fragment.bound
    if not materialized:
        return greedy_fallback("chosen DP order failed materialisation")

    outcome = _finish_plan(
        normalized, head_variables, m_current, len(fragments), set(),
        max_size, verify_conformance, access_schema, schema, views, budget,
    )
    if not outcome.found:
        return greedy_fallback(f"DP plan rejected: {outcome.reason}")

    # Chosen-vs-rejected report: the winner, the best distinct runner-up
    # completions, and the simulated greedy order for comparison.
    considered = [
        OrderCandidate(_order_description(normalized, order), chosen_cost, chosen=True)
    ]
    seen_orders = {order}
    for candidate_cost, candidate_order in sorted(
        completions, key=lambda item: item[0]
    ):
        if candidate_order in seen_orders:
            continue
        seen_orders.add(candidate_order)
        considered.append(
            OrderCandidate(
                _order_description(normalized, candidate_order), candidate_cost
            )
        )
        if len(considered) > report_candidates:
            break
    greedy_order = _greedy_order_simulation(
        normalized, uncovered, schema, access_schema, statistics, bound,
        have_plan0, needed_positions,
    )
    if greedy_order is not None and greedy_order != order:
        greedy_cost = _cost_of_order(
            normalized, greedy_order, schema, statistics, corrections, bound,
            have_plan0, needed_positions, gdist,
        )
        considered.append(
            OrderCandidate(
                "greedy: " + _order_description(normalized, greedy_order), greedy_cost
            )
        )
    outcome.order_report = JoinOrderReport(
        strategy="dp", considered=tuple(considered)
    )
    return outcome


def build_bounded_plan_cost_ucq(
    query: QueryLike,
    views: ViewSet,
    access_schema: AccessSchema,
    schema: DatabaseSchema,
    max_size: int | None = None,
    budget: ElementQueryBudget | None = None,
    statistics: "Mapping[str, RelationStatistics] | None" = None,
    corrections: Mapping[str, float] | None = None,
    max_dp_atoms: int = DEFAULT_MAX_DP_ATOMS,
) -> PlanSearchOutcome:
    """Cost-based UCQ builder: one DP-ordered sub-plan per disjunct, unioned."""
    union = as_union(query)
    sub_plans: list[PlanNode] = []
    strategies: list[str] = []
    considered: list[OrderCandidate] = []
    for disjunct in union.disjuncts:
        outcome = build_bounded_plan_cost(
            disjunct, views, access_schema, schema, max_size, budget,
            statistics=statistics, corrections=corrections,
            max_dp_atoms=max_dp_atoms,
        )
        if not outcome.found:
            return PlanSearchOutcome(
                plan=None,
                reason=f"disjunct {disjunct.name!r}: {outcome.reason}",
            )
        sub_plans.append(outcome.plan)  # type: ignore[arg-type]
        if outcome.order_report is not None:
            strategies.append(outcome.order_report.strategy)
            prefix = f"{disjunct.name}: " if len(union.disjuncts) > 1 else ""
            considered.extend(
                OrderCandidate(prefix + c.description, c.cost, c.chosen)
                for c in outcome.order_report.considered
            )
    plan = _union_aligned(sub_plans)
    if max_size is not None and plan.size() > max_size:
        return PlanSearchOutcome(
            plan=None, reason=f"constructed plan has {plan.size()} nodes > M={max_size}"
        )
    strategy = "dp" if all(s == "dp" for s in strategies) else "; ".join(
        dict.fromkeys(strategies)
    )
    return PlanSearchOutcome(
        plan=plan,
        order_report=JoinOrderReport(strategy=strategy, considered=tuple(considered)),
    )


# --------------------------------------------------------------------------- #
# Plan-wide cardinality estimation (shared by all planners)
# --------------------------------------------------------------------------- #


def estimate_plan_fetches(
    plan: PlanNode,
    statistics: "Mapping[str, RelationStatistics] | None",
    schema: DatabaseSchema,
    view_sizes: Mapping[str, int] | None = None,
    corrections: Mapping[str, float] | None = None,
) -> PlanEstimate:
    """Predict the Dξ of a constructed plan, fetch by fetch.

    Walks the plan bottom-up carrying (rows, per-attribute distinct counts)
    and prices every :class:`FetchNode` with the same histogram-backed model
    the DP orderer uses: keys = the child's (already deduplicated) rows,
    per-key from ``estimate_eq`` for constant key columns and the average
    bucket for variable ones.  The service records this estimate on the
    cached plan and compares it against the IOMeter's actual Dξ on warm
    executions — a >10x miss triggers adaptive re-planning with
    ``corrections`` set to the observed per-relation ratios.
    """
    fetches: list[FetchEstimate] = []

    def constants_below(node: PlanNode) -> dict[str, object]:
        return {
            scan.attribute: scan.value
            for scan in node.iter_nodes()
            if isinstance(scan, ConstantScan)
        }

    def walk(node: PlanNode) -> tuple[float, dict[str, float]]:
        if isinstance(node, ConstantScan):
            return 1.0, {node.attribute: 1.0}
        if isinstance(node, ViewScan):
            size = 100.0
            if view_sizes is not None and node.view_name in view_sizes:
                size = float(view_sizes[node.view_name])
            return size, {attr: size for attr in node.attributes}
        if isinstance(node, FetchNode):
            if node.child is None:
                keys = 1.0
                child_dist: dict[str, float] = {}
            else:
                child_rows, child_dist = walk(node.child)
                keys = max(child_rows, 1.0)
            relation = schema.relation(node.relation)
            stats = statistics.get(node.relation) if statistics is not None else None
            x_positions = relation.positions(node.x_attrs)
            child_constants = (
                constants_below(node.child) if node.child is not None else {}
            )
            constants = {
                position: child_constants[attr]
                for attr, position in zip(node.x_attrs, x_positions)
                if attr in child_constants
            }
            if stats is None:
                per_key = 1.0
            else:
                per_key = max(0.0, stats.estimated_matches_with(x_positions, constants))
            if corrections:
                per_key *= corrections.get(node.relation, 1.0)
            fetched = keys * per_key
            access = (
                f"{node.relation}({','.join(node.x_attrs) or '∅'}"
                f"→{','.join(node.y_attrs)})"
            )
            fetches.append(
                FetchEstimate(
                    relation=node.relation,
                    access=access,
                    keys=keys,
                    per_key=per_key,
                    fetched=fetched,
                )
            )
            dist: dict[str, float] = {}
            for attr in node.attributes:
                if attr in child_dist:
                    dist[attr] = child_dist[attr]
                else:
                    try:
                        position = relation.position(attr)
                    except Exception:
                        position = -1
                    column = (
                        float(stats.distinct[position])
                        if stats is not None and 0 <= position < len(stats.distinct)
                        else fetched
                    )
                    dist[attr] = max(1.0, min(column, fetched))
            return fetched, dist
        if isinstance(node, SelectNode):
            rows, dist = walk(node.child)
            for predicate in node.predicates:
                if isinstance(predicate, AttributeEqualsConstant):
                    rows /= max(1.0, dist.get(predicate.attribute, 10.0))
                    dist[predicate.attribute] = 1.0
                else:
                    left = dist.get(predicate.left, 10.0)
                    right = dist.get(predicate.right, 10.0)
                    rows /= max(1.0, max(left, right))
                    shared = max(1.0, min(left, right))
                    dist[predicate.left] = shared
                    dist[predicate.right] = shared
            return max(rows, 0.0), dist
        if isinstance(node, ProjectNode):
            rows, dist = walk(node.child)
            if node.kept:
                ceiling = 1.0
                for attr in node.kept:
                    ceiling *= dist.get(attr, rows if rows > 0 else 1.0)
                rows = min(rows, ceiling)
            else:
                rows = min(rows, 1.0)
            return rows, {attr: dist.get(attr, rows) for attr in node.kept}
        if isinstance(node, RenameNode):
            rows, dist = walk(node.child)
            mapping = dict(node.mapping)
            return rows, {mapping.get(attr, attr): d for attr, d in dist.items()}
        if isinstance(node, ProductNode):
            left_rows, left_dist = walk(node.left)
            right_rows, right_dist = walk(node.right)
            return left_rows * right_rows, {**left_dist, **right_dist}
        if isinstance(node, UnionNode):
            left_rows, left_dist = walk(node.left)
            right_rows, right_dist = walk(node.right)
            merged = {
                attr: max(left_dist.get(attr, 1.0), right_dist.get(attr, 1.0))
                for attr in set(left_dist) | set(right_dist)
            }
            return left_rows + right_rows, merged
        if isinstance(node, DifferenceNode):
            left_rows, left_dist = walk(node.left)
            walk(node.right)
            return left_rows, left_dist
        # Unknown node type: neutral element, no fetches below by definition.
        rows = 1.0
        dist = {attr: 1.0 for attr in node.attributes}
        for child in node.children:
            child_rows, child_dist = walk(child)
            rows = max(rows, child_rows)
            dist.update(child_dist)
        return rows, dist

    rows, _ = walk(plan)
    total = sum(estimate.fetched for estimate in fetches)
    return PlanEstimate(rows=rows, total_fetched=total, fetches=tuple(fetches))
