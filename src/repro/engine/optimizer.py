"""Heuristic bounded-plan generation for CQ/UCQ queries (the practical path).

The exact VBRP procedures (:mod:`repro.core.vbrp`) enumerate all candidate
plans and are exponential by necessity.  Real systems instead *construct*
plans directly from the query, as outlined in Section 5.1 of the paper
("more practical algorithms for bounded rewriting using views can be
developed along the same lines as the bounded plan generation algorithm of
[Cao and Fan 2016]").  This module implements such a constructive builder:

1. cached views whose bodies map homomorphically into the query are added as
   free *filter/binder* fragments (scanning ``V(D)`` costs no I/O);
2. uncovered query atoms are then fetched greedily through access constraints
   whose key attributes are already bound by constants, views or earlier
   fetches;
3. the resulting plan is validated with the exact conformance checker, so
   every plan returned is sound — the builder is simply not complete.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Iterable, Mapping, Sequence

from ..algebra.containment import equivalent
from ..algebra.cq import ConjunctiveQuery
from ..algebra.homomorphism import iter_homomorphisms
from ..algebra.schema import DatabaseSchema
from ..algebra.terms import Constant, FreshVariableFactory, Term, Variable
from ..algebra.ucq import QueryLike, UnionQuery, as_union
from ..algebra.views import View, ViewSet
from ..core.access import AccessConstraint, AccessSchema
from ..core.conformance import conforms_to
from ..core.element_queries import ElementQueryBudget
from ..core.plans import (
    AttributeEqualsAttribute,
    AttributeEqualsConstant,
    ConstantScan,
    FetchNode,
    PlanNode,
    ProjectNode,
    RenameNode,
    SelectNode,
    UnionNode,
    ViewScan,
    join_on_shared_attributes,
)
from ..errors import UnsupportedQueryError

if TYPE_CHECKING:
    from ..storage.statistics import RelationStatistics


@dataclass
class _Fragment:
    """A plan fragment binding a set of query variables (attribute = var name).

    ``covers`` lists the indices of query atoms the fragment *accounts for*:
    atoms covered by a view usage whose expansion stays equivalent to the
    query do not need to be fetched at all (this is what makes Example 1.1's
    Q0 boundedly rewritable using V1).
    """

    plan: PlanNode
    bound: frozenset[Variable]
    covers: frozenset[int] = frozenset()


@dataclass
class PlanSearchOutcome:
    """Result of the heuristic plan construction."""

    plan: PlanNode | None
    reason: str = ""
    fragments_used: int = 0

    @property
    def found(self) -> bool:
        return self.plan is not None


def _view_usages(
    view: View, query: ConjunctiveQuery, max_homomorphisms: int = 8
) -> list[tuple[dict, frozenset[int]]]:
    """Ways of mapping the view body into the query (homomorphism + image atoms).

    Soundness of using such a view in a plan: when a homomorphism ``h`` from
    the view body into the query's tableau exists, every valuation satisfying
    the query also satisfies the view body (composed with ``h``), hence the
    corresponding head tuple is in ``V(D)`` — joining with the cached view
    never loses answers.  Whether the usage may additionally *replace* the
    atoms in its image is decided separately by an equivalence check of the
    expansion (see :func:`build_bounded_plan`).
    """
    if view.language not in ("CQ", "UCQ"):
        return []
    union = view.as_ucq()
    if len(union.disjuncts) != 1:
        return []
    definition = union.disjuncts[0].normalize()
    tableau = query.tableau()
    tableau_atoms = list(query.normalize().atoms)
    usages: list[tuple[dict, frozenset[int]]] = []
    seen: set[tuple] = set()
    for assignment in iter_homomorphisms(definition, tableau.facts()):
        key = tuple(sorted((v.name, repr(value)) for v, value in assignment.items()))
        if key in seen:
            continue
        seen.add(key)
        covered: set[int] = set()
        for body_atom in definition.atoms:
            image_terms = []
            for term in body_atom.terms:
                if isinstance(term, Constant):
                    image_terms.append(term)
                else:
                    value = assignment[term]
                    image_terms.append(value if isinstance(value, Variable) else Constant(value))
            for index, query_atom in enumerate(tableau_atoms):
                if (
                    query_atom.relation == body_atom.relation
                    and tuple(query_atom.terms) == tuple(image_terms)
                ):
                    covered.add(index)
        usages.append((assignment, frozenset(covered)))
        if len(usages) >= max_homomorphisms:
            break
    return usages


def _view_fragment(
    view: View,
    query: ConjunctiveQuery,
    assignment: dict,
    covers: frozenset[int],
) -> _Fragment | None:
    """Build the plan fragment for one view usage."""
    definition = view.as_ucq().disjuncts[0].normalize()
    images: list[object] = []
    for term in definition.head:
        if isinstance(term, Constant):
            images.append(term.value)
        else:
            images.append(assignment.get(term))
    scan: PlanNode = ViewScan(view.name, view.attributes)

    predicates = []
    keep: dict[Variable, str] = {}
    for attribute, image in zip(view.attributes, images):
        if isinstance(image, Variable):
            if image in keep:
                predicates.append(AttributeEqualsAttribute(keep[image], attribute))
            else:
                keep[image] = attribute
        else:
            predicates.append(AttributeEqualsConstant(attribute, image))
    if predicates:
        scan = SelectNode(scan, tuple(predicates))
    if not keep:
        # Boolean filter: nothing to bind; only useful when it also covers atoms.
        if not covers:
            return None
        scan = ProjectNode(scan, ())
        return _Fragment(plan=scan, bound=frozenset(), covers=covers)
    scan = ProjectNode(scan, tuple(attr for attr in keep.values()))
    rename = {attr: var.name for var, attr in keep.items() if attr != var.name}
    if rename:
        scan = RenameNode(scan, rename)
    return _Fragment(plan=scan, bound=frozenset(keep), covers=covers)


def _usage_body_atoms(
    view: View,
    assignment: dict,
    factory: FreshVariableFactory,
) -> tuple[tuple, tuple]:
    """The view body under the usage, renamed apart.

    Only the view's *head* variables are replaced by their homomorphic images
    — the plan can observe nothing but the view's output, so the existential
    variables of the definition must stay fresh.  This is the expansion used
    to decide whether the usage may replace the atoms in its image.
    """
    definition = view.as_ucq().disjuncts[0].normalize()
    renamed, mapping = definition.rename_apart(factory)
    head_variables = {t for t in definition.head if isinstance(t, Variable)}
    substitution: dict[Term, Term] = {}
    for original, value in assignment.items():
        if original not in head_variables:
            continue
        renamed_variable = mapping.get(original, original)
        substitution[renamed_variable] = (
            value if isinstance(value, Variable) else Constant(value)
        )
    substituted = renamed.substitute(substitution)
    return substituted.atoms, substituted.equalities


def _full_expansion(
    query: ConjunctiveQuery,
    usages: Sequence[tuple[View, dict, frozenset[int]]],
) -> ConjunctiveQuery:
    """Expansion of "query with all usage-covered atoms replaced by view bodies".

    Classical equivalence of this expansion with the original query certifies
    that dropping the covered atoms from the fetch obligations is lossless.
    """
    normalized = query.normalize()
    factory = FreshVariableFactory(
        used=[v.name for v in normalized.variables], prefix="vw"
    )
    removed: set[int] = set()
    extra_atoms: list = []
    extra_equalities: list = []
    for view, assignment, covered in usages:
        removed.update(covered)
        atoms, equalities = _usage_body_atoms(view, assignment, factory)
        extra_atoms.extend(atoms)
        extra_equalities.extend(equalities)
    kept_atoms = tuple(
        atom for index, atom in enumerate(normalized.atoms) if index not in removed
    )
    return ConjunctiveQuery(
        head=normalized.head,
        atoms=kept_atoms + tuple(extra_atoms),
        equalities=tuple(extra_equalities),
        name=f"{query.name}_expansion",
    )


def _atom_fetch(
    atom_index: int,
    query: ConjunctiveQuery,
    constraint: AccessConstraint,
    schema: DatabaseSchema,
    bound: frozenset[Variable],
    current: PlanNode | None,
) -> _Fragment | None:
    """Fetch fragment covering ``query.atoms[atom_index]`` via ``constraint``."""
    atom = query.atoms[atom_index]
    if atom.relation != constraint.relation:
        return None
    relation = schema.relation(atom.relation)
    x_positions = relation.positions(constraint.x)
    y_positions = relation.positions(constraint.y)

    # Every X term must be a constant or an already-bound variable, and no
    # variable may occupy two key positions (duplicating a column is not
    # expressible with a single rename).
    seen_key_variables: set[Variable] = set()
    for position in x_positions:
        term = atom.terms[position]
        if isinstance(term, Constant):
            continue
        if isinstance(term, Variable) and term in bound and term not in seen_key_variables:
            seen_key_variables.add(term)
            continue
        return None

    # Positions the plan must observe: constants, head variables, variables
    # shared with other atoms, repeated variables within this atom.
    needed = _needed_positions(query, atom_index)
    if not needed <= set(x_positions) | set(y_positions):
        return None
    if set(x_positions) and current is None and not _x_is_constant(atom, x_positions):
        return None

    # Build the key plan over the constraint's X attribute names.
    key_plan: PlanNode | None = None
    if constraint.x:
        variable_keys = []
        constant_keys = []
        for attr, position in zip(constraint.x, x_positions):
            term = atom.terms[position]
            if isinstance(term, Variable):
                variable_keys.append((attr, term))
            else:
                constant_keys.append((attr, term))
        if variable_keys:
            assert current is not None
            names = tuple(sorted({v.name for _, v in variable_keys}))
            key_plan = ProjectNode(current, names)
            rename = {v.name: attr for attr, v in variable_keys if v.name != attr}
            if rename:
                key_plan = RenameNode(key_plan, rename)
        for attr, term in constant_keys:
            scan = ConstantScan(term.value, attribute=attr)
            key_plan = scan if key_plan is None else join_on_shared_attributes(key_plan, scan)

    y_needed = tuple(
        relation.attributes[p]
        for p in sorted(needed)
        if relation.attributes[p] not in constraint.x
    )
    fetch: PlanNode = FetchNode(key_plan, atom.relation, constraint.x, y_needed)

    # Constant checks, repeated-variable checks, renaming to variable names.
    fetched_attrs = fetch.attributes
    term_of = {attr: atom.terms[relation.position(attr)] for attr in fetched_attrs}
    predicates = [
        AttributeEqualsConstant(attr, term.value)
        for attr, term in term_of.items()
        if isinstance(term, Constant)
    ]
    occurrences: dict[Variable, list[str]] = {}
    for attr in fetched_attrs:
        term = term_of[attr]
        if isinstance(term, Variable):
            occurrences.setdefault(term, []).append(attr)
    for variable, attrs in occurrences.items():
        for extra in attrs[1:]:
            predicates.append(AttributeEqualsAttribute(attrs[0], extra))
    if predicates:
        fetch = SelectNode(fetch, tuple(predicates))
    primary = [(attrs[0], variable) for variable, attrs in occurrences.items()]
    fetch = ProjectNode(fetch, tuple(attr for attr, _ in primary))
    rename = {attr: variable.name for attr, variable in primary if attr != variable.name}
    if rename:
        fetch = RenameNode(fetch, rename)
    return _Fragment(plan=fetch, bound=frozenset(v for _, v in primary))


def _x_is_constant(atom, x_positions: Sequence[int]) -> bool:
    return all(isinstance(atom.terms[p], Constant) for p in x_positions)


def _ordered_constraints(
    candidates: Sequence[AccessConstraint],
    relation_name: str,
    schema: DatabaseSchema,
    statistics: "Mapping[str, RelationStatistics] | None",
) -> Sequence[AccessConstraint]:
    """Order candidate access paths by measured cost, cheapest first.

    The per-key cost of fetching through ``R(X -> Y, N)`` is the expected
    bucket size — cardinality scaled by the distinct counts of the key
    columns.  Without statistics the schema order is kept unchanged (the
    historical behaviour); the sort is stable, so equally priced constraints
    also keep it.
    """
    stats = statistics.get(relation_name) if statistics is not None else None
    if stats is None or len(candidates) <= 1:
        return candidates
    relation = schema.relation(relation_name)

    def cost(constraint: AccessConstraint) -> float:
        return stats.estimated_matches(relation.positions(constraint.x))

    return sorted(candidates, key=cost)


def _needed_positions(query: ConjunctiveQuery, atom_index: int) -> set[int]:
    atom = query.atoms[atom_index]
    other_variables: set[Variable] = set(query.head_variables)
    for index, other in enumerate(query.atoms):
        if index != atom_index:
            other_variables.update(other.variables)
    needed: set[int] = set()
    occurrences: dict[Variable, list[int]] = {}
    for position, term in enumerate(atom.terms):
        if isinstance(term, Constant):
            needed.add(position)
        else:
            occurrences.setdefault(term, []).append(position)
            if term in other_variables:
                needed.add(position)
    for positions in occurrences.values():
        if len(positions) > 1:
            needed.update(positions)
    return needed


def build_bounded_plan(
    query: ConjunctiveQuery,
    views: ViewSet,
    access_schema: AccessSchema,
    schema: DatabaseSchema,
    max_size: int | None = None,
    budget: ElementQueryBudget | None = None,
    verify_conformance: bool = True,
    statistics: "Mapping[str, RelationStatistics] | None" = None,
) -> PlanSearchOutcome:
    """Construct a bounded plan for a CQ, or report why none was found.

    The returned plan (when found) is equivalent to the query by construction
    — every atom is enforced by a fetch, views only add implied filters — and
    is checked for conformance to the access schema unless
    ``verify_conformance`` is disabled.  ``statistics`` (per-relation
    cardinality/distinct counts from the storage layer) lets the greedy
    fetch step try the cheapest covering access path first.
    """
    normalized = query.normalize()
    head_variables = [t for t in normalized.head if isinstance(t, Variable)]
    if len(set(head_variables)) != len(head_variables):
        raise UnsupportedQueryError(
            "the heuristic plan builder requires distinct head variables"
        )

    # Step 1: view fragments (free, cached).  A usage whose expansion remains
    # classically equivalent to the query may *cover* the atoms in its image,
    # removing them from the fetch obligations; other usages act as filters
    # and binders only.
    fragments: list[_Fragment] = []
    accepted_usages: list[tuple[View, dict, frozenset[int]]] = []
    covered_by_views: set[int] = set()
    for view in views:
        best: tuple[dict, frozenset[int]] | None = None
        for assignment, covered in _view_usages(view, normalized):
            if best is None or len(covered) > len(best[1]):
                best = (assignment, covered)
        if best is None:
            continue
        assignment, covered = best
        usable_coverage: frozenset[int] = frozenset()
        if covered - covered_by_views:
            # Largest subset of the image whose replacement keeps the
            # expansion equivalent to the query (image sets are tiny, so the
            # subset sweep is cheap).
            candidates = sorted(
                (frozenset(subset)
                 for size in range(len(covered), 0, -1)
                 for subset in itertools.combinations(sorted(covered), size)),
                key=len,
                reverse=True,
            )
            for subset in candidates:
                candidate_usages = accepted_usages + [(view, assignment, subset)]
                if equivalent(_full_expansion(normalized, candidate_usages), normalized):
                    usable_coverage = subset
                    accepted_usages.append((view, assignment, subset))
                    break
        fragment = _view_fragment(view, normalized, assignment, usable_coverage)
        if fragment is None:
            continue
        fragments.append(fragment)
        covered_by_views |= set(usable_coverage)

    current: PlanNode | None = None
    bound: frozenset[Variable] = frozenset()
    for fragment in fragments:
        current = fragment.plan if current is None else join_on_shared_attributes(
            current, fragment.plan
        )
        bound |= fragment.bound

    # Step 2: greedy fetching of the query atoms not covered by view usages.
    # A candidate fetch whose key depends on previously bound variables is
    # only accepted when its input provably has bounded output under A
    # (checked through the conformance procedure on the fragment); otherwise
    # the next covering constraint is tried — e.g. a constraint keyed on the
    # atom's constants instead of on an unbounded view.
    uncovered = set(range(len(normalized.atoms))) - covered_by_views
    progress = True
    while uncovered and progress:
        progress = False
        for atom_index in sorted(uncovered):
            relation_name = normalized.atoms[atom_index].relation
            for constraint in _ordered_constraints(
                access_schema.for_relation(relation_name),
                relation_name,
                schema,
                statistics,
            ):
                fragment = _atom_fetch(
                    atom_index, normalized, constraint, schema, bound, current
                )
                if fragment is None:
                    continue
                if verify_conformance and not conforms_to(
                    fragment.plan, access_schema, schema, views, budget
                ).conforms:
                    continue
                current = (
                    fragment.plan
                    if current is None
                    else join_on_shared_attributes(current, fragment.plan)
                )
                bound |= fragment.bound
                uncovered.discard(atom_index)
                progress = True
                break
            if progress:
                break

    if uncovered:
        return PlanSearchOutcome(
            plan=None,
            reason=f"{len(uncovered)} atoms cannot be fetched under the access schema",
            fragments_used=len(fragments),
        )
    if current is None:
        return PlanSearchOutcome(plan=None, reason="query has no atoms to plan for")

    missing_heads = [v for v in head_variables if v.name not in current.attributes]
    if missing_heads:
        return PlanSearchOutcome(
            plan=None,
            reason=f"head variables {missing_heads} are not produced by any fragment",
        )

    plan: PlanNode = current
    head_names = []
    for term in normalized.head:
        if isinstance(term, Variable):
            head_names.append(term.name)
        else:
            scan = ConstantScan(term.value, attribute=f"_const_{len(head_names)}")
            plan = join_on_shared_attributes(plan, scan)
            head_names.append(f"_const_{len(head_names)}")
    plan = ProjectNode(plan, tuple(head_names))

    if max_size is not None and plan.size() > max_size:
        return PlanSearchOutcome(
            plan=None, reason=f"constructed plan has {plan.size()} nodes > M={max_size}"
        )
    if verify_conformance:
        report = conforms_to(plan, access_schema, schema, views, budget)
        if not report.conforms:
            return PlanSearchOutcome(
                plan=None,
                reason="constructed plan does not conform to the access schema: "
                + "; ".join(report.reasons),
                fragments_used=len(fragments),
            )
    return PlanSearchOutcome(plan=plan, fragments_used=len(fragments))


def build_bounded_plan_ucq(
    query: QueryLike,
    views: ViewSet,
    access_schema: AccessSchema,
    schema: DatabaseSchema,
    max_size: int | None = None,
    budget: ElementQueryBudget | None = None,
    statistics: "Mapping[str, RelationStatistics] | None" = None,
) -> PlanSearchOutcome:
    """Construct a bounded plan for a UCQ (one sub-plan per disjunct, unioned)."""
    union = as_union(query)
    sub_plans: list[PlanNode] = []
    for disjunct in union.disjuncts:
        outcome = build_bounded_plan(
            disjunct, views, access_schema, schema, max_size, budget,
            statistics=statistics,
        )
        if not outcome.found:
            return PlanSearchOutcome(
                plan=None,
                reason=f"disjunct {disjunct.name!r}: {outcome.reason}",
            )
        sub_plans.append(outcome.plan)  # type: ignore[arg-type]
    plan = sub_plans[0]
    target_attrs = plan.attributes
    for sub_plan in sub_plans[1:]:
        aligned = sub_plan
        if aligned.attributes != target_attrs:
            rename = {
                old: new
                for old, new in zip(aligned.attributes, target_attrs)
                if old != new
            }
            aligned = RenameNode(aligned, rename) if rename else aligned
        plan = UnionNode(plan, aligned)
    if max_size is not None and plan.size() > max_size:
        return PlanSearchOutcome(
            plan=None, reason=f"constructed plan has {plan.size()} nodes > M={max_size}"
        )
    return PlanSearchOutcome(plan=plan)
