"""Naive full-scan query evaluation — the baseline the paper compares against.

The paper's empirical claims ("plans for boundedly evaluable queries
outperform commercial query engines by 3 orders of magnitude, and the gap
gets larger on bigger data") are about *how much data a query touches*.  The
baseline engine here evaluates queries directly over the stored relations and
reports the number of tuples it had to scan: every atom of the query charges
a full scan of its relation, which is the (optimistic) cost model of an
engine without the access-constraint indices.  Comparing this count with the
``Dξ`` accounting of the bounded-plan executor reproduces the shape of the
paper's speed-ups without needing a commercial DBMS.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Sequence

from ..algebra.cq import ConjunctiveQuery
from ..algebra.evaluation import evaluate_cq, evaluate_ucq
from ..algebra.fo import FOQuery, evaluate_fo
from ..algebra.terms import Variable
from ..algebra.ucq import QueryLike, UnionQuery, as_union
from ..storage.instance import Database


@dataclass
class BaselineResult:
    """Answer of the naive engine plus its scan accounting."""

    rows: frozenset[tuple]
    tuples_scanned: int
    elapsed_seconds: float

    def __len__(self) -> int:
        return len(self.rows)


class NaiveEngine:
    """Evaluates CQ/UCQ (and, for small instances, FO) queries by full scans."""

    def __init__(self, database: Database) -> None:
        self.database = database

    # ------------------------------------------------------------------ #

    def scan_cost(self, query: QueryLike) -> int:
        """Number of tuples a scan-based evaluation reads: one pass per atom."""
        sizes = self.database.relation_sizes()
        total = 0
        for disjunct in as_union(query).disjuncts:
            for atom in disjunct.atoms:
                total += sizes.get(atom.relation, 0)
        return total

    def answer(self, query: QueryLike) -> BaselineResult:
        """Evaluate a CQ or UCQ over the full database.

        The database is passed to the kernel directly (not as a fact
        mapping), so joins probe the relations' cached secondary indexes and
        the join order uses the maintained statistics; the *reported* cost
        stays the full-scan model of :meth:`scan_cost`, which is what the
        paper's baseline charges.
        """
        started = time.perf_counter()
        if isinstance(query, ConjunctiveQuery):
            rows = evaluate_cq(query, self.database)
        else:
            rows = evaluate_ucq(query, self.database)
        elapsed = time.perf_counter() - started
        return BaselineResult(
            rows=frozenset(rows),
            tuples_scanned=self.scan_cost(query),
            elapsed_seconds=elapsed,
        )

    def answer_fo(self, query: FOQuery, head: Sequence[Variable]) -> BaselineResult:
        """Evaluate an FO query with active-domain semantics (small instances only)."""
        started = time.perf_counter()
        rows = evaluate_fo(query, self.database.facts, head)
        elapsed = time.perf_counter() - started
        scanned = sum(
            self.database.relation_sizes().get(name, 0) for name in query.relation_names
        )
        return BaselineResult(
            rows=frozenset(rows), tuples_scanned=scanned, elapsed_seconds=elapsed
        )
