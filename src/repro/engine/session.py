"""High-level engine: answer queries using cached views plus bounded fetches.

:class:`BoundedEngine` ties the pieces together the way the paper's
"practical use" section (5.1) describes:

1. an application fixes a database schema, an access schema (discovered from
   the data) and a set of views (selected and materialised up front);
2. given a query, the engine tries to build a bounded plan (heuristically for
   CQ/UCQ, through the topped-query effective syntax for FO);
3. when a bounded plan exists the query is answered by scanning cached views
   and fetching a constant-size fragment of the database through the
   indices; otherwise the engine falls back to the naive full-scan baseline.

Every answer carries the I/O accounting needed to reproduce the paper's
scale-independence claims (tuples fetched vs. tuples scanned).
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Sequence

from ..algebra.cq import ConjunctiveQuery
from ..algebra.evaluation import evaluate_ucq
from ..algebra.fo import FOQuery, evaluate_fo
from ..algebra.terms import Variable
from ..algebra.ucq import QueryLike, as_union
from ..algebra.views import View, ViewSet
from ..core.access import AccessSchema
from ..core.element_queries import ElementQueryBudget
from ..core.plan_eval import FetchStats, PlanExecutor
from ..core.plans import PlanNode
from ..core.topped import topped_plan
from ..errors import EvaluationError
from ..storage.indexes import IndexSet
from ..storage.instance import Database
from .baseline import NaiveEngine
from .optimizer import build_bounded_plan_ucq


@dataclass
class EngineAnswer:
    """Answer of :class:`BoundedEngine` with provenance and I/O accounting."""

    rows: frozenset[tuple]
    used_bounded_plan: bool
    plan: PlanNode | None
    tuples_fetched: int
    tuples_scanned: int
    view_tuples_scanned: int
    elapsed_seconds: float
    reason: str = ""

    def __len__(self) -> int:
        return len(self.rows)

    @property
    def data_accessed(self) -> int:
        """Tuples read from the underlying database (fetched or scanned)."""
        return self.tuples_fetched + self.tuples_scanned


class BoundedEngine:
    """Answers queries over one database using views and access constraints."""

    def __init__(
        self,
        database: Database,
        access_schema: AccessSchema,
        views: ViewSet | Sequence[View] = (),
        check_constraints: bool = True,
        budget: ElementQueryBudget | None = None,
        inner_size_cutoff: int = 2,
    ) -> None:
        self.database = database
        self.access_schema = access_schema
        self.views = views if isinstance(views, ViewSet) else ViewSet(views)
        self.budget = budget
        # The K cut-off of the topped-query syntax (Section 5.2); the paper
        # notes K = 1 preserves expressive power, larger values let the
        # analysis accept more queries as written.
        self.inner_size_cutoff = inner_size_cutoff
        access_schema.validate(database.schema)
        if check_constraints and not database.satisfies(access_schema):
            violations = database.violations(access_schema)
            raise EvaluationError(
                "database does not satisfy the access schema: " + "; ".join(violations[:5])
            )
        self.indexes = IndexSet(database, access_schema)
        self.view_cache = self._materialise_views()
        self._baseline = NaiveEngine(database)

    # ------------------------------------------------------------------ #

    def _materialise_views(self) -> dict[str, frozenset[tuple]]:
        cache: dict[str, frozenset[tuple]] = {}
        for view in self.views:
            if view.language in ("CQ", "UCQ"):
                rows = evaluate_ucq(view.as_ucq(), self.database.facts)
            else:
                head = [t for t in view.head if isinstance(t, Variable)]
                rows = evaluate_fo(view.as_fo(), self.database.facts, head)
            cache[view.name] = frozenset(rows)
        return cache

    @property
    def view_cache_size(self) -> int:
        """Total number of cached view tuples (|V(D)|)."""
        return sum(len(rows) for rows in self.view_cache.values())

    # ------------------------------------------------------------------ #

    def explain(self, query: QueryLike, max_size: int | None = None) -> PlanNode | None:
        """Return a bounded plan for the query, or ``None`` if none was found."""
        outcome = build_bounded_plan_ucq(
            query, self.views, self.access_schema, self.database.schema, max_size, self.budget
        )
        return outcome.plan

    def execute_plan(self, plan: PlanNode) -> tuple[frozenset[tuple], FetchStats]:
        executor = PlanExecutor(
            self.database.schema, self.access_schema, self.indexes, self.view_cache
        )
        result = executor.execute(plan)
        return result.rows, result.stats

    def answer(self, query: QueryLike, max_size: int | None = None) -> EngineAnswer:
        """Answer a CQ/UCQ, using a bounded plan whenever one is found."""
        started = time.perf_counter()
        outcome = build_bounded_plan_ucq(
            query, self.views, self.access_schema, self.database.schema, max_size, self.budget
        )
        if outcome.found:
            rows, stats = self.execute_plan(outcome.plan)  # type: ignore[arg-type]
            return EngineAnswer(
                rows=rows,
                used_bounded_plan=True,
                plan=outcome.plan,
                tuples_fetched=stats.tuples_fetched,
                tuples_scanned=0,
                view_tuples_scanned=stats.view_tuples_scanned,
                elapsed_seconds=time.perf_counter() - started,
            )
        baseline = self._baseline.answer(query)
        return EngineAnswer(
            rows=baseline.rows,
            used_bounded_plan=False,
            plan=None,
            tuples_fetched=0,
            tuples_scanned=baseline.tuples_scanned,
            view_tuples_scanned=0,
            elapsed_seconds=time.perf_counter() - started,
            reason=outcome.reason,
        )

    def answer_fo(
        self, query: FOQuery, head: Sequence[Variable], max_size: int | None = None
    ) -> EngineAnswer:
        """Answer an FO query via the topped-query effective syntax (Section 5).

        Falls back to active-domain evaluation when the query is not topped —
        which is only feasible on small instances, exactly the situation the
        effective syntax is designed to avoid.
        """
        started = time.perf_counter()
        plan = topped_plan(
            query, head, self.database.schema, self.views, self.access_schema,
            inner_size_cutoff=self.inner_size_cutoff, budget=self.budget,
        )
        if plan is not None and (max_size is None or plan.size() <= max_size):
            rows, stats = self.execute_plan(plan)
            return EngineAnswer(
                rows=rows,
                used_bounded_plan=True,
                plan=plan,
                tuples_fetched=stats.tuples_fetched,
                tuples_scanned=0,
                view_tuples_scanned=stats.view_tuples_scanned,
                elapsed_seconds=time.perf_counter() - started,
            )
        baseline = self._baseline.answer_fo(query, head)
        return EngineAnswer(
            rows=baseline.rows,
            used_bounded_plan=False,
            plan=None,
            tuples_fetched=0,
            tuples_scanned=baseline.tuples_scanned,
            view_tuples_scanned=0,
            elapsed_seconds=time.perf_counter() - started,
            reason="query is not topped by (R, V, A, M)",
        )

    # ------------------------------------------------------------------ #

    def baseline(self, query: QueryLike):
        """Expose the naive baseline for speed-up comparisons."""
        return self._baseline.answer(query)
