"""Deprecated engine facade: :class:`BoundedEngine` over :class:`QueryService`.

.. deprecated::
    :class:`BoundedEngine` is kept as a thin compatibility shim over
    :class:`repro.engine.service.QueryService`, which is the unified serving
    API (one entry point for CQ/UCQ/FO/string queries, pluggable planners and
    backends, prepared queries, a plan cache and aggregated statistics).  New
    code should construct a ``QueryService`` directly::

        from repro import QueryService
        service = QueryService(database, access_schema, views)
        answer = service.query(query)

The shim preserves the original per-language surface — :meth:`answer` for
CQ/UCQ, :meth:`answer_fo` for FO, :meth:`baseline` for the full-scan
comparison — and the original :class:`EngineAnswer` result type, while
delegating all planning and execution to the service (so the shim benefits
from the plan cache and the build-once executor for free).

Two deliberate hardenings differ from v1.0: queries referencing unknown
relations raise :class:`~repro.errors.QueryError` instead of silently
returning an empty answer, and in-place mutation of :attr:`view_cache`
raises ``TypeError`` instead of being silently ignored (assign a whole
mapping instead).
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass
from typing import Collection, Mapping, Sequence

from ..algebra.fo import FOQuery
from ..algebra.terms import Variable
from ..algebra.ucq import QueryLike
from ..algebra.views import View, ViewSet
from ..core.access import AccessSchema
from ..core.element_queries import ElementQueryBudget
from ..core.plan_eval import FetchProvider, FetchStats
from ..core.plans import PlanNode
from ..storage.instance import Database
from .service import Answer, QueryService


@dataclass
class EngineAnswer:
    """Answer of :class:`BoundedEngine` with provenance and I/O accounting."""

    rows: frozenset[tuple]
    used_bounded_plan: bool
    plan: PlanNode | None
    tuples_fetched: int
    tuples_scanned: int
    view_tuples_scanned: int
    elapsed_seconds: float
    reason: str = ""

    def __len__(self) -> int:
        return len(self.rows)

    @property
    def data_accessed(self) -> int:
        """Tuples read from the underlying database (fetched or scanned)."""
        return self.tuples_fetched + self.tuples_scanned

    @classmethod
    def from_answer(cls, answer: Answer) -> "EngineAnswer":
        """Downgrade a service :class:`Answer` to the legacy result type."""
        return cls(
            rows=answer.rows,
            used_bounded_plan=answer.used_bounded_plan,
            plan=answer.plan,
            tuples_fetched=answer.tuples_fetched,
            tuples_scanned=answer.tuples_scanned,
            view_tuples_scanned=answer.view_tuples_scanned,
            elapsed_seconds=answer.elapsed_seconds,
            reason=answer.reason,
        )


class BoundedEngine:
    """Answers queries over one database using views and access constraints.

    .. deprecated:: use :class:`repro.engine.service.QueryService`.
    """

    def __init__(
        self,
        database: Database,
        access_schema: AccessSchema,
        views: ViewSet | Sequence[View] = (),
        check_constraints: bool = True,
        budget: ElementQueryBudget | None = None,
        inner_size_cutoff: int = 2,
    ) -> None:
        warnings.warn(
            "BoundedEngine is deprecated; construct repro.QueryService "
            "directly (same database/access_schema/views arguments)",
            DeprecationWarning,
            stacklevel=2,
        )
        self.service = QueryService(
            database,
            access_schema,
            views,
            check_constraints=check_constraints,
            budget=budget,
            inner_size_cutoff=inner_size_cutoff,
        )
        self.database = database
        self.access_schema = access_schema
        self.views = self.service.views

    # ------------------------------------------------------------------ #
    # Live settings — delegated so post-construction mutation still takes
    # effect on the next answer() call, as it did in v1.0.
    # ------------------------------------------------------------------ #

    @property
    def budget(self) -> ElementQueryBudget | None:
        return self.service.budget

    @budget.setter
    def budget(self, budget: ElementQueryBudget | None) -> None:
        self.service.budget = budget

    @property
    def inner_size_cutoff(self) -> int:
        return self.service.inner_size_cutoff

    @inner_size_cutoff.setter
    def inner_size_cutoff(self, cutoff: int) -> None:
        self.service.inner_size_cutoff = cutoff

    # ------------------------------------------------------------------ #
    # Cache surface (the maintenance layer swaps these after updates)
    # ------------------------------------------------------------------ #

    @property
    def indexes(self) -> FetchProvider:
        return self.service.indexes

    @indexes.setter
    def indexes(self, provider: FetchProvider) -> None:
        self.service.refresh_data(provider=provider)

    @property
    def view_cache(self) -> Mapping[str, frozenset[tuple]]:
        """The materialised view rows, keyed by view name (read-only mapping).

        Unlike v1.0's plain attribute, in-place mutation cannot reach the
        (build-once) executor, so the mapping rejects item assignment —
        assign a whole mapping instead, which routes through
        :meth:`QueryService.refresh_data`.
        """
        return self.service.view_cache

    @view_cache.setter
    def view_cache(self, cache: Mapping[str, Collection[tuple]]) -> None:
        self.service.refresh_data(view_cache=cache)

    @property
    def view_cache_size(self) -> int:
        """Total number of cached view tuples (|V(D)|)."""
        return self.service.view_cache_size

    # ------------------------------------------------------------------ #

    def explain(self, query: QueryLike, max_size: int | None = None) -> PlanNode | None:
        """Return a bounded plan for the query, or ``None`` if none was found.

        (The service's :meth:`QueryService.explain` returns a richer
        :class:`~repro.analysis.Explanation`; the shim keeps the v1.0
        plan-or-None contract.)
        """
        return self.service.explain(query, max_size=max_size).plan

    def execute_plan(self, plan: PlanNode) -> tuple[frozenset[tuple], FetchStats]:
        """Execute a plan on the (build-once) in-memory executor."""
        result = self.service.execute_plan(plan, backend="memory")
        return result.rows, result.stats

    def answer(self, query: QueryLike, max_size: int | None = None) -> EngineAnswer:
        """Answer a CQ/UCQ, using a bounded plan whenever one is found."""
        return EngineAnswer.from_answer(
            self.service.query(query, max_size=max_size, backend="memory")
        )

    def answer_fo(
        self, query: FOQuery, head: Sequence[Variable], max_size: int | None = None
    ) -> EngineAnswer:
        """Answer an FO query via the topped-query effective syntax (Section 5)."""
        return EngineAnswer.from_answer(
            self.service.query(query, head=head, max_size=max_size, backend="memory")
        )

    # ------------------------------------------------------------------ #

    def baseline(self, query: QueryLike):
        """Expose the naive baseline for speed-up comparisons."""
        return self.service.baseline(query, backend="memory")
