"""Engine layer: the unified query service, planners, backends, maintenance.

The public serving API is :class:`~repro.engine.service.QueryService` (see
:mod:`repro.engine.service`).  :class:`BoundedEngine` and
:class:`MaintainedEngine` remain as compatibility shims delegating to it.
"""

from .baseline import BaselineResult, NaiveEngine
from .maintenance import (
    IncrementalViewCache,
    MaintainedEngine,
    MaintainedIndexSet,
    MaintenanceReport,
    MaintenanceStats,
    ViewDelta,
)
from .optimizer import PlanSearchOutcome, build_bounded_plan, build_bounded_plan_ucq
from .service import (
    Answer,
    ExactVBRPPlanner,
    ExecutionBackend,
    HeuristicPlanner,
    InMemoryBackend,
    LRUPlanCache,
    Planner,
    PlanningContext,
    PlanningResult,
    PreparedQuery,
    QueryService,
    ServiceStats,
    SQLiteBackend,
    StatsSnapshot,
    ToppedFOPlanner,
    ViewMaintainer,
    available_planners,
    canonical_query_key,
    register_planner,
)
from .session import BoundedEngine, EngineAnswer
from .sql import (
    SQLTranslation,
    cq_to_sql,
    create_index_statements,
    create_table_statements,
    insert_statements,
    materialize_view_statements,
    plan_to_sql,
    ucq_to_sql,
)

__all__ = [
    "Answer",
    "BaselineResult",
    "BoundedEngine",
    "EngineAnswer",
    "ExactVBRPPlanner",
    "ExecutionBackend",
    "HeuristicPlanner",
    "IncrementalViewCache",
    "InMemoryBackend",
    "LRUPlanCache",
    "MaintainedEngine",
    "MaintainedIndexSet",
    "MaintenanceReport",
    "MaintenanceStats",
    "NaiveEngine",
    "Planner",
    "PlanningContext",
    "PlanningResult",
    "PlanSearchOutcome",
    "PreparedQuery",
    "QueryService",
    "SQLTranslation",
    "SQLiteBackend",
    "ServiceStats",
    "StatsSnapshot",
    "ToppedFOPlanner",
    "ViewDelta",
    "ViewMaintainer",
    "available_planners",
    "build_bounded_plan",
    "build_bounded_plan_ucq",
    "canonical_query_key",
    "cq_to_sql",
    "create_index_statements",
    "create_table_statements",
    "insert_statements",
    "materialize_view_statements",
    "plan_to_sql",
    "register_planner",
    "ucq_to_sql",
]
