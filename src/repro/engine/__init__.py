"""Engine layer: bounded-plan construction, execution, maintenance, SQL and the baseline."""

from .baseline import BaselineResult, NaiveEngine
from .maintenance import (
    IncrementalViewCache,
    MaintainedEngine,
    MaintainedIndexSet,
    MaintenanceReport,
    MaintenanceStats,
)
from .optimizer import PlanSearchOutcome, build_bounded_plan, build_bounded_plan_ucq
from .session import BoundedEngine, EngineAnswer
from .sql import (
    SQLTranslation,
    cq_to_sql,
    create_index_statements,
    create_table_statements,
    insert_statements,
    materialize_view_statements,
    plan_to_sql,
    ucq_to_sql,
)

__all__ = [
    "BaselineResult",
    "BoundedEngine",
    "EngineAnswer",
    "IncrementalViewCache",
    "MaintainedEngine",
    "MaintainedIndexSet",
    "MaintenanceReport",
    "MaintenanceStats",
    "NaiveEngine",
    "PlanSearchOutcome",
    "SQLTranslation",
    "build_bounded_plan",
    "build_bounded_plan_ucq",
    "cq_to_sql",
    "create_index_statements",
    "create_table_statements",
    "insert_statements",
    "materialize_view_statements",
    "plan_to_sql",
    "ucq_to_sql",
]
