"""Deprecated maintenance facade over the first-class write path.

.. deprecated::
    Updates are a first-class subsystem of the service now.  The machinery
    that used to live here moved into the layers it belongs to:

    * the **delta-stream protocol** (one netted
      :class:`~repro.storage.deltas.DeltaStream` per transaction, observable
      by indexes, views, caches and backends) lives in
      :mod:`repro.storage.deltas` and
      :meth:`repro.storage.instance.Database.apply`;
    * the **compiled delta plans** (each view compiled once into per-relation
      delta rules, counting-based multiset maintenance where sound, DRed as
      the fallback) live in :mod:`repro.exec.delta_compiler`;
    * the **maintenance kernel** wiring both to the serving layer lives in
      :mod:`repro.engine.service.maintenance`
      (:class:`~repro.engine.service.maintenance.ViewMaintainer`);
    * the **write API** is :meth:`repro.engine.service.QueryService.apply`.

    New code should call ``QueryService.apply(batch)`` directly::

        from repro import QueryService
        service = QueryService(database, access_schema, views)
        report = service.apply(batch)

The classes below are kept as thin compatibility shims with the historical
surface: :class:`MaintainedEngine` delegates to ``QueryService.apply``;
:class:`IncrementalViewCache` preserves the caller-driven per-update API on
top of the :class:`~repro.engine.service.maintenance.ViewMaintainer`;
:class:`MaintainedIndexSet` no longer owns bucket logic at all — the
observer-maintained :class:`repro.storage.indexes.AccessIndex` is the single
implementation of incremental index maintenance, and the shim merely routes
the old method names to it.
"""

from __future__ import annotations

import warnings
from typing import Iterable, Sequence

from ..algebra.ucq import QueryLike
from ..algebra.views import View, ViewSet
from ..core.access import AccessSchema
from ..errors import EvaluationError, UnsupportedQueryError
from ..storage.deltas import DeltaStream
from ..storage.indexes import IndexSet
from ..storage.instance import Database
from ..storage.updates import Insertion, Update, UpdateBatch
from .service import QueryService
from .service.maintenance import (
    MaintenanceReport,
    MaintenanceStats,
    ViewDelta,
    ViewMaintainer,
)
from .session import EngineAnswer

__all__ = [
    "IncrementalViewCache",
    "MaintainedEngine",
    "MaintainedIndexSet",
    "MaintenanceReport",
    "MaintenanceStats",
    "ViewDelta",
]


# --------------------------------------------------------------------------- #
# Index maintenance: one implementation, in storage
# --------------------------------------------------------------------------- #


class MaintainedIndexSet:
    """Deprecated alias surface over :class:`repro.storage.indexes.IndexSet`.

    .. deprecated:: the per-bucket maintenance logic this class used to
        duplicate lives solely in :class:`repro.storage.indexes.AccessIndex`,
        which registers as a relation observer — any mutation applied through
        the storage layer maintains the buckets; there is nothing left to
        ``apply`` by hand.
    """

    def __init__(self, database: Database, access_schema: AccessSchema) -> None:
        self.database = database
        self.access_schema = access_schema
        self._indexes = IndexSet(database, access_schema)

    def fetch(self, constraint, key) -> frozenset[tuple]:
        """Return ``D_{R:XY}(X = key)`` from the observer-maintained buckets."""
        return self._indexes.fetch(constraint, key)

    def bucket_size(self, constraint, key) -> int:
        return len(self._indexes.fetch(constraint, key))

    def admissible(self, update: Update) -> bool:
        """Bucket-local ``D ⊕ ΔD |= A`` check (bounded work per update)."""
        return self._indexes.admissible(update)

    def apply(self, update: Update) -> None:
        """Apply ``update`` to the database; the buckets follow via observers.

        The historical contract mutated only the index; callers always paired
        it with the matching database mutation, so the shim applies the
        update through the storage layer (idempotent under set semantics) and
        lets the observer protocol do the maintenance — exactly once.
        """
        relation = self.database.relation(update.relation)
        row = tuple(update.row)
        if isinstance(update, Insertion):
            if row not in relation:
                relation.add(row)
        else:
            relation.discard(row)


# --------------------------------------------------------------------------- #
# View cache: caller-driven shim over the ViewMaintainer
# --------------------------------------------------------------------------- #


class IncrementalViewCache:
    """Deprecated caller-driven facade over
    :class:`~repro.engine.service.maintenance.ViewMaintainer`.

    .. deprecated:: subscribe a service to the database's delta stream (or
        just use :meth:`QueryService.apply`) instead of pushing single
        updates by hand.  The shim keeps the historical contract: the caller
        applies each update to the database first, then calls :meth:`apply`
        with it; FO views are rejected, as before.
    """

    def __init__(self, views: ViewSet | Sequence[View], database: Database) -> None:
        self.views = views if isinstance(views, ViewSet) else ViewSet(views)
        for view in self.views:
            if view.language not in ("CQ", "UCQ"):
                raise UnsupportedQueryError(
                    f"view {view.name!r} is defined in {view.language}; incremental "
                    "maintenance supports CQ and UCQ views"
                )
        self.database = database
        # Counting maintenance needs effective-only streams; this shim's
        # streams are synthesised from whatever the caller claims happened,
        # so it stays on idempotent DRed — the historical semantics exactly.
        self._maintainer = ViewMaintainer(self.views, database, allow_counting=False)

    @property
    def maintainer(self) -> ViewMaintainer:
        return self._maintainer

    def rows(self, view_name: str) -> frozenset[tuple]:
        return self._maintainer.rows(view_name)

    def snapshot(self) -> dict[str, frozenset[tuple]]:
        """The cache in the shape expected by the plan executor."""
        return self._maintainer.snapshot()

    @property
    def total_rows(self) -> int:
        return self._maintainer.total_rows

    def apply(
        self, update: Update, stats: MaintenanceStats | None = None
    ) -> list[ViewDelta]:
        """Maintain every view for one update *already applied* to the database."""
        stream = DeltaStream()
        row = tuple(update.row)
        if isinstance(update, Insertion):
            stream.record_insert(update.relation, row)
        else:
            stream.record_delete(update.relation, row)
        return self._maintainer.apply_stream(stream, stats)

    def apply_batch(self, batch: UpdateBatch | Iterable[Update]) -> MaintenanceStats:
        """Maintain the views for a whole batch (already applied to the database)."""
        stats = MaintenanceStats()
        for update in batch:
            self.apply(update, stats)
        return stats

    def recompute(self) -> dict[str, frozenset[tuple]]:
        """Recompute every view from scratch (the benchmarks' baseline)."""
        return self._maintainer.recompute()

    def verify(self) -> bool:
        """Check the maintained cache against a full recomputation (for tests)."""
        return self._maintainer.verify()


# --------------------------------------------------------------------------- #
# MaintainedEngine: a QueryService with the write path spelled the old way
# --------------------------------------------------------------------------- #


class MaintainedEngine:
    """Deprecated facade: a :class:`QueryService` whose caches survive updates.

    .. deprecated:: ``QueryService`` maintains its views, indices, plan cache
        and backends on every :meth:`QueryService.apply` already; this class
        only preserves the historical constructor and result types.
    """

    def __init__(
        self,
        database: Database,
        access_schema: AccessSchema,
        views: ViewSet | Sequence[View] = (),
        check_constraints: bool = True,
    ) -> None:
        warnings.warn(
            "MaintainedEngine is deprecated; QueryService maintains its views, "
            "indices and caches on every QueryService.apply already",
            DeprecationWarning,
            stacklevel=2,
        )
        self.database = database
        self.access_schema = access_schema
        if check_constraints and not database.satisfies(access_schema):
            raise EvaluationError("database does not satisfy the access schema")
        self.service = QueryService(
            database, access_schema, views, check_constraints=False
        )
        self.views = self.service.views

    # ------------------------------------------------------------------ #

    @property
    def view_cache(self) -> ViewMaintainer:
        """The maintained views (exposes ``rows``/``recompute``/``verify``)."""
        return self.service.maintainer

    @property
    def index_set(self) -> object:
        """The fetch provider serving (observer-maintained) index lookups."""
        return self.service.indexes

    @property
    def view_cache_size(self) -> int:
        return self.service.maintainer.total_rows

    def apply(
        self,
        batch: UpdateBatch | Iterable[Update],
        enforce_admissible: bool = True,
    ) -> MaintenanceReport:
        """Apply a batch of updates, maintaining indices and cached views."""
        return self.service.apply(batch, enforce_admissible=enforce_admissible)

    # ------------------------------------------------------------------ #

    def answer(self, query: QueryLike, max_size: int | None = None) -> EngineAnswer:
        """Answer a CQ/UCQ from the maintained caches through the service."""
        return EngineAnswer.from_answer(
            self.service.query(query, max_size=max_size, backend="memory")
        )

    def baseline(self, query: QueryLike):
        return self.service.baseline(query, backend="memory")

    def verify_caches(self) -> bool:
        """Cross-check the maintained views and indices against recomputation."""
        if not self.service.maintainer.verify():
            return False
        maintained = self.service.indexes
        if not isinstance(maintained, IndexSet):
            return True  # custom provider: nothing to rebuild against
        rebuilt = IndexSet(self.database, self.access_schema)
        for constraint in self.access_schema:
            left = maintained.index_for(constraint)
            right = rebuilt.index_for(constraint)
            if left.keys != right.keys:
                return False
            for key in left.keys:
                if left.lookup(key) != right.lookup(key):
                    return False
        return True
