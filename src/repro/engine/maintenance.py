"""Bounded incremental maintenance of cached views and access indices.

The paper lists *bounded view maintenance* as follow-up work: keep the cached
``V(D)`` and the indices of the access schema up to date "by accessing a
bounded amount of data in D, in response to changes to D".  This module
implements the machinery for single-tuple insertions and deletions:

* :class:`MaintainedIndexSet` — the hash indices of an access schema kept
  incrementally: each update touches exactly one bucket per constraint on the
  updated relation (O(1) work per constraint), and the set doubles as the
  executor's fetch provider;
* :class:`IncrementalViewCache` — cached CQ/UCQ view results maintained with
  per-tuple delta queries: an insertion adds the rows derivable *through* the
  new tuple; a deletion over-deletes the rows whose derivations may use the
  removed tuple and re-derives the survivors with anchored support checks
  (the classic DRed scheme specialised to single tuples);
* :class:`MaintainedEngine` — a :class:`repro.engine.service.QueryService`
  whose view cache and indices are maintained across :meth:`apply` calls
  instead of being recomputed, together with an admissibility check that
  inspects only the index buckets an update touches (so checking ``D ⊕ ΔD |=
  A`` is itself bounded).

The benchmark ``benchmarks/bench_maintenance.py`` measures the incremental
path against full recomputation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Mapping, Sequence

from ..algebra.atoms import EqualityAtom
from ..algebra.cq import ConjunctiveQuery
from ..algebra.evaluation import evaluate_cq, evaluate_ucq
from ..algebra.terms import Constant, Variable
from ..algebra.ucq import QueryLike, as_union
from ..algebra.views import View, ViewSet
from ..core.access import AccessConstraint, AccessSchema
from ..errors import EvaluationError, UnsupportedQueryError
from ..storage.instance import Database
from ..storage.updates import Deletion, Insertion, Update, UpdateBatch
from .service import QueryService
from .session import EngineAnswer


# --------------------------------------------------------------------------- #
# Incrementally maintained indices
# --------------------------------------------------------------------------- #


class MaintainedIndexSet:
    """Hash indices for an access schema, maintained under single-tuple updates.

    Implements the executor's fetch-provider protocol
    (``fetch(constraint, key) -> frozenset``), so it can be swapped in for
    :class:`repro.storage.indexes.IndexSet` without rebuilding anything after
    every batch.
    """

    def __init__(self, database: Database, access_schema: AccessSchema) -> None:
        access_schema.validate(database.schema)
        self.database = database
        self.access_schema = access_schema
        self._positions: dict[AccessConstraint, tuple[tuple[int, ...], tuple[int, ...]]] = {}
        # Per constraint: key -> {projection -> support count}.  Counting the
        # base tuples behind every projection makes deletions O(1): a
        # projection disappears exactly when its count reaches zero, without
        # rescanning the relation.
        self._buckets: dict[AccessConstraint, dict[tuple, dict[tuple, int]]] = {}
        for constraint in access_schema:
            relation = database.schema.relation(constraint.relation)
            x_positions = relation.positions(constraint.x)
            out_positions = relation.positions(constraint.output_attributes)
            self._positions[constraint] = (x_positions, out_positions)
            buckets: dict[tuple, dict[tuple, int]] = {}
            for row in database.relation(constraint.relation):
                key = tuple(row[p] for p in x_positions)
                value = tuple(row[p] for p in out_positions)
                counts = buckets.setdefault(key, {})
                counts[value] = counts.get(value, 0) + 1
            self._buckets[constraint] = buckets

    # ------------------------------------------------------------------ #

    def fetch(self, constraint: AccessConstraint, key: Sequence[object]) -> frozenset[tuple]:
        """Return ``D_{R:XY}(X = key)`` from the maintained buckets."""
        return frozenset(self._buckets[constraint].get(tuple(key), {}))

    def bucket_size(self, constraint: AccessConstraint, key: Sequence[object]) -> int:
        return len(self._buckets[constraint].get(tuple(key), ()))

    # ------------------------------------------------------------------ #

    def admissible(self, update: Update) -> bool:
        """Would applying ``update`` keep every constraint satisfied?

        Only the buckets the update touches are inspected — the check reads a
        bounded number of index entries, never the whole relation.  Deletions
        are always admissible.
        """
        if isinstance(update, Deletion):
            return True
        relation = self.database.schema.relation(update.relation)
        for constraint in self.access_schema.for_relation(update.relation):
            x_positions, _ = self._positions[constraint]
            y_positions = relation.positions(constraint.y)
            key = tuple(update.row[p] for p in x_positions)
            existing = {
                tuple(value[constraint.output_attributes.index(a)] for a in constraint.y)
                for value in self._buckets[constraint].get(key, {})
            }
            existing.add(tuple(update.row[p] for p in y_positions))
            if len(existing) > constraint.bound:
                return False
        return True

    def apply(self, update: Update) -> None:
        """Maintain the buckets of every constraint on the updated relation.

        Work per update: one bucket entry per constraint on the relation —
        independent of the size of the database, as bounded maintenance
        requires.
        """
        for constraint in self.access_schema.for_relation(update.relation):
            x_positions, out_positions = self._positions[constraint]
            key = tuple(update.row[p] for p in x_positions)
            value = tuple(update.row[p] for p in out_positions)
            buckets = self._buckets[constraint]
            if isinstance(update, Insertion):
                counts = buckets.setdefault(key, {})
                counts[value] = counts.get(value, 0) + 1
            else:
                counts = buckets.get(key)
                if counts is None or value not in counts:
                    continue
                counts[value] -= 1
                if counts[value] <= 0:
                    del counts[value]
                if not counts:
                    del buckets[key]


# --------------------------------------------------------------------------- #
# Incrementally maintained view cache
# --------------------------------------------------------------------------- #


@dataclass
class ViewDelta:
    """Rows added to / removed from one view by a single update."""

    view: str
    added: frozenset[tuple] = frozenset()
    removed: frozenset[tuple] = frozenset()

    @property
    def is_empty(self) -> bool:
        return not self.added and not self.removed


@dataclass
class MaintenanceStats:
    """Work accounting of an :meth:`IncrementalViewCache.apply` run.

    ``delta_queries`` counts the anchored delta evaluations, ``support_checks``
    the per-row re-derivation probes after deletions; both stay small when the
    views are selective — the quantity bounded view maintenance is about.
    """

    updates: int = 0
    delta_queries: int = 0
    support_checks: int = 0
    rows_added: int = 0
    rows_removed: int = 0

    def merged_with(self, other: "MaintenanceStats") -> "MaintenanceStats":
        return MaintenanceStats(
            updates=self.updates + other.updates,
            delta_queries=self.delta_queries + other.delta_queries,
            support_checks=self.support_checks + other.support_checks,
            rows_added=self.rows_added + other.rows_added,
            rows_removed=self.rows_removed + other.rows_removed,
        )


def _bind_atom_to_tuple(
    disjunct: ConjunctiveQuery, atom_index: int, row: tuple
) -> ConjunctiveQuery | None:
    """Specialise a disjunct by forcing one atom to match a concrete tuple.

    Returns ``None`` when the atom's constants clash with the tuple (no
    derivation can use the tuple through this atom).
    """
    atom = disjunct.atoms[atom_index]
    if len(atom.terms) != len(row):
        return None
    equalities: list[EqualityAtom] = []
    for term, value in zip(atom.terms, row):
        if isinstance(term, Constant):
            if term.value != value:
                return None
        else:
            equalities.append(EqualityAtom(term, Constant(value)))
    return disjunct.with_extra_equalities(equalities, name=f"{disjunct.name}_delta")


def _bind_head_to_row(disjunct: ConjunctiveQuery, row: tuple) -> ConjunctiveQuery | None:
    """Specialise a disjunct by fixing its head to a concrete output row."""
    if len(disjunct.head) != len(row):
        return None
    equalities: list[EqualityAtom] = []
    for term, value in zip(disjunct.head, row):
        if isinstance(term, Constant):
            if term.value != value:
                return None
        else:
            equalities.append(EqualityAtom(term, Constant(value)))
    return disjunct.with_extra_equalities(equalities, name=f"{disjunct.name}_support")


class IncrementalViewCache:
    """Materialised CQ/UCQ view results maintained under single-tuple updates."""

    def __init__(self, views: ViewSet | Sequence[View], database: Database) -> None:
        self.views = views if isinstance(views, ViewSet) else ViewSet(views)
        self.database = database
        self._definitions: dict[str, tuple[ConjunctiveQuery, ...]] = {}
        self._rows: dict[str, set[tuple]] = {}
        for view in self.views:
            if view.language not in ("CQ", "UCQ"):
                raise UnsupportedQueryError(
                    f"view {view.name!r} is defined in {view.language}; incremental "
                    "maintenance supports CQ and UCQ views"
                )
            disjuncts = tuple(d.normalize() for d in view.as_ucq().disjuncts)
            self._definitions[view.name] = disjuncts
            self._rows[view.name] = set(evaluate_ucq(view.as_ucq(), database))

    # ------------------------------------------------------------------ #

    def rows(self, view_name: str) -> frozenset[tuple]:
        return frozenset(self._rows[view_name])

    def snapshot(self) -> dict[str, frozenset[tuple]]:
        """The cache in the shape expected by the plan executor."""
        return {name: frozenset(rows) for name, rows in self._rows.items()}

    @property
    def total_rows(self) -> int:
        return sum(len(rows) for rows in self._rows.values())

    # ------------------------------------------------------------------ #

    def apply(self, update: Update, stats: MaintenanceStats | None = None) -> list[ViewDelta]:
        """Maintain every view for one update *already applied* to the database.

        The caller applies the update to ``self.database`` first (see
        :class:`MaintainedEngine.apply`); insertions are processed against the
        post-update state, deletions re-derive against the post-update state as
        well, which is exactly what the delta rules require.
        """
        stats = stats if stats is not None else MaintenanceStats()
        stats.updates += 1
        deltas: list[ViewDelta] = []
        for view in self.views:
            if isinstance(update, Insertion):
                delta = self._apply_insertion(view, update, stats)
            else:
                delta = self._apply_deletion(view, update, stats)
            if not delta.is_empty:
                deltas.append(delta)
        return deltas

    def apply_batch(self, batch: UpdateBatch | Iterable[Update]) -> MaintenanceStats:
        """Maintain the views for a whole batch (already applied to the database)."""
        stats = MaintenanceStats()
        for update in batch:
            self.apply(update, stats)
        return stats

    # ------------------------------------------------------------------ #

    def _apply_insertion(
        self, view: View, update: Insertion, stats: MaintenanceStats
    ) -> ViewDelta:
        added: set[tuple] = set()
        current = self._rows[view.name]
        for disjunct in self._definitions[view.name]:
            for index, atom in enumerate(disjunct.atoms):
                if atom.relation != update.relation:
                    continue
                specialized = _bind_atom_to_tuple(disjunct, index, update.row)
                if specialized is None:
                    continue
                stats.delta_queries += 1
                for row in evaluate_cq(specialized, self.database):
                    if row not in current:
                        added.add(row)
        current.update(added)
        stats.rows_added += len(added)
        return ViewDelta(view=view.name, added=frozenset(added))

    def _apply_deletion(
        self, view: View, update: Deletion, stats: MaintenanceStats
    ) -> ViewDelta:
        current = self._rows[view.name]
        affected: set[tuple] = set()
        for disjunct in self._definitions[view.name]:
            for index, atom in enumerate(disjunct.atoms):
                if atom.relation != update.relation:
                    continue
                specialized = _bind_atom_to_tuple(disjunct, index, update.row)
                if specialized is None:
                    continue
                stats.delta_queries += 1
                # Rows whose derivations may have used the deleted tuple: the
                # delta query evaluated over the *old* state is approximated by
                # intersecting the specialised query over the new state with
                # the currently cached rows, plus an explicit support check.
                affected.update(
                    row for row in current if self._row_matches(specialized, row)
                )
        removed: set[tuple] = set()
        for row in affected:
            stats.support_checks += 1
            if not self._has_support(view, row):
                removed.add(row)
        current.difference_update(removed)
        stats.rows_removed += len(removed)
        return ViewDelta(view=view.name, removed=frozenset(removed))

    def _row_matches(self, specialized: ConjunctiveQuery, row: tuple) -> bool:
        """Could ``row`` be an output of the specialised (tuple-bound) disjunct?

        A cheap necessary condition: the head positions holding constants after
        binding must agree with the row.  Rows passing the filter go through
        the exact support check.
        """
        normalized = specialized.normalize() if specialized.is_satisfiable() else None
        if normalized is None:
            return False
        for term, value in zip(normalized.head, row):
            if isinstance(term, Constant) and term.value != value:
                return False
        return True

    def _has_support(self, view: View, row: tuple) -> bool:
        """Does ``row`` still have a derivation in the current database state?"""
        for disjunct in self._definitions[view.name]:
            support = _bind_head_to_row(disjunct, row)
            if support is None:
                continue
            if evaluate_cq(support, self.database):
                return True
        return False

    # ------------------------------------------------------------------ #

    def recompute(self) -> dict[str, frozenset[tuple]]:
        """Recompute every view from scratch (the baseline the benchmarks compare to)."""
        return {
            view.name: frozenset(evaluate_ucq(view.as_ucq(), self.database))
            for view in self.views
        }

    def verify(self) -> bool:
        """Check the maintained cache against a full recomputation (for tests)."""
        fresh = self.recompute()
        return all(frozenset(self._rows[name]) == rows for name, rows in fresh.items())


# --------------------------------------------------------------------------- #
# A BoundedEngine that stays fresh under updates
# --------------------------------------------------------------------------- #


@dataclass
class MaintenanceReport:
    """Outcome of applying one batch through :class:`MaintainedEngine.apply`."""

    applied: int
    skipped_inadmissible: int
    inserted: int
    deleted: int
    stats: MaintenanceStats
    view_deltas: list[ViewDelta] = field(default_factory=list)


class MaintainedEngine:
    """A bounded-rewriting engine whose caches survive updates to the data.

    Construction materialises the views and builds the indices once (exactly
    like :class:`~repro.engine.service.QueryService`); afterwards
    :meth:`apply` keeps the database, the indices and the view cache in sync
    incrementally, and :meth:`answer` keeps serving queries from the
    maintained state through the service.
    """

    def __init__(
        self,
        database: Database,
        access_schema: AccessSchema,
        views: ViewSet | Sequence[View] = (),
        check_constraints: bool = True,
    ) -> None:
        self.database = database
        self.access_schema = access_schema
        self.views = views if isinstance(views, ViewSet) else ViewSet(views)
        if check_constraints and not database.satisfies(access_schema):
            raise EvaluationError("database does not satisfy the access schema")
        self.index_set = MaintainedIndexSet(database, access_schema)
        self.view_cache = IncrementalViewCache(self.views, database)
        self.service = QueryService(
            database, access_schema, self.views, check_constraints=False
        )
        self._sync_engine()

    # ------------------------------------------------------------------ #

    def _sync_engine(self) -> None:
        # Maintained buckets implement the fetch-provider protocol, so the
        # service executes plans against them directly — no rebuild.
        self.service.refresh_data(
            provider=self.index_set, view_cache=self.view_cache.snapshot()
        )

    def apply(self, batch: UpdateBatch | Iterable[Update], enforce_admissible: bool = True) -> MaintenanceReport:
        """Apply a batch of updates, maintaining indices and cached views.

        With ``enforce_admissible`` (the default) insertions that would break
        an access constraint are skipped and counted in the report — keeping
        the invariant ``D |= A`` that every bounded plan relies on.
        """
        updates = batch if isinstance(batch, UpdateBatch) else UpdateBatch(batch)
        updates.validate(self.database)
        stats = MaintenanceStats()
        deltas: list[ViewDelta] = []
        applied = skipped = inserted = deleted = 0
        for update in updates:
            if enforce_admissible and not self.index_set.admissible(update):
                skipped += 1
                continue
            relation = self.database.relation(update.relation)
            if isinstance(update, Insertion):
                if update.row in relation:
                    continue
                self.database.add(update.relation, update.row)
                inserted += 1
            else:
                if not relation.discard(update.row):
                    continue
                deleted += 1
            applied += 1
            self.index_set.apply(update)
            deltas.extend(self.view_cache.apply(update, stats))
        self._sync_engine()
        return MaintenanceReport(
            applied=applied,
            skipped_inadmissible=skipped,
            inserted=inserted,
            deleted=deleted,
            stats=stats,
            view_deltas=deltas,
        )

    # ------------------------------------------------------------------ #

    def answer(self, query: QueryLike, max_size: int | None = None) -> EngineAnswer:
        """Answer a CQ/UCQ from the maintained caches through the service."""
        return EngineAnswer.from_answer(
            self.service.query(query, max_size=max_size, backend="memory")
        )

    def baseline(self, query: QueryLike):
        return self.service.baseline(query, backend="memory")

    @property
    def view_cache_size(self) -> int:
        return self.view_cache.total_rows

    def verify_caches(self) -> bool:
        """Cross-check the maintained views and indices against recomputation."""
        if not self.view_cache.verify():
            return False
        rebuilt = MaintainedIndexSet(self.database, self.access_schema)
        for constraint in self.access_schema:
            if rebuilt._buckets[constraint] != self.index_set._buckets[constraint]:  # noqa: SLF001
                return False
        return True
