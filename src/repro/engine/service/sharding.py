"""Shard routing and the persistent worker pool for concurrent serving.

Two small pieces the sharded :class:`~repro.engine.service.QueryService`
composes:

* :class:`ShardRouter` — wraps :func:`repro.analysis.plan_shard_set` with the
  service's access schema and layout, turning a plan's per-fetch boundedness
  certificates (PR 6) into a static shard-set prediction.  Single-shard
  routable plans are served without fan-out; the prediction is checked
  against the shards execution actually touched
  (:attr:`repro.exec.iometer.IOMeter.shards_touched`) by the differential
  tests.
* :class:`ShardExecutor` — one lazily created, persistent
  ``ThreadPoolExecutor`` per service (fixing the executor-per-call churn the
  old ``query_many`` had) plus shard-affinity dispatch: work items routed to
  the same single shard run serially inside one submitted task, preserving
  per-shard locality, while fan-out and dynamic items get individual tasks.

This module deliberately touches the storage layer only through
:mod:`repro.storage.snapshots` (the lint gate in ``tools/lint_kernel.py``
enforces it): shard workers read pinned snapshots, never live relations.
"""

from __future__ import annotations

import threading
from concurrent.futures import Future, ThreadPoolExecutor
from typing import Callable, Sequence, TypeVar

from ...analysis.sharding import PlanShardSet, ShardLayoutLike, plan_shard_set
from ...core.access import AccessSchema
from ...core.plans import PlanNode

T = TypeVar("T")


class ShardRouter:
    """Static shard-set prediction for plans under one sharding layout."""

    def __init__(self, access_schema: AccessSchema, layout: ShardLayoutLike) -> None:
        self.access_schema = access_schema
        self.layout = layout

    @property
    def shard_count(self) -> int:
        return self.layout.shard_count

    def route(self, plan: PlanNode) -> PlanShardSet:
        """Derive which shards ``plan`` can touch, from its certificates."""
        return plan_shard_set(plan, self.access_schema, self.layout)

    def affinity(self, plan: PlanNode) -> int | None:
        """The single shard ``plan`` is routable to, or ``None``.

        ``None`` means the plan fans out (multiple static shards), has
        data-dependent keys, or touches only shard-neutral reference data —
        in each case there is no one shard to pin the work item to.
        """
        shard_set = self.route(plan)
        if not shard_set.single_shard:
            return None
        shards = shard_set.shards
        if not shards:
            return None
        (shard,) = shards
        return shard


class ShardExecutor:
    """A persistent thread pool with shard-affinity batch dispatch.

    The pool is created lazily on first use and reused for the lifetime of
    the owning service (``shutdown()`` is wired into ``QueryService.close``),
    so a ``query_many`` burst does not pay thread spawn/teardown per call.
    """

    def __init__(self, max_workers: int, thread_name_prefix: str = "repro-shard") -> None:
        if max_workers < 1:
            raise ValueError(f"max_workers must be >= 1, got {max_workers}")
        self.max_workers = max_workers
        self._thread_name_prefix = thread_name_prefix
        self._lock = threading.Lock()
        self._pool: ThreadPoolExecutor | None = None

    # ------------------------------------------------------------------ #

    @property
    def started(self) -> bool:
        """Has the underlying thread pool been created yet?"""
        return self._pool is not None

    def pool(self) -> ThreadPoolExecutor:
        with self._lock:
            if self._pool is None:
                self._pool = ThreadPoolExecutor(
                    max_workers=self.max_workers,
                    thread_name_prefix=self._thread_name_prefix,
                )
            return self._pool

    def submit(self, fn: Callable[[], T]) -> Future:
        return self.pool().submit(fn)

    def map_with_affinity(
        self,
        tasks: Sequence[Callable[[], T]],
        affinities: Sequence[int | None],
    ) -> list[T]:
        """Run ``tasks`` on the pool, results in input order.

        ``affinities[i]`` is the single shard task ``i`` is routed to, or
        ``None``.  Tasks sharing a shard are chained serially inside one
        submitted job (their index probes hit the same partition's hot
        buckets back-to-back); ``None``-affinity tasks run as individual
        jobs.  Exceptions propagate to the caller exactly as with a plain
        ``pool.map``.
        """
        if len(tasks) != len(affinities):
            raise ValueError("tasks and affinities must have equal length")
        if not tasks:
            return []
        by_shard: dict[int, list[int]] = {}
        loose: list[int] = []
        for index, shard in enumerate(affinities):
            if shard is None:
                loose.append(index)
            else:
                by_shard.setdefault(shard, []).append(index)

        pool = self.pool()
        results: list[T] = [None] * len(tasks)  # type: ignore[list-item]

        def run_batch(indices: list[int]) -> None:
            for index in indices:
                results[index] = tasks[index]()

        futures = [pool.submit(run_batch, indices) for indices in by_shard.values()]
        futures.extend(pool.submit(run_batch, [index]) for index in loose)
        for future in futures:
            future.result()
        return results

    def shutdown(self) -> None:
        with self._lock:
            pool, self._pool = self._pool, None
        if pool is not None:
            pool.shutdown(wait=True)
