"""The unified serving surface: :class:`QueryService`.

One object, one entry point.  ``QueryService.query`` accepts a CQ, a UCQ, an
FO query or a Datalog-style source string, plans it through a configurable
planner chain (see :mod:`.planners`), caches the planning outcome in an LRU
plan cache keyed by the query's canonical form (see :mod:`.cache`), executes
the plan on a selectable backend (see :mod:`.backends`) and falls back to the
full-scan baseline when no bounded plan exists — always reporting which path
was taken and how much data it touched.

Prepared queries (:meth:`QueryService.prepare` → :class:`PreparedQuery`)
support named constants (``:name`` in the textual syntax,
``Constant(Param("name"))`` programmatically): the query is planned once and
re-executed with different constant bindings without ever re-planning.

::

    service = QueryService(database, access_schema, views)
    answer = service.query("Q(m) :- movie(m, t, 'Universal', '2014')")
    prepared = service.prepare("Q(m) :- movie(m, t, :studio, '2014')")
    rows = prepared.execute(studio="Universal").rows
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, replace as dataclass_replace
from types import MappingProxyType
from typing import Collection, Iterable, Mapping, Sequence

from ...algebra.cq import ConjunctiveQuery
from ...algebra.fo import FOQuery
from ...algebra.parser import parse_query
from ...algebra.terms import Constant, Param, Variable, is_parameter
from ...algebra.fo import is_positive_existential, to_ucq
from ...algebra.ucq import UnionQuery
from ...algebra.views import View, ViewSet
from ...analysis import (
    BoundednessCounterexample,
    Diagnostic,
    Explanation,
    codegen_eligibility,
    fetch_certificates,
    lint_query,
    verify_plan,
)
from ...analysis.sharding import PlanShardSet
from ...core.access import AccessSchema
from ...core.bounded_evaluability import bounded_evaluability_report
from ...core.conformance import conforms_to
from ...core.element_queries import ElementQueryBudget
from ...core.plan_eval import (
    ExecutionResult,
    FetchProvider,
    bind_plan,
    plan_parameters,
)
from ...core.plans import FetchNode, PlanNode, UnionNode, ViewScan
from ...errors import (
    EvaluationError,
    PlanError,
    PlanStoreError,
    PlanVerificationError,
    QueryError,
    UnsupportedQueryError,
)
from ...exec.codegen import compile_plan_closure
from ...storage.deltas import DeltaStream
from ...storage.indexes import IndexSet
from ...storage.instance import Database
from ...storage.snapshots import ShardingLayout, SnapshotManager
from ...storage.statistics import statistics_fingerprint
from ...storage.updates import Update, UpdateBatch
from ..optimizer import estimate_plan_fetches
from .backends import ExecutionBackend, InMemoryBackend, SQLiteBackend, make_backend
from .cache import CachedPlan, LRUPlanCache, canonical_query_key
from .plan_store import PlanStore, StoredEntry
from .maintenance import (
    MaintenanceExplanation,
    MaintenanceReport,
    MaintenanceStats,
    ViewDelta,
    ViewMaintainer,
)
from .planners import (
    Planner,
    PlanningContext,
    Query,
    planner_signature,
    resolve_planners,
)
from .sharding import ShardExecutor, ShardRouter
from .stats import ServiceStats

QueryInput = str | ConjunctiveQuery | UnionQuery | FOQuery


@dataclass
class Answer:
    """Answer of :class:`QueryService.query` with full provenance.

    ``planner`` names the strategy that produced the plan (``None`` on the
    fallback path); ``backend`` names where the query ran; ``cache_hit`` is
    true when planning was skipped — served from the plan cache or from an
    already-planned :class:`PreparedQuery`; ``reason`` explains the outcome
    in either case — it is never silently empty.
    """

    rows: frozenset[tuple]
    used_bounded_plan: bool
    plan: PlanNode | None
    planner: str | None
    backend: str
    cache_hit: bool
    tuples_fetched: int
    tuples_scanned: int
    view_tuples_scanned: int
    elapsed_seconds: float
    reason: str = ""
    #: Which execution tier produced the rows: ``"interpreted"`` (the
    #: operator-tree kernel) or ``"compiled"`` (a codegen closure).  Both
    #: tiers are bit-identical in rows *and* in ``Dξ`` accounting; the tier
    #: only changes how fast the answer arrived.
    execution_tier: str = "interpreted"
    #: Sharded snapshot serving: the ids of the partitions the execution's
    #: index lookups actually probed (empty for unsharded services,
    #: fallback answers and reference-tier-only plans) and the service's
    #: shard count — ``shards_total - len(shards_touched)`` partitions were
    #: pruned for this answer.
    shards_touched: tuple[int, ...] = ()
    shards_total: int = 0

    def __len__(self) -> int:
        return len(self.rows)

    @property
    def data_accessed(self) -> int:
        """Tuples read from the underlying database (fetched or scanned)."""
        return self.tuples_fetched + self.tuples_scanned


def _query_parameter_names(query: Query) -> frozenset[str]:
    """Names of the :class:`Param` placeholders appearing in a query."""
    return frozenset(c.value.name for c in query.constants if is_parameter(c))


def _validate_bindings(
    declared: frozenset[str], given: Mapping[str, object], what: str
) -> None:
    """Reject missing or unknown parameter bindings with a uniform message."""
    missing = sorted(declared - set(given))
    if missing:
        raise QueryError(f"{what} is missing bindings for parameters {missing}")
    unknown = sorted(set(given) - declared)
    if unknown:
        raise QueryError(
            f"{what} has no parameters named {unknown}; declared parameters "
            f"are {sorted(declared)}"
        )


def _bind_query(query: Query, params: Mapping[str, object]) -> Query:
    """Substitute concrete values for the parameters of a query."""
    mapping = {Constant(Param(name)): Constant(value) for name, value in params.items()}
    if isinstance(query, UnionQuery):
        return UnionQuery(
            tuple(d.substitute(mapping) for d in query.disjuncts), name=query.name
        )
    return query.substitute(mapping)


@dataclass
class PreparedQuery:
    """A query planned once, executable many times with different constants.

    Obtained from :meth:`QueryService.prepare`.  ``parameters`` lists the
    named placeholders that must be bound on every :meth:`execute` call; a
    query without parameters simply re-executes its cached plan.
    """

    service: "QueryService"
    query: Query
    head: tuple[Variable, ...] | None
    entry: CachedPlan
    backend: str | None
    parameters: frozenset[str]
    planned_from_cache: bool = False
    _executed: bool = False

    @property
    def plan(self) -> PlanNode | None:
        return self.entry.plan

    @property
    def is_bounded(self) -> bool:
        return self.entry.found

    def execute(
        self,
        backend: str | None = None,
        *,
        params: Mapping[str, object] | None = None,
        **kwargs: object,
    ) -> Answer:
        """Execute the prepared plan with values bound to its placeholders.

        Bindings are given as keyword arguments (``prepared.execute(studio=
        "Universal")``) or — for parameter names that collide with this
        method's own keywords, such as ``backend`` — through the explicit
        ``params`` mapping.  The two may be mixed but not overlap.
        """
        bindings = dict(params or {})
        overlap = sorted(set(bindings) & set(kwargs))
        if overlap:
            raise QueryError(f"parameters {overlap} bound both in params= and as keywords")
        bindings.update(kwargs)
        _validate_bindings(self.parameters, bindings, "prepared query")
        # The first execution inherits the prepare-time cache outcome (the
        # planning work happened then); every later one genuinely skips
        # planning, so the stats report it as a hit.
        cache_hit = self.planned_from_cache or self._executed
        self._executed = True
        return self.service._execute(
            self.query,
            self.head,
            self.entry,
            cache_hit=cache_hit,
            backend_name=backend or self.backend,
            started=time.perf_counter(),
            params=bindings or None,
        )


class QueryService:
    """One entry point for answering queries over a database with views.

    Construction materialises the views, builds the access-constraint indices
    and sets up the planner chain, the plan cache and the execution backends;
    afterwards :meth:`query`, :meth:`prepare` and :meth:`query_many` serve
    any mix of CQ/UCQ/FO/string queries, and :meth:`apply` is the matching
    write path: the service subscribes to the database's delta stream, so
    every committed transaction incrementally maintains the views (compiled
    delta plans), evicts exactly the dependent plan-cache entries and feeds
    the same delta to the backends.

    Parameters
    ----------
    planners:
        The fallback chain — planner names (``"heuristic"``, ``"exact"``,
        ``"topped"`` or anything registered via
        :func:`~repro.engine.service.planners.register_planner`) and/or
        ready strategy objects, tried in order.  Defaults to
        ``("heuristic", "topped")``.
    backend:
        Default execution backend, ``"memory"`` or ``"sqlite"``; overridable
        per call.
    plan_cache_size:
        Capacity of the LRU plan cache; ``0`` disables plan caching.
    codegen:
        Enable the codegen execution tier: cached plans that keep getting
        executed are compiled into specialized closures (bit-identical rows
        and ``Dξ`` accounting, several times faster).  Only backends
        exposing ``execute_compiled`` take the fast path; others keep
        interpreting.
    codegen_warmup:
        How many interpreted executions a cached plan must see before it is
        compiled.  ``0`` compiles on first execution; the default leaves
        one-shot queries on the (compile-free) interpreted tier.
    shards:
        Snapshot-isolated serving with hash sharding.  Any integer ``>= 1``
        pins every read to an immutable MVCC snapshot of the database
        (:mod:`repro.storage.snapshots`): writers build the next version
        copy-on-write and publish it atomically, so concurrent readers never
        observe a half-applied transaction.  With ``shards > 1`` the
        access-constraint indexes are additionally hash-partitioned on their
        key columns; the router prunes partitions statically from the plan's
        boundedness certificates, and ``explain()``/:attr:`Answer
        .shards_touched` report the pruning.  ``None`` disables snapshot
        serving entirely — reads go straight to the live indices (the
        pre-snapshot behaviour).
    retain_plans_on_write:
        Keep plan-cache entries (including compiled closures, which late-bind
        the data) across writes instead of the default dependency-tracked
        eviction.  Plans are data-independent, so retained entries stay
        correct; the flag exists for write-heavy serving where re-planning
        after every transaction dominates latency.
    plan_store:
        A :class:`~repro.engine.service.plan_store.PlanStore` (or a path
        string) persisting planning outcomes across restarts: loaded here —
        entries whose statistics fingerprint and planner-chain signature
        still match are replayed into the plan cache (plans previously on
        the compiled tier are eagerly recompiled, so the first
        post-restart execution already runs compiled) — and written back by
        :meth:`close`.  A corrupt store file is ignored (the typed
        :class:`~repro.errors.PlanStoreError` is recorded on
        ``plan_store_error``) and the service plans from scratch.
    replan_factor:
        Adaptive re-planning threshold: a warm execution whose actual Dξ
        misses the cost model's estimate by more than this factor (either
        direction) triggers re-planning with per-relation corrections and
        an atomic cache-entry swap.  ``max_replans`` bounds how often one
        entry may be replaced (runaway oscillation guard).
    """

    def __init__(
        self,
        database: Database,
        access_schema: AccessSchema,
        views: ViewSet | Sequence[View] = (),
        *,
        planners: Sequence[str | Planner] | None = None,
        backend: str = "memory",
        plan_cache_size: int = 128,
        check_constraints: bool = True,
        budget: ElementQueryBudget | None = None,
        inner_size_cutoff: int = 2,
        verify_plans: bool = False,
        codegen: bool = True,
        codegen_warmup: int = 2,
        shards: int | None = 1,
        retain_plans_on_write: bool = False,
        plan_store: PlanStore | str | None = None,
        replan_factor: float = 10.0,
        max_replans: int = 3,
    ) -> None:
        self.database = database
        self.access_schema = access_schema
        self.views = views if isinstance(views, ViewSet) else ViewSet(views)
        self._budget = budget
        self.inner_size_cutoff = inner_size_cutoff
        # Debug mode: statically verify every freshly planned physical plan
        # (schema bookkeeping, access-constraint conformance, boundedness)
        # before it enters the plan cache; see repro.analysis.verify_plan.
        self.verify_plans = verify_plans
        self.codegen = codegen
        self.codegen_warmup = codegen_warmup
        # Serialises warmup counting and compilation: two threads hitting the
        # same cached entry must not compile it twice (or race the counter).
        self._codegen_lock = threading.Lock()
        access_schema.validate(database.schema)
        if check_constraints and not database.satisfies(access_schema):
            violations = database.violations(access_schema)
            raise EvaluationError(
                "database does not satisfy the access schema: " + "; ".join(violations[:5])
            )
        self._indexes: FetchProvider = IndexSet(database, access_schema)
        self._known_relations = frozenset(r.name for r in database.schema)
        # Snapshot-isolated serving (the default): reads are served from
        # immutable snapshot versions advanced by Database.apply, not from
        # the live indices.  self._indexes stays alive regardless — it is
        # the write path's admissibility surface.
        self.retain_plans_on_write = retain_plans_on_write
        self._snapshots: SnapshotManager | None = None
        self._router: ShardRouter | None = None
        if shards is not None:
            layout = ShardingLayout.derive(database.schema, access_schema, shards)
            self._snapshots = database.enable_snapshots(layout, access_schema)
            self._router = ShardRouter(access_schema, layout)
        # The persistent query_many worker pool: created lazily on the first
        # parallel batch, reused for the service's lifetime, released by
        # close().
        self._pool_lock = threading.Lock()
        self._shard_executor: ShardExecutor | None = None
        # The write path rides the same tier switch: compiled maintenance
        # kernels after the same warmup, gated by the delta-program verifier.
        self.maintainer = ViewMaintainer(
            self.views, database, codegen=codegen, codegen_warmup=codegen_warmup
        )
        self._view_cache = self.maintainer.snapshot()
        self.planners = resolve_planners(planners)
        # Warm-hit fast paths (see plan()/_execute): id-keyed query
        # fingerprints and the default planner chain's signature, computed
        # once instead of per call.
        self._fingerprints: dict[int, tuple[Query, tuple, frozenset[str]]] = {}
        self._chain_signature: tuple[object, tuple] | None = None
        self.plan_cache = LRUPlanCache(plan_cache_size)
        self.stats = ServiceStats()
        self.default_backend = backend
        self._backends: dict[str, ExecutionBackend] = {}
        self._backend_lock = threading.Lock()
        self._default_backend_obj: ExecutionBackend | None = None
        self._default_backend_obj = self._backend(backend)  # fail fast on unknown names
        # Maintenance accounting of the most recent delta notification,
        # consumed by apply() to build its report.
        self._last_maintenance: tuple[MaintenanceStats, list[ViewDelta]] | None = None
        # Adaptive re-planning (optimizer v2): threshold, per-entry cap and
        # a lock serialising the replace itself (the cache's replace() is
        # already atomic; the lock keeps two threads from both planning).
        self.replan_factor = replan_factor
        self.max_replans = max_replans
        self._replan_lock = threading.Lock()
        # Persistent plan store: load surviving entries before serving
        # starts, write the cache back on close().
        self.plan_store: PlanStore | None = (
            PlanStore(plan_store) if isinstance(plan_store, str) else plan_store
        )
        self.plan_store_error: str = ""
        self._load_plan_store()
        # The service is a transaction-level delta observer: ANY writer that
        # goes through Database.apply (QueryService.apply, UpdateBatch.apply_to,
        # another service on the same database) keeps this service's views,
        # plan cache and backends fresh.
        database.subscribe(self)

    # ------------------------------------------------------------------ #
    # State: views, indices, backends
    # ------------------------------------------------------------------ #

    @property
    def context(self) -> PlanningContext:
        """The planning context, rebuilt from the current settings on each read.

        ``budget`` and ``inner_size_cutoff`` stay live: mutating them affects
        the next planning run (matching the v1.0 engine, which read them per
        call) instead of being frozen at construction.  ``statistics`` reads
        the storage layer's cached per-relation statistics, so cost-based
        planner decisions track the current data.
        """
        return PlanningContext(
            schema=self.database.schema,
            views=self.views,
            access_schema=self.access_schema,
            budget=self._budget,
            inner_size_cutoff=self.inner_size_cutoff,
            statistics=self.database.statistics(),
        )

    @property
    def budget(self) -> ElementQueryBudget | None:
        """Planning budget; assignment clears the plan cache (cached outcomes
        may depend on the budget under which they were planned)."""
        return self._budget

    @budget.setter
    def budget(self, budget: ElementQueryBudget | None) -> None:
        self._budget = budget
        self.plan_cache.clear()

    @property
    def view_cache(self) -> Mapping[str, frozenset[tuple]]:
        """The materialised view rows, keyed by view name (read-only mapping).

        Execution backends hold their own reference to these rows, so
        in-place mutation could silently serve stale results — the returned
        proxy therefore rejects item assignment.  To swap in new rows, assign
        a whole mapping (routed through :meth:`refresh_data`) or call
        :meth:`refresh_data` directly.
        """
        return MappingProxyType(self._view_cache)

    @view_cache.setter
    def view_cache(self, cache: Mapping[str, Collection[tuple]]) -> None:
        self.refresh_data(view_cache=cache)

    @property
    def indexes(self) -> FetchProvider:
        """The fetch provider serving index lookups for access constraints.

        Assignment routes through :meth:`refresh_data` so the execution
        backends pick the new provider up.
        """
        return self._indexes

    @indexes.setter
    def indexes(self, provider: FetchProvider) -> None:
        self.refresh_data(provider=provider)

    @property
    def view_cache_size(self) -> int:
        """Total number of cached view tuples (|V(D)|)."""
        return sum(len(rows) for rows in self._view_cache.values())

    @property
    def shard_count(self) -> int:
        """Partitions under sharded snapshot serving (``0`` when disabled)."""
        return self._router.shard_count if self._router is not None else 0

    def _serving_provider(self) -> FetchProvider:
        """The fetch provider reads execute against: the current snapshot
        under snapshot serving, the live indices otherwise."""
        snapshots = self._snapshots
        if snapshots is not None:
            return snapshots.reader()
        return self._indexes

    def _sync_serving(self) -> None:
        """Catch out-of-band mutations before serving from a snapshot.

        Writes through :meth:`Database.apply` advance the snapshot inside the
        transaction; direct ``Relation.insert``/``delete`` calls bypass the
        delta stream, so the snapshot manager compares per-relation mutation
        counters and rebuilds the drifted relations here.  The check is two
        integer loads per relation on the (overwhelmingly common) clean path.
        """
        snapshots = self._snapshots
        if snapshots is not None and snapshots.stale():
            snapshots.refresh()
            self._refresh_memory_backends()

    def _refresh_memory_backends(self) -> None:
        """Point every in-memory backend at the current serving state."""
        with self._backend_lock:
            backends = list(self._backends.values())
        provider = self._serving_provider()
        for backend in backends:
            if isinstance(backend, InMemoryBackend):
                backend.refresh(provider=provider, view_cache=self._view_cache)

    def _backend(self, name: str | None) -> ExecutionBackend:
        name = name or self.default_backend
        if name == self.default_backend and self._default_backend_obj is not None:
            # Backends are refreshed in place (refresh/invalidate/apply_delta)
            # and never replaced, so the cached reference stays valid; this
            # skips a lock acquisition on every warm query.
            return self._default_backend_obj
        with self._backend_lock:
            backend = self._backends.get(name)
            if backend is None:
                backend = make_backend(
                    name,
                    self.database,
                    self.access_schema,
                    self.views,
                    self._serving_provider(),
                    self._view_cache,
                )
                self._backends[name] = backend
        return backend

    def refresh_data(
        self,
        provider: FetchProvider | None = None,
        view_cache: Mapping[str, Collection[tuple]] | None = None,
    ) -> None:
        """Tell the service the underlying data (or its caches) changed.

        ``provider`` swaps in a different fetch provider, ``view_cache``
        swaps in externally computed view rows.  Swapping only the execution
        ``provider`` (same database, same views) keeps the plan cache and the
        prepared queries' bound plans: plans are data-independent, and the
        cache key never mentions the provider.  Swapping view rows wholesale
        clears the plan cache conservatively — the scope of such an external
        change is unknown.  Writes that go through :meth:`apply` (or any
        :meth:`repro.storage.instance.Database.apply` transaction) never take
        this path: they use dependency-tracked invalidation, evicting exactly
        the cached plans that read a changed relation or view.

        Handing in an explicit ``provider`` turns snapshot serving off: the
        caller is taking over where reads come from, and pinning snapshots of
        a provider the service does not understand is impossible.
        """
        if provider is not None:
            self._snapshots = None
            self._router = None
        if view_cache is not None:
            self.plan_cache.clear()
        # Ordering invariant vs. lazy backend creation: the new state is
        # published to self._indexes/_view_cache BEFORE the backend list is
        # snapshotted under _backend_lock, and _backend() reads that state
        # and inserts under the same lock — so a concurrently created
        # backend is either in the snapshot (and refreshed below) or was
        # built from the already-published new state.  Keep this order.
        if provider is not None:
            self._indexes = provider
        if view_cache is not None:
            # Maintenance snapshots arrive executor-ready (frozensets of
            # tuples); avoid re-copying them on every update batch.
            self._view_cache = {
                name: rows if isinstance(rows, frozenset) else frozenset(map(tuple, rows))
                for name, rows in view_cache.items()
            }
        with self._backend_lock:
            backends = list(self._backends.values())
        serving = self._serving_provider()
        for backend in backends:
            if isinstance(backend, InMemoryBackend):
                backend.refresh(provider=serving, view_cache=self._view_cache)
            elif isinstance(backend, SQLiteBackend):
                backend.invalidate(view_cache=self._view_cache)

    # ------------------------------------------------------------------ #
    # The write path: first-class updates through the delta stream
    # ------------------------------------------------------------------ #

    def apply(
        self,
        batch: UpdateBatch | Iterable[Update],
        *,
        enforce_admissible: bool = True,
    ) -> MaintenanceReport:
        """Apply a batch of single-tuple updates as one transaction.

        The first-class write API.  With ``enforce_admissible`` (the
        default), insertions that would violate an access constraint are
        skipped and counted in the report — the check inspects only the
        index buckets the update touches, keeping ``D |= A`` with bounded
        work.  Applying the admitted updates maintains, in order: the
        relations' caches, secondary indexes and statistics plus every
        access-constraint index (per-row observers); then, via the committed
        :class:`~repro.storage.deltas.DeltaStream`, the materialised views
        (compiled delta plans — counting where sound, DRed otherwise), the
        plan cache (dependency-tracked eviction: only plans reading a
        changed relation or view are dropped) and the execution backends
        (the SQLite backend replays the same delta instead of reloading).
        """
        updates = batch if isinstance(batch, UpdateBatch) else UpdateBatch(batch)
        updates.validate(self.database)
        self._last_maintenance = None
        stream = self.database.apply(
            updates, admit=self._admissible if enforce_admissible else None
        )
        maintenance = self._last_maintenance
        self._last_maintenance = None
        if maintenance is not None:
            stats, deltas = maintenance
        else:  # nothing changed: the observer was never notified
            stats, deltas = MaintenanceStats(), []
        return MaintenanceReport(
            applied=stream.applied,
            skipped_inadmissible=stream.skipped_inadmissible,
            inserted=stream.applied_insertions,
            deleted=stream.applied_deletions,
            stats=stats,
            view_deltas=deltas,
        )

    def on_delta(self, stream: DeltaStream) -> None:
        """Delta-stream observer hook: fold one committed transaction in.

        Called by :meth:`repro.storage.instance.Database.apply` after the
        storage layer reached the post-transaction state — whether the write
        came through :meth:`apply` or from another writer sharing the
        database.
        """
        stats = MaintenanceStats()
        deltas = self.maintainer.apply_stream(stream, stats)
        self.stats.record_maintenance(stats)
        if not self.retain_plans_on_write:
            touched = set(stream.touched)
            touched.update(delta.view for delta in deltas)
            self.plan_cache.invalidate(touched)
        # else: plans (and compiled closures) are data-independent — they
        # late-bind the provider and view cache per execution, so retained
        # entries keep answering correctly against the refreshed state.
        if deltas:
            self._view_cache = self.maintainer.snapshot()
        snapshots = self._snapshots
        with self._backend_lock:
            backends = list(self._backends.values())
        for backend in backends:
            if isinstance(backend, InMemoryBackend):
                if snapshots is not None:
                    # Database.apply advanced the snapshot manager before
                    # notifying observers, so reader() is already the
                    # post-transaction version: hand it to the backend.
                    backend.refresh(
                        provider=snapshots.reader(), view_cache=self._view_cache
                    )
                elif deltas:
                    # Live-provider serving reads storage directly; only
                    # changed view rows require a new executor snapshot.
                    backend.refresh(provider=self._indexes, view_cache=self._view_cache)
            elif isinstance(backend, SQLiteBackend):
                backend.apply_delta(stream, deltas)
        self._last_maintenance = (stats, deltas)

    def _admissible(self, update: Update) -> bool:
        """Would applying ``update`` keep ``D |= A``?  Bounded bucket-local work."""
        check = getattr(self._indexes, "admissible", None)
        if callable(check):
            return check(update)
        # Custom fetch providers without an admissibility surface: check
        # against the relation's secondary index — still one bucket per
        # constraint, never a relation scan.
        if not update.is_insertion:
            return True
        relation = self.database.relation(update.relation)
        schema = relation.schema
        row = tuple(update.row)
        for constraint in self.access_schema.for_relation(update.relation):
            x_positions = schema.positions(constraint.x)
            y_positions = schema.positions(constraint.y)
            key = tuple(row[p] for p in x_positions)
            bucket = relation.index_on(x_positions).get(key, ())
            values = {tuple(r[p] for p in y_positions) for r in bucket}
            values.add(tuple(row[p] for p in y_positions))
            if len(values) > constraint.bound:
                return False
        return True

    # ------------------------------------------------------------------ #
    # Planning
    # ------------------------------------------------------------------ #

    @staticmethod
    def _resolve(query: QueryInput) -> Query:
        if isinstance(query, str):
            return parse_query(query)
        if not isinstance(query, (ConjunctiveQuery, UnionQuery, FOQuery)):
            raise QueryError(
                f"cannot answer a query of type {type(query).__name__}; expected "
                "a CQ, UCQ, FO query or a source string"
            )
        return query

    def plan(
        self,
        query: QueryInput,
        *,
        head: Sequence[Variable] | None = None,
        max_size: int | None = None,
        planners: Sequence[str | Planner] | None = None,
        use_cache: bool = True,
    ) -> tuple[CachedPlan, bool]:
        """Plan a query through the chain; returns (outcome, was_cache_hit)."""
        resolved = self._resolve(query)
        memo = self._fingerprints.get(id(resolved))
        if memo is not None and memo[0] is resolved:
            # Same query object as a previous call: its canonical form is
            # known and it already passed the unknown-relation check —
            # repeated execution of a held query skips both.
            canonical = memo[1]
        else:
            unknown = sorted(resolved.relation_names - self._known_relations)
            if unknown:
                hint = ""
                if any(name in self.views for name in unknown):
                    hint = (
                        "; views are scanned by plans automatically and cannot be "
                        "queried as atoms — write the query over the base relations"
                    )
                raise QueryError(
                    f"query references unknown relations {unknown}{hint}"
                )
            canonical = canonical_query_key(resolved)
            if len(self._fingerprints) >= 1024:
                self._fingerprints.clear()
            self._fingerprints[id(resolved)] = (
                resolved,
                canonical,
                _query_parameter_names(resolved),
            )
        if planners is None:
            chain = self.planners
            chain_signature = self._default_chain_signature()
        else:
            chain = resolve_planners(planners)
            chain_signature = tuple(planner_signature(p) for p in chain)
        key = (
            canonical,
            chain_signature,
            tuple(v.name for v in head) if head is not None else None,
            max_size,
            self.inner_size_cutoff,
        )
        if use_cache:
            cached = self.plan_cache.get(key)
            if cached is not None:
                if cached.restored:
                    # First hit on an entry replayed from the persistent
                    # plan store: planning (and possibly compilation) was
                    # skipped thanks to the store — count it once.
                    cached.restored = False
                    self.stats.record_plan_store_hit()
                return cached, True
        entry = self._run_chain(resolved, head, max_size, chain, corrections=None)
        entry.cache_key = key if use_cache else None
        if self.verify_plans and entry.plan is not None:
            self._verify_entry(resolved, entry.plan, head)
        if use_cache:
            self.plan_cache.put(key, entry)
        return entry, False

    def _default_chain_signature(self) -> tuple:
        """The default planner chain's cache-key signature, computed once."""
        chain = self.planners
        cached = self._chain_signature
        if cached is None or cached[0] is not chain:
            cached = (chain, tuple(planner_signature(p) for p in chain))
            self._chain_signature = cached
        return cached[1]

    def _run_chain(
        self,
        resolved: Query,
        head: Sequence[Variable] | None,
        max_size: int | None,
        chain: Sequence[Planner],
        corrections: Mapping[str, float] | None,
    ) -> CachedPlan:
        """Run the planner chain once and build the cache entry.

        The planning context — including the snapshot-consistent statistics
        read — is built once for the whole chain, so every planner (and the
        post-planning cardinality estimate below) prices the same data.
        ``corrections`` is non-None only on the adaptive re-planning path.
        """
        context = self.context
        if corrections:
            context = dataclass_replace(context, corrections=dict(corrections))
        reasons: list[str] = []
        entry: CachedPlan | None = None
        applicable = False
        for planner in chain:
            if not planner.can_plan(resolved):
                continue
            applicable = True
            result = planner.plan(resolved, head, max_size, context)
            if result.found:
                entry = CachedPlan(
                    plan=result.plan,
                    planner=result.planner,
                    reason=f"bounded plan produced by planner {result.planner!r}",
                    parameters=plan_parameters(result.plan),
                    dependencies=self._dependencies_of(resolved, result.plan),
                    order_report=result.order_report,
                )
                break
            reasons.append(f"{planner.name}: {result.reason or 'no bounded plan found'}")
        if entry is None:
            if not applicable:
                reasons.append(
                    "no planner in the chain "
                    f"({', '.join(p.name for p in chain) or 'empty'}) accepts "
                    f"{type(resolved).__name__} queries"
                )
            entry = CachedPlan(
                plan=None,
                planner=None,
                reason="; ".join(reasons),
                dependencies=self._dependencies_of(resolved, None),
            )
        if entry.plan is not None and context.statistics is not None:
            # Record the cost model's prediction next to the plan: the warm
            # path compares it against the IOMeter's actual Dξ and triggers
            # adaptive re-planning on a >replan_factor miss.
            estimate = estimate_plan_fetches(
                entry.plan,
                context.statistics,
                context.schema,
                view_sizes={
                    name: len(rows) for name, rows in self._view_cache.items()
                },
                corrections=corrections,
            )
            entry.estimated_fetches = estimate.total_fetched
            entry.fetch_estimates = estimate.fetches
        return entry

    def _verify_entry(
        self, resolved: Query, plan: PlanNode, head: Sequence[Variable] | None
    ) -> None:
        """``verify_plans=True`` hook: statically check a fresh plan before
        it is cached, raising :class:`PlanVerificationError` on findings."""
        report = verify_plan(
            plan,
            self.database.schema,
            views=self.views,
            access_schema=self.access_schema,
            budget=self._budget,
            expected_arity=self._head_arity(resolved, head),
            subject=self._query_name(resolved),
        )
        if not report.ok:
            raise PlanVerificationError(
                f"plan verification failed for {self._query_name(resolved)!r}: "
                + "; ".join(str(d) for d in report.errors),
                diagnostics=tuple(report.errors),
                query_name=self._query_name(resolved),
            )

    def _compile_entry(
        self, resolved: Query, head: Sequence[Variable] | None, entry: CachedPlan
    ) -> None:
        """Try to compile a warmed-up cache entry to a specialized closure.

        The gate is :func:`repro.analysis.codegen_eligibility` — the full
        plan-verifier discipline, because the closure compiler bypasses the
        interpreted operator constructors and their invariant checks.  A
        refusal (or a compile failure) marks the entry ``"ineligible"`` so
        the hot path never retries it; the plan simply keeps interpreting.
        Called with :attr:`_codegen_lock` held.
        """
        plan = entry.plan
        assert plan is not None
        report = codegen_eligibility(
            plan,
            self.database.schema,
            views=self.views,
            access_schema=self.access_schema,
            budget=self._budget,
            expected_arity=self._head_arity(resolved, head),
            subject=self._query_name(resolved),
        )
        if not report.ok:
            entry.codegen_state = "ineligible"
            entry.codegen_reason = "; ".join(str(d) for d in report.errors)
            return
        try:
            entry.compiled = compile_plan_closure(plan, self.access_schema)
        except (PlanError, UnsupportedQueryError) as exc:
            entry.codegen_state = "ineligible"
            entry.codegen_reason = f"closure compilation failed: {exc}"
            return
        entry.codegen_state = "compiled"
        entry.codegen_reason = ""

    # ------------------------------------------------------------------ #
    # Adaptive re-planning (optimizer v2)
    # ------------------------------------------------------------------ #

    def _observe_execution(
        self,
        resolved: Query,
        head: tuple[Variable, ...] | None,
        entry: CachedPlan,
        cache_hit: bool,
        stats: object,
    ) -> None:
        """Fold one execution's actual Dξ into the entry; re-plan on a miss.

        Only *warm* executions can trigger re-planning — a cold one just ran
        the planner against the same statistics the estimate came from, so a
        miss there is a model error re-planning cannot fix.  Both directions
        count: an actual more than ``replan_factor`` times the estimate
        means the plan is fetching far more than the model priced (the
        classic misordered-join signature), an actual that far *below* a
        non-trivial estimate means the model walked the plan into the
        pessimistic corner and a cheaper order likely exists.  The observed
        per-relation actuals become multiplicative corrections for the
        re-planning run (Leis et al., VLDB 2015), and the replacement entry
        swaps in atomically — racing readers keep the retired plan for the
        execution they already started, which stays correct (both plans
        answer the same query).
        """
        actual = int(getattr(stats, "tuples_fetched", 0))
        per_relation = dict(getattr(stats, "per_relation", {}) or {})
        entry.actual_fetches = actual
        entry.actual_per_relation = per_relation
        if not cache_hit or entry.estimated_fetches is None:
            return
        if entry.cache_key is None or entry.replans >= self.max_replans:
            return
        estimated = max(float(entry.estimated_fetches), 1.0)
        observed = float(actual)
        overshoot = observed > estimated * self.replan_factor
        undershoot = (
            estimated >= 100.0
            and observed >= 1.0
            and observed * self.replan_factor < estimated
        )
        if not overshoot and not undershoot:
            return
        direction = "over" if overshoot else "under"
        reason = (
            f"actual Dξ {actual} vs estimated {entry.estimated_fetches:.1f} "
            f"({direction}shot the {self.replan_factor:g}x re-plan threshold)"
        )
        self._replan(resolved, head, entry, reason, per_relation)

    def _replan(
        self,
        resolved: Query,
        head: tuple[Variable, ...] | None,
        entry: CachedPlan,
        reason: str,
        per_relation: Mapping[str, int],
    ) -> None:
        """Re-run the default chain with observed corrections, swap the entry."""
        key = entry.cache_key
        assert key is not None and entry.plan is not None
        if len(key) < 4 or key[1] != self._default_chain_signature():
            # Planned under an explicit per-call chain whose planner objects
            # are gone; re-planning would change which strategies answer.
            return
        # Corrections are pure model-error multipliers: actual Dξ over what
        # the model predicts for the *executed* plan under the *current*
        # statistics.  Re-pricing the old plan here (rather than reusing the
        # plan-time estimate) keeps data growth out of the multiplier — the
        # fresh statistics already carry it, and folding it in twice would
        # overshoot the corrected model into oscillation.
        current = estimate_plan_fetches(
            entry.plan,
            self.database.statistics(),
            self.database.schema,
            view_sizes={name: len(rows) for name, rows in self._view_cache.items()},
        )
        estimated_by_relation: dict[str, float] = {}
        for fetch in current.fetches:
            estimated_by_relation[fetch.relation] = (
                estimated_by_relation.get(fetch.relation, 0.0) + fetch.fetched
            )
        corrections = {
            relation: max(float(count), 1.0)
            / max(estimated_by_relation.get(relation, 0.0), 1.0)
            for relation, count in per_relation.items()
        }
        with self._replan_lock:
            if entry.replans >= self.max_replans:
                return
            max_size = key[3] if len(key) > 3 else None
            fresh = self._run_chain(
                resolved, head, max_size, self.planners, corrections
            )
            if fresh.plan is None:
                return  # the corrected model found nothing better to swap in
            if self.verify_plans:
                self._verify_entry(resolved, fresh.plan, head)
            fresh.cache_key = key
            fresh.replans = entry.replans + 1
            fresh.replan_reason = reason
            if self.plan_cache.replace(key, entry, fresh):
                self.stats.record_replan()

    # ------------------------------------------------------------------ #
    # Persistent plan store
    # ------------------------------------------------------------------ #

    def _load_plan_store(self) -> None:
        """Replay surviving stored outcomes into the plan cache at startup.

        The store itself rejects stale payloads (statistics fingerprint or
        chain-signature mismatch → no entries); a damaged file is recorded
        on :attr:`plan_store_error` and otherwise ignored — a cache must
        never stop the service from starting.  Entries that were on the
        compiled tier when saved are recompiled eagerly, so the first
        post-restart execution already runs the compiled closure.
        """
        store = self.plan_store
        if store is None:
            return
        fingerprint = statistics_fingerprint(self.database.statistics())
        try:
            stored = store.load(fingerprint, self._default_chain_signature())
        except PlanStoreError as error:
            self.plan_store_error = str(error)
            return
        for record in stored:
            entry = CachedPlan(
                plan=record.plan,
                planner=record.planner,
                reason=record.reason,
                parameters=frozenset(record.parameters),
                dependencies=frozenset(record.dependencies),
                executions=record.executions,
                codegen_state=(
                    record.codegen_state
                    if record.codegen_state != "compiled"
                    else "pending"
                ),
                codegen_reason=record.codegen_reason,
                estimated_fetches=record.estimated_fetches,
                fetch_estimates=tuple(record.fetch_estimates),
                replans=record.replans,
                replan_reason=record.replan_reason,
                order_report=record.order_report,
                cache_key=tuple(record.cache_key),
                restored=True,
            )
            if record.codegen_state == "compiled" and self.codegen:
                self._recompile_restored(entry)
            self.plan_cache.put(tuple(record.cache_key), entry)

    def _recompile_restored(self, entry: CachedPlan) -> None:
        """Rebuild the compiled closure of a restored formerly-hot entry.

        Closures are never persisted (they close over runtime objects); the
        stored ``codegen_state`` says this plan already passed eligibility
        once, but the gate runs again — the store could have been written
        under different analysis settings.
        """
        plan = entry.plan
        if plan is None:
            return
        report = codegen_eligibility(
            plan,
            self.database.schema,
            views=self.views,
            access_schema=self.access_schema,
            budget=self._budget,
            expected_arity=len(plan.attributes),
        )
        if not report.ok:
            entry.codegen_state = "ineligible"
            entry.codegen_reason = "; ".join(str(d) for d in report.errors)
            return
        try:
            entry.compiled = compile_plan_closure(plan, self.access_schema)
        except (PlanError, UnsupportedQueryError) as exc:
            entry.codegen_state = "ineligible"
            entry.codegen_reason = f"closure compilation failed: {exc}"
            return
        entry.codegen_state = "compiled"
        entry.codegen_reason = ""

    def _save_plan_store(self) -> None:
        """Write the found planning outcomes back to the store (on close)."""
        store = self.plan_store
        if store is None:
            return
        chain_signature = self._default_chain_signature()
        records: list[StoredEntry] = []
        for key, entry in self.plan_cache.entries():
            if entry.plan is None:
                continue  # negative outcomes are cheap to rediscover
            if len(key) < 2 or key[1] != chain_signature:
                continue  # planned under an explicit per-call chain
            records.append(
                StoredEntry(
                    cache_key=key,
                    plan=entry.plan,
                    planner=entry.planner,
                    reason=entry.reason,
                    parameters=entry.parameters,
                    dependencies=entry.dependencies,
                    executions=entry.executions,
                    codegen_state=entry.codegen_state,
                    codegen_reason=entry.codegen_reason,
                    estimated_fetches=entry.estimated_fetches,
                    fetch_estimates=tuple(entry.fetch_estimates),
                    replans=entry.replans,
                    replan_reason=entry.replan_reason,
                    order_report=entry.order_report,
                )
            )
        fingerprint = statistics_fingerprint(self.database.statistics())
        try:
            store.save(fingerprint, chain_signature, records)
        except OSError as error:
            self.plan_store_error = str(error)

    @staticmethod
    def _query_name(resolved: Query) -> str:
        name = getattr(resolved, "name", None)
        return name if isinstance(name, str) else type(resolved).__name__

    @staticmethod
    def _head_arity(resolved: Query, head: Sequence[Variable] | None) -> int:
        if head is not None:
            return len(head)
        if isinstance(resolved, (ConjunctiveQuery, UnionQuery)):
            return resolved.head_arity
        return len(resolved.free_variables)

    def _dependencies_of(
        self, resolved: Query, plan: PlanNode | None
    ) -> frozenset[str]:
        """Relations and views a planning outcome depends on.

        The relations the query mentions (planning consulted their
        statistics, and the fallback path scans them), plus — for a found
        plan — the relations it fetches and the views it scans together with
        each view's base relations (the view rows change when those do).
        """
        dependencies = set(resolved.relation_names)
        if plan is not None:
            for node in plan.iter_nodes():
                if isinstance(node, FetchNode):
                    dependencies.add(node.relation)
                elif isinstance(node, ViewScan):
                    dependencies.add(node.view_name)
                    if node.view_name in self.views:
                        view = self.views.view(node.view_name)
                        dependencies |= view.definition.relation_names
        return frozenset(dependencies)

    def explain(
        self,
        query: QueryInput,
        *,
        head: Sequence[Variable] | None = None,
        max_size: int | None = None,
        planners: Sequence[str | Planner] | None = None,
    ) -> Explanation:
        """Statically diagnose a query: plan, certificates, lints.

        Plans the query through the chain (hitting the plan cache like
        :meth:`query` would) and returns an :class:`Explanation` carrying the
        plan with per-fetch boundedness certificates and the worst-case fetch
        bound when one was found, or the planner chain's reasons plus — when
        derivable — an uncovered-variable counterexample when not.  Query
        lints ride along either way.  Nothing here touches the data.
        """
        resolved = self._resolve(query)
        entry, cache_hit = self.plan(
            resolved, head=head, max_size=max_size, planners=planners
        )
        lints = tuple(lint_query(resolved))
        name = self._query_name(resolved)
        if entry.plan is None:
            return Explanation(
                query_name=name,
                plan=None,
                reason=entry.reason,
                cache_hit=cache_hit,
                counterexample=self._counterexample(resolved),
                lints=lints,
            )
        conformance = conforms_to(
            entry.plan,
            self.access_schema,
            self.database.schema,
            self.views,
            self._budget,
            compute_bound=True,
        )
        certificates = fetch_certificates(
            entry.plan,
            self.database.schema,
            views=self.views,
            access_schema=self.access_schema,
            budget=self._budget,
        )
        # Cost-model provenance, flattened to plain tuples: per-fetch
        # estimates with the IOMeter's last per-relation actuals, and the
        # cost-based orderer's chosen-vs-rejected join orders.
        per_relation = entry.actual_per_relation or {}
        operator_estimates = tuple(
            (fe.access, float(fe.fetched), per_relation.get(fe.relation))
            for fe in entry.fetch_estimates
        )
        report = entry.order_report
        order_strategy = str(getattr(report, "strategy", "")) if report is not None else ""
        join_orders = tuple(
            (candidate.description, float(candidate.cost), bool(candidate.chosen))
            for candidate in (getattr(report, "considered", ()) or ())
        )
        return Explanation(
            query_name=name,
            plan=entry.plan,
            planner=entry.planner or "",
            reason=entry.reason,
            cache_hit=cache_hit,
            fetch_bound=conformance.fetch_bound,
            certificates=tuple(certificates),
            lints=lints,
            execution_tier="compiled" if entry.compiled is not None else "interpreted",
            codegen_state=entry.codegen_state if self.codegen else "disabled",
            executions=entry.executions,
            codegen_warmup=self.codegen_warmup,
            compile_seconds=(
                entry.compiled.compile_seconds if entry.compiled is not None else None
            ),
            codegen_reason=entry.codegen_reason,
            shard_set=(
                self._router.route(entry.plan) if self._router is not None else None
            ),
            estimated_fetches=entry.estimated_fetches,
            actual_fetches=entry.actual_fetches,
            operator_estimates=operator_estimates,
            order_strategy=order_strategy,
            join_orders=join_orders,
            replans=entry.replans,
            replan_reason=entry.replan_reason,
        )

    def _counterexample(self, resolved: Query) -> BoundednessCounterexample | None:
        """The uncovered-variable evidence for a query with no bounded plan.

        Uses the PTIME syntactic check (``cov(Q, A)``): when it names
        unreachable variables they are a genuine obstruction for plans over
        the base relations.  FO queries outside the positive-existential
        fragment yield no counterexample (``None``).
        """
        query: ConjunctiveQuery | UnionQuery
        if isinstance(resolved, (ConjunctiveQuery, UnionQuery)):
            query = resolved
        elif is_positive_existential(resolved):
            try:
                query = to_ucq(resolved, sorted(resolved.free_variables, key=str))
            except (QueryError, UnsupportedQueryError):
                return None
        else:
            return None
        report = bounded_evaluability_report(
            query, self.access_schema, self.database.schema
        )
        if report.effectively_bounded or not report.unreachable_variables:
            return None
        return BoundednessCounterexample(
            uncovered=tuple(sorted(v.name for v in report.unreachable_variables)),
            reasons=tuple(report.reasons),
        )

    def lint(self, query: QueryInput) -> list[Diagnostic]:
        """Advisory lints for a query (see :func:`repro.analysis.lint_query`)."""
        return lint_query(self._resolve(query))

    def explain_maintenance(self, view_name: str) -> MaintenanceExplanation:
        """How one maintained view is kept fresh: strategy, execution tier
        and the codegen lifecycle state (see
        :class:`~repro.engine.service.maintenance.MaintenanceExplanation`)."""
        return self.maintainer.explain(view_name)

    # ------------------------------------------------------------------ #
    # Serving
    # ------------------------------------------------------------------ #

    def query(
        self,
        query: QueryInput,
        *,
        head: Sequence[Variable] | None = None,
        max_size: int | None = None,
        backend: str | None = None,
        planners: Sequence[str | Planner] | None = None,
        use_cache: bool = True,
        params: Mapping[str, object] | None = None,
    ) -> Answer:
        """Answer any query through the planner chain, cache and backend.

        ``query`` may be a :class:`ConjunctiveQuery`, a :class:`UnionQuery`,
        an :class:`FOQuery` or a source string (parsed with
        :func:`repro.algebra.parser.parse_query`).  ``head`` fixes the output
        attributes of FO queries (defaults to the free variables sorted by
        name).  ``params`` binds named :class:`Param` placeholders for this
        call; queries with unbound parameters are rejected — prepare them
        instead.
        """
        started = time.perf_counter()
        resolved = self._resolve(query)
        memo = self._fingerprints.get(id(resolved))
        if memo is not None and memo[0] is resolved:
            declared = memo[2]
        else:
            declared = _query_parameter_names(resolved)
        if declared or params:
            _validate_bindings(
                declared,
                params or {},
                "query (pass params= or use prepare() for repeated execution)",
            )
        entry, hit = self.plan(
            resolved, head=head, max_size=max_size, planners=planners, use_cache=use_cache
        )
        return self._execute(
            resolved,
            tuple(head) if head is not None else None,
            entry,
            cache_hit=hit,
            backend_name=backend,
            started=started,
            params=dict(params) if params else None,
        )

    def prepare(
        self,
        query: QueryInput,
        *,
        head: Sequence[Variable] | None = None,
        max_size: int | None = None,
        backend: str | None = None,
        planners: Sequence[str | Planner] | None = None,
    ) -> PreparedQuery:
        """Plan a (possibly parameterised) query once for repeated execution."""
        resolved = self._resolve(query)
        entry, hit = self.plan(
            resolved, head=head, max_size=max_size, planners=planners
        )
        return PreparedQuery(
            service=self,
            query=resolved,
            head=tuple(head) if head is not None else None,
            entry=entry,
            backend=backend,
            parameters=_query_parameter_names(resolved),
            planned_from_cache=hit,
        )

    def query_many(
        self,
        queries: Iterable[QueryInput],
        *,
        max_workers: int = 4,
        backend: str | None = None,
        planners: Sequence[str | Planner] | None = None,
        use_cache: bool = True,
    ) -> list[Answer]:
        """Answer a batch of queries over a thread pool, preserving order.

        All answers are folded into :attr:`stats`; per-query provenance is in
        the returned list.  The plan cache and the statistics are
        thread-safe; the SQLite backend serialises statement execution behind
        a lock.

        The thread pool is persistent: created lazily on the first parallel
        batch and reused for the service's lifetime (grown, never shrunk,
        when a later call asks for more workers), so bursts of small batches
        do not pay thread spawn/teardown per call.  :meth:`close` releases
        it.  On a sharded service each query is additionally planned and
        routed up front: single-shard-routable queries with the same shard
        affinity run serially inside one worker task (their probes hit the
        same partition's hot buckets back-to-back), everything else gets an
        individual task.
        """
        items = list(queries)
        if not items:
            return []
        workers = max(1, min(max_workers, len(items)))

        def run(item: QueryInput) -> Answer:
            return self.query(
                item, backend=backend, planners=planners, use_cache=use_cache
            )

        if workers == 1:
            return [run(item) for item in items]
        pool = self._worker_pool(workers)
        router = self._router
        if router is None or router.shard_count <= 1:
            return pool.map_with_affinity(
                [lambda item=item: run(item) for item in items],
                [None] * len(items),
            )
        # Sharded dispatch.  Planning happens here on the caller thread —
        # once per item, against the shared plan cache, with the exact
        # validation query() performs — so routing can group work before
        # anything is submitted and cache statistics match the serial path.
        tasks: list = []
        affinities: list[int | None] = []
        for item in items:
            started = time.perf_counter()
            resolved = self._resolve(item)
            declared = _query_parameter_names(resolved)
            if declared:
                _validate_bindings(
                    declared,
                    {},
                    "query (pass params= or use prepare() for repeated execution)",
                )
            entry, hit = self.plan(resolved, planners=planners, use_cache=use_cache)
            affinities.append(
                router.affinity(entry.plan) if entry.plan is not None else None
            )

            def task(
                resolved: Query = resolved,
                entry: CachedPlan = entry,
                hit: bool = hit,
                started: float = started,
            ) -> Answer:
                return self._execute(
                    resolved,
                    None,
                    entry,
                    cache_hit=hit,
                    backend_name=backend,
                    started=started,
                    params=None,
                )

            tasks.append(task)
        return pool.map_with_affinity(tasks, affinities)

    def _worker_pool(self, workers: int) -> ShardExecutor:
        """The persistent batch-serving pool, grown on demand."""
        with self._pool_lock:
            pool = self._shard_executor
            if pool is None:
                pool = ShardExecutor(workers)
                self._shard_executor = pool
            elif pool.max_workers < workers:
                old = pool
                pool = ShardExecutor(workers)
                self._shard_executor = pool
                # Retire the smaller pool once its in-flight tasks drain;
                # growth is rare (a caller raising max_workers mid-life).
                old.shutdown()
            return pool

    def close(self) -> None:
        """Release serving resources; the service stays usable afterwards.

        Shuts the persistent ``query_many`` pool down (it is recreated
        lazily if another batch arrives), closes backends that hold
        resources (the SQLite connection) and unsubscribes from the
        database's delta stream — after ``close()`` the service no longer
        maintains its views on foreign writes, so treat it as retired.
        Usable as a context manager: ``with QueryService(...) as service:``.
        When a persistent plan store is configured, the plan cache is
        written back to it first (atomically), so the next service over the
        same (unchanged) data restarts warm.
        """
        self._save_plan_store()
        with self._pool_lock:
            pool, self._shard_executor = self._shard_executor, None
        if pool is not None:
            pool.shutdown()
        with self._backend_lock:
            backends = list(self._backends.values())
        for backend in backends:
            closer = getattr(backend, "close", None)
            if callable(closer):
                closer()
        self.database.unsubscribe(self)

    def __enter__(self) -> "QueryService":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # ------------------------------------------------------------------ #
    # Direct execution (hand-built plans, baseline comparisons)
    # ------------------------------------------------------------------ #

    def execute_plan(
        self,
        plan: PlanNode,
        *,
        backend: str | None = None,
        params: Mapping[str, object] | None = None,
    ):
        """Execute a (possibly hand-built) plan directly on a backend.

        Returns the backend's :class:`~repro.core.plan_eval.ExecutionResult`
        (rows, attributes, fetch statistics).  ``params`` binds any named
        :class:`Param` placeholders the plan contains; a plan with unbound
        parameters is rejected (it could only return wrong, empty results).
        """
        if params:
            plan = bind_plan(plan, dict(params))
        unbound = plan_parameters(plan)
        if unbound:
            raise QueryError(f"plan has unbound parameters {sorted(unbound)}")
        self._sync_serving()
        return self._execute_union_fanout(self._backend(backend), plan)

    def baseline(self, query: QueryInput, *, backend: str | None = None):
        """Answer a CQ/UCQ by full scan, bypassing planning entirely.

        Returns the backend's :class:`~repro.engine.baseline.BaselineResult`
        — the comparison point for the paper's scale-independence claims.
        """
        resolved = self._resolve(query)
        if isinstance(resolved, FOQuery):
            raise QueryError(
                "baseline() answers CQ/UCQ; for FO queries use query(..., planners=())"
            )
        unbound = sorted(_query_parameter_names(resolved))
        if unbound:
            raise QueryError(
                f"baseline query has unbound parameters {unbound}; bind them "
                "through prepare()/query(params=...) instead"
            )
        return self._backend(backend).execute_baseline(resolved)

    # ------------------------------------------------------------------ #

    def _execute_union_fanout(
        self, backend: ExecutionBackend, plan: PlanNode
    ) -> ExecutionResult:
        """Execute a plan, fanning a top-level union out per disjunct.

        On a sharded in-memory service a UCQ plan's disjuncts typically land
        on different partitions; executing them as separate units and
        unioning the partial results is the fan-out the router reports.  The
        merge is bit-identical to whole-plan execution: union disjuncts
        share no operator instances (per-fetch dedup state is per instance
        either way), union requires identical attribute tuples on both
        sides, and the per-disjunct meters are folded with ``merged_with``
        in disjunct order.
        """
        if (
            self._router is None
            or self._router.shard_count <= 1
            or not isinstance(plan, UnionNode)
            or not isinstance(backend, InMemoryBackend)
        ):
            return backend.execute_plan(plan)
        disjuncts: list[PlanNode] = []
        pending: list[PlanNode] = [plan]
        while pending:
            node = pending.pop()
            if isinstance(node, UnionNode):
                pending.extend((node.right, node.left))
            else:
                disjuncts.append(node)
        rows: frozenset[tuple] = frozenset()
        stats = None
        for disjunct in disjuncts:
            partial = backend.execute_plan(disjunct)
            rows |= partial.rows
            stats = partial.stats if stats is None else stats.merged_with(partial.stats)
        assert stats is not None
        return ExecutionResult(attributes=plan.attributes, rows=rows, stats=stats)

    def _execute(
        self,
        resolved: Query,
        head: tuple[Variable, ...] | None,
        entry: CachedPlan,
        *,
        cache_hit: bool,
        backend_name: str | None,
        started: float,
        params: dict[str, object] | None,
    ) -> Answer:
        self._sync_serving()
        backend = self._backend(backend_name)
        if entry.found:
            plan = entry.plan
            assert plan is not None
            if not params and entry.parameters:
                raise QueryError(
                    f"plan has unbound parameters {sorted(entry.parameters)}"
                )
            # Codegen tier: only backends exposing execute_compiled can run
            # closures (SQLite executes SQL text, not Python), and the plan
            # must have warmed up and verified first.  The compiled path
            # never calls bind_plan — the closure resolves parameter values
            # from the bindings once per execution.
            runner = getattr(backend, "execute_compiled", None)
            compiled = None
            if self.codegen and runner is not None:
                compiled = entry.compiled
                if compiled is not None or entry.codegen_state != "pending":
                    # Warm path, lock-free: the entry already left the warmup
                    # phase (compiled or parked ineligible), so the counter no
                    # longer gates anything — a racy += is only a statistic.
                    entry.executions += 1
                else:
                    with self._codegen_lock:
                        entry.executions += 1
                        if (
                            entry.compiled is None
                            and entry.codegen_state == "pending"
                            and entry.executions > self.codegen_warmup
                        ):
                            self._compile_entry(resolved, head, entry)
                        compiled = entry.compiled
            if compiled is not None:
                result = runner(compiled, params)
                tier = "compiled"
            else:
                bound = bind_plan(plan, params) if params else plan
                result = self._execute_union_fanout(backend, bound)
                plan = bound  # the bound plan that actually executed
                tier = "interpreted"
            answer = Answer(
                rows=result.rows,
                used_bounded_plan=True,
                plan=plan,
                planner=entry.planner,
                backend=backend.name,
                cache_hit=cache_hit,
                tuples_fetched=result.stats.tuples_fetched,
                tuples_scanned=0,
                view_tuples_scanned=result.stats.view_tuples_scanned,
                elapsed_seconds=time.perf_counter() - started,
                reason=entry.reason or f"bounded plan produced by planner {entry.planner!r}",
                execution_tier=tier,
                shards_touched=tuple(sorted(result.stats.shards_touched)),
                shards_total=self.shard_count,
            )
            self._observe_execution(resolved, head, entry, cache_hit, result.stats)
        else:
            bound = _bind_query(resolved, params) if params else resolved
            if isinstance(bound, FOQuery):
                fo_head = (
                    head
                    if head is not None
                    else tuple(sorted(bound.free_variables, key=lambda v: v.name))
                )
                base = backend.execute_baseline_fo(bound, fo_head)
            else:
                base = backend.execute_baseline(bound)
            answer = Answer(
                rows=base.rows,
                used_bounded_plan=False,
                plan=None,
                planner=None,
                backend=backend.name,
                cache_hit=cache_hit,
                tuples_fetched=0,
                tuples_scanned=base.tuples_scanned,
                view_tuples_scanned=0,
                elapsed_seconds=time.perf_counter() - started,
                reason=entry.reason or "no bounded plan found",
            )
        self.stats.record(answer)
        return answer
