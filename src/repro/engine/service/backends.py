"""Execution backends: where a (bounded or baseline) query actually runs.

Section 5.1 of the paper describes two deployment modes for bounded plans:
executing them directly against in-memory indices, and translating them to
SQL so a DBMS follows the plan via index joins.  The service models both
behind one :class:`ExecutionBackend` protocol:

* :class:`InMemoryBackend` — the plan executor of
  :mod:`repro.core.plan_eval` over hash indices and the cached views, with
  exact per-fetch I/O accounting.  Both the plan path and the full-scan
  baseline compile to the shared execution kernel (:mod:`repro.exec`), so
  the memory backend and the CQ evaluators share one join/fetch semantics;
* :class:`SQLiteBackend` — plans rendered through
  :func:`repro.engine.sql.plan_to_sql` and executed on an in-memory SQLite
  database loaded with the relations, the access-constraint indices and the
  materialised views.

Backends are selectable per service (``QueryService(backend="sqlite")``) or
per call (``service.query(q, backend="sqlite")``); both must return
row-identical results, which the test suite cross-validates on the
graph-search and CDR workloads.
"""

from __future__ import annotations

import sqlite3
import threading
import time
from typing import Collection, Mapping, Protocol, Sequence, runtime_checkable

from ...algebra.fo import FOQuery
from ...algebra.terms import Variable
from ...algebra.ucq import QueryLike, as_union
from ...algebra.views import ViewSet
from ...core.access import AccessSchema
from ...core.plan_eval import ExecutionResult, FetchProvider, FetchStats, PlanExecutor
from ...core.plans import PlanNode
from ...errors import UnsupportedQueryError
from ...exec.codegen import CompiledPlan
from ...storage.instance import Database
from ..baseline import BaselineResult, NaiveEngine
from ..sql import (
    create_index_statements,
    create_table_statements,
    insert_statements,
    materialize_view_statements,
    plan_to_sql,
    quote_identifier,
    ucq_to_sql,
    view_table_name,
)


@runtime_checkable
class ExecutionBackend(Protocol):
    """Anything able to execute bounded plans and full-scan baselines."""

    name: str

    def execute_plan(self, plan: PlanNode) -> ExecutionResult:
        """Run a bounded plan, returning rows plus I/O accounting."""
        ...

    def execute_baseline(self, query: QueryLike) -> BaselineResult:
        """Run a CQ/UCQ without a plan (the full-scan fallback)."""
        ...

    def execute_baseline_fo(self, query: FOQuery, head: Sequence[Variable]) -> BaselineResult:
        """Run an FO query without a plan (active-domain semantics)."""
        ...


class InMemoryBackend:
    """The reference backend: :class:`PlanExecutor` over hash indices.

    The executor is built once and reused across calls (it is stateless per
    execution); :meth:`refresh` swaps in new indices or a new view cache when
    the underlying data changes (the incremental-maintenance path).
    """

    name = "memory"

    def __init__(
        self,
        database: Database,
        access_schema: AccessSchema,
        provider: FetchProvider,
        view_cache: Mapping[str, Collection[tuple]],
    ) -> None:
        self.database = database
        self.access_schema = access_schema
        self._naive = NaiveEngine(database)
        self._executor = PlanExecutor(
            database.schema, access_schema, provider, view_cache
        )

    # ------------------------------------------------------------------ #

    @property
    def view_cache(self) -> dict[str, frozenset[tuple]]:
        return self._executor.view_cache

    @property
    def provider(self) -> FetchProvider:
        return self._executor.provider

    def refresh(
        self,
        provider: FetchProvider | None = None,
        view_cache: Mapping[str, Collection[tuple]] | None = None,
    ) -> None:
        """Swap the fetch provider and/or view cache (after data changes)."""
        self._executor = PlanExecutor(
            self.database.schema,
            self.access_schema,
            provider if provider is not None else self._executor.provider,
            view_cache if view_cache is not None else self._executor.view_cache,
        )

    # ------------------------------------------------------------------ #

    def execute_plan(self, plan: PlanNode) -> ExecutionResult:
        return self._executor.execute(plan)

    def execute_compiled(
        self,
        compiled: CompiledPlan,
        params: Mapping[str, object] | None = None,
    ) -> ExecutionResult:
        """Run a codegen closure against the current provider and view cache.

        The closure is data-independent: the provider and view cache are
        late-bound per execution, so a closure compiled before a write keeps
        reading the refreshed state afterwards.  Accounting is a fresh
        :class:`FetchStats` per call, exactly like :meth:`execute_plan`.
        """
        # One read of the executor reference: refresh() swaps the whole
        # executor atomically, and reading provider and view_cache through
        # two separate self._executor reads could pair a pre-refresh provider
        # with a post-refresh view cache (a torn runtime under concurrent
        # writes).
        executor = self._executor
        stats = FetchStats()
        provider = executor.provider
        bind = getattr(provider, "bound_to", None)
        if bind is not None:
            provider = bind(stats)
        rows = compiled.execute(provider, executor.view_cache, stats, params)
        return ExecutionResult(attributes=compiled.attributes, rows=rows, stats=stats)

    def execute_baseline(self, query: QueryLike) -> BaselineResult:
        return self._naive.answer(query)

    def execute_baseline_fo(self, query: FOQuery, head: Sequence[Variable]) -> BaselineResult:
        return self._naive.answer_fo(query, head)


class SQLiteBackend:
    """Plans translated to SQL and executed on an in-memory SQLite database.

    The database is loaded lazily on first use: tables for every relation,
    one composite index per access constraint (the fetch paths), and one
    ``mv_*`` table per materialised view.  :meth:`invalidate` drops the
    connection so the next call reloads from the (possibly updated) source
    :class:`Database`.

    SQLite executes whole statements, so per-fetch tuple accounting is not
    observable; ``ExecutionResult.stats`` reports zero fetched tuples and the
    baseline reports the same scan-cost model as :class:`NaiveEngine` (one
    full pass per query atom) to keep comparisons meaningful.
    """

    name = "sqlite"

    def __init__(
        self,
        database: Database,
        access_schema: AccessSchema,
        views: ViewSet,
        view_cache: Mapping[str, Collection[tuple]],
    ) -> None:
        self.database = database
        self.access_schema = access_schema
        self.views = views
        self._view_cache = {name: frozenset(rows) for name, rows in view_cache.items()}
        self._naive = NaiveEngine(database)
        self._lock = threading.RLock()
        self._connection: sqlite3.Connection | None = None

    # ------------------------------------------------------------------ #

    def _connect(self) -> sqlite3.Connection:
        with self._lock:
            if self._connection is not None:
                return self._connection
            connection = sqlite3.connect(":memory:", check_same_thread=False)
            cursor = connection.cursor()
            for statement in create_table_statements(self.database.schema):
                cursor.execute(statement)
            for statement in create_index_statements(self.access_schema, self.database.schema):
                cursor.execute(statement)
            for statement, rows in insert_statements(self.database):
                cursor.executemany(statement, rows)
            for create, insert, rows in materialize_view_statements(
                self.views, self._view_cache
            ):
                cursor.execute(create)
                if rows:
                    cursor.executemany(insert, rows)
            connection.commit()
            self._connection = connection
            return connection

    def invalidate(
        self, view_cache: Mapping[str, Collection[tuple]] | None = None
    ) -> None:
        """Drop the loaded database (it reloads lazily on the next call)."""
        with self._lock:
            if view_cache is not None:
                self._view_cache = {
                    name: frozenset(rows) for name, rows in view_cache.items()
                }
            if self._connection is not None:
                self._connection.close()
                self._connection = None

    def apply_delta(self, stream, view_deltas: Collection = ()) -> None:
        """Fold a committed transaction into the loaded SQLite database.

        The incremental write path: instead of dropping the connection (a
        full reload of every relation, index and materialised view on the
        next query), net row changes are applied with parameterised
        ``DELETE``/``INSERT`` statements, and ``mv_*`` tables are patched
        from the per-view deltas.  ``stream`` is a
        :class:`~repro.storage.deltas.DeltaStream`; ``view_deltas`` the
        :class:`~repro.engine.service.maintenance.ViewDelta` list of the same
        transaction.  A backend that has not loaded yet only refreshes its
        view-row snapshot — the lazy load will read the new state anyway.
        """
        with self._lock:
            for delta in view_deltas:
                rows = self._view_cache.get(delta.view, frozenset())
                self._view_cache[delta.view] = (rows - delta.removed) | delta.added
            connection = self._connection
            if connection is None:
                return
            cursor = connection.cursor()
            for relation in stream.relations:
                schema = self.database.schema.relation(relation)
                table = quote_identifier(relation)
                deleted = stream.deleted(relation)
                if deleted:
                    # "IS ?" (not "= ?"): null-safe equality, so rows holding
                    # None are removable from the mirror too.
                    where = " AND ".join(
                        f"{quote_identifier(a)} IS ?" for a in schema.attributes
                    )
                    cursor.executemany(
                        f"DELETE FROM {table} WHERE {where}", [tuple(r) for r in deleted]
                    )
                inserted = stream.inserted(relation)
                if inserted:
                    placeholders = ", ".join("?" for _ in schema.attributes)
                    cursor.executemany(
                        f"INSERT INTO {table} VALUES ({placeholders})",
                        [tuple(r) for r in inserted],
                    )
            for delta in view_deltas:
                if delta.is_empty or delta.view not in self.views:
                    continue
                view = self.views.view(delta.view)
                table = quote_identifier(view_table_name(delta.view))
                attributes = view.attributes if view.arity else ("__exists",)
                if delta.removed:
                    where = " AND ".join(f"{quote_identifier(a)} IS ?" for a in attributes)
                    cursor.executemany(
                        f"DELETE FROM {table} WHERE {where}",
                        [tuple(r) if r else (1,) for r in delta.removed],
                    )
                if delta.added:
                    placeholders = ", ".join("?" for _ in attributes)
                    cursor.executemany(
                        f"INSERT INTO {table} VALUES ({placeholders})",
                        [tuple(r) if r else (1,) for r in delta.added],
                    )
            connection.commit()

    def close(self) -> None:
        self.invalidate()

    # ------------------------------------------------------------------ #

    def execute_plan(self, plan: PlanNode) -> ExecutionResult:
        translation = plan_to_sql(
            plan, self.database.schema, self.views, self.access_schema
        )
        # Connection lookup and execution under ONE (reentrant) lock
        # acquisition: a concurrent invalidate() may otherwise close the
        # connection between the two steps.
        with self._lock:
            fetched = self._connect().execute(translation.text).fetchall()
        if translation.marker_column is not None:
            rows = frozenset({()} if fetched else set())
        else:
            rows = frozenset(tuple(row) for row in fetched)
        return ExecutionResult(attributes=plan.attributes, rows=rows, stats=FetchStats())

    def execute_baseline(self, query: QueryLike) -> BaselineResult:
        union = as_union(query)
        statement = ucq_to_sql(union, self.database.schema)
        started = time.perf_counter()
        with self._lock:
            fetched = self._connect().execute(statement).fetchall()
        if union.is_boolean:
            rows = frozenset({()} if fetched else set())
        else:
            rows = frozenset(tuple(row) for row in fetched)
        return BaselineResult(
            rows=rows,
            tuples_scanned=self._naive.scan_cost(union),
            elapsed_seconds=time.perf_counter() - started,
        )

    def execute_baseline_fo(self, query: FOQuery, head: Sequence[Variable]) -> BaselineResult:
        # General FO (negation, universal quantification) has no direct SQL
        # rendering here; fall back to the in-memory active-domain evaluator.
        return self._naive.answer_fo(query, head)


def make_backend(
    kind: str,
    database: Database,
    access_schema: AccessSchema,
    views: ViewSet,
    provider: FetchProvider,
    view_cache: Mapping[str, Collection[tuple]],
) -> ExecutionBackend:
    """Construct a backend by name (``"memory"`` or ``"sqlite"``)."""
    if kind == InMemoryBackend.name:
        return InMemoryBackend(database, access_schema, provider, view_cache)
    if kind == SQLiteBackend.name:
        return SQLiteBackend(database, access_schema, views, view_cache)
    raise UnsupportedQueryError(
        f"unknown execution backend {kind!r}; available backends are 'memory', 'sqlite'"
    )
