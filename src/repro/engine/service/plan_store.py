"""Versioned on-disk persistence for planning outcomes.

Planning is the expensive part of serving a bounded query; the plans
themselves are immutable, picklable trees.  A :class:`PlanStore` lets a
:class:`~repro.engine.service.QueryService` write its plan cache to disk on
``close()`` and reload it at startup, so a restarted service reaches the
compiled-tier latency on the *first* execution of a previously hot query
instead of re-planning and re-warming from scratch.

Staleness is decided by two signatures recorded next to the payload:

* the **statistics fingerprint** (:func:`repro.storage.statistics.
  statistics_fingerprint`) — plans chosen by the cost-based planner are
  data-dependent, so a store written against different table cardinalities
  must not be replayed;
* the **planner-chain signature** — a store written by a different chain
  (different planners, or differently configured ones) keys different
  outcomes.

A mismatch on either is *not* an error: :meth:`PlanStore.load` returns no
entries and the service plans afresh.  The same goes for an unknown (future)
``format_version`` — an older binary reading a newer store discards it.
Known *older* versions are migrated forward through :data:`MIGRATIONS`.
Only an unreadable payload — truncated file, garbage bytes, a pickle that
does not decode to the expected shape — raises :class:`PlanStoreError`, so
callers can distinguish "nothing useful here" from "this file is damaged".

This module deliberately imports neither :mod:`repro.exec` nor the service's
cache module: compiled closures are never persisted (they are rebuilt from
the stored plan by the service), and the store speaks only in primitive
:class:`StoredEntry` records the service maps to/from its cache entries.
"""

from __future__ import annotations

import io
import os
import pickle
import tempfile
from dataclasses import dataclass, field
from typing import Any, Callable

from ...errors import PlanStoreError

#: Current payload format.  Bump when the entry shape changes and add a
#: migration below so stores written by older versions keep loading.
FORMAT_VERSION = 2

_MAGIC = b"RPLS"


def _migrate_v1(payload: dict) -> dict:
    """v1 → v2: entries predate the optimizer-v2 bookkeeping fields."""
    for entry in payload.get("entries", []):
        entry.setdefault("estimated_fetches", None)
        entry.setdefault("fetch_estimates", ())
        entry.setdefault("replans", 0)
        entry.setdefault("replan_reason", "")
        entry.setdefault("order_report", None)
    payload["format_version"] = 2
    return payload


#: Forward migrations keyed by *source* version: a payload at version ``v``
#: is piped through ``MIGRATIONS[v]``, then ``MIGRATIONS[v + 1]``, ... until
#: it reaches :data:`FORMAT_VERSION`.
MIGRATIONS: dict[int, Callable[[dict], dict]] = {
    1: _migrate_v1,
}


@dataclass
class StoredEntry:
    """One persisted planning outcome, in store-native (primitive) form.

    ``plan`` and ``order_report`` are pickled object trees (plan nodes are
    plain module-level dataclasses); everything else is builtin scalars and
    containers.  Codegen *state* is persisted — ``codegen_state`` of
    ``"compiled"`` tells the loading service to eagerly recompile the plan —
    but compiled closures themselves never are.
    """

    cache_key: tuple
    plan: Any
    planner: str | None
    reason: str = ""
    parameters: frozenset = frozenset()
    dependencies: frozenset = frozenset()
    executions: int = 0
    codegen_state: str = "pending"
    codegen_reason: str = ""
    estimated_fetches: float | None = None
    fetch_estimates: tuple = ()
    replans: int = 0
    replan_reason: str = ""
    order_report: Any = None

    def to_dict(self) -> dict:
        return {
            "cache_key": self.cache_key,
            "plan": self.plan,
            "planner": self.planner,
            "reason": self.reason,
            "parameters": self.parameters,
            "dependencies": self.dependencies,
            "executions": self.executions,
            "codegen_state": self.codegen_state,
            "codegen_reason": self.codegen_reason,
            "estimated_fetches": self.estimated_fetches,
            "fetch_estimates": self.fetch_estimates,
            "replans": self.replans,
            "replan_reason": self.replan_reason,
            "order_report": self.order_report,
        }

    @classmethod
    def from_dict(cls, raw: dict) -> "StoredEntry":
        return cls(
            cache_key=tuple(raw["cache_key"]),
            plan=raw["plan"],
            planner=raw.get("planner"),
            reason=raw.get("reason", ""),
            parameters=frozenset(raw.get("parameters", ())),
            dependencies=frozenset(raw.get("dependencies", ())),
            executions=int(raw.get("executions", 0)),
            codegen_state=str(raw.get("codegen_state", "pending")),
            codegen_reason=str(raw.get("codegen_reason", "")),
            estimated_fetches=raw.get("estimated_fetches"),
            fetch_estimates=tuple(raw.get("fetch_estimates", ())),
            replans=int(raw.get("replans", 0)),
            replan_reason=str(raw.get("replan_reason", "")),
            order_report=raw.get("order_report"),
        )


@dataclass
class PlanStore:
    """Load/save a set of :class:`StoredEntry` records at ``path``.

    ``loaded``/``saved`` count entries moved in each direction (for tests
    and diagnostics); they are not persisted.
    """

    path: str
    loaded: int = field(default=0, compare=False)
    saved: int = field(default=0, compare=False)

    # ------------------------------------------------------------------ load
    def load(self, fingerprint: str, chain_signature: tuple) -> list[StoredEntry]:
        """Read the store, returning ``[]`` when absent or stale.

        Raises :class:`PlanStoreError` only when the file exists but cannot
        be decoded (truncation, corruption, wrong magic, non-dict payload).
        """
        try:
            with open(self.path, "rb") as handle:
                blob = handle.read()
        except FileNotFoundError:
            return []
        except OSError as error:
            raise PlanStoreError(f"cannot read plan store {self.path!r}: {error}") from error

        if not blob.startswith(_MAGIC):
            raise PlanStoreError(
                f"plan store {self.path!r} is not a plan-store file (bad magic)"
            )
        try:
            payload = pickle.load(io.BytesIO(blob[len(_MAGIC):]))
        except Exception as error:  # pickle raises a zoo of exception types
            raise PlanStoreError(
                f"plan store {self.path!r} is corrupt or truncated: {error}"
            ) from error
        if not isinstance(payload, dict) or "format_version" not in payload:
            raise PlanStoreError(f"plan store {self.path!r} has an unrecognised payload")

        version = payload["format_version"]
        if not isinstance(version, int) or version > FORMAT_VERSION:
            # A future (or nonsensical) version: written by a newer binary.
            # Discard rather than guess at its entry shape.
            return []
        while version < FORMAT_VERSION:
            migrate = MIGRATIONS.get(version)
            if migrate is None:
                return []  # an ancient version with no migration path
            payload = migrate(payload)
            version = payload["format_version"]

        if payload.get("fingerprint") != fingerprint:
            return []  # data changed since the store was written
        if tuple(payload.get("chain_signature", ())) != tuple(chain_signature):
            return []  # planned by a different planner chain

        entries = [StoredEntry.from_dict(raw) for raw in payload.get("entries", [])]
        self.loaded += len(entries)
        return entries

    # ------------------------------------------------------------------ save
    def save(
        self,
        fingerprint: str,
        chain_signature: tuple,
        entries: list[StoredEntry],
    ) -> None:
        """Atomically write the store (tmp file + ``os.replace``)."""
        payload = {
            "format_version": FORMAT_VERSION,
            "fingerprint": fingerprint,
            "chain_signature": tuple(chain_signature),
            "entries": [entry.to_dict() for entry in entries],
        }
        blob = _MAGIC + pickle.dumps(payload, protocol=pickle.HIGHEST_PROTOCOL)
        directory = os.path.dirname(os.path.abspath(self.path)) or "."
        descriptor, tmp_path = tempfile.mkstemp(dir=directory, suffix=".plans.tmp")
        try:
            with os.fdopen(descriptor, "wb") as handle:
                handle.write(blob)
            os.replace(tmp_path, self.path)
        except BaseException:
            try:
                os.unlink(tmp_path)
            except OSError:
                pass
            raise
        self.saved += len(entries)
