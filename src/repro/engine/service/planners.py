"""Pluggable planners: strategy objects producing bounded plans.

The seed engine hard-coded its dispatch — ``BoundedEngine.answer`` always ran
the heuristic builder, ``answer_fo`` always ran the topped-query analysis,
and the exact VBRP procedure was reachable only through the ``core`` API.
This module turns each path into a :class:`Planner` strategy and lets the
service run a configurable *fallback chain*: the first planner that accepts
the query's language and finds a plan wins; when none does, the service falls
back to the full-scan baseline carrying every planner's refusal reason.

Four planners ship by default:

* ``"heuristic"`` — the constructive builder of
  :func:`repro.engine.optimizer.build_bounded_plan_ucq` (CQ/UCQ; sound, not
  complete, fast);
* ``"cost"`` — the cost-based variant
  :func:`repro.engine.optimizer.build_bounded_plan_cost_ucq`: same fragment
  machinery, but fetch order chosen by a histogram-costed subset DP, with
  per-relation ``corrections`` applied during adaptive re-planning (CQ/UCQ;
  opt-in, same soundness as heuristic);
* ``"exact"`` — the enumerative VBRP decision procedure
  :func:`repro.core.vbrp.decide_vbrp` (CQ/UCQ; complete relative to its
  candidate vocabulary, exponential — off the default chain);
* ``"topped"`` — the effective-syntax plan generator
  :func:`repro.core.topped.topped_plan` (FO queries, Section 5).

Custom planners register through :func:`register_planner` and are then
addressable by name in ``QueryService(planners=...)``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Mapping, Protocol, Sequence, runtime_checkable

from ...algebra.cq import ConjunctiveQuery
from ...algebra.fo import FOQuery
from ...algebra.schema import DatabaseSchema
from ...algebra.terms import Variable
from ...algebra.ucq import UnionQuery
from ...algebra.views import ViewSet
from ...core.access import AccessSchema
from ...core.element_queries import ElementQueryBudget
from ...core.plans import PlanNode
from ...core.topped import topped_plan
from ...core.vbrp import decide_vbrp
from ...errors import BudgetExceededError, QueryError
from ..optimizer import (
    DEFAULT_MAX_DP_ATOMS,
    JoinOrderReport,
    build_bounded_plan_cost_ucq,
    build_bounded_plan_ucq,
)

if TYPE_CHECKING:
    from ...storage.statistics import RelationStatistics

Query = ConjunctiveQuery | UnionQuery | FOQuery


@dataclass(frozen=True)
class PlanningContext:
    """Everything a planner may consult besides the query itself.

    ``statistics`` carries the storage layer's per-relation cardinality /
    distinct counts (:meth:`repro.storage.instance.Database.statistics`);
    cost-based planners use them to order otherwise equivalent access paths.
    Plans chosen from statistics are data-dependent, which is why
    :meth:`~repro.engine.service.QueryService.refresh_data` drops the plan
    cache.

    ``corrections`` is set only during adaptive re-planning: per-relation
    multipliers (observed Dξ over estimated Dξ from the mis-estimated
    execution) that the cost model folds into its per-key estimates, so the
    replacement plan is chosen under the cardinalities the runtime actually
    saw (Leis et al., VLDB 2015).
    """

    schema: DatabaseSchema
    views: ViewSet
    access_schema: AccessSchema
    budget: ElementQueryBudget | None = None
    inner_size_cutoff: int = 2
    statistics: Mapping[str, "RelationStatistics"] | None = None
    corrections: Mapping[str, float] | None = None


@dataclass
class PlanningResult:
    """Outcome of one planner invocation.

    ``order_report`` is populated by cost-based planners only: the
    chosen-vs-rejected join orders with their model costs, surfaced through
    ``explain()`` and persisted alongside the plan.
    """

    plan: PlanNode | None
    planner: str
    reason: str = ""
    order_report: JoinOrderReport | None = None

    @property
    def found(self) -> bool:
        return self.plan is not None


@runtime_checkable
class Planner(Protocol):
    """Strategy protocol: anything that can turn a query into a bounded plan.

    Planners with configuration that changes their output should expose a
    ``signature`` attribute/property (a hashable tuple including the name and
    every behavior-affecting setting) — it keys the plan cache.  Without one,
    the cache falls back to ``(name, type)`` via :func:`planner_signature`,
    which treats two same-typed instances as interchangeable.
    """

    name: str

    def can_plan(self, query: Query) -> bool:
        """Whether this planner handles the query's language at all."""
        ...

    def plan(
        self,
        query: Query,
        head: Sequence[Variable] | None,
        max_size: int | None,
        context: PlanningContext,
    ) -> PlanningResult:
        """Produce a bounded plan, or a :class:`PlanningResult` explaining why not."""
        ...


def planner_signature(planner: "Planner") -> tuple:
    """The hashable identity of a planner for plan-cache keying.

    Uses the planner's own ``signature`` when provided; otherwise falls back
    to name plus concrete type, so a re-registered or differently-configured
    planner of another type never serves another planner's cached outcomes.
    """
    signature = getattr(planner, "signature", None)
    if signature is not None:
        return tuple(signature)
    return (planner.name, type(planner).__qualname__)


class HeuristicPlanner:
    """The constructive CQ/UCQ plan builder (views as filters + greedy fetches)."""

    name = "heuristic"

    @property
    def signature(self) -> tuple:
        return (self.name,)

    def can_plan(self, query: Query) -> bool:
        return isinstance(query, (ConjunctiveQuery, UnionQuery))

    def plan(
        self,
        query: Query,
        head: Sequence[Variable] | None,
        max_size: int | None,
        context: PlanningContext,
    ) -> PlanningResult:
        outcome = build_bounded_plan_ucq(
            query,
            context.views,
            context.access_schema,
            context.schema,
            max_size,
            context.budget,
            statistics=context.statistics,
        )
        return PlanningResult(plan=outcome.plan, planner=self.name, reason=outcome.reason)


class CostBasedPlanner:
    """DP join ordering over histogram statistics (optimizer v2).

    Shares every soundness mechanism with :class:`HeuristicPlanner` — view
    coverage, fragment construction, conformance checking — and differs only
    in the order uncovered atoms are fetched, chosen by a Selinger-style
    subset DP costed with the per-column equi-depth histograms riding on
    ``context.statistics``.  Above ``max_dp_atoms`` atoms per disjunct the
    builder falls back to the greedy order (recorded in the order report).
    """

    name = "cost"

    def __init__(self, max_dp_atoms: int = DEFAULT_MAX_DP_ATOMS) -> None:
        self.max_dp_atoms = max_dp_atoms

    @property
    def signature(self) -> tuple:
        return (self.name, self.max_dp_atoms)

    def can_plan(self, query: Query) -> bool:
        return isinstance(query, (ConjunctiveQuery, UnionQuery))

    def plan(
        self,
        query: Query,
        head: Sequence[Variable] | None,
        max_size: int | None,
        context: PlanningContext,
    ) -> PlanningResult:
        outcome = build_bounded_plan_cost_ucq(
            query,
            context.views,
            context.access_schema,
            context.schema,
            max_size,
            context.budget,
            statistics=context.statistics,
            corrections=context.corrections,
            max_dp_atoms=self.max_dp_atoms,
        )
        return PlanningResult(
            plan=outcome.plan,
            planner=self.name,
            reason=outcome.reason,
            order_report=outcome.order_report,
        )


class ExactVBRPPlanner:
    """The enumerative VBRP procedure — complete, exponential, opt-in.

    ``decide_vbrp`` needs a concrete size bound ``M`` to enumerate candidate
    plans; when the caller passes ``max_size=None`` the planner uses its own
    ``default_max_size`` (keep it small: the candidate space grows
    exponentially in ``M``, which is exactly what Table I measures).
    """

    name = "exact"

    def __init__(self, default_max_size: int = 4, language: str = "UCQ") -> None:
        self.default_max_size = default_max_size
        self.language = language

    @property
    def signature(self) -> tuple:
        return (self.name, self.default_max_size, self.language)

    def can_plan(self, query: Query) -> bool:
        return isinstance(query, (ConjunctiveQuery, UnionQuery))

    def plan(
        self,
        query: Query,
        head: Sequence[Variable] | None,
        max_size: int | None,
        context: PlanningContext,
    ) -> PlanningResult:
        bound = max_size if max_size is not None else self.default_max_size
        try:
            result = decide_vbrp(
                query,
                context.views,
                context.access_schema,
                context.schema,
                max_size=bound,
                language=self.language,
                budget=context.budget,
            )
        except BudgetExceededError as error:
            # Exhausting the enumeration budget is a refusal, not a failure of
            # the request: let the chain fall through to the next planner.
            return PlanningResult(plan=None, planner=self.name, reason=str(error))
        return PlanningResult(plan=result.plan, planner=self.name, reason=result.reason)


class ToppedFOPlanner:
    """The effective-syntax path: bounded plans for topped FO queries."""

    name = "topped"

    @property
    def signature(self) -> tuple:
        return (self.name,)

    def can_plan(self, query: Query) -> bool:
        return isinstance(query, FOQuery)

    def plan(
        self,
        query: Query,
        head: Sequence[Variable] | None,
        max_size: int | None,
        context: PlanningContext,
    ) -> PlanningResult:
        assert isinstance(query, FOQuery)
        if head is None:
            head = sorted(query.free_variables, key=lambda v: v.name)
        plan = topped_plan(
            query,
            head,
            context.schema,
            context.views,
            context.access_schema,
            inner_size_cutoff=context.inner_size_cutoff,
            budget=context.budget,
        )
        if plan is not None and max_size is not None and plan.size() > max_size:
            return PlanningResult(
                plan=None,
                planner=self.name,
                reason=f"topped plan has {plan.size()} nodes > M={max_size}",
            )
        if plan is None:
            return PlanningResult(
                plan=None, planner=self.name, reason="query is not topped by (R, V, A, M)"
            )
        return PlanningResult(plan=plan, planner=self.name)


# --------------------------------------------------------------------------- #
# Registry
# --------------------------------------------------------------------------- #

_PLANNER_FACTORIES: dict[str, Callable[[], Planner]] = {
    HeuristicPlanner.name: HeuristicPlanner,
    CostBasedPlanner.name: CostBasedPlanner,
    ExactVBRPPlanner.name: ExactVBRPPlanner,
    ToppedFOPlanner.name: ToppedFOPlanner,
}

#: The chain used when a service is created without an explicit one: the
#: cheap constructive builder for CQ/UCQ, the effective syntax for FO.
DEFAULT_PLANNER_CHAIN: tuple[str, ...] = ("heuristic", "topped")


def register_planner(name: str, factory: Callable[[], Planner]) -> None:
    """Register (or replace) a planner factory under ``name``."""
    _PLANNER_FACTORIES[name] = factory


def available_planners() -> tuple[str, ...]:
    """The names currently registered (sorted)."""
    return tuple(sorted(_PLANNER_FACTORIES))


def resolve_planners(
    planners: Sequence[str | Planner] | None,
) -> tuple[Planner, ...]:
    """Materialise a planner chain from names and/or ready strategy objects."""
    if planners is None:
        planners = DEFAULT_PLANNER_CHAIN
    resolved: list[Planner] = []
    for entry in planners:
        if isinstance(entry, str):
            factory = _PLANNER_FACTORIES.get(entry)
            if factory is None:
                raise QueryError(
                    f"unknown planner {entry!r}; registered planners are "
                    f"{', '.join(available_planners())}"
                )
            resolved.append(factory())
        else:
            resolved.append(entry)
    return tuple(resolved)
