"""Unified query-serving subsystem: one entry point, pluggable everything.

:class:`QueryService` is the public API of the library's serving layer — see
:mod:`.service` for the full story.  The submodules are independently
reusable:

* :mod:`.planners` — planner strategies and the registry behind the
  configurable fallback chain;
* :mod:`.cache` — canonical query keys and the LRU plan cache;
* :mod:`.backends` — in-memory and SQLite execution backends;
* :mod:`.sharding` — the shard router (certificate-driven shard-set
  prediction) and the persistent worker pool behind ``query_many``;
* :mod:`.stats` — thread-safe serving statistics with latency percentiles.
"""

from .backends import ExecutionBackend, InMemoryBackend, SQLiteBackend, make_backend
from .cache import CachedPlan, CacheStats, LRUPlanCache, canonical_query_key
from .maintenance import (
    MaintenanceReport,
    MaintenanceStats,
    ViewDelta,
    ViewMaintainer,
)
from .plan_store import PlanStore, StoredEntry
from .planners import (
    DEFAULT_PLANNER_CHAIN,
    CostBasedPlanner,
    ExactVBRPPlanner,
    HeuristicPlanner,
    Planner,
    PlanningContext,
    PlanningResult,
    ToppedFOPlanner,
    available_planners,
    planner_signature,
    register_planner,
    resolve_planners,
)
from .service import Answer, PreparedQuery, QueryService
from .sharding import ShardExecutor, ShardRouter
from .stats import ServiceStats, StatsSnapshot

__all__ = [
    "Answer",
    "CachedPlan",
    "CacheStats",
    "CostBasedPlanner",
    "DEFAULT_PLANNER_CHAIN",
    "ExactVBRPPlanner",
    "ExecutionBackend",
    "HeuristicPlanner",
    "InMemoryBackend",
    "LRUPlanCache",
    "MaintenanceReport",
    "MaintenanceStats",
    "PlanStore",
    "Planner",
    "PlanningContext",
    "PlanningResult",
    "PreparedQuery",
    "StoredEntry",
    "QueryService",
    "SQLiteBackend",
    "ServiceStats",
    "ShardExecutor",
    "ShardRouter",
    "StatsSnapshot",
    "ToppedFOPlanner",
    "ViewDelta",
    "ViewMaintainer",
    "available_planners",
    "canonical_query_key",
    "make_backend",
    "planner_signature",
    "register_planner",
    "resolve_planners",
]
