"""Aggregated serving statistics for :class:`~repro.engine.service.QueryService`.

One :class:`ServiceStats` instance accompanies each service and is updated on
every call (thread-safely, so :meth:`QueryService.query_many` can fan out over
a thread pool).  It tracks the quantities the paper's experiments revolve
around — tuples fetched through access constraints versus tuples scanned by
the fallback — plus the serving-layer metrics the scale-out roadmap needs:
plan-cache hit rates, per-planner and per-backend usage, and latency
percentiles.
"""

from __future__ import annotations

import threading
from collections import deque
from dataclasses import dataclass


@dataclass
class StatsSnapshot:
    """An immutable copy of the counters of a :class:`ServiceStats`."""

    queries: int
    cache_hits: int
    cache_misses: int
    bounded_answers: int
    fallback_answers: int
    tuples_fetched: int
    tuples_scanned: int
    view_tuples_scanned: int
    planner_uses: dict[str, int]
    backend_uses: dict[str, int]
    tier_uses: dict[str, int]
    single_shard_queries: int
    fanout_queries: int
    shards_touched: int
    shards_pruned: int
    replans: int
    plan_store_hits: int
    cache_hit_rate: float
    bounded_rate: float
    latency_p50: float
    latency_p95: float
    latency_p99: float

    def __str__(self) -> str:
        return (
            f"queries={self.queries} cache_hit_rate={self.cache_hit_rate:.2f} "
            f"bounded_rate={self.bounded_rate:.2f} fetched={self.tuples_fetched} "
            f"scanned={self.tuples_scanned} p50={self.latency_p50 * 1e3:.2f}ms "
            f"p95={self.latency_p95 * 1e3:.2f}ms"
        )


class ServiceStats:
    """Thread-safe accumulator of serving statistics.

    Latencies are kept in a bounded ring of the most recent ``max_latencies``
    samples: recording is O(1) on the serving hot path, and the (rare)
    percentile reads sort the ring on demand.
    """

    def __init__(self, max_latencies: int = 8192) -> None:
        self._lock = threading.Lock()
        self._max_latencies = max_latencies
        self.queries = 0
        self.cache_hits = 0
        self.cache_misses = 0
        self.bounded_answers = 0
        self.fallback_answers = 0
        self.tuples_fetched = 0
        self.tuples_scanned = 0
        self.view_tuples_scanned = 0
        self.planner_uses: dict[str, int] = {}
        self.backend_uses: dict[str, int] = {}
        self.tier_uses: dict[str, int] = {}
        # Sharded serving: how many answers touched exactly one partition
        # versus several, and the partition totals behind those answers.
        # Only answers that touched at least one partitioned index count —
        # reference-tier-only queries are shard-neutral.
        self.single_shard_queries = 0
        self.fanout_queries = 0
        self.shards_touched = 0
        self.shards_pruned = 0
        # Optimizer v2: adaptive re-plans triggered by >replan-factor misses
        # of estimated vs. actual Dξ, and plan-cache entries served from the
        # persistent plan store (counted on their first post-restore hit).
        self.replans = 0
        self.plan_store_hits = 0
        self._recent: deque[float] = deque(maxlen=max_latencies)

    # ------------------------------------------------------------------ #

    def record(self, answer) -> None:
        """Fold one :class:`~repro.engine.service.Answer` into the counters."""
        with self._lock:
            self.queries += 1
            if answer.cache_hit:
                self.cache_hits += 1
            else:
                self.cache_misses += 1
            if answer.used_bounded_plan:
                self.bounded_answers += 1
                if answer.planner:
                    self.planner_uses[answer.planner] = (
                        self.planner_uses.get(answer.planner, 0) + 1
                    )
            else:
                self.fallback_answers += 1
            self.backend_uses[answer.backend] = self.backend_uses.get(answer.backend, 0) + 1
            tier = answer.execution_tier
            self.tier_uses[tier] = self.tier_uses.get(tier, 0) + 1
            touched = len(getattr(answer, "shards_touched", ()) or ())
            total = getattr(answer, "shards_total", 0)
            if touched:
                if touched == 1:
                    self.single_shard_queries += 1
                else:
                    self.fanout_queries += 1
                self.shards_touched += touched
                self.shards_pruned += max(0, total - touched)
            self.tuples_fetched += answer.tuples_fetched
            self.tuples_scanned += answer.tuples_scanned
            self.view_tuples_scanned += answer.view_tuples_scanned
            self._recent.append(answer.elapsed_seconds)

    def record_maintenance(self, stats) -> None:
        """Fold one maintenance run's per-view tier tallies into ``tier_uses``.

        Write-side tiers are namespaced (``"maintenance-compiled"``,
        ``"maintenance-interpreted"``, ``"maintenance-recompute"``) so they
        sit next to the read-side ``"compiled"``/``"interpreted"`` counters
        in one report.
        """
        tier_runs = getattr(stats, "tier_runs", None)
        if not tier_runs:
            return
        with self._lock:
            for tier, count in tier_runs.items():
                key = "maintenance-" + tier
                self.tier_uses[key] = self.tier_uses.get(key, 0) + count

    def record_replan(self) -> None:
        """Count one adaptive re-planning event (estimate missed by >10x)."""
        with self._lock:
            self.replans += 1

    def record_plan_store_hit(self) -> None:
        """Count one plan served from the persistent store after a restart."""
        with self._lock:
            self.plan_store_hits += 1

    # ------------------------------------------------------------------ #

    @property
    def cache_hit_rate(self) -> float:
        total = self.cache_hits + self.cache_misses
        return self.cache_hits / total if total else 0.0

    @property
    def bounded_rate(self) -> float:
        return self.bounded_answers / self.queries if self.queries else 0.0

    def latency_percentile(self, fraction: float) -> float:
        """The ``fraction``-quantile (0..1) of recorded latencies, in seconds."""
        with self._lock:
            return self._percentile(sorted(self._recent), fraction)

    def snapshot(self) -> StatsSnapshot:
        """A consistent copy of every counter (for reporting / benchmarks)."""
        with self._lock:
            queries = self.queries
            total_cache = self.cache_hits + self.cache_misses
            latencies = sorted(self._recent)
            snapshot = StatsSnapshot(
                queries=queries,
                cache_hits=self.cache_hits,
                cache_misses=self.cache_misses,
                bounded_answers=self.bounded_answers,
                fallback_answers=self.fallback_answers,
                tuples_fetched=self.tuples_fetched,
                tuples_scanned=self.tuples_scanned,
                view_tuples_scanned=self.view_tuples_scanned,
                planner_uses=dict(self.planner_uses),
                backend_uses=dict(self.backend_uses),
                tier_uses=dict(self.tier_uses),
                single_shard_queries=self.single_shard_queries,
                fanout_queries=self.fanout_queries,
                shards_touched=self.shards_touched,
                shards_pruned=self.shards_pruned,
                replans=self.replans,
                plan_store_hits=self.plan_store_hits,
                cache_hit_rate=self.cache_hits / total_cache if total_cache else 0.0,
                bounded_rate=self.bounded_answers / queries if queries else 0.0,
                latency_p50=self._percentile(latencies, 0.50),
                latency_p95=self._percentile(latencies, 0.95),
                latency_p99=self._percentile(latencies, 0.99),
            )
        return snapshot

    @staticmethod
    def _percentile(sorted_latencies: list[float], fraction: float) -> float:
        if not sorted_latencies:
            return 0.0
        index = min(
            len(sorted_latencies) - 1,
            max(0, round(fraction * (len(sorted_latencies) - 1))),
        )
        return sorted_latencies[index]

    def reset(self) -> None:
        with self._lock:
            self.queries = 0
            self.cache_hits = 0
            self.cache_misses = 0
            self.bounded_answers = 0
            self.fallback_answers = 0
            self.tuples_fetched = 0
            self.tuples_scanned = 0
            self.view_tuples_scanned = 0
            self.planner_uses = {}
            self.backend_uses = {}
            self.tier_uses = {}
            self.single_shard_queries = 0
            self.fanout_queries = 0
            self.shards_touched = 0
            self.shards_pruned = 0
            self.replans = 0
            self.plan_store_hits = 0
            self._recent = deque(maxlen=self._max_latencies)
